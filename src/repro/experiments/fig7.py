"""Experiment E9 — the real-deployment comparison (paper Figure 7).

The paper evaluated 300 queries on five real DBMS nodes under Greedy and
QA-NT at two uniform inter-arrival settings (averages 300 ms and 400 ms)
and reported the time to assign a query to a node and the total
evaluation time.  QA-NT beat Greedy in both runs, and both mechanisms
showed a "relatively long" assign time because they wait for estimate
replies from every node (the slowest PC took seconds to answer EXPLAIN
PLAN).

The reproduction runs the same protocol on the SQLite federation with all
times scaled down ~10x (DESIGN.md documents the substitution): 300
queries, inter-arrival averages of 30 ms and 40 ms, per-node slowdowns
emulating the hardware spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..dbms import DbmsFederation, DbmsRunResult
from .reporting import format_table
from .spec import ScalePreset, ScenarioSpec, register

__all__ = [
    "Fig7Result",
    "run_fig7",
]


@dataclass
class Fig7Result:
    """Assign and total times per (mechanism, inter-arrival) pair."""

    runs: Dict[Tuple[str, float], DbmsRunResult]

    def render(self) -> str:
        """The Figure 7 bars as a table."""
        rows = []
        for (mechanism, gap_ms), run in sorted(self.runs.items()):
            rows.append(
                (
                    mechanism,
                    gap_ms,
                    len(run.outcomes),
                    run.mean_assign_ms,
                    run.mean_total_ms,
                )
            )
        return format_table(
            (
                "mechanism",
                "mean interarrival (ms)",
                "queries",
                "assign (ms)",
                "total (ms)",
            ),
            rows,
        )

    def qant_beats_greedy(self, gap_ms: float) -> bool:
        """True iff QA-NT's total time beats Greedy's at ``gap_ms``."""
        return (
            self.runs[("qa-nt", gap_ms)].mean_total_ms
            < self.runs[("greedy", gap_ms)].mean_total_ms
        )

    def to_dict(self) -> dict:
        """JSON-ready summary of every (mechanism, inter-arrival) run."""
        return {
            "runs": [
                {
                    "mechanism": mechanism,
                    "mean_interarrival_ms": gap_ms,
                    "queries": len(run.outcomes),
                    "unserved": run.unserved,
                    "mean_assign_ms": run.mean_assign_ms,
                    "mean_total_ms": run.mean_total_ms,
                }
                for (mechanism, gap_ms), run in sorted(self.runs.items())
            ]
        }


def run_fig7(
    num_queries: int = 300,
    interarrivals_ms: Sequence[float] = (30.0, 40.0),
    num_nodes: int = 5,
    num_tables: int = 20,
    num_views: int = 80,
    num_classes: int = 16,
    table_size_mb: Tuple[float, float] = (0.3, 1.5),
    seed: int = 0,
    warm_up: bool = True,
) -> Fig7Result:
    """Run the scaled Section 5.2 experiment on the SQLite federation.

    A fresh federation is built per (mechanism, inter-arrival) pair so
    runs do not share queue state; the RNG seed keeps dataset and workload
    identical across mechanisms.
    """
    runs: Dict[Tuple[str, float], DbmsRunResult] = {}
    for gap_ms in interarrivals_ms:
        for mechanism in ("greedy", "qa-nt"):
            federation, __ = DbmsFederation.build(
                num_nodes=num_nodes,
                num_tables=num_tables,
                num_views=num_views,
                num_classes=num_classes,
                table_size_mb=table_size_mb,
                seed=seed,
            )
            try:
                if warm_up:
                    federation.warm_up()
                runs[(mechanism, gap_ms)] = federation.run_workload(
                    mechanism,
                    num_queries=num_queries,
                    mean_interarrival_ms=gap_ms,
                    seed=seed + 1,
                )
            finally:
                federation.close()
    return Fig7Result(runs=runs)


register(
    ScenarioSpec(
        name="fig7",
        title="Fig. 7 — Greedy vs QA-NT on the SQLite federation",
        runner=run_fig7,
        scales={
            "small": ScalePreset(fixed={"num_queries": 100}),
            "paper": ScalePreset(fixed={"num_queries": 300}),
        },
    )
)
