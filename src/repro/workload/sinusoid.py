"""Sinusoid workloads (paper Figs. 3–5).

The dynamic-workload experiments drive the federation with arrival rates
following a sinusoid: ``rate(t) = peak * (1 + sin(2*pi*f*t + phase)) / 2``
so the rate swings between zero and ``peak`` at frequency ``f``.  Events
are drawn from the corresponding non-homogeneous Poisson process by
thinning (Lewis & Shedler), which keeps the realised load stochastic like
the paper's ("the number of queries entering the distributed system per
half second", Fig. 3).

The paper's two-query workload uses "a 900 degrees phase difference"
between Q1 and Q2 — 900 deg is 180 deg modulo a full turn (and is likely a
typesetting slip for 90 deg); the phase is therefore an explicit parameter
with a default of 180 deg, which matches the qualitative description in
Section 5.1 (when Q1 peaks, Q2 queries are present "though fewer").  The
peak arrival rate of Q1 is twice that of Q2.
"""

from __future__ import annotations

import math
import random
from typing import Iterator

from .arrival import ArrivalProcess

__all__ = [
    "SinusoidArrivals",
    "PAPER_PHASE_DIFFERENCE_DEG",
]

#: The paper's stated Q1/Q2 phase difference, reduced modulo 360.
PAPER_PHASE_DIFFERENCE_DEG = 180.0


class SinusoidArrivals(ArrivalProcess):
    """Non-homogeneous Poisson arrivals with a sinusoid rate profile."""

    def __init__(
        self,
        frequency_hz: float,
        peak_rate_per_ms: float,
        phase_deg: float = 0.0,
        base_rate_per_ms: float = 0.0,
    ):
        """``rate(t) = base + peak * (1 + sin(2*pi*f*t + phase)) / 2``.

        ``frequency_hz`` is in cycles per *second* (the paper sweeps
        0.05–2 Hz); internally converted to per-millisecond.
        """
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if peak_rate_per_ms < 0 or base_rate_per_ms < 0:
            raise ValueError("rates must be non-negative")
        if peak_rate_per_ms + base_rate_per_ms == 0:
            raise ValueError("the process must have a positive peak rate")
        self._freq_per_ms = frequency_hz / 1000.0
        self._peak = peak_rate_per_ms
        self._base = base_rate_per_ms
        self._phase_rad = math.radians(phase_deg)

    @property
    def peak_rate_per_ms(self) -> float:
        """The sinusoid's peak contribution to the rate."""
        return self._peak

    def rate_at(self, t_ms: float) -> float:
        """Instantaneous arrival rate at time ``t_ms`` (queries per ms)."""
        swing = (
            1.0 + math.sin(2.0 * math.pi * self._freq_per_ms * t_ms + self._phase_rad)
        ) / 2.0
        return self._base + self._peak * swing

    def mean_rate_per_ms(self) -> float:
        """Time-averaged arrival rate (the sinusoid averages to peak/2)."""
        return self._base + self._peak / 2.0

    def times(self, horizon_ms: float, rng: random.Random) -> Iterator[float]:
        """Thinning: sample at the max rate, keep with prob rate/max."""
        max_rate = self._base + self._peak
        clock = 0.0
        while True:
            clock += rng.expovariate(max_rate)
            if clock >= horizon_ms:
                return
            if rng.random() * max_rate <= self.rate_at(clock):
                yield clock
