"""Welfare economics checks and a synchronous query-market economy.

Two pieces live here:

* verification helpers for the First Theorem of Welfare Economics (FTWE) —
  given equilibrium prices, the induced allocation must be Pareto optimal —
  usable on small instances where the feasible allocations can be
  enumerated;
* :class:`QueryMarketEconomy`, a synchronous, period-stepped market of
  QA-NT agents that demonstrates Proposition 3.1 (excess demand vanishes as
  the non-tatonnement process runs) without the full discrete-event
  simulator.  The economy is also the reference implementation for the
  integration tests of :mod:`repro.core.qant`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .market import PriceVector, excess_demand, is_equilibrium
from .pareto import (
    Allocation,
    enumerate_allocations,
    is_pareto_optimal,
)
from .preferences import PreferenceRelation
from .qant import QantParameters, QantPricingAgent
from .supply import ExplicitSupplySet, SupplySet, solve_supply
from .vectors import QueryVector, aggregate

__all__ = [
    "ftwe_allocation",
    "verify_ftwe",
    "MarketPeriodRecord",
    "QueryMarketEconomy",
]


def ftwe_allocation(
    demands: Sequence[QueryVector],
    supply_sets: Sequence[SupplySet],
    prices: PriceVector,
    supply_method: str = "greedy",
) -> Allocation:
    """The allocation induced by ``prices``: every seller solves eq. 4.

    Aggregate supply is distributed to consumers greedily up to their
    demand, mirroring :func:`repro.core.pareto.enumerate_allocations`.
    Sellers and consumers need not be the same nodes: the shorter list is
    padded with zero vectors (a pure client supplies nothing, a pure
    server consumes nothing).
    """
    supplies = [
        solve_supply(s, prices.values, method=supply_method)
        for s in supply_sets
    ]
    agg = aggregate(supplies)
    remaining = list(agg.components)
    consumptions = []
    for demand in demands:
        comps = []
        for k in range(demand.num_classes):
            take = min(remaining[k], demand[k])
            comps.append(take)
            remaining[k] -= take
        consumptions.append(QueryVector(comps))
    num_classes = agg.num_classes
    while len(supplies) < len(consumptions):
        supplies.append(QueryVector.zeros(num_classes))
    while len(consumptions) < len(supplies):
        consumptions.append(QueryVector.zeros(num_classes))
    return Allocation(
        supplies=tuple(supplies), consumptions=tuple(consumptions)
    )


def verify_ftwe(
    demands: Sequence[QueryVector],
    supply_sets: Sequence[ExplicitSupplySet],
    prices: PriceVector,
    preferences: Optional[Sequence[PreferenceRelation]] = None,
) -> bool:
    """Check FTWE on a small instance with enumerable supply sets.

    Returns True iff (a) the market clears at ``prices`` (no residual
    excess demand) and (b) the induced allocation is Pareto optimal among
    all feasible market-clearing allocations.  Exponential — verification
    only.
    """
    allocation = ftwe_allocation(demands, supply_sets, prices)
    excess = excess_demand(aggregate(demands), allocation.aggregate_supply())
    if not is_equilibrium(excess, tolerance=0.5):
        return False
    alternatives = enumerate_allocations(demands, supply_sets)
    return is_pareto_optimal(allocation, alternatives, preferences)


@dataclass
class MarketPeriodRecord:
    """What happened in one period of a :class:`QueryMarketEconomy`."""

    period: int
    demand: QueryVector
    consumed: QueryVector
    backlog: QueryVector
    excess: Tuple[float, ...]
    prices_by_node: List[PriceVector] = field(default_factory=list)

    @property
    def cleared(self) -> bool:
        """True iff no demanded query went unserved this period."""
        return is_equilibrium(self.excess, tolerance=1e-9)


class QueryMarketEconomy:
    """A synchronous multi-period economy of QA-NT server agents.

    Each period, all freshly demanded queries plus the backlog of unserved
    ones are presented (in randomised order) to the server agents; a client
    asks servers one by one and the first to offer gets the query, exactly
    matching the paper's "servers do not try to be fair and immediately
    accept" negotiation.  Queries refused by every server re-enter the next
    period's demand (paper Section 3.3).

    This models the market layer only — no execution timing — which is what
    Proposition 3.1 is about: the *counts* supplied converge to the counts
    demanded.
    """

    def __init__(
        self,
        supply_sets: Sequence[SupplySet],
        parameters: Optional[QantParameters] = None,
        seed: int = 0,
    ):
        if not supply_sets:
            raise ValueError("the economy needs at least one server")
        num_classes = {s.num_classes for s in supply_sets}
        if len(num_classes) != 1:
            raise ValueError("all supply sets must cover the same K classes")
        self._num_classes = num_classes.pop()
        self._agents = [
            QantPricingAgent(s, parameters=parameters) for s in supply_sets
        ]
        self._rng = random.Random(seed)
        self._backlog: List[int] = []
        self._period = 0
        self._history: List[MarketPeriodRecord] = []

    @property
    def agents(self) -> List[QantPricingAgent]:
        """The per-server QA-NT agents (exposed for inspection)."""
        return self._agents

    @property
    def history(self) -> List[MarketPeriodRecord]:
        """Per-period records accumulated so far."""
        return self._history

    @property
    def backlog_size(self) -> int:
        """Number of queries still waiting for a server."""
        return len(self._backlog)

    def run_period(self, demand: QueryVector) -> MarketPeriodRecord:
        """Run one period with ``demand`` fresh queries (plus backlog)."""
        if demand.num_classes != self._num_classes:
            raise ValueError("demand vector covers the wrong number of classes")
        if not demand.is_integral():
            raise ValueError("period demand must be an integer vector")
        self._period += 1

        requests = list(self._backlog)
        for k, count in enumerate(demand.as_int_tuple()):
            requests.extend([k] * count)
        self._rng.shuffle(requests)

        for agent in self._agents:
            agent.begin_period()

        consumed = [0] * self._num_classes
        unserved: List[int] = []
        order = list(range(len(self._agents)))
        for class_index in requests:
            self._rng.shuffle(order)
            for agent_index in order:
                agent = self._agents[agent_index]
                if agent.would_offer(class_index):
                    agent.accept(class_index)
                    consumed[class_index] += 1
                    break
            else:
                unserved.append(class_index)

        for agent in self._agents:
            agent.end_period()

        offered_demand = QueryVector.from_counts(
            self._num_classes,
            {k: requests.count(k) for k in set(requests)},
        )
        consumed_vec = QueryVector(consumed)
        backlog_vec = QueryVector.from_counts(
            self._num_classes,
            {k: unserved.count(k) for k in set(unserved)},
        )
        record = MarketPeriodRecord(
            period=self._period,
            demand=offered_demand,
            consumed=consumed_vec,
            backlog=backlog_vec,
            excess=excess_demand(offered_demand, consumed_vec),
            prices_by_node=[agent.prices for agent in self._agents],
        )
        self._backlog = unserved
        self._history.append(record)
        return record

    def run(
        self, demands: Sequence[QueryVector]
    ) -> List[MarketPeriodRecord]:
        """Run one period per demand vector and return all records."""
        return [self.run_period(d) for d in demands]

    def steady_state_excess(
        self, demand: QueryVector, periods: int
    ) -> Tuple[float, ...]:
        """Run ``periods`` constant-demand periods; return final excess.

        With feasible constant demand this converges towards zero
        (Proposition 3.1); tests assert the trend.
        """
        record = None
        for __ in range(periods):
            record = self.run_period(demand)
        assert record is not None
        return record.excess
