"""Tests for CSV export and multi-seed replication helpers."""

import pytest

from repro.experiments.replication import (
    ratio_confident,
    replicate,
)
from repro.experiments.reporting import series_to_csv, table_to_csv


class TestCsvExport:
    def test_simple_table(self):
        csv = table_to_csv(("a", "b"), [(1, 2), ("x", "y")])
        assert csv.splitlines() == ["a,b", "1,2", "x,y"]

    def test_floats_keep_full_precision(self):
        csv = table_to_csv(("v",), [(0.1234567890123,)])
        assert "0.1234567890123" in csv

    def test_quoting(self):
        csv = table_to_csv(("name",), [('He said "hi", twice',)])
        assert csv.splitlines()[1] == '"He said ""hi"", twice"'

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            table_to_csv(("a",), [(1, 2)])

    def test_series(self):
        csv = series_to_csv("x", "y", [1, 2], [3, 4])
        assert csv.splitlines() == ["x,y", "1,3", "2,4"]

    def test_series_length_checked(self):
        with pytest.raises(ValueError):
            series_to_csv("x", "y", [1], [1, 2])


class TestReplication:
    def test_statistics(self):
        rep = replicate(lambda seed: float(seed), seeds=[1, 2, 3])
        assert rep.mean == 2.0
        assert rep.min == 1.0 and rep.max == 3.0
        assert rep.std == pytest.approx(1.0)

    def test_single_seed_has_zero_std(self):
        rep = replicate(lambda seed: 5.0, seeds=[7])
        assert rep.std == 0.0

    def test_render(self):
        rep = replicate(lambda seed: 1.0, seeds=[0, 1])
        assert "n=2" in rep.render()

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda seed: 1.0, seeds=[])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda seed: float("nan"), seeds=[0])

    def test_measure_called_once_per_seed(self):
        calls = []
        replicate(lambda seed: calls.append(seed) or 0.0, seeds=[4, 5])
        assert calls == [4, 5]


class TestRatioConfident:
    def test_consistent_winner(self):
        assert ratio_confident(
            lambda seed: 2.0, lambda seed: 1.0, seeds=[0, 1, 2]
        )

    def test_consistent_loser(self):
        assert not ratio_confident(
            lambda seed: 0.5, lambda seed: 1.0, seeds=[0, 1, 2]
        )

    def test_majority_rule(self):
        # Wins on seeds 1 and 2, loses on 0 -> majority win.
        assert ratio_confident(
            lambda seed: 2.0 if seed else 0.5,
            lambda seed: 1.0,
            seeds=[0, 1, 2],
        )

    def test_threshold(self):
        assert not ratio_confident(
            lambda seed: 1.05, lambda seed: 1.0, seeds=[0], threshold=1.1
        )

    @pytest.mark.slow
    def test_fig5a_overload_win_is_seed_robust(self):
        """QA-NT's overload advantage survives re-seeding (3 seeds)."""
        from repro.allocation import GreedyAllocator, QantAllocator
        from repro.experiments.setups import (
            run_mechanisms,
            sinusoid_trace_for_load,
            two_query_world,
        )
        from repro.sim import FederationConfig

        def response(mechanism):
            def measure(seed):
                world = two_query_world(num_nodes=20, seed=seed)
                trace = sinusoid_trace_for_load(
                    world,
                    load_fraction=2.0,
                    horizon_ms=15_000.0,
                    seed=seed + 100,
                )
                runs = run_mechanisms(
                    world,
                    trace,
                    mechanisms={mechanism[0]: mechanism[1]},
                    config=FederationConfig(seed=seed + 200, drain_ms=90_000.0),
                )
                return runs[mechanism[0]].mean_response_ms

            return measure

        assert ratio_confident(
            response(("greedy", GreedyAllocator)),
            response(("qa-nt", QantAllocator)),
            seeds=[0, 1, 2],
        )
