"""Experiment E2 — aggregate vectors of the worked example (paper Figure 2).

For the first time period (T = 500 ms) of the Figure 1 instance, the paper
shows the aggregate demand vector ``d = (2, 6)``, the aggregate
supply/consumption points of the LB and QA strategies, and the aggregate
supply set (the grey feasibility region).  This driver recomputes all of
them: the per-strategy points from the Figure 1 schedules and the supply
set by combining the two nodes' enumerated per-period supply sets (eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from ..core import QueryVector, aggregate, excess_demand
from .fig1 import (
    _first_period_consumptions,
    _simulate_serial,
    _supply_sets,
    lb_schedule,
    qa_schedule,
)
from .reporting import format_table
from .spec import ScalePreset, ScenarioSpec, register

__all__ = [
    "Fig2Result",
    "run_fig2",
]


@dataclass
class Fig2Result:
    """The Figure 2 data: aggregate vectors and the supply region."""

    aggregate_demand: QueryVector
    lb_aggregate_consumption: QueryVector
    qa_aggregate_consumption: QueryVector
    lb_excess: Tuple[float, ...]
    qa_excess: Tuple[float, ...]
    #: The aggregate supply set S as integer points (eq. 2).
    supply_region: FrozenSet[Tuple[int, ...]]

    @property
    def demand_is_infeasible(self) -> bool:
        """Paper's observation: ``d`` lies outside the grey region."""
        return (
            tuple(int(x) for x in self.aggregate_demand) not in self.supply_region
        )

    def render(self) -> str:
        """The Figure 2 points as text."""
        rows = [
            ("demand d", *self.aggregate_demand.components),
            ("LB consumption", *self.lb_aggregate_consumption.components),
            ("QA consumption", *self.qa_aggregate_consumption.components),
        ]
        table = format_table(("vector", "q1", "q2"), rows)
        return "%s\nd outside supply set: %s\n|S| = %d points" % (
            table,
            self.demand_is_infeasible,
            len(self.supply_region),
        )

    def to_dict(self) -> dict:
        """JSON-ready form of the aggregate vectors and supply region."""
        return {
            "aggregate_demand": list(self.aggregate_demand.components),
            "lb_aggregate_consumption": list(
                self.lb_aggregate_consumption.components
            ),
            "qa_aggregate_consumption": list(
                self.qa_aggregate_consumption.components
            ),
            "lb_excess": list(self.lb_excess),
            "qa_excess": list(self.qa_excess),
            "supply_region": sorted(list(p) for p in self.supply_region),
            "demand_is_infeasible": self.demand_is_infeasible,
        }


def run_fig2(period_ms: float = 500.0) -> Fig2Result:
    """Recompute the aggregate vectors of the example's first period."""
    demand = QueryVector((2, 6))  # one q1 + six q2 at N1, one q1 at N2

    lb_finishes, __ = _simulate_serial(lb_schedule())
    qa_finishes, __ = _simulate_serial(
        qa_schedule(), service_order=(1, 0, 2, 3, 4, 5, 6, 7)
    )
    lb_consumption = aggregate(_first_period_consumptions(lb_finishes, period_ms))
    qa_consumption = aggregate(_first_period_consumptions(qa_finishes, period_ms))

    # Aggregate supply set: one vector from each node, summed (eq. 2).
    node_sets = _supply_sets(period_ms)
    region = set()
    for s1 in node_sets[0]:
        for s2 in node_sets[1]:
            region.add(tuple(int(x) for x in (s1 + s2)))

    return Fig2Result(
        aggregate_demand=demand,
        lb_aggregate_consumption=lb_consumption,
        qa_aggregate_consumption=qa_consumption,
        lb_excess=excess_demand(demand, lb_consumption),
        qa_excess=excess_demand(demand, qa_consumption),
        supply_region=frozenset(region),
    )


def _fig2_scenario(seed: int = 0) -> Fig2Result:
    """Registry adapter: the aggregate-vector example is deterministic."""
    return run_fig2()


register(
    ScenarioSpec(
        name="fig2",
        title="Fig. 2 — aggregate vectors of the worked example",
        runner=_fig2_scenario,
        scales={"small": ScalePreset(), "paper": ScalePreset()},
    )
)
