"""Federation-wide numpy mirrors of per-node scheduler state.

The scalar allocators probe nodes one at a time (``estimated_completion_ms``
per candidate per query).  At 1,000 nodes that per-query Python loop is the
dominant cost of the fan-out, so :class:`FleetArrays` keeps one shared
``slot_free`` vector — mirrored from each node's single-slot watermark on
every :meth:`~repro.sim.node.SimulatedNode.enqueue` — plus per-class
row/cost views, letting an allocator compute every candidate's completion
estimate with one vectorised expression that is bit-identical to the
scalar probes.

The mirror is only built when every node is single-slot (the paper's
serial-node model) and numpy is importable; otherwise ``build`` returns
``None`` and all callers keep their scalar paths.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

try:  # Same optional dependency posture as repro.sim.network.
    import numpy as _np
except ImportError:  # pragma: no cover - scalar paths cover this
    _np = None

__all__ = [
    "ClassView",
    "FleetArrays",
]


class ClassView:
    """Row indices and execution costs of one class's candidate set."""

    __slots__ = ("ids", "rows", "costs")

    def __init__(self, ids, rows, costs) -> None:
        self.ids = ids  # candidate node ids, ascending (int64 array)
        self.rows = rows  # fleet rows of those ids (intp array)
        self.costs = costs  # per-candidate execution cost (float64 array)


class FleetArrays:
    """Shared vectorised view of a federation's node schedulers."""

    __slots__ = ("node_ids", "row_of", "slot_free", "_views")

    def __init__(
        self,
        node_ids: Tuple[int, ...],
        row_of: Dict[int, int],
        slot_free,
    ) -> None:
        self.node_ids = node_ids
        self.row_of = row_of
        #: ``slot_free[row_of[nid]]`` mirrors node ``nid``'s watermark.
        self.slot_free = slot_free
        self._views: Dict[int, Tuple[object, ClassView]] = {}

    @staticmethod
    def build(nodes: Mapping[int, object]) -> "Optional[FleetArrays]":
        """Mirror ``nodes`` (id -> :class:`SimulatedNode`) into arrays.

        Returns ``None`` when numpy is missing or any node has more than
        one execution slot (the mirror tracks only the serial watermark).
        """
        if _np is None or not nodes:
            return None
        for node in nodes.values():
            if node._exec_slots != 1:
                return None
        node_ids = tuple(sorted(nodes))
        row_of = {nid: row for row, nid in enumerate(node_ids)}
        slot_free = _np.zeros(len(node_ids), dtype=float)
        fleet = FleetArrays(node_ids, row_of, slot_free)
        for nid in node_ids:
            nodes[nid].attach_fleet(slot_free, row_of[nid])
        return fleet

    def class_view(
        self,
        class_index: int,
        candidates: Sequence[int],
        nodes: Mapping[int, object],
    ) -> ClassView:
        """Rows/costs for ``candidates`` of class ``class_index``.

        Cached per class against the exact candidate tuple object — the
        outage-free fast path hands out the registry's tuple unchanged, so
        an identity check suffices and a changed candidate set (churn,
        outages) rebuilds the view.
        """
        cached = self._views.get(class_index)
        if cached is not None and cached[0] is candidates:
            return cached[1]
        row_of = self.row_of
        rows = _np.array(
            [row_of[nid] for nid in candidates], dtype=_np.intp
        )
        ids = _np.array(candidates, dtype=_np.int64)
        costs = _np.array(
            [nodes[nid]._costs[class_index] for nid in candidates],
            dtype=float,
        )
        view = ClassView(ids, rows, costs)
        self._views[class_index] = (candidates, view)
        return view

    def estimates(self, view: ClassView, now: float):
        """Completion estimates for every candidate of ``view`` at ``now``.

        ``where(sf > now, sf, now) + cost`` is element-for-element the
        scalar ``start = max(now, earliest); start + cost`` probe, so the
        floats (and any downstream argmin tie-breaks) are bit-identical.
        """
        sf = self.slot_free[view.rows]
        return _np.where(sf > now, sf, now) + view.costs
