"""Synthetic catalog and placement generation (Table 3 parameters).

Defaults reproduce the paper's simulated dataset: 1,000 relations of
1–20 MB with 10 attributes, bundled and mirrored so each relation has ≈5
copies and each of the 100 nodes holds ≈50 relations.  See
:mod:`repro.catalog.placement` for why placement is bundle-based.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from .placement import Placement
from .schema import Catalog, Relation

__all__ = [
    "CatalogParameters",
    "generate_catalog",
    "generate_placement",
    "generate_catalog_and_placement",
]


@dataclass(frozen=True)
class CatalogParameters:
    """Knobs of the synthetic dataset (defaults = paper Table 3)."""

    num_relations: int = 1000
    min_size_mb: float = 1.0
    max_size_mb: float = 20.0
    num_attributes: int = 10
    num_nodes: int = 100
    #: Relations per bundle; bundles are the unit of mirroring.
    bundle_size: int = 10
    #: Copies of each bundle (hence of each relation); paper average is 5.
    mirrors: int = 5
    #: Nodes are partitioned into this many groups; a bundle's mirrors all
    #: land inside one group, creating overlapping eligibility sets.
    num_groups: int = 10

    def __post_init__(self) -> None:
        if self.num_relations <= 0 or self.num_nodes <= 0:
            raise ValueError("need at least one relation and one node")
        if not 0 < self.min_size_mb <= self.max_size_mb:
            raise ValueError("invalid relation size range")
        if self.bundle_size <= 0:
            raise ValueError("bundle size must be positive")
        if self.mirrors <= 0:
            raise ValueError("mirrors must be positive")
        if self.num_groups <= 0 or self.num_groups > self.num_nodes:
            raise ValueError("num_groups must be in [1, num_nodes]")


def generate_catalog(
    params: CatalogParameters, seed: int = 0
) -> Catalog:
    """Generate ``params.num_relations`` relations with uniform sizes."""
    rng = random.Random(seed)
    relations = [
        Relation(
            rid=rid,
            name="rel_%04d" % rid,
            size_mb=rng.uniform(params.min_size_mb, params.max_size_mb),
            num_attributes=params.num_attributes,
        )
        for rid in range(params.num_relations)
    ]
    return Catalog(relations)


def generate_placement(
    catalog: Catalog, params: CatalogParameters, seed: int = 0
) -> Placement:
    """Place bundles of relations onto node groups (see module docstring)."""
    rng = random.Random(seed + 1)
    node_groups = _partition_nodes(params, rng)
    bundles = _partition_relations(catalog, params)

    holdings: Dict[int, Set[int]] = {n: set() for n in range(params.num_nodes)}
    for bundle_index, bundle in enumerate(bundles):
        group = node_groups[bundle_index % len(node_groups)]
        copies = min(params.mirrors, len(group))
        for node in rng.sample(group, copies):
            holdings[node].update(bundle)
    return Placement(holdings)


def generate_catalog_and_placement(
    params: CatalogParameters, seed: int = 0
) -> Tuple[Catalog, Placement]:
    """Generate a catalog and its placement with one call."""
    catalog = generate_catalog(params, seed)
    placement = generate_placement(catalog, params, seed)
    return catalog, placement


def _partition_nodes(
    params: CatalogParameters, rng: random.Random
) -> List[List[int]]:
    """Randomly partition node ids into ``num_groups`` near-equal groups."""
    nodes = list(range(params.num_nodes))
    rng.shuffle(nodes)
    groups: List[List[int]] = [[] for __ in range(params.num_groups)]
    for index, node in enumerate(nodes):
        groups[index % params.num_groups].append(node)
    return groups


def _partition_relations(
    catalog: Catalog, params: CatalogParameters
) -> List[List[int]]:
    """Chop relation ids into consecutive bundles of ``bundle_size``."""
    rids = catalog.relation_ids
    return [
        rids[start : start + params.bundle_size]
        for start in range(0, len(rids), params.bundle_size)
    ]
