"""Workload generation: arrival processes and trace builders."""

from .arrival import (
    ArrivalProcess,
    FixedArrivals,
    PoissonArrivals,
    UniformArrivals,
)
from .sinusoid import PAPER_PHASE_DIFFERENCE_DEG, SinusoidArrivals
from .trace import (
    WorkloadEvent,
    build_trace,
    two_class_sinusoid_trace,
    zipf_trace,
)
from .zipf import MAX_INTERARRIVAL_MS, TruncatedZipf, ZipfArrivals

__all__ = [
    "ArrivalProcess",
    "FixedArrivals",
    "MAX_INTERARRIVAL_MS",
    "PAPER_PHASE_DIFFERENCE_DEG",
    "PoissonArrivals",
    "SinusoidArrivals",
    "TruncatedZipf",
    "UniformArrivals",
    "WorkloadEvent",
    "ZipfArrivals",
    "build_trace",
    "two_class_sinusoid_trace",
    "zipf_trace",
]
