"""Virtual query markets: prices, excess demand, equilibrium (Defs. 2–3).

Queries are the traded commodities and each class *k* carries a virtual
price ``p_k`` in an internal monetary unit.  The *excess demand* for class
*k* at prices ``p`` is ``z_k(p) = sum_i d_ik - s_ik`` (Definition 2), and the
market is in *competitive equilibrium* when ``z(p*) = 0`` (Definition 3) —
at which point, by the First Theorem of Welfare Economics, the induced
allocation is Pareto optimal.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence, Tuple

from .supply import SupplySet
from .vectors import QueryVector, aggregate

__all__ = [
    "PriceVector",
    "excess_demand",
    "market_excess_demand",
    "is_equilibrium",
]

#: Default tolerance when judging whether excess demand has vanished.
EQUILIBRIUM_TOLERANCE = 1e-6


class PriceVector:
    """An immutable vector of non-negative virtual prices, one per class.

    Prices are virtual: they are private to the pricing mechanism and never
    leave a node (paper Section 3.3), so this class makes no attempt to
    model currency transfer — only valuation and adjustment.
    """

    __slots__ = ("_prices",)

    def __init__(self, prices: Iterable[float]):
        values = tuple(float(p) for p in prices)
        for price in values:
            if not math.isfinite(price):
                raise ValueError("prices must be finite")
            if price < 0:
                raise ValueError("prices must be non-negative")
        if not values:
            raise ValueError("a price vector must cover at least one class")
        self._prices = values

    @classmethod
    def _from_trusted_tuple(cls, prices: Tuple[float, ...]) -> "PriceVector":
        """Wrap an already-validated tuple of floats without re-checking.

        Internal fast path for the QA-NT agent, whose mutable price list
        maintains the finite/non-negative/non-empty invariant itself and
        only materialises a :class:`PriceVector` when ``.prices`` is read.
        """
        self = object.__new__(cls)
        self._prices = prices
        return self

    @classmethod
    def uniform(cls, num_classes: int, price: float = 1.0) -> "PriceVector":
        """All classes priced at ``price`` — the usual starting point."""
        return cls((price,) * num_classes)

    @property
    def num_classes(self) -> int:
        """Number of query classes ``K``."""
        return len(self._prices)

    def __len__(self) -> int:
        return len(self._prices)

    def __iter__(self) -> Iterator[float]:
        return iter(self._prices)

    def __getitem__(self, index: int) -> float:
        return self._prices[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PriceVector):
            return self._prices == other._prices
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._prices)

    def __repr__(self) -> str:
        return "PriceVector(%s)" % (self._prices,)

    @property
    def values(self) -> Tuple[float, ...]:
        """The underlying tuple of prices."""
        return self._prices

    def value_of(self, vector: QueryVector) -> float:
        """Virtual value ``p . v`` of a demand/supply/consumption vector."""
        return vector.dot(self._prices)

    def adjusted(
        self, excess: Sequence[float], step: float, floor: float = 0.0
    ) -> "PriceVector":
        """Tatonnement step (paper eq. 6): ``p' = p + step * z(p)``.

        Prices are clamped at ``floor`` (non-negative) because a negative
        virtual price would invite infinite supply of a worthless class.
        """
        if len(excess) != len(self):
            raise ValueError("excess-demand length does not match price vector")
        if step <= 0:
            raise ValueError("adjustment step must be positive")
        return PriceVector(
            max(floor, p + step * z) for p, z in zip(self._prices, excess)
        )

    def scaled_class(self, index: int, factor: float, floor: float = 0.0) -> "PriceVector":
        """Return a copy with class ``index`` multiplied by ``factor``.

        This is the multiplicative update QA-NT applies on trading failures
        (``p_k += lambda*p_k`` on rejection, ``p_k -= s_ik*lambda*p_k`` on
        unsold supply).
        """
        if not 0 <= index < len(self):
            raise IndexError("class index %d out of range" % index)
        values = list(self._prices)
        values[index] = max(floor, values[index] * factor)
        return PriceVector(values)


def excess_demand(
    demand: QueryVector, supply: QueryVector
) -> Tuple[float, ...]:
    """Aggregate excess demand ``z(p) = d - s`` (Definition 2).

    Positive components mark under-supplied classes, negative components
    over-supplied ones; the result is a plain signed tuple.
    """
    return demand.signed_difference(supply)


def market_excess_demand(
    demands: Sequence[QueryVector],
    supply_sets: Sequence[SupplySet],
    prices: PriceVector,
    method: str = "greedy",
) -> Tuple[float, ...]:
    """Excess demand of a whole market at ``prices``.

    Each node's optimal supply at ``prices`` is computed via eq. 4 and
    aggregated; demand is taken as given (the paper's buyers want all their
    queries answered regardless of virtual prices).
    """
    if len(demands) != len(supply_sets):
        raise ValueError("need exactly one supply set per demanding node")
    from .supply import solve_supply

    supplies = [solve_supply(s, prices.values, method=method) for s in supply_sets]
    return excess_demand(aggregate(demands), aggregate(supplies))


def is_equilibrium(
    excess: Sequence[float], tolerance: float = EQUILIBRIUM_TOLERANCE
) -> bool:
    """Definition 3: is the market (approximately) cleared?

    Oversupply (negative excess) also violates exact equilibrium, but in the
    query market oversupply is harmless — it is spare capacity — so the test
    treats ``z_k <= tolerance`` as cleared, matching the paper's usage where
    equilibrium means all demanded queries are being evaluated.
    """
    return all(z <= tolerance for z in excess)
