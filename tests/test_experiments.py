"""Tests for the experiment drivers (exact paper numbers + scaled runs)."""

import math

import pytest

from repro.experiments.fig1 import lb_schedule, run_fig1
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5a, run_fig5c
from repro.experiments.reporting import format_series, format_table
from repro.experiments.table2 import performance_grade, run_table2
from repro.experiments.table3 import run_table3


class TestFig1ExactNumbers:
    """The introduction's example must reproduce to the millisecond."""

    def test_lb_average_response_is_662ms(self):
        assert run_fig1().lb_mean_response_ms == pytest.approx(662.5)

    def test_qa_average_response_is_431ms(self):
        assert run_fig1().qa_mean_response_ms == pytest.approx(431.25)

    def test_lb_busy_until_900_and_950(self):
        assert run_fig1().lb_busy_until_ms == (900.0, 950.0)

    def test_qa_busy_until_600_and_900(self):
        assert run_fig1().qa_busy_until_ms == (600.0, 900.0)

    def test_lb_is_54_percent_slower(self):
        assert run_fig1().slowdown == pytest.approx(0.536, abs=0.01)

    def test_lb_assignment_narrative(self):
        # q1->N1, q1->N2, three q2->N1, one q2->N2, two q2->N1 (Section 1).
        assert lb_schedule() == [0, 1, 0, 0, 0, 1, 0, 0]

    def test_qa_dominates_and_is_pareto_optimal(self):
        result = run_fig1()
        assert result.qa_dominates_lb
        assert result.qa_is_pareto_optimal

    def test_render_contains_headline_numbers(self):
        text = run_fig1().render()
        assert "662.5" in text and "431.25" in text


class TestFig2:
    def test_aggregate_demand_is_2_6(self):
        result = run_fig2()
        assert result.aggregate_demand.components == (2.0, 6.0)

    def test_consumption_totals_match_paper(self):
        result = run_fig2()
        # LB: N1 and N2 consumed 2 and 1 queries; QA: 5 and 1.
        assert result.lb_aggregate_consumption.total() == 3.0
        assert result.qa_aggregate_consumption.total() == 6.0

    def test_demand_outside_supply_region(self):
        assert run_fig2().demand_is_infeasible

    def test_qa_consumption_feasible(self):
        result = run_fig2()
        point = tuple(int(x) for x in result.qa_aggregate_consumption)
        assert point in result.supply_region


class TestFig3:
    def test_series_shapes(self):
        result = run_fig3(horizon_ms=20_000.0, seed=1)
        assert len(result.q1_per_bucket) == 40
        assert len(result.times_s) == 40

    def test_q1_roughly_twice_q2(self):
        result = run_fig3(horizon_ms=200_000.0, q1_peak_rate_per_ms=0.05, seed=2)
        q1, q2 = sum(result.q1_per_bucket), sum(result.q2_per_bucket)
        assert q1 == pytest.approx(2 * q2, rel=0.25)

    def test_render(self):
        text = run_fig3(horizon_ms=5_000.0).render()
        assert "Q1 arrivals" in text and "Q2 arrivals" in text


@pytest.mark.slow
class TestFig4Scaled:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4(num_nodes=20, horizon_ms=40_000.0, seed=0)

    def test_qant_normalised_is_one(self, result):
        assert result.normalised["qa-nt"] == pytest.approx(1.0)

    def test_market_mechanisms_beat_load_balancers(self, result):
        for fast in ("qa-nt", "greedy"):
            for slow in ("random", "round-robin"):
                assert result.normalised[fast] < result.normalised[slow]

    def test_random_and_round_robin_worst(self, result):
        worst_two = sorted(result.normalised, key=result.normalised.get)[-2:]
        assert set(worst_two) == {"random", "round-robin"}

    def test_qant_needs_most_messages(self, result):
        qant_messages = result.runs["qa-nt"].messages
        assert all(
            qant_messages >= run.messages for run in result.runs.values()
        )


@pytest.mark.slow
class TestFig5Scaled:
    def test_fig5a_overload_favours_qant(self):
        result = run_fig5a(
            loads=(0.5, 2.0), num_nodes=20, horizon_ms=15_000.0, seed=0
        )
        light, heavy = result.greedy_normalised
        # Light load: near parity (within 10%); overload: QA-NT wins.
        assert light == pytest.approx(1.0, abs=0.1)
        assert heavy > 1.0

    def test_fig5c_series_lengths_match(self):
        result = run_fig5c(num_nodes=20, horizon_ms=10_000.0, seed=0)
        assert (
            len(result.q1_arrivals)
            == len(result.q1_executed_qant)
            == len(result.q1_executed_greedy)
        )
        assert result.tracking_error(result.q1_arrivals) == 0.0


class TestTables:
    def test_performance_grades(self):
        assert performance_grade(1.0) == "very good"
        assert performance_grade(1.5) == "good"
        assert performance_grade(5.0) == "poor"

    @pytest.mark.slow
    def test_table2_static_columns(self):
        from repro.experiments.fig4 import run_fig4

        fig4 = run_fig4(num_nodes=20, horizon_ms=30_000.0, seed=0)
        table = run_table2(fig4=fig4)
        qant = table.row("qa-nt")
        assert qant.distributed and qant.respects_autonomy
        assert not qant.conflicts_with_dqo
        greedy = table.row("greedy")
        assert not greedy.respects_autonomy
        markov = table.row("markov")
        assert markov.workload_type == "static"
        assert not markov.distributed
        assert "mechanism" in table.render()

    def test_table3_measures_generated_world(self, tiny_zipf_world):
        result = run_table3(world=tiny_zipf_world)
        assert result.num_nodes == 12
        assert result.num_relations == 60
        assert result.num_classes == 8
        assert result.avg_mirrors > 1.0
        assert result.avg_best_execution_ms > 0
        assert "parameter" in result.render()

    def test_table3_requires_catalog(self, tiny_two_query_world):
        with pytest.raises(ValueError):
            run_table3(world=tiny_two_query_world)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(("a", "bb"), [(1, 2.5), ("x", "y")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_row_width_check(self):
        with pytest.raises(ValueError):
            format_table(("a",), [(1, 2)])

    def test_format_series(self):
        text = format_series("s", [1, 2], [3.0, 4.0])
        assert "3.000" in text

    def test_format_series_length_check(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1, 2])


class TestWorldBuilders:
    def test_two_query_world_eligibility(self, tiny_two_query_world):
        world = tiny_two_query_world
        q1_candidates = world.classes[0].candidate_nodes(world.placement)
        q2_candidates = world.classes[1].candidate_nodes(world.placement)
        assert len(q1_candidates) == world.num_nodes
        assert len(q2_candidates) == world.num_nodes // 2

    def test_two_query_world_cost_matrix(self, tiny_two_query_world):
        matrix = tiny_two_query_world.cost_matrix()
        # Q2 costs inf exactly on the odd nodes.
        for node_id, row in enumerate(matrix):
            assert not math.isinf(row[0])
            assert math.isinf(row[1]) == (node_id % 2 == 1)

    def test_capacity_positive(self, tiny_two_query_world):
        assert tiny_two_query_world.capacity_qpms([2.0, 1.0]) > 0

    def test_zipf_world_classes_have_candidates(self, tiny_zipf_world):
        world = tiny_zipf_world
        for qc in world.classes:
            assert qc.candidate_nodes(world.placement)
