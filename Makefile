# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install test typecheck bench bench-full examples artefacts clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Strict-type the wire-contract package (matches the CI step).
typecheck:
	mypy --strict src/repro/protocol

# Time the registered microbenchmark kernels (src/repro/bench/).
bench:
	$(PYTHON) -m repro bench

# Same, but gate against the committed PR baseline like CI does.
bench-gate:
	$(PYTHON) -m repro bench --baseline auto --fail-above 35

bench-full:
	REPRO_BENCH_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/overload_surge.py
	$(PYTHON) examples/zipf_federation.py
	$(PYTHON) examples/sqlite_federation.py
	$(PYTHON) examples/failure_recovery.py

# Regenerate every paper artefact via the CLI (scaled-down), archiving
# a versioned JSON result per experiment under benchmarks/results/.
artefacts:
	$(PYTHON) -m repro run all --scale small --json

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache \
	       benchmarks/results .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
