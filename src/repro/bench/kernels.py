"""Registered microbenchmark kernels for the simulation hot path.

Each kernel names one operation whose cost dominates some experiment
(solver calls, price-agent periods, vector arithmetic, event dispatch,
and one end-to-end federation cell), paired with a ``setup`` that builds
its fixtures *outside* the timed region and returns the no-argument
callable the harness times.

Fixtures are seeded so every run of the suite times the same workload —
artifact-to-artifact comparisons across commits measure the code, not the
random draw.  The fixture shapes (8 query classes, 10 s capacity budget,
200-request period stream) match the scale one server node sees per
period in the Figure 4/5 experiments.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict

__all__ = [
    "Kernel",
    "KERNELS",
    "register_kernel",
]


@dataclass(frozen=True)
class Kernel:
    """One registered benchmark: ``setup()`` returns the timed callable.

    ``wall_time`` switches the harness from process CPU time to wall
    clock for this kernel — required for multi-process kernels (the
    sharded federation), where the parent's CPU time misses everything
    the shard workers burn.
    """

    name: str
    description: str
    setup: Callable[[], Callable[[], object]]
    wall_time: bool = False


#: Registry in registration order (=: display order of every report).
KERNELS: Dict[str, Kernel] = {}


def register_kernel(
    name: str, description: str, wall_time: bool = False
) -> Callable[[Callable[[], Callable[[], object]]], Callable]:
    """Decorator registering ``setup`` under ``name``."""

    def decorate(setup: Callable[[], Callable[[], object]]) -> Callable:
        if name in KERNELS:
            raise ValueError("duplicate benchmark kernel %r" % name)
        KERNELS[name] = Kernel(
            name=name,
            description=description,
            setup=setup,
            wall_time=wall_time,
        )
        return setup

    return decorate


# Shared fixture scale: one node pricing 8 query classes over a 10-second
# capacity budget, as in the two-query-world experiments scaled up to a
# richer classification.
_NUM_CLASSES = 8
_CAPACITY_MS = 10_000.0
_SEED = 42


def _supply_fixture():
    """A seeded ``(supply_set, prices)`` pair shared by the solver kernels."""
    from ..core.supply import CapacitySupplySet

    rng = random.Random(_SEED)
    costs = [rng.uniform(50.0, 2000.0) for __ in range(_NUM_CLASSES)]
    prices = tuple(rng.uniform(0.5, 3.0) for __ in range(_NUM_CLASSES))
    return CapacitySupplySet(costs, _CAPACITY_MS), prices


@register_kernel(
    "qant.run_period",
    "QantPricingAgent full period over a 200-request stream (steady state)",
)
def _setup_qant_run_period() -> Callable[[], object]:
    from ..core.qant import QantParameters, QantPricingAgent

    supply_set, __ = _supply_fixture()
    rng = random.Random(_SEED + 1)
    requests = [rng.randrange(_NUM_CLASSES) for __ in range(200)]
    agent = QantPricingAgent(supply_set, QantParameters())
    agent.run_period(requests)  # warm: reach the steady-state price regime
    return lambda: agent.run_period(requests)


def _solver_kernel(method: str) -> Callable[[], object]:
    supply_set, prices = _supply_fixture()
    return lambda: supply_set.optimal_supply(prices, method)


@register_kernel(
    "supply.greedy", "CapacitySupplySet greedy solve, 8 classes (uncached)"
)
def _setup_supply_greedy() -> Callable[[], object]:
    return _solver_kernel("greedy")


@register_kernel(
    "supply.fractional",
    "CapacitySupplySet fractional solve, 8 classes (uncached)",
)
def _setup_supply_fractional() -> Callable[[], object]:
    return _solver_kernel("fractional")


@register_kernel(
    "supply.proportional",
    "CapacitySupplySet proportional solve, 8 classes (uncached)",
)
def _setup_supply_proportional() -> Callable[[], object]:
    return _solver_kernel("proportional")


@register_kernel(
    "supply.exact", "CapacitySupplySet exact DP solve, 8 classes (uncached)"
)
def _setup_supply_exact() -> Callable[[], object]:
    return _solver_kernel("exact")


@register_kernel(
    "vector.arith", "QueryVector add/sub/scale chain, 8 components"
)
def _setup_vector_arith() -> Callable[[], object]:
    from ..core.vectors import QueryVector

    rng = random.Random(_SEED + 2)
    left = QueryVector([rng.uniform(0.0, 50.0) for __ in range(_NUM_CLASSES)])
    right = QueryVector([rng.uniform(0.0, 50.0) for __ in range(_NUM_CLASSES)])
    return lambda: ((left + right) - right) * 2.0


@register_kernel(
    "vector.aggregate", "aggregate() over 100 QueryVectors of 8 components"
)
def _setup_vector_aggregate() -> Callable[[], object]:
    from ..core.vectors import QueryVector, aggregate

    rng = random.Random(_SEED + 3)
    vectors = [
        QueryVector([rng.uniform(0.0, 50.0) for __ in range(_NUM_CLASSES)])
        for __ in range(100)
    ]
    return lambda: aggregate(vectors)


@register_kernel(
    "qant.period_tick",
    "Batched period boundary over 100 QA-NT agents (QantPeriodEngine "
    "advance pair, alternating free capacity so every row re-solves)",
)
def _setup_qant_period_tick() -> Callable[[], object]:
    from ..core.period_engine import QantPeriodEngine
    from ..core.qant import QantParameters, QantPricingAgent
    from ..core.supply import CapacitySupplySet

    rng = random.Random(_SEED + 4)
    agents = []
    allowances = []
    for __ in range(100):
        # ~10% inf costs model the classes a node holds no relations for,
        # exercising the engine's invalid-class masking.
        costs = [
            math.inf if rng.random() < 0.1 else rng.uniform(50.0, 2000.0)
            for __ in range(_NUM_CLASSES)
        ]
        if all(math.isinf(c) for c in costs):
            costs[0] = rng.uniform(50.0, 2000.0)
        agents.append(
            QantPricingAgent(
                CapacitySupplySet(costs, _CAPACITY_MS), QantParameters()
            )
        )
        allowances.append(_CAPACITY_MS)
    engine = QantPeriodEngine(agents, allowances, can_defer=False)
    caps_full = list(allowances)
    caps_busy = [0.75 * c for c in allowances]
    full = lambda: caps_full  # noqa: E731
    busy = lambda: caps_busy  # noqa: E731
    # Warm past the decay transient (prices settle at the floor within a
    # few ticks) so every timed op measures the same stationary workload:
    # a full gather + decay scan + solve of all 100 rows per boundary
    # (the alternating capacities defeat the row-level plan cache).
    for __ in range(300):
        engine.advance(True, full)
        engine.advance(True, busy)

    def run_once() -> int:
        engine.advance(True, full)
        engine.advance(True, busy)
        return engine.stats.ticks

    return run_once


@register_kernel(
    "sim.event_throughput",
    "Simulator schedule + drain of 1,000 events (fresh engine per op)",
)
def _setup_sim_event_throughput() -> Callable[[], object]:
    from ..sim.engine import Simulator

    # Deterministic pseudo-shuffled delays exercise real heap reordering
    # rather than the sorted-input best case.
    delays = [float((i * 7919) % 1000) for i in range(1000)]

    def noop() -> None:
        return None

    def run_once() -> int:
        simulator = Simulator()
        schedule = simulator.schedule
        for delay in delays:
            schedule(delay, noop)
        simulator.run()
        return simulator.events_processed

    return run_once


@register_kernel(
    "net.broadcast",
    "Network round_trip_ms over a 100-peer request-for-bid fan-out",
)
def _setup_net_broadcast() -> Callable[[], object]:
    from ..sim.engine import Simulator
    from ..sim.network import Network

    network = Network(Simulator(), seed=_SEED)
    return lambda: network.round_trip_ms(100)


@register_kernel(
    "proto.codec",
    "protocol encode+decode round trip over a 200-message market mix "
    "(bid/quote/refusal/assign/completion/tick)",
)
def _setup_proto_codec() -> Callable[[], object]:
    from ..protocol import (
        AssignQuery,
        BidRequest,
        CompletionReport,
        PeriodTick,
        Quote,
        Refusal,
        decode,
        encode,
    )

    # A period's worth of wire traffic as QA-NT produces it: every query
    # pays a bid fan-out, most get quotes and a confirm + completion,
    # the rest a refusal; one tick closes the period.
    rng = random.Random(_SEED + 5)
    messages = []
    for qid in range(40):
        class_index = rng.randrange(_NUM_CLASSES)
        messages.append(
            BidRequest(qid=qid, class_index=class_index, origin_node=-1)
        )
        if rng.random() < 0.8:
            node_id = rng.randrange(20)
            started = rng.uniform(0.0, 10_000.0)
            messages.append(
                Quote(
                    qid=qid,
                    node_id=node_id,
                    class_index=class_index,
                    estimated_completion_ms=rng.uniform(1.0, 5_000.0),
                )
            )
            messages.append(
                AssignQuery(
                    qid=qid, node_id=node_id, class_index=class_index
                )
            )
            messages.append(
                CompletionReport(
                    qid=qid,
                    node_id=node_id,
                    class_index=class_index,
                    started_ms=started,
                    finished_ms=started + rng.uniform(1.0, 2_000.0),
                )
            )
        else:
            messages.append(
                Refusal(
                    qid=qid,
                    node_id=rng.randrange(20),
                    class_index=class_index,
                )
            )
    while len(messages) < 200:
        messages.append(
            PeriodTick(period_index=len(messages), period_ms=500.0)
        )

    def run_once() -> int:
        total = 0
        for message in messages:
            total += len(encode(message))
            decode(encode(message))
        return total

    return run_once


@register_kernel(
    "e2e.federation_sweep",
    "End-to-end fig5-style cell pair: qa-nt + greedy on a 20-node world, "
    "1.5x load sinusoid, 5 s horizon",
)
def _setup_e2e_federation_sweep() -> Callable[[], object]:
    from ..allocation import GreedyAllocator, QantAllocator
    from ..experiments.setups import (
        run_mechanism,
        sinusoid_trace_for_load,
        two_query_world,
    )
    from ..sim import FederationConfig

    world = two_query_world(num_nodes=20, seed=0)
    trace = sinusoid_trace_for_load(
        world,
        load_fraction=1.5,
        horizon_ms=5_000.0,
        frequency_hz=0.05,
        seed=10,
    )
    pair = (("qa-nt", QantAllocator), ("greedy", GreedyAllocator))

    def run_once():
        return [
            run_mechanism(
                world, trace, name, factory, FederationConfig(seed=2)
            ).metrics_dict()
            for name, factory in pair
        ]

    return run_once


@register_kernel(
    "fed.fig5a_chaos_short",
    "Fig5a-style cell pair under active faults (5% drops, spikes, "
    "half-partition, 2/min churn) on a 20-node world, 2 s horizon",
)
def _setup_fed_fig5a_chaos_short() -> Callable[[], object]:
    from ..allocation import GreedyAllocator, QantAllocator
    from ..experiments.setups import (
        run_mechanism,
        sinusoid_trace_for_load,
        two_query_world,
    )
    from ..sim import FederationConfig
    from ..sim.faults import FaultSpec, half_partition

    world = two_query_world(num_nodes=20, seed=0)
    trace = sinusoid_trace_for_load(
        world,
        load_fraction=1.5,
        horizon_ms=2_000.0,
        frequency_hz=0.05,
        seed=10,
    )
    spec = FaultSpec(
        drop_probability=0.05,
        spike_probability=0.05,
        partitions=(
            half_partition(world.placement.node_ids, 800.0, 1_200.0),
        ),
        crash_rate_per_min=2.0,
        fault_seed=7,
    )
    pair = (("qa-nt", QantAllocator), ("greedy", GreedyAllocator))

    def run_once():
        return [
            run_mechanism(
                world,
                trace,
                name,
                factory,
                FederationConfig(seed=2, faults=spec),
            ).metrics_dict()
            for name, factory in pair
        ]

    return run_once


@register_kernel(
    "fed.fig5a_paper_short",
    "Paper-scale fig5a cell pair: qa-nt + greedy on a 100-node world, "
    "1.5x load sinusoid, 2 s horizon (the PR 3 optimisation target)",
)
def _setup_fed_fig5a_paper_short() -> Callable[[], object]:
    from ..allocation import GreedyAllocator, QantAllocator
    from ..experiments.setups import (
        run_mechanism,
        sinusoid_trace_for_load,
        two_query_world,
    )
    from ..sim import FederationConfig

    # Same fixture as tests/golden/fig5a_paper_short_seed0.json: the
    # 100-node short-horizon slice of the fig5a qa-nt cell whose full
    # 20 s version is the paper-scale wall-clock benchmark.
    world = two_query_world(num_nodes=100, seed=0)
    trace = sinusoid_trace_for_load(
        world,
        load_fraction=1.5,
        horizon_ms=2_000.0,
        frequency_hz=0.05,
        seed=10,
    )
    pair = (("qa-nt", QantAllocator), ("greedy", GreedyAllocator))

    def run_once():
        return [
            run_mechanism(
                world, trace, name, factory, FederationConfig(seed=2)
            ).metrics_dict()
            for name, factory in pair
        ]

    return run_once

@register_kernel(
    "fed.fig5a_1000node",
    "Scaling-curve cell pair: qa-nt + greedy on a 1,000-node world, "
    "1.5x load sinusoid quantised to 25 ms arrival ticks, 2 s horizon "
    "(the market-tick batch dispatcher's showcase)",
)
def _setup_fed_fig5a_1000node() -> Callable[[], object]:
    from ..experiments.scaling import scaling_cell

    # Same fixture as the `scaling` scenario's 1,000-node paper point
    # (seed 0, point_index 0), cut to a 2 s horizon so one call stays
    # test-sized: ~3,900 queries negotiated against 1,000-candidate
    # fan-outs, almost all through the vectorised batch path.
    def run_once():
        return [
            scaling_cell(name, 1000, 0, 0, horizon_ms=2_000.0)
            for name in ("qa-nt", "greedy")
        ]

    return run_once


@register_kernel(
    "fed.fig5a_sharded",
    "Sharded cell pair: qa-nt + greedy on the same 1,000-node fixture as "
    "fed.fig5a_1000node, run through a 4-shard forked ShardedFederation "
    "(wall clock; compare against fed.fig5a_1000node for the speedup)",
    wall_time=True,
)
def _setup_fed_fig5a_sharded() -> Callable[[], object]:
    from ..experiments.scaling import quantise_trace
    from ..experiments.setups import sinusoid_trace_for_load, two_query_world
    from ..sim import FederationConfig, ShardedFederation

    # The exact fed.fig5a_1000node fixture (world seed 0, trace seed 10
    # on the 25 ms grid, federation seed 2) so the two kernels' ratio is
    # the sharding speedup.  The shard pool forks once here, outside the
    # timed region, matching how the scaling sweep amortises it.
    world = two_query_world(num_nodes=1000, seed=0)
    trace = quantise_trace(
        sinusoid_trace_for_load(
            world,
            load_fraction=1.5,
            horizon_ms=2_000.0,
            frequency_hz=0.05,
            seed=10,
        ),
        25.0,
    )
    federation = ShardedFederation(
        world.specs,
        world.placement,
        world.classes,
        world.cost_model,
        config=FederationConfig(seed=2),
        shards=4,
        mode="fork",
    )

    def run_once():
        return [
            federation.run(trace, name).payload()
            for name in ("qa-nt", "greedy")
        ]

    run_once.child_peak_kb = federation.transport.child_peak_kb
    run_once.shard_self_time_s = federation.shard_self_time_s
    return run_once


@register_kernel(
    "fed.fig5a_localmarket",
    "Local-market cell pair: the fed.fig5a_sharded fixture with "
    "shard-local market planes (market='local', R=4, 4 forked shards) — "
    "the coordinator keeps only the residual plane and one-way frame "
    "routing, so the serial market bottleneck disappears (wall clock; "
    "compare against fed.fig5a_sharded for the local-plane speedup)",
    wall_time=True,
)
def _setup_fed_fig5a_localmarket() -> Callable[[], object]:
    from ..experiments.scaling import quantise_trace
    from ..experiments.setups import sinusoid_trace_for_load, two_query_world
    from ..sim import FederationConfig, ShardedFederation

    # Identical fixture to fed.fig5a_sharded (world seed 0, trace seed 10
    # on the 25 ms grid, federation seed 2): the two kernels' ratio is
    # purely the market-plane layout.  On this two-class world the whole
    # market is one affinity component, so it runs as the coordinator's
    # in-process residual plane — the win is the removed per-tick
    # codec/IPC barriers, which is why the kernel speeds up even on a
    # single core; affinity-rich catalogs add multi-core shard overlap
    # on top (see the scaling-reconcile scenario).
    world = two_query_world(num_nodes=1000, seed=0)
    trace = quantise_trace(
        sinusoid_trace_for_load(
            world,
            load_fraction=1.5,
            horizon_ms=2_000.0,
            frequency_hz=0.05,
            seed=10,
        ),
        25.0,
    )
    federation = ShardedFederation(
        world.specs,
        world.placement,
        world.classes,
        world.cost_model,
        config=FederationConfig(seed=2),
        shards=4,
        mode="fork",
        market="local",
        reconcile_interval=4,
    )

    def run_once():
        return [
            federation.run(trace, name).payload()
            for name in ("qa-nt", "greedy")
        ]

    run_once.child_peak_kb = federation.transport.child_peak_kb
    run_once.shard_self_time_s = federation.shard_self_time_s
    return run_once
