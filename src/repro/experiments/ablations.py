"""Ablations A1–A4 — the design choices DESIGN.md calls out.

* **A1 (lambda)** — the price-adjustment coefficient trades convergence
  speed against accuracy (Section 3.3): measured on the centralised
  tatonnement umpire (iterations to equilibrium, residual excess) and on
  QA-NT end-to-end response time.
* **A2 (period length T)** — larger T helps static load, hurts dynamic
  (Section 5.1): QA-NT response time across T values on slow and fast
  sinusoids.
* **A3 (partial adoption)** — Section 4 claims QA-NT still helps when
  only a subset of nodes adopt it: response time vs adoption fraction.
* **A4 (Markov vs QA-NT, static load)** — the paper grades the
  Markov/queueing allocator "excellent" on the static workloads it
  requires and says QA-NT "comes close": both are measured on a static
  Poisson workload.
* **A5 (supply rounding)** — the integer-rounding error the paper blames
  for Greedy's small-load advantage: QA-NT with corner/integer supply vs
  the smooth proportional solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..allocation import GreedyAllocator, MarkovAllocator, QantAllocator
from ..core import (
    CapacitySupplySet,
    QantParameters,
    QueryVector,
    TatonnementUmpire,
)
from ..sim import FederationConfig
from ..workload import PoissonArrivals, build_trace
from .reporting import format_series, format_table
from .setups import (
    World,
    run_mechanisms,
    sinusoid_trace_for_load,
    two_query_world,
)

__all__ = [
    "LambdaSweepResult",
    "PeriodSweepResult",
    "PartialAdoptionResult",
    "StaticWorkloadResult",
    "RoundingAblationResult",
    "run_lambda_sweep",
    "run_period_sweep",
    "run_partial_adoption",
    "run_static_markov",
    "run_rounding_ablation",
]


# --------------------------------------------------------------------------- A1


@dataclass
class LambdaSweepResult:
    """Tatonnement convergence and QA-NT response per lambda."""

    lambdas: List[float]
    tatonnement_iterations: List[int]
    tatonnement_residual: List[float]
    qant_response_ms: List[float]

    def render(self) -> str:
        """All three series as a table."""
        return format_table(
            ("lambda", "umpire iterations", "residual excess", "qa-nt response (ms)"),
            zip(
                self.lambdas,
                self.tatonnement_iterations,
                self.tatonnement_residual,
                self.qant_response_ms,
            ),
        )


def run_lambda_sweep(
    lambdas: Sequence[float] = (0.001, 0.005, 0.02, 0.05),
    num_nodes: int = 30,
    horizon_ms: float = 40_000.0,
    load_fraction: float = 1.2,
    seed: int = 0,
) -> LambdaSweepResult:
    """Ablation A1: sweep the price-adjustment coefficient.

    The centralised umpire starts from deliberately skewed prices so the
    market needs real adjustment; the paper's trade-off shows cleanly:
    larger lambda clears in fewer iterations, until it overshoots and
    oscillates forever (the "decreased accuracy" failure mode).
    """
    from ..core.market import PriceVector

    # Centralised umpire on a small heterogeneous market.
    supply_sets = [
        CapacitySupplySet([800.0, 1600.0], 10_000.0),
        CapacitySupplySet([1600.0, 800.0], 10_000.0),
        CapacitySupplySet([1000.0, 1000.0], 10_000.0),
    ]
    demands = [
        QueryVector((6, 2)),
        QueryVector((4, 4)),
        QueryVector((2, 6)),
    ]
    skewed = PriceVector([1.0, 0.05])
    iterations, residuals = [], []
    for lam in lambdas:
        umpire = TatonnementUmpire(
            step=lam, max_iterations=5000, supply_method="proportional"
        )
        result = umpire.find_equilibrium(
            demands, supply_sets, initial_prices=skewed
        )
        iterations.append(result.iterations)
        residuals.append(max(0.0, max(result.excess)))

    world = two_query_world(num_nodes=num_nodes, seed=seed)
    trace = sinusoid_trace_for_load(
        world, load_fraction=load_fraction, horizon_ms=horizon_ms, seed=seed + 1
    )
    responses = []
    for lam in lambdas:
        runs = run_mechanisms(
            world,
            trace,
            mechanisms={
                "qa-nt": lambda lam=lam: QantAllocator(
                    parameters=QantParameters(adjustment=lam)
                )
            },
            config=FederationConfig(seed=seed + 2),
        )
        responses.append(runs["qa-nt"].mean_response_ms)
    return LambdaSweepResult(
        lambdas=list(lambdas),
        tatonnement_iterations=iterations,
        tatonnement_residual=residuals,
        qant_response_ms=responses,
    )


# --------------------------------------------------------------------------- A2


@dataclass
class PeriodSweepResult:
    """QA-NT response per period length, on slow and fast dynamics."""

    periods_ms: List[float]
    response_slow_dynamics_ms: List[float]
    response_fast_dynamics_ms: List[float]

    def render(self) -> str:
        """Both series as a table."""
        return format_table(
            ("T (ms)", "response @0.05Hz (ms)", "response @1Hz (ms)"),
            zip(
                self.periods_ms,
                self.response_slow_dynamics_ms,
                self.response_fast_dynamics_ms,
            ),
        )


def run_period_sweep(
    periods_ms: Sequence[float] = (125.0, 250.0, 500.0, 1000.0, 2000.0),
    num_nodes: int = 30,
    horizon_ms: float = 40_000.0,
    load_fraction: float = 1.2,
    seed: int = 0,
) -> PeriodSweepResult:
    """Ablation A2: sweep the market period length T."""
    world = two_query_world(num_nodes=num_nodes, seed=seed)
    slow, fast = [], []
    for frequency_hz, sink in ((0.05, slow), (1.0, fast)):
        trace = sinusoid_trace_for_load(
            world,
            load_fraction=load_fraction,
            horizon_ms=horizon_ms,
            frequency_hz=frequency_hz,
            seed=seed + 1,
        )
        for period in periods_ms:
            runs = run_mechanisms(
                world,
                trace,
                mechanisms={"qa-nt": QantAllocator},
                config=FederationConfig(period_ms=period, seed=seed + 2),
            )
            sink.append(runs["qa-nt"].mean_response_ms)
    return PeriodSweepResult(
        periods_ms=list(periods_ms),
        response_slow_dynamics_ms=slow,
        response_fast_dynamics_ms=fast,
    )


# --------------------------------------------------------------------------- A3


@dataclass
class PartialAdoptionResult:
    """Response time as the QA-NT adoption fraction grows."""

    adoption_fractions: List[float]
    response_ms: List[float]

    def render(self) -> str:
        """The adoption series as text."""
        return format_series(
            "qa-nt response (ms) vs adoption fraction",
            self.adoption_fractions,
            self.response_ms,
        )

    @property
    def monotone_gain(self) -> bool:
        """True iff full adoption beats zero adoption."""
        return self.response_ms[-1] <= self.response_ms[0]


def run_partial_adoption(
    adoption_fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    num_nodes: int = 40,
    horizon_ms: float = 40_000.0,
    load_fraction: float = 1.2,
    seed: int = 0,
) -> PartialAdoptionResult:
    """Ablation A3: only a subset of nodes runs QA-NT.

    Non-adopting nodes always offer (greedy behaviour), so fraction 0.0
    degenerates to Greedy and 1.0 to full QA-NT.
    """
    world = two_query_world(num_nodes=num_nodes, seed=seed)
    trace = sinusoid_trace_for_load(
        world, load_fraction=load_fraction, horizon_ms=horizon_ms, seed=seed + 1
    )
    responses = []
    for fraction in adoption_fractions:
        adopters = set(range(int(round(fraction * num_nodes))))
        runs = run_mechanisms(
            world,
            trace,
            mechanisms={
                "qa-nt": lambda adopters=adopters: QantAllocator(
                    adopters=adopters
                )
            },
            config=FederationConfig(seed=seed + 2),
        )
        responses.append(runs["qa-nt"].mean_response_ms)
    return PartialAdoptionResult(
        adoption_fractions=list(adoption_fractions), response_ms=responses
    )


# --------------------------------------------------------------------------- A4


@dataclass
class StaticWorkloadResult:
    """Mechanism responses on a static Poisson workload."""

    response_ms: Dict[str, float]

    def render(self) -> str:
        """Per-mechanism responses as a table."""
        return format_table(
            ("mechanism", "mean response (ms)"),
            sorted(self.response_ms.items()),
        )

    @property
    def qant_vs_markov(self) -> float:
        """QA-NT's response relative to Markov's (paper: 'comes close')."""
        return self.response_ms["qa-nt"] / self.response_ms["markov"]


def run_static_markov(
    num_nodes: int = 30,
    horizon_ms: float = 60_000.0,
    load_fraction: float = 0.7,
    seed: int = 0,
) -> StaticWorkloadResult:
    """Ablation A4: static load, Markov vs QA-NT vs Greedy."""
    world = two_query_world(num_nodes=num_nodes, seed=seed)
    capacity = world.capacity_qpms([2.0, 1.0])
    rate_q1 = load_fraction * capacity * 2.0 / 3.0
    rate_q2 = load_fraction * capacity / 3.0
    trace = build_trace(
        {0: PoissonArrivals(rate_q1), 1: PoissonArrivals(rate_q2)},
        horizon_ms=horizon_ms,
        origin_nodes=world.placement.node_ids,
        seed=seed + 1,
    )
    runs = run_mechanisms(
        world,
        trace,
        mechanisms={
            "qa-nt": QantAllocator,
            "greedy": GreedyAllocator,
            "markov": lambda: MarkovAllocator([rate_q1, rate_q2]),
        },
        config=FederationConfig(seed=seed + 2),
    )
    return StaticWorkloadResult(
        response_ms={name: run.mean_response_ms for name, run in runs.items()}
    )


# --------------------------------------------------------------------------- A5


@dataclass
class RoundingAblationResult:
    """QA-NT response under different supply solvers, light vs heavy load."""

    response_ms: Dict[str, Dict[str, float]]

    def render(self) -> str:
        """Solver x load grid as a table."""
        solvers = sorted(self.response_ms)
        loads = sorted(self.response_ms[solvers[0]])
        rows = [
            (solver, *[self.response_ms[solver][load] for load in loads])
            for solver in solvers
        ]
        return format_table(("supply solver", *loads), rows)


def run_rounding_ablation(
    num_nodes: int = 30,
    horizon_ms: float = 40_000.0,
    seed: int = 0,
) -> RoundingAblationResult:
    """Ablation A5: corner/integer supply vs smooth proportional supply.

    The paper attributes Greedy's sub-75 %-load advantage to QA-NT's
    integer rounding of small fractional equilibrium supplies; comparing
    the "greedy" (integer corner, no carry) and "proportional" (smooth +
    carry) solvers quantifies that design choice.
    """
    world = two_query_world(num_nodes=num_nodes, seed=seed)
    configs = {
        "greedy-int": QantParameters(supply_method="greedy", carry_over=False),
        "greedy-carry": QantParameters(supply_method="greedy-fractional", carry_over=True),
        "proportional": QantParameters(supply_method="proportional", carry_over=True),
    }
    results: Dict[str, Dict[str, float]] = {name: {} for name in configs}
    for load_name, load in (("light (50%)", 0.5), ("heavy (150%)", 1.5)):
        trace = sinusoid_trace_for_load(
            world, load_fraction=load, horizon_ms=horizon_ms, seed=seed + 1
        )
        for name, params in configs.items():
            runs = run_mechanisms(
                world,
                trace,
                mechanisms={
                    "qa-nt": lambda params=params: QantAllocator(parameters=params)
                },
                config=FederationConfig(seed=seed + 2, drain_ms=120_000.0),
            )
            results[name][load_name] = runs["qa-nt"].mean_response_ms
    return RoundingAblationResult(response_ms=results)
