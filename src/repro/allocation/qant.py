"""QA-NT as a federation allocation mechanism.

Wires one :class:`repro.core.qant.QantPricingAgent` into every (adopting)
server node and drives the paper's negotiation: the client asks the
candidate servers, each offers iff its remaining supply vector covers the
query's class, and the client accepts the best offer (earliest estimated
completion).  If every server refuses, the query re-enters next period's
demand — exactly step 4 and the resubmission rule of Section 3.3.

Two paper-motivated options are exposed:

* ``adopters`` — run QA-NT on only a subset of nodes (Section 4 claims the
  mechanism still helps when partially deployed; ablation A3).  Non-adopting
  nodes behave greedily: they always offer.
* ``activation_threshold`` — Section 5.1 suggests that a deployment
  "properly track query prices but only use them to calculate the nodes'
  query supply vectors if they are above a specific threshold".  Each node
  therefore runs the full price dynamics at all times, but *enforces* its
  supply vector (i.e. actually refuses requests) only while one of its
  prices exceeds the threshold — high prices are the decentralised
  overload signal.  Below the threshold a node accepts any feasible
  request, eliminating the integer-rounding penalty at light load the
  paper discusses.  Pass ``None`` to always enforce (the raw Section 3.3
  algorithm, used by the rounding ablation).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Set

from ..core.classification import (
    PrivatelyClassifiedAgent,
    cost_band_classification,
)
from ..core.qant import QantParameters, QantPricingAgent
from ..core.supply import CapacitySupplySet
from ..query.model import Query
from .base import Allocator, AssignmentDecision

__all__ = [
    "QantAllocator",
]


class QantAllocator(Allocator):
    """The paper's decentralised query-market mechanism."""

    name = "qa-nt"
    respects_autonomy = True
    distributed = True

    #: Default per-node price level above which supply vectors are
    #: enforced: with the default lambda of 0.1, a class reaches it after
    #: roughly seven net refusals — a sustained-overload signal.
    DEFAULT_ACTIVATION_THRESHOLD = 2.0

    #: Default backlog allowance: the period length plus twice the node's
    #: largest class cost.  One max-cost of headroom guarantees an idle
    #: node can always admit its biggest query (otherwise integer supply
    #: rounds long queries to zero — the Section 5.1 rounding issue); the
    #: second softens retry quantisation under bursty loads.  Measured in
    #: the allowance ablation.
    DEFAULT_ALLOWANCE_FACTOR = 2.0

    def __init__(
        self,
        parameters: Optional[QantParameters] = None,
        adopters: Optional[Iterable[int]] = None,
        activation_threshold: Optional[float] = DEFAULT_ACTIVATION_THRESHOLD,
        queue_allowance_ms: Optional[float] = None,
        allowance_factor: float = DEFAULT_ALLOWANCE_FACTOR,
        max_offer_premium: Optional[float] = None,
        private_buckets: Optional[int] = None,
    ):
        """``queue_allowance_ms`` bounds each node's committed backlog: a
        node sells supply only up to ``allowance - current_backlog`` per
        period.  The default allowance is the period length plus the
        node's largest class cost, which guarantees an idle node can
        always admit at least one query of any class it holds data for —
        otherwise per-period integer supply rounds long queries to zero
        (the paper's Section 5.1 rounding discussion)."""
        super().__init__()
        self._params = parameters or QantParameters()
        self._adopters: Optional[Set[int]] = (
            set(adopters) if adopters is not None else None
        )
        if allowance_factor <= 0:
            raise ValueError("allowance factor must be positive")
        self._activation_threshold = activation_threshold
        self._queue_allowance_ms = queue_allowance_ms
        self._allowance_factor = allowance_factor
        self._max_offer_premium = max_offer_premium
        if private_buckets is not None and private_buckets <= 0:
            raise ValueError("private_buckets must be positive")
        #: When set, every node prices its *own* coarse classification of
        #: the query classes (Section 3.3's autonomy-preserving option)
        #: with this many cost bands, instead of the global class set.
        self._private_buckets = private_buckets
        self._agents: Dict[int, object] = {}
        self._allowances: Dict[int, float] = {}

    @property
    def agents(self) -> Dict[int, QantPricingAgent]:
        """The per-node pricing agents (adopting nodes only)."""
        return self._agents

    def _is_adopter(self, node_id: int) -> bool:
        return self._adopters is None or node_id in self._adopters

    def _after_bind(self) -> None:
        for node_id, node in self.context.nodes.items():
            if not self._is_adopter(node_id):
                continue
            if self._queue_allowance_ms is not None:
                allowance = self._queue_allowance_ms
            else:
                max_cost = max(
                    (c for c in node.class_costs_ms if not math.isinf(c)),
                    default=0.0,
                )
                allowance = (
                    self.context.period_ms + self._allowance_factor * max_cost
                )
            self._allowances[node_id] = allowance
            if self._private_buckets is None:
                self._agents[node_id] = QantPricingAgent(
                    node.make_supply_set(self.context.period_ms),
                    parameters=self._params,
                )
            else:
                scheme = cost_band_classification(
                    node.class_costs_ms, self._private_buckets
                )
                self._agents[node_id] = PrivatelyClassifiedAgent(
                    scheme,
                    node.class_costs_ms,
                    self.context.period_ms,
                    parameters=self._params,
                )
        self.on_period_start()

    def on_period_start(self) -> None:
        """Step 2 of QA-NT at every node: re-solve eq. 4.

        The supply set is rebuilt each period with the node's *free*
        backlog allowance (allowance minus outstanding queued work), so a
        node with a committed queue does not sell time it no longer has,
        while an idle node can always admit its largest query.
        """
        nodes = self.context.nodes
        allowances = self._allowances
        for node_id, agent in self._agents.items():
            node = nodes[node_id]
            if agent.in_period:
                # Steps 12-14: unsold supply lowers prices before the new
                # period's supply vector is computed.
                agent.end_period()
            free_ms = max(0.0, allowances[node_id] - node.current_load_ms())
            if isinstance(agent, PrivatelyClassifiedAgent):
                agent.rebind_capacity(free_ms)
            else:
                supply_set = agent.supply_set
                if isinstance(supply_set, CapacitySupplySet):
                    # Rebind in place of reconstructing: the cost row never
                    # changes period to period, only the free capacity does.
                    supply_set = supply_set.with_capacity(free_ms)
                else:
                    supply_set = CapacitySupplySet(node.class_costs_ms, free_ms)
                agent.rebind_supply_set(supply_set)
            agent.begin_period()

    def assign(self, query: Query) -> AssignmentDecision:
        candidates = self.context.available_candidates(query.class_index)
        if not candidates:
            return AssignmentDecision(node_id=None)
        delay, messages = self._probe_all(candidates)

        offers = []
        agents = self._agents
        class_index = query.class_index
        for node_id in candidates:
            agent = agents.get(node_id)
            if agent is None:
                # Non-adopting node: always offers (greedy behaviour).
                offers.append(node_id)
                continue
            # The price dynamics run unconditionally (refusals must keep
            # adjusting prices so the overload signal can form)...
            offering = agent.would_offer(class_index)
            # ...but the supply vector is only *enforced* while the node's
            # prices signal overload (Section 5.1 threshold rule).
            if offering or not self._node_enforcing(agent):
                offers.append(node_id)
        offers = self._filter_premium(offers, candidates, class_index)
        if not offers:
            return AssignmentDecision(
                node_id=None, delay_ms=delay, messages=messages
            )
        chosen = self._best_offer(offers, class_index)
        agent = agents.get(chosen)
        if agent is not None and agent.remaining_supply[class_index] >= 1:
            agent.accept(class_index)
        return AssignmentDecision(chosen, delay_ms=delay, messages=messages)

    # -- internals ------------------------------------------------------------------

    def _best_offer(self, offers, class_index: int) -> int:
        """Pick the offering node with the earliest estimated completion."""
        nodes = self.context.nodes
        return min(
            offers,
            key=lambda nid: (
                nodes[nid].estimated_completion_ms(class_index),
                nid,
            ),
        )

    def _filter_premium(self, offers, candidates, class_index: int):
        """Drop offers whose execution time is beyond the premium cap.

        The client already holds every candidate's execution-time estimate
        from the probe round; declining an offer more than
        ``max_offer_premium`` times the class's best estimate and retrying
        next period is preferable to committing to a far-inferior mirror.
        """
        if self._max_offer_premium is None or not offers:
            return offers
        nodes = self.context.nodes
        # One estimate per candidate, reused for both the best-estimate
        # baseline and the per-offer comparison.
        exec_ms = {
            nid: nodes[nid].execution_time_ms(class_index)
            for nid in candidates
        }
        cap = min(exec_ms.values()) * self._max_offer_premium
        return [nid for nid in offers if exec_ms[nid] <= cap]

    def _node_enforcing(self, agent: QantPricingAgent) -> bool:
        """Whether this node currently enforces its supply vector.

        Decentralised: the decision uses only the node's own prices.
        """
        if self._activation_threshold is None:
            return True
        return agent.max_price >= self._activation_threshold
