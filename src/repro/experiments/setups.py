"""Shared experiment worlds and runners (paper Section 5.1 setups).

Two worlds cover every simulated experiment:

* :func:`two_query_world` — the dynamic-workload setup: queries Q1
  (1,000 ms average) evaluable by *all* nodes and Q2 (500 ms) evaluable by
  *half* of them, on a heterogeneous federation (Table 3 machine ranges);
* :func:`zipf_world` — the heterogeneous-workload setup: the full Table 3
  synthetic catalog, 100 query classes of 0–49 joins, calibrated to a
  2,000 ms average best-node execution time.

Both return a :class:`World` bundling everything the figure drivers need,
and :func:`run_mechanisms` executes a list of allocation mechanisms on the
same trace with fresh federations, returning per-mechanism metrics.

Experiment sizes are parameters everywhere: the defaults match the paper
(100 nodes, 10,000 queries) and the test-suite/benchmarks pass smaller
"fast" values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..allocation import (
    Allocator,
    BnqrdAllocator,
    GreedyAllocator,
    QantAllocator,
    RandomAllocator,
    RoundRobinAllocator,
    TwoRandomProbesAllocator,
)
from ..catalog import (
    Catalog,
    CatalogParameters,
    Placement,
    generate_catalog_and_placement,
)
from ..query import (
    MachineSpec,
    QueryClass,
    QueryClassParameters,
    RelativeSpeedCostModel,
    calibrated_cost_model,
    generate_query_classes,
)
from ..sim import (
    FederationConfig,
    MetricsCollector,
    build_federation,
    generate_machine_specs,
    system_capacity_qpms,
)
from ..workload import WorkloadEvent, two_class_sinusoid_trace, zipf_trace

__all__ = [
    "World",
    "MechanismRun",
    "two_query_world",
    "zipf_world",
    "run_mechanism",
    "run_mechanisms",
    "default_mechanism_factories",
    "Q1_BASE_MS",
    "Q2_BASE_MS",
]

#: Average execution times of the two-query workload (Section 5.1).
Q1_BASE_MS = 1000.0
Q2_BASE_MS = 500.0


@dataclass
class World:
    """A fully specified simulated federation, minus the allocator."""

    specs: List[MachineSpec]
    placement: Placement
    classes: List[QueryClass]
    cost_model: object  # CostModel or RelativeSpeedCostModel (duck typed)
    catalog: Optional[Catalog] = None

    @property
    def num_nodes(self) -> int:
        """Number of federation nodes."""
        return len(self.specs)

    def cost_matrix(self) -> List[List[float]]:
        """Per-node per-class execution times, ``inf`` for ineligible."""
        matrix = []
        for node_id in self.placement.node_ids:
            row = []
            for qc in self.classes:
                if node_id in qc.candidate_nodes(self.placement):
                    row.append(
                        self.cost_model.execution_time_ms(
                            qc, self.specs[node_id]
                        )
                    )
                else:
                    row.append(math.inf)
            matrix.append(row)
        return matrix

    def capacity_qpms(self, mix: Sequence[float]) -> float:
        """Max sustainable throughput (queries/ms) for a class mix."""
        return system_capacity_qpms(self.cost_matrix(), mix)


@dataclass
class MechanismRun:
    """Result of one mechanism over one trace."""

    mechanism: str
    metrics: MetricsCollector
    messages: int

    @property
    def mean_response_ms(self) -> float:
        """Mean query response time of the run."""
        return self.metrics.mean_response_ms()

    def metrics_dict(self) -> Dict[str, float]:
        """The run's headline numbers as a flat, picklable mapping.

        This is the sweep-cell currency: parallel runners ship these
        dicts across process boundaries instead of the full collector.
        """
        return {
            "mean_response_ms": self.metrics.mean_response_ms(),
            "messages": self.messages,
            "completed": self.metrics.completed,
            "dropped": self.metrics.dropped,
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary of the run."""
        summary: Dict[str, object] = {"mechanism": self.mechanism}
        summary.update(self.metrics_dict())
        return summary


def two_query_world(
    num_nodes: int = 100,
    seed: int = 0,
    q1_base_ms: float = Q1_BASE_MS,
    q2_base_ms: float = Q2_BASE_MS,
) -> World:
    """The two-query dynamic-workload setup (Figs. 3–5).

    Every node holds Q1's relation; every second node also holds Q2's
    ("Q2 could be evaluated by only half of the available nodes").
    Machines follow Table 3's heterogeneous ranges; costs scale with the
    per-node speed factor around the stated 1,000/500 ms averages.
    """
    holdings = {}
    for node in range(num_nodes):
        rels = {0}
        if node % 2 == 0:
            rels.add(1)
        holdings[node] = rels
    placement = Placement(holdings)
    classes = [
        QueryClass(index=0, relation_ids=(0,), selectivity=0.5, requires_sort=False),
        QueryClass(index=1, relation_ids=(1,), selectivity=0.5, requires_sort=False),
    ]
    specs = generate_machine_specs(
        num_nodes,
        seed=seed,
        nodes_without_hash_join=max(1, num_nodes // 20),
    )
    model = RelativeSpeedCostModel({0: q1_base_ms, 1: q2_base_ms})
    return World(
        specs=specs, placement=placement, classes=classes, cost_model=model
    )


def zipf_world(
    num_nodes: int = 100,
    num_relations: int = 1000,
    num_classes: int = 100,
    max_joins: int = 49,
    target_best_ms: float = 2000.0,
    seed: int = 0,
) -> World:
    """The heterogeneous Zipf-workload setup (Fig. 6, Table 3 defaults)."""
    cat_params = CatalogParameters(
        num_relations=num_relations,
        num_nodes=num_nodes,
        num_groups=max(1, num_nodes // 10),
    )
    catalog, placement = generate_catalog_and_placement(cat_params, seed=seed)
    class_params = QueryClassParameters(
        num_classes=num_classes, max_joins=max_joins
    )
    classes = generate_query_classes(
        catalog, placement, class_params, seed=seed + 1
    )
    specs = generate_machine_specs(
        num_nodes,
        seed=seed + 2,
        nodes_without_hash_join=max(1, num_nodes // 20),
    )
    eligible = [
        sorted(qc.candidate_nodes(placement)) for qc in classes
    ]
    model = calibrated_cost_model(
        catalog,
        classes,
        specs,
        target_best_ms=target_best_ms,
        eligible_nodes=eligible,
    )
    return World(
        specs=specs,
        placement=placement,
        classes=classes,
        cost_model=model,
        catalog=catalog,
    )


def sinusoid_trace_for_load(
    world: World,
    load_fraction: float,
    horizon_ms: float,
    frequency_hz: float = 0.05,
    seed: int = 0,
) -> List[WorkloadEvent]:
    """A two-query sinusoid trace whose *mean* load is ``load_fraction``
    of the world's capacity for the workload's 2:1 Q1:Q2 mix.

    The Q1 sinusoid's mean rate is half its peak and Q2's peak is half
    Q1's, so the total mean rate is ``0.75 * q1_peak``; the peak rate is
    solved from that.
    """
    capacity = world.capacity_qpms([2.0, 1.0])
    q1_peak = load_fraction * capacity * 4.0 / 3.0
    return two_class_sinusoid_trace(
        horizon_ms=horizon_ms,
        q1_peak_rate_per_ms=q1_peak,
        frequency_hz=frequency_hz,
        origin_nodes=world.placement.node_ids,
        seed=seed,
    )


def zipf_trace_for_world(
    world: World,
    mean_interarrival_ms: float,
    horizon_ms: float,
    max_queries: Optional[int] = 10_000,
    seed: int = 0,
) -> List[WorkloadEvent]:
    """The Fig. 6 workload over ``world``'s classes."""
    return zipf_trace(
        num_classes=len(world.classes),
        mean_interarrival_ms=mean_interarrival_ms,
        horizon_ms=horizon_ms,
        origin_nodes=world.placement.node_ids,
        max_queries=max_queries,
        seed=seed,
    )


def default_mechanism_factories() -> Dict[str, Callable[[], Allocator]]:
    """Factories for the six mechanisms of Fig. 4, in paper order."""
    return {
        "qa-nt": QantAllocator,
        "greedy": GreedyAllocator,
        "random": RandomAllocator,
        "round-robin": RoundRobinAllocator,
        "bnqrd": BnqrdAllocator,
        "two-probes": TwoRandomProbesAllocator,
    }


def run_mechanism(
    world: World,
    trace: Sequence[WorkloadEvent],
    name: str,
    factory: Callable[[], Allocator],
    config: Optional[FederationConfig] = None,
) -> MechanismRun:
    """Run one mechanism on a fresh federation over ``trace``."""
    federation = build_federation(
        world.specs,
        world.placement,
        world.classes,
        world.cost_model,
        factory(),
        config or FederationConfig(),
    )
    metrics = federation.run(trace)
    return MechanismRun(
        mechanism=name,
        metrics=metrics,
        messages=federation.network.messages_sent,
    )


def run_mechanisms(
    world: World,
    trace: Sequence[WorkloadEvent],
    mechanisms: Optional[Dict[str, Callable[[], Allocator]]] = None,
    config: Optional[FederationConfig] = None,
) -> Dict[str, MechanismRun]:
    """Run each mechanism on a fresh federation over the same trace."""
    mechanisms = mechanisms or default_mechanism_factories()
    config = config or FederationConfig()
    return {
        name: run_mechanism(world, trace, name, factory, config)
        for name, factory in mechanisms.items()
    }
