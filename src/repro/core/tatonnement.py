"""Centralised tatonnement price discovery (paper Section 3.3, eq. 6).

The classical process assumes an *umpire* that repeatedly announces a price
vector, collects every node's optimal supply at those prices, and adjusts
prices proportionally to excess demand::

    p(t+1) = p(t) + lambda * z(p(t))

until the market clears.  QA-NT (see :mod:`repro.core.qant`) replaces the
umpire with per-node multiplicative updates; this module implements the
centralised baseline both as a correctness oracle for the decentralised
algorithm and for the lambda-sweep ablation (larger ``lambda`` converges in
fewer iterations but with less accuracy, as the paper notes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .market import PriceVector, excess_demand, is_equilibrium
from .supply import SupplySet, solve_supply
from .vectors import QueryVector, aggregate

__all__ = [
    "TatonnementResult",
    "TatonnementUmpire",
]


@dataclass
class TatonnementResult:
    """Outcome of a tatonnement run.

    ``converged`` is True when the final excess demand is cleared within
    tolerance; ``trajectory`` holds the price vector announced at each
    iteration (including the initial one) so convergence behaviour can be
    plotted and asserted on.
    """

    prices: PriceVector
    supplies: Tuple[QueryVector, ...]
    excess: Tuple[float, ...]
    iterations: int
    converged: bool
    trajectory: List[PriceVector] = field(default_factory=list)

    def aggregate_supply(self) -> QueryVector:
        """System-wide supply at the final prices."""
        return aggregate(self.supplies)


class TatonnementUmpire:
    """The market coordinator of the classical tatonnement process.

    Parameters
    ----------
    step:
        The adjustment coefficient ``lambda`` of eq. 6.  Higher values need
        fewer iterations but overshoot more (ablation A1 in DESIGN.md).
    tolerance:
        Residual excess demand below which the market counts as cleared.
    max_iterations:
        Hard stop; tatonnement is not guaranteed to converge for arbitrary
        economies (Mukherji 2003, cited in the paper), so callers always get
        a result with ``converged`` set accordingly.
    supply_method:
        Solver for the per-node eq. 4 problem (see
        :class:`repro.core.supply.CapacitySupplySet`).
    """

    def __init__(
        self,
        step: float = 0.05,
        tolerance: float = 0.5,
        max_iterations: int = 1000,
        supply_method: str = "greedy",
    ):
        if step <= 0:
            raise ValueError("step (lambda) must be positive")
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        self._step = step
        self._tolerance = tolerance
        self._max_iterations = max_iterations
        self._supply_method = supply_method

    @property
    def step(self) -> float:
        """The adjustment coefficient ``lambda``."""
        return self._step

    def find_equilibrium(
        self,
        demands: Sequence[QueryVector],
        supply_sets: Sequence[SupplySet],
        initial_prices: Optional[PriceVector] = None,
        record_trajectory: bool = False,
    ) -> TatonnementResult:
        """Iterate eq. 6 until the market clears or iterations run out.

        Demand is treated as fixed within the period (the paper's buyers
        have no budget constraint), so only supply responds to prices.
        """
        if len(demands) != len(supply_sets):
            raise ValueError("need exactly one supply set per node")
        if not demands:
            raise ValueError("the market needs at least one node")
        num_classes = demands[0].num_classes
        prices = initial_prices or PriceVector.uniform(num_classes)
        if prices.num_classes != num_classes:
            raise ValueError("initial prices cover the wrong number of classes")

        total_demand = aggregate(demands)
        trajectory: List[PriceVector] = [prices] if record_trajectory else []
        supplies: Tuple[QueryVector, ...] = ()
        excess: Tuple[float, ...] = ()
        for iteration in range(1, self._max_iterations + 1):
            supplies = tuple(
                solve_supply(s, prices.values, method=self._supply_method)
                for s in supply_sets
            )
            excess = excess_demand(total_demand, aggregate(supplies))
            if is_equilibrium(excess, self._tolerance):
                return TatonnementResult(
                    prices=prices,
                    supplies=supplies,
                    excess=excess,
                    iterations=iteration,
                    converged=True,
                    trajectory=trajectory,
                )
            prices = prices.adjusted(excess, self._step, floor=1e-9)
            if record_trajectory:
                trajectory.append(prices)
        return TatonnementResult(
            prices=prices,
            supplies=supplies,
            excess=excess,
            iterations=self._max_iterations,
            converged=False,
            trajectory=trajectory,
        )
