"""Unit tests for repro.sim.engine (the discrete-event kernel)."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(30.0, lambda: fired.append("c"))
        sim.schedule(10.0, lambda: fired.append("a"))
        sim.schedule(20.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_fifo_tie_breaking(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule(5.0, lambda n=name: fired.append(n))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule(12.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [12.5]
        assert sim.now == 12.5

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_before_now_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(5.0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(5.0, lambda: fired.append(("inner", sim.now)))

        sim.schedule(10.0, outer)
        sim.run()
        assert fired == [("outer", 10.0), ("inner", 15.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(10.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        handle.cancel()  # should not raise
        assert handle.fired
        assert not handle.cancelled

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        assert sim.pending_events == 5
        handles[0].cancel()
        handles[3].cancel()
        assert sim.pending_events == 3

    def test_pending_events_decrements_on_fire(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.step()
        assert sim.pending_events == 1
        sim.run()
        assert sim.pending_events == 0

    def test_double_cancel_counted_once(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending_events == 1

    def test_mass_cancellation_compacts_heap(self):
        sim = Simulator()
        keeper = sim.schedule(1_000_000.0, lambda: None)
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(500)]
        for handle in handles:
            handle.cancel()
        # Lazy compaction: stale entries outnumber live ones, so the heap
        # must have been rebuilt well below the 501 pushed entries.
        assert sim.pending_events == 1
        assert sim.heap_size < 100
        assert not keeper.cancelled

    def test_cancelled_events_skipped_after_compaction(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append("keep"))
        handles = [
            sim.schedule(float(i + 1), lambda: fired.append("dropped"))
            for i in range(200)
        ]
        for handle in handles:
            handle.cancel()
        sim.run()
        assert fired == ["keep"]
        assert sim.events_processed == 1


class TestBoundedRuns:
    def test_run_until_is_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append("at"))
        sim.schedule(10.1, lambda: fired.append("after"))
        sim.run(until_ms=10.0)
        assert fired == ["at"]
        assert sim.now == 10.0

    def test_run_until_advances_clock_without_events(self):
        sim = Simulator()
        sim.run(until_ms=50.0)
        assert sim.now == 50.0

    def test_remaining_events_fire_on_next_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append(1))
        sim.run(until_ms=5.0)
        assert fired == []
        sim.run()
        assert fired == [1]

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_step_returns_false_when_empty(self):
        assert not Simulator().step()

    def test_cancelled_head_cannot_fire_event_past_until(self):
        # Regression: a cancelled entry at the heap front inside the
        # window used to slip past the bound check, letting the *next*
        # live event fire even when it lay beyond until_ms.
        sim = Simulator()
        fired = []
        inside = sim.schedule(5.0, lambda: fired.append("inside"))
        sim.schedule(20.0, lambda: fired.append("outside"))
        inside.cancel()
        sim.run(until_ms=10.0)
        assert fired == []
        assert sim.now == 10.0
        sim.run()
        assert fired == ["outside"]
        assert sim.now == 20.0

    def test_cancelled_head_does_not_consume_max_events_budget(self):
        sim = Simulator()
        fired = []
        stale = sim.schedule(1.0, lambda: fired.append("stale"))
        sim.schedule(2.0, lambda: fired.append("live"))
        stale.cancel()
        sim.run(max_events=1)
        assert fired == ["live"]

    def test_max_events_leaves_clock_at_last_executed_event(self):
        # Documented contract: exhausting max_events with due events still
        # pending must NOT advance the clock to until_ms — the clock stays
        # at the last executed event so a later run() resumes seamlessly.
        sim = Simulator()
        fired = []
        for i in range(4):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(until_ms=10.0, max_events=2)
        assert fired == [0, 1]
        assert sim.now == 2.0
        sim.run(until_ms=10.0)
        assert fired == [0, 1, 2, 3]
        assert sim.now == 10.0

    def test_until_reached_with_max_events_to_spare_advances_clock(self):
        # The flip side: when every due event fired within budget, a
        # time-bounded run still ends at its bound.
        sim = Simulator()
        sim.schedule(3.0, lambda: None)
        sim.run(until_ms=10.0, max_events=5)
        assert sim.now == 10.0


class TestRecurrence:
    def test_every_fires_periodically(self):
        sim = Simulator()
        times = []
        sim.every(10.0, lambda: times.append(sim.now), start_ms=10.0, until_ms=45.0)
        sim.run()
        assert times == [10.0, 20.0, 30.0, 40.0]

    def test_every_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            Simulator().every(0.0, lambda: None)

    def test_every_default_start_is_now(self):
        sim = Simulator()
        times = []
        sim.every(5.0, lambda: times.append(sim.now), until_ms=12.0)
        sim.run()
        assert times == [0.0, 5.0, 10.0]
