"""Least-imbalance load balancing — the "LB" of the paper's introduction.

Assigns each incoming query to the node "that would result in the least
load imbalance among all nodes" (Section 1): for every candidate, the
balancer simulates adding the query's execution time to that node's load
and picks the candidate minimising the resulting spread (max load minus
min load) across the whole federation.

This is the mechanism that produces the 662 ms average response time in
Figure 1, against QA's 431 ms, and it anchors the reproduction of that
worked example (experiment E1).
"""

from __future__ import annotations

from ..query.model import Query
from .base import Allocator, AssignmentDecision

__all__ = [
    "LeastImbalanceAllocator",
]


class LeastImbalanceAllocator(Allocator):
    """Greedy load balancing by minimising post-assignment load spread."""

    name = "least-imbalance"
    respects_autonomy = False
    distributed = False

    def assign(self, query: Query) -> AssignmentDecision:
        candidates = self.context.available_candidates(query.class_index)
        if not candidates:
            return AssignmentDecision(node_id=None)
        nodes = self.context.nodes
        loads = {nid: node.current_load_ms() for nid, node in nodes.items()}

        def spread_after(candidate: int) -> float:
            exec_ms = nodes[candidate].execution_time_ms(query.class_index)
            trial = dict(loads)
            trial[candidate] += exec_ms
            values = trial.values()
            return max(values) - min(values)

        chosen = min(candidates, key=lambda nid: (spread_after(nid), nid))
        # As with BNQRD, the balancer itself is reliable control-plane
        # infrastructure; only the dispatch to the chosen server rides
        # the (possibly faulty) wire.
        return self._coordinated_dispatch(query, chosen)
