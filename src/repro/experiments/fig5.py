"""Experiments E5–E7 — QA-NT in dynamic environments (paper Figure 5).

Three panels, all on the two-query world:

* **5a** — Greedy's response time normalised by QA-NT's as the average
  workload sweeps 10–300 % of system capacity (20 s, 0.05 Hz sinusoid).
  Paper shape: Greedy ≈5 % better below 75 %, 15–32 % worse above.
* **5b** — the same normalised ratio as the sinusoid frequency sweeps
  0.05–2 Hz at 80 % average load; the QA-NT advantage shrinks with
  frequency.
* **5c** — per-half-second counts of Q1 queries arriving vs executed by
  QA-NT and by Greedy near total capacity; QA-NT tracks the arrival curve
  more closely because it reserves capacity by pricing Q2 onto slower
  nodes.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

from ..allocation import GreedyAllocator, QantAllocator
from ..sim import FederationConfig
from .reporting import format_series
from .setups import (
    World,
    run_mechanism,
    run_mechanisms,
    sinusoid_trace_for_load,
    two_query_world,
)
from .spec import ScalePreset, ScenarioSpec, register

__all__ = [
    "Fig5aResult",
    "Fig5bResult",
    "Fig5cResult",
    "fig5a_cell",
    "fig5b_cell",
    "run_fig5a",
    "run_fig5b",
    "run_fig5c",
]

#: Mechanism pair the panels compare.
_PAIR = {"qa-nt": QantAllocator, "greedy": GreedyAllocator}


def fig5a_cell(
    mechanism: str,
    load: float,
    point_index: int,
    seed: int,
    num_nodes: int = 100,
    horizon_ms: float = 20_000.0,
    frequency_hz: float = 0.05,
    world: Optional[World] = None,
    config: Optional[FederationConfig] = None,
) -> Dict[str, float]:
    """One (mechanism, load, seed) cell of panel 5a.

    The seed plumbing (world ``seed``, trace ``seed + 10 + point_index``,
    federation ``seed + 2``) matches the legacy driver exactly, so a
    single-seed sweep reproduces :func:`run_fig5a`'s numbers and the two
    mechanisms of one point always see the same trace (paired ratios).
    """
    world = world or two_query_world(num_nodes=num_nodes, seed=seed)
    trace = sinusoid_trace_for_load(
        world,
        load_fraction=load,
        horizon_ms=horizon_ms,
        frequency_hz=frequency_hz,
        seed=seed + 10 + point_index,
    )
    run = run_mechanism(
        world,
        trace,
        mechanism,
        _PAIR[mechanism],
        config or FederationConfig(seed=seed + 2),
    )
    return run.metrics_dict()


def fig5b_cell(
    mechanism: str,
    frequency_hz: float,
    point_index: int,
    seed: int,
    num_nodes: int = 100,
    horizon_ms: float = 40_000.0,
    load_fraction: float = 0.8,
    world: Optional[World] = None,
    config: Optional[FederationConfig] = None,
) -> Dict[str, float]:
    """One (mechanism, frequency, seed) cell of panel 5b."""
    world = world or two_query_world(num_nodes=num_nodes, seed=seed)
    trace = sinusoid_trace_for_load(
        world,
        load_fraction=load_fraction,
        horizon_ms=horizon_ms,
        frequency_hz=frequency_hz,
        seed=seed + 10 + point_index,
    )
    run = run_mechanism(
        world,
        trace,
        mechanism,
        _PAIR[mechanism],
        config or FederationConfig(seed=seed + 2),
    )
    return run.metrics_dict()


@dataclass
class Fig5aResult:
    """Greedy response normalised by QA-NT per load level."""

    loads: List[float]
    greedy_normalised: List[float]

    def render(self) -> str:
        """The 5a series as text."""
        return format_series(
            "greedy response / qa-nt response vs load fraction",
            self.loads,
            self.greedy_normalised,
        )

    def to_dict(self) -> dict:
        """JSON-ready form of the 5a series."""
        return asdict(self)


def run_fig5a(
    loads: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0),
    num_nodes: int = 100,
    horizon_ms: float = 20_000.0,
    frequency_hz: float = 0.05,
    seed: int = 0,
    config: Optional[FederationConfig] = None,
) -> Fig5aResult:
    """Sweep average load as a fraction of system capacity (panel 5a).

    Thin serial wrapper over :func:`fig5a_cell`; the world is built once
    and shared across cells, which is behaviour-identical to rebuilding
    it per cell from the same seed.
    """
    world = two_query_world(num_nodes=num_nodes, seed=seed)
    ratios = []
    for index, load in enumerate(loads):
        cells = {
            mechanism: fig5a_cell(
                mechanism,
                load,
                index,
                seed,
                horizon_ms=horizon_ms,
                frequency_hz=frequency_hz,
                world=world,
                config=config,
            )
            for mechanism in _PAIR
        }
        ratios.append(
            cells["greedy"]["mean_response_ms"]
            / cells["qa-nt"]["mean_response_ms"]
        )
    return Fig5aResult(loads=list(loads), greedy_normalised=ratios)


@dataclass
class Fig5bResult:
    """Greedy response normalised by QA-NT per sinusoid frequency."""

    frequencies_hz: List[float]
    greedy_normalised: List[float]

    def render(self) -> str:
        """The 5b series as text."""
        return format_series(
            "greedy response / qa-nt response vs frequency (Hz)",
            self.frequencies_hz,
            self.greedy_normalised,
        )

    def to_dict(self) -> dict:
        """JSON-ready form of the 5b series."""
        return asdict(self)


def run_fig5b(
    frequencies_hz: Sequence[float] = (0.05, 0.1, 0.25, 0.5, 1.0, 2.0),
    num_nodes: int = 100,
    horizon_ms: float = 40_000.0,
    load_fraction: float = 0.8,
    seed: int = 0,
    config: Optional[FederationConfig] = None,
) -> Fig5bResult:
    """Sweep the sinusoid frequency at 80 % average load (panel 5b).

    Thin serial wrapper over :func:`fig5b_cell`.
    """
    world = two_query_world(num_nodes=num_nodes, seed=seed)
    ratios = []
    for index, freq in enumerate(frequencies_hz):
        cells = {
            mechanism: fig5b_cell(
                mechanism,
                freq,
                index,
                seed,
                horizon_ms=horizon_ms,
                load_fraction=load_fraction,
                world=world,
                config=config,
            )
            for mechanism in _PAIR
        }
        ratios.append(
            cells["greedy"]["mean_response_ms"]
            / cells["qa-nt"]["mean_response_ms"]
        )
    return Fig5bResult(
        frequencies_hz=list(frequencies_hz), greedy_normalised=ratios
    )


@dataclass
class Fig5cResult:
    """Per-bucket Q1 arrivals and executions (panel 5c)."""

    bucket_ms: float
    q1_arrivals: List[int]
    q1_executed_qant: List[int]
    q1_executed_greedy: List[int]

    @property
    def times_s(self) -> List[float]:
        """Bucket start times in seconds."""
        return [i * self.bucket_ms / 1000.0 for i in range(len(self.q1_arrivals))]

    def tracking_error(self, executed: Sequence[int]) -> float:
        """Mean absolute arrival-vs-executed gap (lower tracks better)."""
        return sum(
            abs(a - e) for a, e in zip(self.q1_arrivals, executed)
        ) / max(1, len(self.q1_arrivals))

    def render(self) -> str:
        """All three 5c series as text."""
        return "\n".join(
            (
                format_series("Q1 arrivals", self.times_s, self.q1_arrivals),
                format_series(
                    "Q1 executed (qa-nt)", self.times_s, self.q1_executed_qant
                ),
                format_series(
                    "Q1 executed (greedy)", self.times_s, self.q1_executed_greedy
                ),
            )
        )

    def to_dict(self) -> dict:
        """JSON-ready form of the 5c series plus tracking errors."""
        payload = asdict(self)
        payload["times_s"] = self.times_s
        payload["tracking_error_qant"] = self.tracking_error(
            self.q1_executed_qant
        )
        payload["tracking_error_greedy"] = self.tracking_error(
            self.q1_executed_greedy
        )
        return payload


def run_fig5c(
    num_nodes: int = 100,
    horizon_ms: float = 15_000.0,
    load_fraction: float = 0.95,
    frequency_hz: float = 0.05,
    bucket_ms: float = 500.0,
    seed: int = 0,
    config: Optional[FederationConfig] = None,
) -> Fig5cResult:
    """Near-capacity tracking of the Q1 arrival curve (panel 5c)."""
    world = two_query_world(num_nodes=num_nodes, seed=seed)
    trace = sinusoid_trace_for_load(
        world,
        load_fraction=load_fraction,
        horizon_ms=horizon_ms,
        frequency_hz=frequency_hz,
        seed=seed + 1,
    )
    runs = run_mechanisms(
        world,
        trace,
        mechanisms=dict(_PAIR),
        config=config or FederationConfig(seed=seed + 2),
    )
    num_buckets = int(horizon_ms // bucket_ms)
    arrivals = [0] * num_buckets
    for event in trace:
        if event.class_index == 0:
            bucket = min(num_buckets - 1, int(event.time_ms // bucket_ms))
            arrivals[bucket] += 1
    executed = {
        name: run.metrics.executed_per_period(
            bucket_ms, horizon_ms, class_index=0
        )[:num_buckets]
        for name, run in runs.items()
    }
    return Fig5cResult(
        bucket_ms=bucket_ms,
        q1_arrivals=arrivals,
        q1_executed_qant=executed["qa-nt"],
        q1_executed_greedy=executed["greedy"],
    )


register(
    ScenarioSpec(
        name="fig5a",
        title="Fig. 5a — Greedy/QA-NT response ratio vs average load",
        axis="load_fraction",
        mechanisms=("qa-nt", "greedy"),
        ratio_of=("greedy", "qa-nt"),
        cell=fig5a_cell,
        scales={
            "small": ScalePreset(
                points=(0.25, 0.75, 1.5, 3.0), fixed={"num_nodes": 30}
            ),
            "paper": ScalePreset(
                points=(0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0),
                fixed={"num_nodes": 100},
            ),
        },
    )
)

register(
    ScenarioSpec(
        name="fig5b",
        title="Fig. 5b — Greedy/QA-NT response ratio vs sinusoid frequency",
        axis="frequency_hz",
        mechanisms=("qa-nt", "greedy"),
        ratio_of=("greedy", "qa-nt"),
        cell=fig5b_cell,
        scales={
            "small": ScalePreset(
                points=(0.05, 0.5, 2.0), fixed={"num_nodes": 30}
            ),
            "paper": ScalePreset(
                points=(0.05, 0.1, 0.25, 0.5, 1.0, 2.0),
                fixed={"num_nodes": 100},
            ),
        },
    )
)

register(
    ScenarioSpec(
        name="fig5c",
        title="Fig. 5c — Q1 arrivals vs executions near capacity",
        runner=run_fig5c,
        scales={
            "small": ScalePreset(fixed={"num_nodes": 30}),
            "paper": ScalePreset(fixed={"num_nodes": 100}),
        },
    )
)
