"""Experiment E11 — the simulation parameters (paper Table 3).

Table 3 lists the simulator's configuration; this driver instantiates the
default world and *measures* the generated dataset's statistics (relation
sizes, mirrors per relation, relations per node, join counts, calibrated
execution times), so the table documents what the reproduction actually
builds rather than merely restating constants.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional, Tuple

from .reporting import format_table
from .setups import World, zipf_world
from .spec import ScalePreset, ScenarioSpec, register

__all__ = [
    "Table3Result",
    "run_table3",
]


@dataclass
class Table3Result:
    """Declared parameters next to the generated world's measurements."""

    num_nodes: int
    num_relations: int
    avg_relation_size_mb: float
    avg_mirrors: float
    avg_relations_per_node: float
    num_classes: int
    avg_joins: float
    max_joins: int
    avg_best_execution_ms: float
    nodes_without_hash_join: int
    cpu_range_ghz: Tuple[float, float]
    io_range_mbps: Tuple[float, float]
    buffer_range_mb: Tuple[float, float]

    def render(self) -> str:
        """Table 3 as text (measured column included)."""
        rows = [
            ("total network size", "%d nodes" % self.num_nodes),
            ("# of different relations", str(self.num_relations)),
            ("avg relation size", "%.1f MB" % self.avg_relation_size_mb),
            ("avg mirrors per relation", "%.1f" % self.avg_mirrors),
            ("avg relations per node", "%.1f" % self.avg_relations_per_node),
            ("# of query classes", str(self.num_classes)),
            ("joins per query (avg/max)", "%.1f / %d" % (self.avg_joins, self.max_joins)),
            (
                "avg best execution time",
                "%.0f ms" % self.avg_best_execution_ms,
            ),
            (
                "nodes without hash join",
                str(self.nodes_without_hash_join),
            ),
            (
                "CPU range",
                "%.1f-%.1f GHz" % self.cpu_range_ghz,
            ),
            ("I/O range", "%.0f-%.0f MB/s" % self.io_range_mbps),
            ("buffer range", "%.0f-%.0f MB" % self.buffer_range_mb),
        ]
        return format_table(("parameter", "value (measured)"), rows)

    def to_dict(self) -> dict:
        """JSON-ready form of the measured Table 3 parameters."""
        return asdict(self)


def run_table3(world: Optional[World] = None, seed: int = 0) -> Table3Result:
    """Measure the default Zipf world against Table 3."""
    world = world or zipf_world(seed=seed)
    if world.catalog is None:
        raise ValueError("Table 3 needs a catalog-backed world")
    best_times = []
    for qc in world.classes:
        candidates = qc.candidate_nodes(world.placement)
        best = min(
            world.cost_model.execution_time_ms(qc, world.specs[nid])
            for nid in candidates
        )
        best_times.append(best)
    cpus = [s.cpu_ghz for s in world.specs]
    ios = [s.io_mbps for s in world.specs]
    buffers = [s.buffer_mb for s in world.specs]
    return Table3Result(
        num_nodes=world.num_nodes,
        num_relations=len(world.catalog),
        avg_relation_size_mb=world.catalog.average_size_mb(),
        avg_mirrors=world.placement.average_mirrors(),
        avg_relations_per_node=world.placement.average_relations_per_node(),
        num_classes=len(world.classes),
        avg_joins=sum(qc.num_joins for qc in world.classes) / len(world.classes),
        max_joins=max(qc.num_joins for qc in world.classes),
        avg_best_execution_ms=sum(best_times) / len(best_times),
        nodes_without_hash_join=sum(
            1 for s in world.specs if not s.supports_hash_join
        ),
        cpu_range_ghz=(min(cpus), max(cpus)),
        io_range_mbps=(min(ios), max(ios)),
        buffer_range_mb=(min(buffers), max(buffers)),
    )


def _table3_scenario(
    seed: int = 0,
    num_nodes: Optional[int] = None,
    num_relations: Optional[int] = None,
    num_classes: Optional[int] = None,
) -> Table3Result:
    """Registry adapter: measure a world at the preset's dimensions."""
    if num_nodes is None:
        return run_table3(seed=seed)
    world = zipf_world(
        num_nodes=num_nodes,
        num_relations=num_relations or 1000,
        num_classes=num_classes or 100,
        seed=seed,
    )
    return run_table3(world=world)


register(
    ScenarioSpec(
        name="table3",
        title="Table 3 — measured simulation parameters",
        runner=_table3_scenario,
        scales={
            "small": ScalePreset(
                fixed={
                    "num_nodes": 30,
                    "num_relations": 300,
                    "num_classes": 30,
                }
            ),
            "paper": ScalePreset(),
        },
    )
)
