"""Simulated network substrate with per-message latency accounting.

Allocation mechanisms differ sharply in how chatty they are (the paper
notes QA-NT "requires more network messages" than its competitors), so the
network model counts every message and charges a latency drawn from a
simple base-plus-jitter model.  Latency matters twice: it delays query
assignment (negotiation round-trips) and it is part of the measured
"time to assign" in the real-deployment experiment (Fig. 7).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from ..protocol.transport import FanoutResult
from .engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .faults import FaultInjector

try:  # NumPy ships with the repo's scientific stack; see Network below.
    import numpy as _np
except ImportError:  # pragma: no cover - the pure-Python path covers this
    _np = None

__all__ = [
    "LatencyModel",
    "Network",
]


@dataclass(frozen=True)
class LatencyModel:
    """One-way message latency: ``base_ms`` plus uniform jitter.

    Defaults approximate the paper's switched 100 Mb LAN: sub-millisecond
    one-way latency with occasional jitter.
    """

    base_ms: float = 0.5
    jitter_ms: float = 0.5

    def __post_init__(self) -> None:
        if self.base_ms < 0 or self.jitter_ms < 0:
            raise ValueError("latency components must be non-negative")

    def sample(self, rng: random.Random) -> float:
        """Draw a one-way latency in milliseconds.

        ``jitter * random()`` is bit-for-bit what ``uniform(0.0, jitter)``
        computes, minus the Python-level call frame (see
        :meth:`Network.round_trip_ms`).
        """
        if self.jitter_ms == 0:
            return self.base_ms
        return self.base_ms + self.jitter_ms * rng.random()


class Network:
    """Message-passing layer over the event simulator.

    Tracks the number of messages sent — the chattiness metric reported in
    Table 2's qualitative comparison and available for ablations.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
    ):
        self._sim = simulator
        self._latency = latency or LatencyModel()
        self._rng = random.Random(seed)
        # NumPy's legacy RandomState is the same MT19937 generator with
        # the same 53-bit double construction as CPython's `random`, so
        # transplanting the seeded state yields a stream that is
        # bit-identical draw for draw *and* stays in lockstep (each double
        # consumes two 32-bit words in both implementations).  Large
        # request-for-bid fan-outs can then sample all their latencies in
        # one C-level call instead of 2*num_peers Python-loop iterations —
        # the single largest RNG cost at paper scale.  When NumPy is
        # unavailable every draw falls back to `self._rng`; either way all
        # draws come from one stream, so traces are identical.
        self._np_sample = None
        if _np is not None:
            internal = self._rng.getstate()[1]
            state = _np.random.RandomState()
            state.set_state(
                ("MT19937", _np.array(internal[:-1], dtype=_np.uint64), internal[-1])
            )
            self._np_sample = state.random_sample
        self._messages_sent = 0
        #: Optional fault injector (see :mod:`repro.sim.faults`).  While
        #: None — the default — every code path below is exactly the
        #: pre-fault implementation: same arithmetic, same RNG draws.
        self._faults: Optional["FaultInjector"] = None

    def attach_faults(self, injector: "FaultInjector") -> None:
        """Engage a fault injector for every subsequent message."""
        self._faults = injector

    @property
    def faults(self) -> Optional["FaultInjector"]:
        """The attached fault injector, if any."""
        return self._faults

    @property
    def messages_sent(self) -> int:
        """Total messages delivered (or in flight) so far."""
        return self._messages_sent

    @property
    def latency_model(self) -> LatencyModel:
        """The latency model in effect."""
        return self._latency

    def _leg(self) -> float:
        """One one-way latency draw from the (single) latency stream.

        Bit-identical to the draw ``send`` always performed: the NumPy
        stream when available, the Python ``random`` stream otherwise.
        """
        latency = self._latency
        if self._np_sample is None or latency.jitter_ms == 0:
            return latency.sample(self._rng)
        # Same draw, same arithmetic as `sample`, from the NumPy-side
        # stream (the only stream once NumPy is in play).
        return latency.base_ms + latency.jitter_ms * float(self._np_sample())

    def send(self, deliver: Callable[[], None]) -> Optional[float]:
        """Send one message; ``deliver`` runs after the sampled latency.

        Returns the sampled latency so callers composing multi-message
        exchanges can account for it synchronously — or ``None`` when an
        attached fault injector dropped the message (``deliver`` then
        never fires).
        """
        self._messages_sent += 1
        faults = self._faults
        if faults is not None:
            if faults.drop_message():
                faults.note_lost()
                return None
            delay = self._leg() + faults.spike_penalty_ms()
        else:
            delay = self._leg()
        self._sim.schedule(delay, deliver)
        return delay

    def fanout(self, origin: int, peers: Sequence[int]) -> FanoutResult:
        """One request/reply fan-out exchange, as a protocol event.

        This is the network's implementation of the market protocol's
        :class:`~repro.protocol.transport.Transport` verb (see
        ``repro.sim.transport.SimTransport`` for the adapter).  With no
        fault injector attached the exchange is the classic fault-free
        probe: every request arrives, every reply beats the timeout, the
        delay is the slowest round trip (both of the paper's
        implementations "waited for a reply from all nodes") — the exact
        arithmetic and RNG draws :meth:`round_trip_ms` always performed.
        With an injector attached, each leg can be severed by a
        partition, dropped, or delayed by a spike, and the
        :class:`~repro.protocol.transport.FanoutResult` semantics
        (delivered vs replied vs timeout) apply in full.
        """
        peers_t = tuple(peers)
        if self._faults is None:
            delay = self.round_trip_ms(len(peers_t))
            return FanoutResult(
                delay_ms=delay,
                messages=2 * len(peers_t),
                delivered=peers_t,
                replied=peers_t,
            )
        return self._faulty_fanout(origin, peers_t)

    def faulty_fanout(
        self, origin: int, peers: Sequence[int]
    ) -> Tuple[float, int, Tuple[int, ...], Tuple[int, ...]]:
        """Legacy tuple form of :meth:`fanout`.

        Returns ``(delay_ms, messages, delivered, replied)`` — the
        pre-protocol contract, kept for existing callers and the
        sim-vs-protocol equivalence tests.  With no injector attached it
        now falls back to the fault-free exchange instead of raising, so
        callers no longer need dual code paths.
        """
        return self.fanout(origin, peers).as_legacy_tuple()

    def _faulty_fanout(
        self, origin: int, peers: Tuple[int, ...]
    ) -> FanoutResult:
        """The fault-injected fan-out (see :meth:`fanout` for semantics).

        Models the client at ``origin`` sending a request to every peer
        and waiting up to the spec's ``bid_timeout_ms`` for replies.
        Each leg can be severed by a partition, dropped, or delayed by a
        latency spike; a reply that would land after the timeout counts
        as a timeout (the client has already moved on).
        """
        faults = self._faults
        assert faults is not None
        timeout = faults.spec.bid_timeout_ms
        now = self._sim.now
        delivered = []
        replied = []
        messages = 0
        worst = 0.0
        timeouts = 0
        lost = 0
        for nid in peers:
            messages += 1  # request leg
            if faults.partitioned(origin, nid, now):
                lost += 1
                timeouts += 1
                continue
            if faults.drop_message():
                lost += 1
                timeouts += 1
                continue
            request_ms = self._leg() + faults.spike_penalty_ms()
            delivered.append(nid)
            messages += 1  # reply leg
            if faults.drop_message():
                lost += 1
                timeouts += 1
                continue
            trip = request_ms + self._leg() + faults.spike_penalty_ms()
            if trip > timeout:
                timeouts += 1
                continue
            replied.append(nid)
            if trip > worst:
                worst = trip
        self._messages_sent += messages
        if lost:
            faults.note_lost(lost)
        if timeouts:
            faults.note_timeouts(timeouts)
        delay = timeout if timeouts else worst
        return FanoutResult(
            delay_ms=delay,
            messages=messages,
            delivered=tuple(delivered),
            replied=tuple(replied),
        )

    def round_trip_ms(self, num_peers: int = 1) -> float:
        """Charge a synchronous request/reply exchange with ``num_peers``.

        Returns the latency of the *slowest* round trip — the paper's real
        implementation "waited for a reply from all nodes before deciding"
        — and counts ``2 * num_peers`` messages without scheduling
        deliveries (the caller folds the delay into its own event).
        """
        if num_peers <= 0:
            return 0.0
        self._messages_sent += 2 * num_peers
        latency = self._latency
        base = latency.base_ms
        jitter = latency.jitter_ms
        if jitter == 0:
            return base + base
        sample = self._np_sample
        if sample is not None and num_peers >= 8:
            # Bulk path: one C-level call for all 2*num_peers draws, then
            # vectorised per-pair sums.  Element-wise IEEE arithmetic and
            # `max` are bit-identical to the scalar loop below, and the
            # draws land in the same order (peer i's two legs are entries
            # 2i and 2i+1), so traces do not move.
            legs = base + jitter * sample(2 * num_peers)
            trips = legs[0::2] + legs[1::2]
            return float(trips.max())
        # Scalar path (small fan-outs, or no NumPy): unrolled equivalent
        # of max((sample + sample) for each peer).  ``jitter * random()``
        # is bit-identical to ``uniform(0.0, jitter)`` (which computes
        # ``0.0 + (jitter - 0.0) * random()``) and consumes exactly one
        # Mersenne draw either way, so the draw order, the per-pair
        # summation order and every result bit are preserved — while
        # replacing 2*num_peers Python-level ``uniform`` frames with
        # direct C ``random()`` calls.
        if sample is not None:
            # Stay on the NumPy-side stream (it is the only stream).
            worst = (base + jitter * float(sample())) + (
                base + jitter * float(sample())
            )
            for __ in range(num_peers - 1):
                trip = (base + jitter * float(sample())) + (
                    base + jitter * float(sample())
                )
                if trip > worst:
                    worst = trip
            return worst
        rnd = self._rng.random
        worst = (base + jitter * rnd()) + (base + jitter * rnd())
        for __ in range(num_peers - 1):
            trip = (base + jitter * rnd()) + (base + jitter * rnd())
            if trip > worst:
                worst = trip
        return worst

    def round_trip_ms_batch(self, sizes: Sequence[int]) -> List[float]:
        """Charge one :meth:`round_trip_ms` exchange per entry of ``sizes``.

        Returns the per-exchange worst round trips in order.  All legs of
        the whole batch are drawn in a single C-level call and split into
        per-exchange segments; because ``k`` sequential ``random_sample``
        draws consume the Mersenne stream exactly like one size-``k`` draw,
        every returned float (and the RNG state left behind) is
        bit-identical to calling ``round_trip_ms(n)`` once per entry.
        """
        sample = self._np_sample
        jitter = self._latency.jitter_ms
        if sample is None or jitter == 0:
            # No shared numpy stream to split (or no randomness at all):
            # the sequential calls are already cheap and draw-free/exact.
            return [self.round_trip_ms(n) for n in sizes]
        total = 0
        for n in sizes:
            if n > 0:
                total += n
        if total == 0:
            return [0.0] * len(sizes)
        base = self._latency.base_ms
        legs = base + jitter * sample(2 * total)
        trips = legs[0::2] + legs[1::2]
        out: List[float] = []
        pos = 0
        for n in sizes:
            if n <= 0:
                out.append(0.0)
                continue
            self._messages_sent += 2 * n
            out.append(float(trips[pos : pos + n].max()))
            pos += n
        return out
