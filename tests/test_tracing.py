"""Tests for repro.sim.tracing (market observability)."""

import pytest

from repro.allocation import QantAllocator
from repro.experiments.setups import (
    sinusoid_trace_for_load,
    two_query_world,
)
from repro.sim import FederationConfig, build_federation
from repro.sim.tracing import MarketTracer


@pytest.fixture(scope="module")
def traced_run():
    world = two_query_world(num_nodes=8, seed=6)
    allocator = QantAllocator()
    tracer = MarketTracer(allocator)
    federation = build_federation(
        world.specs,
        world.placement,
        world.classes,
        world.cost_model,
        allocator,
        FederationConfig(seed=7, drain_ms=60_000.0),
    )
    trace = sinusoid_trace_for_load(
        world, load_fraction=2.0, horizon_ms=15_000.0, seed=8
    )
    federation.run(trace)
    return tracer, federation


class TestMarketTracer:
    def test_snapshots_collected_every_period(self, traced_run):
        tracer, federation = traced_run
        assert tracer.snapshots
        times = sorted({s.time_ms for s in tracer.snapshots})
        # One batch of snapshots per period boundary (and the bind-time one).
        assert len(times) > 10

    def test_snapshot_covers_every_node(self, traced_run):
        tracer, federation = traced_run
        node_ids = {s.node_id for s in tracer.snapshots}
        assert node_ids == set(federation.nodes)

    def test_price_series_monotone_time(self, traced_run):
        tracer, __ = traced_run
        series = tracer.price_series(node_id=0)
        times = [t for t, __ in series]
        assert times == sorted(times)
        assert all(price > 0 for __, price in series)

    def test_price_series_specific_class(self, traced_run):
        tracer, __ = traced_run
        series = tracer.price_series(node_id=0, class_index=0)
        assert series

    def test_overload_detected_via_prices(self, traced_run):
        # At 2x capacity the decentralised overload signal must fire.
        tracer, __ = traced_run
        overloaded = tracer.overload_periods(threshold=2.0)
        assert overloaded

    def test_supply_totals(self, traced_run):
        tracer, __ = traced_run
        totals = tracer.supply_totals(node_id=0)
        assert totals
        assert all(total >= 0 for __, total in totals)

    def test_tracer_works_with_private_buckets(self):
        """Tracing must also cover nodes pricing private classifications."""
        world = two_query_world(num_nodes=6, seed=9)
        allocator = QantAllocator(private_buckets=2)
        tracer = MarketTracer(allocator)
        federation = build_federation(
            world.specs,
            world.placement,
            world.classes,
            world.cost_model,
            allocator,
            FederationConfig(seed=10, drain_ms=30_000.0),
        )
        trace = sinusoid_trace_for_load(
            world, load_fraction=1.0, horizon_ms=5_000.0, seed=11
        )
        federation.run(trace)
        assert tracer.snapshots
        assert tracer.price_series(node_id=0)
