"""Tests for per-node private query classification (Section 3.3)."""

import math

import pytest

from repro.allocation import GreedyAllocator, QantAllocator
from repro.core.classification import (
    ClassificationScheme,
    PrivatelyClassifiedAgent,
    cost_band_classification,
)
from repro.core.qant import QantParameters
from repro.experiments.setups import (
    run_mechanisms,
    sinusoid_trace_for_load,
    two_query_world,
)
from repro.sim import FederationConfig

INF = math.inf


class TestClassificationScheme:
    def test_bucket_lookup(self):
        scheme = ClassificationScheme([0, 1, 0, 1])
        assert scheme.bucket_of(0) == 0
        assert scheme.bucket_of(3) == 1
        assert scheme.members_of(0) == (0, 2)
        assert scheme.num_buckets == 2
        assert scheme.num_global_classes == 4

    def test_rejects_non_consecutive_buckets(self):
        with pytest.raises(ValueError):
            ClassificationScheme([0, 2])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ClassificationScheme([])

    def test_bucket_costs_average_members(self):
        scheme = ClassificationScheme([0, 0, 1])
        costs = scheme.bucket_costs([100.0, 200.0, 400.0])
        assert costs == [150.0, 400.0]

    def test_bucket_costs_skip_inevaluable_members(self):
        scheme = ClassificationScheme([0, 0])
        costs = scheme.bucket_costs([100.0, INF])
        assert costs == [100.0]

    def test_all_inf_bucket_is_inf(self):
        scheme = ClassificationScheme([0])
        assert math.isinf(scheme.bucket_costs([INF])[0])

    def test_cost_row_length_check(self):
        scheme = ClassificationScheme([0, 1])
        with pytest.raises(ValueError):
            scheme.bucket_costs([100.0])


class TestCostBandClassification:
    def test_similar_costs_share_bucket(self):
        scheme = cost_band_classification([100.0, 110.0, 5000.0], 2)
        assert scheme.bucket_of(0) == scheme.bucket_of(1)
        assert scheme.bucket_of(2) != scheme.bucket_of(0)

    def test_single_bucket(self):
        scheme = cost_band_classification([1.0, 1000.0], 1)
        assert scheme.num_buckets == 1

    def test_all_equal_costs_collapse(self):
        scheme = cost_band_classification([100.0, 100.0, 100.0], 5)
        assert scheme.num_buckets == 1

    def test_inf_costs_in_dearest_band(self):
        scheme = cost_band_classification([100.0, INF, 5000.0], 3)
        assert scheme.bucket_of(1) == scheme.bucket_of(2) or (
            scheme.bucket_of(1) > scheme.bucket_of(0)
        )

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            cost_band_classification([1.0], 0)


class TestPrivatelyClassifiedAgent:
    def make_agent(self, costs=(100.0, 120.0, 1000.0), buckets=2):
        scheme = cost_band_classification(list(costs), buckets)
        return (
            PrivatelyClassifiedAgent(
                scheme,
                list(costs),
                capacity_ms=1000.0,
                parameters=QantParameters(
                    supply_method="greedy", carry_over=False
                ),
            ),
            scheme,
        )

    def test_offer_translates_to_bucket(self):
        agent, scheme = self.make_agent()
        agent.begin_period()
        # Classes 0 and 1 share the cheap bucket: supply is fungible.
        assert agent.would_offer(0)
        agent.accept(0)
        assert agent.would_offer(1)

    def test_inevaluable_class_never_offered(self):
        agent, __ = self.make_agent(costs=(100.0, INF))
        agent.begin_period()
        assert not agent.would_offer(1)

    def test_remaining_supply_per_global_class(self):
        agent, scheme = self.make_agent()
        agent.begin_period()
        remaining = agent.remaining_supply
        assert len(remaining) == 3
        assert remaining[0] == remaining[1]  # same bucket

    def test_rebind_capacity(self):
        agent, __ = self.make_agent()
        agent.begin_period()
        agent.end_period()
        agent.rebind_capacity(0.0)
        assert agent.begin_period().is_zero()

    def test_period_protocol(self):
        agent, __ = self.make_agent()
        assert not agent.in_period
        agent.begin_period()
        assert agent.in_period
        stats = agent.end_period()
        assert stats.planned_supply.total() >= 0


@pytest.mark.slow
class TestPrivateClassificationEndToEnd:
    def test_qant_with_private_buckets_still_works(self):
        """Section 3.3's claim: nodes with private classifications still
        run the market and serve the workload."""
        world = two_query_world(num_nodes=10, seed=3)
        trace = sinusoid_trace_for_load(
            world, load_fraction=0.8, horizon_ms=20_000.0, seed=4
        )
        runs = run_mechanisms(
            world,
            trace,
            mechanisms={
                "qa-nt-private": lambda: QantAllocator(private_buckets=2),
                "greedy": GreedyAllocator,
            },
            config=FederationConfig(seed=5, drain_ms=120_000.0),
        )
        private = runs["qa-nt-private"]
        assert private.metrics.completed == len(trace)
        # Stays in the same performance ballpark as Greedy.
        assert (
            private.mean_response_ms
            <= 2.0 * runs["greedy"].mean_response_ms
        )
