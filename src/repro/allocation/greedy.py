"""Greedy allocation: least estimated completion time (paper Section 4).

The client probes every candidate server for the estimated completion time
of its query (queue backlog plus execution time on that node) and
unilaterally assigns the query to the fastest one — which is why the paper
flags Greedy as violating server administrative autonomy.  An optional dash
of randomisation among near-best candidates is supported, as the paper
notes "a small amount of randomization may also be used".
"""

from __future__ import annotations

from typing import List

from ..query.model import Query
from .base import Allocator, AssignmentDecision

__all__ = [
    "GreedyAllocator",
]


class GreedyAllocator(Allocator):
    """Assign each query to the candidate that finishes it soonest."""

    name = "greedy"
    respects_autonomy = False
    distributed = True

    def __init__(self, randomisation: float = 0.0):
        """``randomisation`` widens the pool of acceptable candidates: any
        node within ``(1 + randomisation)`` of the best estimated
        completion may be picked uniformly.  Zero keeps classic Greedy."""
        super().__init__()
        if randomisation < 0:
            raise ValueError("randomisation must be non-negative")
        self._randomisation = randomisation

    def assign(self, query: Query) -> AssignmentDecision:
        candidates = self.context.available_candidates(query.class_index)
        if not candidates:
            return AssignmentDecision(node_id=None)
        # One probe exchange regardless of the fault regime: fault-free
        # every candidate replies; under message faults only nodes whose
        # estimate actually beat the bid timeout can be chosen, and total
        # silence is a refusal the client backs off on.
        exchange = self._request_bids(query, candidates)
        delay = exchange.delay_ms
        messages = exchange.messages
        if exchange.silent:
            return AssignmentDecision(
                node_id=None, delay_ms=delay, messages=messages
            )
        candidates = exchange.replied
        context = self.context
        nodes = context.nodes
        fleet = context.fleet
        if (
            self._randomisation == 0.0
            and fleet is not None
            and context.faults is None
            and candidates
            is context.candidates_by_class.get(query.class_index, ())
        ):
            # Vectorised probe scan: the registry tuple came back
            # unfiltered (no outages, fault-free), so the per-class view
            # is cache-stable and one argmin replaces the per-node probe
            # loop.  `estimates` is element-for-element the scalar probe
            # and first-occurrence argmin over ascending node ids matches
            # the tuple-min tie-break (lowest id at equal time).
            view = fleet.class_view(query.class_index, candidates, nodes)
            est = fleet.estimates(view, context.simulator.now)
            chosen = int(view.ids[int(est.argmin())])
            return AssignmentDecision(
                chosen, delay_ms=delay, messages=messages
            )
        completions = [
            (nodes[nid].estimated_completion_ms(query.class_index), nid)
            for nid in candidates
        ]
        best_time = min(completions)[0]
        if self._randomisation == 0.0:
            chosen = min(completions)[1]
        else:
            pool: List[int] = [
                nid
                for time_ms, nid in completions
                if time_ms <= best_time * (1.0 + self._randomisation)
            ]
            chosen = self.context.rng.choice(pool)
        return AssignmentDecision(chosen, delay_ms=delay, messages=messages)
