"""Workload traces: merged, per-class streams of arrival events.

A trace is the simulator's input: a time-ordered list of
:class:`WorkloadEvent` (arrival time, query class, origin node).  Builders
assemble traces from per-class arrival processes, including the paper's
canonical two-query sinusoid workload of Figs. 3–5.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .arrival import ArrivalProcess
from .sinusoid import PAPER_PHASE_DIFFERENCE_DEG, SinusoidArrivals
from .zipf import ZipfArrivals

__all__ = [
    "WorkloadEvent",
    "build_trace",
    "two_class_sinusoid_trace",
    "zipf_trace",
]


@dataclass(frozen=True)
class WorkloadEvent:
    """One query arrival: at ``time_ms``, a class-``class_index`` query is
    posed to the federation at client node ``origin_node``."""

    time_ms: float
    class_index: int
    origin_node: int


def build_trace(
    processes: Dict[int, ArrivalProcess],
    horizon_ms: float,
    origin_nodes: Sequence[int],
    seed: int = 0,
) -> List[WorkloadEvent]:
    """Merge per-class arrival processes into one time-ordered trace.

    ``processes`` maps class index -> arrival process; each event's origin
    node is drawn uniformly from ``origin_nodes`` (clients are spread over
    the federation, as in the paper's setup where any node may be a
    client).
    """
    if horizon_ms <= 0:
        raise ValueError("horizon must be positive")
    if not origin_nodes:
        raise ValueError("need at least one origin node")
    rng = random.Random(seed)
    events: List[WorkloadEvent] = []
    for class_index in sorted(processes):
        process = processes[class_index]
        class_rng = random.Random(rng.randrange(2**62))
        for time_ms in process.times(horizon_ms, class_rng):
            events.append(
                WorkloadEvent(
                    time_ms=time_ms,
                    class_index=class_index,
                    origin_node=class_rng.choice(list(origin_nodes)),
                )
            )
    events.sort(key=lambda e: (e.time_ms, e.class_index))
    return events


def two_class_sinusoid_trace(
    horizon_ms: float,
    q1_peak_rate_per_ms: float,
    frequency_hz: float = 0.05,
    phase_difference_deg: float = PAPER_PHASE_DIFFERENCE_DEG,
    origin_nodes: Sequence[int] = (0,),
    q1_class: int = 0,
    q2_class: int = 1,
    seed: int = 0,
) -> List[WorkloadEvent]:
    """The paper's two-query dynamic workload (Figs. 3–5).

    Q1 and Q2 arrival rates follow sinusoids at ``frequency_hz`` with the
    given phase difference; Q1's peak rate is always twice Q2's (Section
    5.1).
    """
    processes: Dict[int, ArrivalProcess] = {
        q1_class: SinusoidArrivals(
            frequency_hz=frequency_hz,
            peak_rate_per_ms=q1_peak_rate_per_ms,
        ),
        q2_class: SinusoidArrivals(
            frequency_hz=frequency_hz,
            peak_rate_per_ms=q1_peak_rate_per_ms / 2.0,
            phase_deg=phase_difference_deg,
        ),
    }
    return build_trace(processes, horizon_ms, origin_nodes, seed=seed)


def zipf_trace(
    num_classes: int,
    mean_interarrival_ms: float,
    horizon_ms: float,
    origin_nodes: Sequence[int],
    max_queries: Optional[int] = None,
    seed: int = 0,
) -> List[WorkloadEvent]:
    """The paper's heterogeneous workload (Fig. 6).

    Every class's inter-arrival gaps are truncated-Zipf(a=1) with the given
    mean; the paper generates 10,000 queries over 100 classes, so
    ``max_queries`` optionally truncates the merged trace to the first N
    events.
    """
    processes: Dict[int, ArrivalProcess] = {
        k: ZipfArrivals(mean_interarrival_ms=mean_interarrival_ms)
        for k in range(num_classes)
    }
    events = build_trace(processes, horizon_ms, origin_nodes, seed=seed)
    if max_queries is not None:
        events = events[:max_queries]
    return events
