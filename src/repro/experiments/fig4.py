"""Experiment E4 — normalised response time of all mechanisms (Figure 4).

The paper runs the two-query workload (0.05 Hz sinusoid, peak load
slightly below total system capacity) on the 100-node heterogeneous
federation and reports each mechanism's average query response time
normalised by QA-NT's.  Expected shape: QA-NT and Greedy close to 1 and
substantially better than the load balancers; random and round-robin
worst; two-random-probes between round-robin and BNQRD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..sim import FederationConfig
from .reporting import format_table
from .setups import (
    MechanismRun,
    World,
    default_mechanism_factories,
    run_mechanism,
    run_mechanisms,
    sinusoid_trace_for_load,
    two_query_world,
)
from .spec import ScalePreset, ScenarioSpec, register

__all__ = [
    "Fig4Result",
    "fig4_cell",
    "run_fig4",
]


def fig4_cell(
    mechanism: str,
    load_fraction: float,
    point_index: int,
    seed: int,
    num_nodes: int = 100,
    horizon_ms: float = 120_000.0,
    frequency_hz: float = 0.05,
    world: Optional[World] = None,
    config: Optional[FederationConfig] = None,
) -> Dict[str, float]:
    """One (mechanism, seed) cell of Figure 4.

    The seed plumbing matches :func:`run_fig4` (world ``seed``, trace
    ``seed + 1``, federation ``seed + 2``), so every mechanism of one
    seed sees the same trace regardless of which process runs the cell.
    """
    world = world or two_query_world(num_nodes=num_nodes, seed=seed)
    trace = sinusoid_trace_for_load(
        world,
        load_fraction=load_fraction,
        horizon_ms=horizon_ms,
        frequency_hz=frequency_hz,
        seed=seed + 1,
    )
    run = run_mechanism(
        world,
        trace,
        mechanism,
        default_mechanism_factories()[mechanism],
        config or FederationConfig(seed=seed + 2),
    )
    return run.metrics_dict()


@dataclass
class Fig4Result:
    """Normalised mean response time per mechanism (QA-NT = 1.0)."""

    runs: Dict[str, MechanismRun]
    normalised: Dict[str, float]

    def render(self) -> str:
        """The Figure 4 bars as a table, in paper order."""
        rows = [
            (
                name,
                self.normalised[name],
                self.runs[name].mean_response_ms,
                self.runs[name].messages,
            )
            for name in self.normalised
        ]
        return format_table(
            ("mechanism", "normalised response", "mean response (ms)", "messages"),
            rows,
        )

    def to_dict(self) -> dict:
        """JSON-ready summary: per-mechanism normalised response + runs."""
        return {
            "normalised": dict(self.normalised),
            "runs": {name: run.to_dict() for name, run in self.runs.items()},
        }


def run_fig4(
    num_nodes: int = 100,
    horizon_ms: float = 120_000.0,
    load_fraction: float = 0.7,
    frequency_hz: float = 0.05,
    seed: int = 0,
    config: Optional[FederationConfig] = None,
) -> Fig4Result:
    """Run all six mechanisms on the Figure 4 workload.

    ``load_fraction`` = 0.7 average makes peak load "slightly below total
    system capacity" (the sinusoid's instantaneous peak is about 4/3 of
    its mean).
    """
    world = two_query_world(num_nodes=num_nodes, seed=seed)
    trace = sinusoid_trace_for_load(
        world,
        load_fraction=load_fraction,
        horizon_ms=horizon_ms,
        frequency_hz=frequency_hz,
        seed=seed + 1,
    )
    runs = run_mechanisms(
        world,
        trace,
        mechanisms=default_mechanism_factories(),
        config=config or FederationConfig(seed=seed + 2),
    )
    reference = runs["qa-nt"].mean_response_ms
    normalised = {
        name: run.mean_response_ms / reference for name, run in runs.items()
    }
    return Fig4Result(runs=runs, normalised=normalised)


register(
    ScenarioSpec(
        name="fig4",
        title="Fig. 4 — normalised response of all six mechanisms",
        axis="load_fraction",
        mechanisms=tuple(default_mechanism_factories()),
        cell=fig4_cell,
        scales={
            "small": ScalePreset(
                points=(0.7,),
                fixed={"num_nodes": 30, "horizon_ms": 60_000.0},
            ),
            "paper": ScalePreset(
                points=(0.7,),
                fixed={"num_nodes": 100, "horizon_ms": 120_000.0},
            ),
        },
    )
)
