"""Experiment E4 — normalised response time of all mechanisms (Figure 4).

The paper runs the two-query workload (0.05 Hz sinusoid, peak load
slightly below total system capacity) on the 100-node heterogeneous
federation and reports each mechanism's average query response time
normalised by QA-NT's.  Expected shape: QA-NT and Greedy close to 1 and
substantially better than the load balancers; random and round-robin
worst; two-random-probes between round-robin and BNQRD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..sim import FederationConfig
from .reporting import format_table
from .setups import (
    MechanismRun,
    default_mechanism_factories,
    run_mechanisms,
    sinusoid_trace_for_load,
    two_query_world,
)

__all__ = [
    "Fig4Result",
    "run_fig4",
]


@dataclass
class Fig4Result:
    """Normalised mean response time per mechanism (QA-NT = 1.0)."""

    runs: Dict[str, MechanismRun]
    normalised: Dict[str, float]

    def render(self) -> str:
        """The Figure 4 bars as a table, in paper order."""
        rows = [
            (
                name,
                self.normalised[name],
                self.runs[name].mean_response_ms,
                self.runs[name].messages,
            )
            for name in self.normalised
        ]
        return format_table(
            ("mechanism", "normalised response", "mean response (ms)", "messages"),
            rows,
        )


def run_fig4(
    num_nodes: int = 100,
    horizon_ms: float = 120_000.0,
    load_fraction: float = 0.7,
    frequency_hz: float = 0.05,
    seed: int = 0,
    config: Optional[FederationConfig] = None,
) -> Fig4Result:
    """Run all six mechanisms on the Figure 4 workload.

    ``load_fraction`` = 0.7 average makes peak load "slightly below total
    system capacity" (the sinusoid's instantaneous peak is about 4/3 of
    its mean).
    """
    world = two_query_world(num_nodes=num_nodes, seed=seed)
    trace = sinusoid_trace_for_load(
        world,
        load_fraction=load_fraction,
        horizon_ms=horizon_ms,
        frequency_hz=frequency_hz,
        seed=seed + 1,
    )
    runs = run_mechanisms(
        world,
        trace,
        mechanisms=default_mechanism_factories(),
        config=config or FederationConfig(seed=seed + 2),
    )
    reference = runs["qa-nt"].mean_response_ms
    normalised = {
        name: run.mean_response_ms / reference for name, run in runs.items()
    }
    return Fig4Result(runs=runs, normalised=normalised)
