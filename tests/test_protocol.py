"""Tests of the transport-agnostic market-protocol core (repro.protocol).

Three concerns:

* the versioned JSON codec — hypothesis round-trip identity for every
  message type, unknown-field tolerance, version pinning, and strict
  rejection of malformed envelopes;
* the MarketSession negotiation state machine — winner rule, timeout /
  refusal handling, retry accounting, and a backoff formula that stays
  bit-identical to the simulator's fault layer;
* sim-vs-protocol equivalence — ``Network.fanout``'s FanoutResult must
  match the legacy ``faulty_fanout`` tuple contract draw for draw on
  seeded runs, in both fault regimes.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol import (
    MESSAGE_TYPES,
    PROTOCOL_VERSION,
    AssignQuery,
    BidRequest,
    CompletionReport,
    FanoutResult,
    MarketSession,
    NegotiationPolicy,
    PeriodTick,
    ProtocolError,
    Quote,
    Refusal,
    SessionState,
    Transport,
    decode,
    encode,
    message_tag,
)
from repro.sim.faults import FaultInjector, FaultSpec
from repro.sim.transport import SimTransport

# ------------------------------------------------------------------ codec

ids = st.integers(min_value=0, max_value=2**31 - 1)
node_ids = st.integers(min_value=-1, max_value=10_000)
finite_ms = st.floats(
    min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
)

MESSAGE_STRATEGIES = {
    "bid_request": st.builds(
        BidRequest,
        qid=ids,
        class_index=ids,
        origin_node=node_ids,
        attempt=ids,
    ),
    "quote": st.builds(
        Quote,
        qid=ids,
        node_id=node_ids,
        class_index=ids,
        estimated_completion_ms=finite_ms,
    ),
    "refusal": st.builds(
        Refusal, qid=ids, node_id=node_ids, class_index=ids
    ),
    "assign_query": st.builds(
        AssignQuery, qid=ids, node_id=node_ids, class_index=ids
    ),
    "completion_report": st.builds(
        CompletionReport,
        qid=ids,
        node_id=node_ids,
        class_index=ids,
        started_ms=finite_ms,
        finished_ms=finite_ms,
    ),
    "period_tick": st.builds(
        PeriodTick, period_index=ids, period_ms=finite_ms
    ),
}

any_message = st.one_of(*MESSAGE_STRATEGIES.values())


class TestCodec:
    def test_strategies_cover_every_message_type(self):
        assert set(MESSAGE_STRATEGIES) == set(MESSAGE_TYPES)

    @given(message=any_message)
    @settings(max_examples=200, deadline=None)
    def test_round_trip_identity(self, message):
        assert decode(encode(message)) == message

    @given(message=any_message)
    @settings(max_examples=50, deadline=None)
    def test_encoding_is_canonical(self, message):
        # sort_keys + compact separators: equal messages, equal bytes.
        assert encode(message) == encode(decode(encode(message)))
        envelope = json.loads(encode(message))
        assert envelope["v"] == PROTOCOL_VERSION
        assert envelope["type"] == message_tag(message)

    @given(message=any_message, junk=st.text(min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_unknown_body_fields_are_tolerated(self, message, junk):
        envelope = json.loads(encode(message))
        if junk in envelope["body"]:
            return
        envelope["body"][junk] = "future-extension"
        assert decode(json.dumps(envelope)) == message

    @given(
        message=any_message,
        version=st.integers().filter(lambda v: v != PROTOCOL_VERSION),
    )
    @settings(max_examples=50, deadline=None)
    def test_version_is_pinned(self, message, version):
        envelope = json.loads(encode(message))
        envelope["v"] = version
        with pytest.raises(ProtocolError):
            decode(json.dumps(envelope))

    @pytest.mark.parametrize(
        "payload",
        [
            "not json",
            "[]",
            '{"type": "quote", "body": {}}',  # missing version
            '{"v": 1, "type": "no_such_type", "body": {}}',
            '{"v": 1, "type": "quote", "body": []}',
            '{"v": 1, "type": "quote", "body": {}}',  # missing fields
            # wrong field shapes
            '{"v": 1, "type": "refusal", "body": '
            '{"qid": "x", "node_id": 1, "class_index": 0}}',
            '{"v": 1, "type": "refusal", "body": '
            '{"qid": true, "node_id": 1, "class_index": 0}}',
            '{"v": 1, "type": "quote", "body": {"qid": 1, "node_id": 1, '
            '"class_index": 0, "estimated_completion_ms": "soon"}}',
        ],
    )
    def test_malformed_payloads_raise(self, payload):
        with pytest.raises(ProtocolError):
            decode(payload)

    def test_non_finite_floats_are_unencodable(self):
        quote = Quote(
            qid=1,
            node_id=2,
            class_index=0,
            estimated_completion_ms=math.inf,
        )
        with pytest.raises(ProtocolError):
            encode(quote)

    def test_non_message_objects_have_no_tag(self):
        with pytest.raises(ProtocolError):
            message_tag("hello")  # type: ignore[arg-type]


# --------------------------------------------------------- wire framing


class TestFrameCodec:
    """Length-prefix framing under the tcp ShardTransport (see
    repro.sim.shards): every split point must reassemble identically."""

    def test_round_trip_single_frame(self):
        from repro.protocol import FrameDecoder, encode_frame

        payload = encode(BidRequest(qid=1, class_index=0, origin_node=-1))
        frames = FrameDecoder().feed(encode_frame(payload.encode("utf-8")))
        assert [f.decode("utf-8") for f in frames] == [payload]

    @given(st.integers(1, 40))
    @settings(max_examples=40)
    def test_reassembly_at_every_split_point(self, split):
        from repro.protocol import FrameDecoder, encode_frame

        stream = encode_frame(b"alpha") + encode_frame(b"") + encode_frame(
            b"beta-" * 4
        )
        split = min(split, len(stream))
        decoder = FrameDecoder()
        frames = decoder.feed(stream[:split])
        frames += decoder.feed(stream[split:])
        assert frames == [b"alpha", b"", b"beta-" * 4]
        assert decoder.pending_bytes == 0

    def test_several_frames_per_chunk_stay_ordered(self):
        from repro.protocol import FrameDecoder, encode_frame

        chunks = [encode_frame(str(n).encode()) for n in range(5)]
        assert FrameDecoder().feed(b"".join(chunks)) == [
            str(n).encode() for n in range(5)
        ]

    def test_partial_header_is_buffered_not_decoded(self):
        from repro.protocol import FrameDecoder, encode_frame

        stream = encode_frame(b"x")
        decoder = FrameDecoder()
        assert decoder.feed(stream[:3]) == []
        assert decoder.pending_bytes == 3
        assert decoder.feed(stream[3:]) == [b"x"]

    def test_oversized_frames_rejected_both_directions(self):
        import struct

        from repro.protocol import MAX_FRAME_BYTES, FrameDecoder, encode_frame

        class _Huge(bytes):
            def __len__(self):
                return MAX_FRAME_BYTES + 1

        with pytest.raises(ValueError):
            encode_frame(_Huge())
        hostile = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ValueError):
            FrameDecoder().feed(hostile)


# --------------------------------------------------------- MarketSession


class ScriptedTransport(Transport):
    """Replays a scripted list of FanoutResults, recording each request."""

    def __init__(self, results):
        self._results = list(results)
        self.requests = []

    def fanout(self, origin, peers, request=None):
        self.requests.append((origin, tuple(peers), request))
        return self._results.pop(0)


def _quote(qid, node_id, ms):
    return Quote(
        qid=qid, node_id=node_id, class_index=0, estimated_completion_ms=ms
    )


def _bid_round(peers, quotes, delay=1.0):
    replied = tuple(q.node_id for q in quotes)
    return FanoutResult(
        delay_ms=delay,
        messages=2 * len(peers),
        delivered=tuple(peers),
        replied=replied,
        replies=tuple(quotes),
    )


def _confirm(node_id, delay=0.5, replies=()):
    return FanoutResult(
        delay_ms=delay,
        messages=2,
        delivered=(node_id,),
        replied=(node_id,),
        replies=tuple(replies),
    )


class TestMarketSession:
    def test_winner_rule_earliest_completion_lowest_id(self):
        quotes = [_quote(1, 5, 20.0), _quote(1, 3, 10.0), _quote(1, 4, 10.0)]
        best = MarketSession.best_quote(quotes)
        assert best is not None and best.node_id == 3
        assert MarketSession.best_quote([]) is None

    def test_successful_round_assigns_and_confirms(self):
        peers = (1, 2, 3)
        report = CompletionReport(
            qid=7, node_id=2, class_index=0, started_ms=0.0, finished_ms=9.0
        )
        transport = ScriptedTransport(
            [
                _bid_round(peers, [_quote(7, 2, 9.0), _quote(7, 3, 11.0)]),
                _confirm(2, replies=[report]),
            ]
        )
        session = MarketSession(transport)
        outcome = session.negotiate_once(
            BidRequest(qid=7, class_index=0, origin_node=0), peers
        )
        assert outcome.assigned and outcome.node_id == 2
        assert outcome.state is SessionState.ASSIGNED
        assert outcome.delay_ms == pytest.approx(1.5)
        assert outcome.messages == 8
        assert outcome.quotes_seen == 2
        assert outcome.backoff_ms == 0.0
        assert outcome.completion == report
        # The confirm leg carried an AssignQuery addressed to the winner.
        __, confirm_peers, confirm_request = transport.requests[1]
        assert confirm_peers == (2,)
        assert confirm_request == AssignQuery(
            qid=7, node_id=2, class_index=0
        )

    def test_silent_round_backs_off_with_policy_delay(self):
        peers = (1, 2)
        transport = ScriptedTransport(
            [FanoutResult(10.0, 2, (), ())]  # total silence
        )
        policy = NegotiationPolicy(backoff_base_ms=100.0)
        session = MarketSession(transport, policy)
        outcome = session.negotiate_once(
            BidRequest(qid=1, class_index=0, origin_node=0, attempt=2), peers
        )
        assert not outcome.assigned
        assert outcome.state is SessionState.BACKOFF
        assert outcome.backoff_ms == policy.backoff_ms(2)
        assert outcome.delay_ms == pytest.approx(10.0 + policy.backoff_ms(2))

    def test_lost_confirm_is_a_refusal(self):
        peers = (1,)
        transport = ScriptedTransport(
            [
                _bid_round(peers, [_quote(1, 1, 5.0)]),
                FanoutResult(10.0, 1, (), ()),  # confirm leg lost
            ]
        )
        session = MarketSession(transport)
        outcome = session.negotiate_once(
            BidRequest(qid=1, class_index=0, origin_node=0), peers
        )
        assert not outcome.assigned
        assert outcome.state is SessionState.BACKOFF

    def test_negotiate_retries_with_incremented_attempt(self):
        peers = (1,)
        transport = ScriptedTransport(
            [
                _bid_round(peers, []),  # round 1: all refuse
                _bid_round(peers, [_quote(1, 1, 5.0)]),  # round 2: quote
                _confirm(1),
            ]
        )
        policy = NegotiationPolicy(max_attempts=3)
        session = MarketSession(transport, policy)
        request = BidRequest(qid=1, class_index=0, origin_node=0)
        outcome = session.negotiate(request, peers)
        assert outcome.assigned and outcome.attempts == 2
        # Total delay includes round 1's backoff at attempt 0.
        assert outcome.backoff_ms == policy.backoff_ms(0)
        # The resubmission carried attempt=1 on the wire.
        assert transport.requests[1][2].attempt == 1
        # The outcome reports the *original* request.
        assert outcome.request == request

    def test_negotiate_fails_after_max_attempts(self):
        peers = (1,)
        transport = ScriptedTransport([_bid_round(peers, [])] * 2)
        session = MarketSession(
            transport, NegotiationPolicy(max_attempts=2)
        )
        outcome = session.negotiate(
            BidRequest(qid=1, class_index=0, origin_node=0), peers
        )
        assert not outcome.assigned
        assert outcome.attempts == 2
        assert outcome.state is SessionState.FAILED
        assert session.state is SessionState.FAILED


class TestNegotiationPolicy:
    @given(attempt=st.integers(min_value=0, max_value=60))
    @settings(max_examples=60, deadline=None)
    def test_backoff_matches_fault_injector_bit_for_bit(self, attempt):
        spec = FaultSpec(
            drop_probability=0.01,
            bid_timeout_ms=12.0,
            backoff_base_ms=130.0,
            backoff_factor=1.7,
            backoff_cap_ms=3_000.0,
        )
        injector = FaultInjector(spec)
        policy = spec.negotiation_policy
        assert policy.backoff_ms(attempt) == injector.backoff_ms(attempt)

    @given(
        attempt=st.integers(min_value=0, max_value=100),
        base=st.floats(min_value=1.0, max_value=1_000.0),
        factor=st.floats(min_value=1.0, max_value=4.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_backoff_monotone_and_capped(self, attempt, base, factor):
        policy = NegotiationPolicy(
            backoff_base_ms=base,
            backoff_factor=factor,
            backoff_cap_ms=base * 10,
        )
        here = policy.backoff_ms(attempt)
        assert base <= here <= policy.backoff_cap_ms
        assert here <= policy.backoff_ms(attempt + 1)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            NegotiationPolicy().backoff_ms(-1)

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            NegotiationPolicy(bid_timeout_ms=0.0)
        with pytest.raises(ValueError):
            NegotiationPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            NegotiationPolicy(backoff_cap_ms=1.0, backoff_base_ms=2.0)
        with pytest.raises(ValueError):
            NegotiationPolicy(max_attempts=0)


# ------------------------------------------- sim-vs-protocol equivalence


def _seeded_network(seed, spec=None):
    from repro.sim.engine import Simulator
    from repro.sim.network import Network

    network = Network(Simulator(), seed=seed)
    if spec is not None:
        network.attach_faults(FaultInjector(spec))
    return network


CHAOS_SPEC = FaultSpec(
    drop_probability=0.15,
    spike_probability=0.1,
    spike_ms=30.0,
    bid_timeout_ms=10.0,
    fault_seed=7,
)


class TestSimProtocolEquivalence:
    @pytest.mark.parametrize("spec", [None, CHAOS_SPEC])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fanout_matches_legacy_tuple_contract(self, spec, seed):
        """FanoutResult and the legacy 4-tuple agree draw for draw."""
        protocol_net = _seeded_network(seed, spec)
        legacy_net = _seeded_network(seed, spec)
        for round_index in range(20):
            peers = tuple(range(1, 2 + (round_index % 9)))
            result = protocol_net.fanout(0, peers)
            legacy = legacy_net.faulty_fanout(0, peers)
            assert result.as_legacy_tuple() == legacy
            assert protocol_net.messages_sent == legacy_net.messages_sent

    @pytest.mark.parametrize("seed", [0, 3])
    def test_sim_transport_is_a_pure_adapter(self, seed):
        """SimTransport.fanout returns exactly Network.fanout's result,
        whether or not a request message is supplied."""
        adapted = _seeded_network(seed, CHAOS_SPEC)
        direct = _seeded_network(seed, CHAOS_SPEC)
        transport = SimTransport(adapted)
        request = BidRequest(qid=1, class_index=0, origin_node=0)
        for round_index in range(10):
            peers = (1, 2, 3)
            via_transport = transport.fanout(
                0, peers, request if round_index % 2 else None
            )
            assert via_transport == direct.fanout(0, peers)
            # The simulator charges exchanges; it never builds payloads.
            assert via_transport.replies == ()

    def test_fault_free_fanout_matches_round_trip_draws(self):
        """Fault-free, fanout consumes exactly round_trip_ms's draws."""
        fanout_net = _seeded_network(5)
        legacy_net = _seeded_network(5)
        for num_peers in (1, 2, 7, 20):
            peers = tuple(range(num_peers))
            result = fanout_net.fanout(99, peers)
            assert result.delay_ms == legacy_net.round_trip_ms(num_peers)
            assert result.messages == 2 * num_peers
            assert result.delivered == peers
            assert result.replied == peers
            assert not result.silent
