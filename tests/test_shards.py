"""Sharded federation: partitioning, determinism, goldens, transport.

Three properties carry the whole design (see DESIGN.md §7):

* ``shards=1`` is *byte-identical* to the single-process engine — the
  sharded front delegates outright, so every existing golden keeps
  pinning it;
* ``shards>1`` is *invariant* across shard counts and worker modes —
  every cross-node decision is made on the coordinator over globally
  ordered events, and per-node state (latency RNG streams, busy clocks)
  is keyed by node id, never by shard layout;
* the cross-shard conversation is real protocol traffic — batched
  ``BidRequest``/``Quote``/``PeriodTick`` messages through the
  ``repro.protocol`` codec over the pipe-backed ``ShardTransport``.
"""

import functools
import json
import pathlib
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.allocation import GreedyAllocator, QantAllocator
from repro.experiments.scaling import (
    quantise_trace,
    reconcile_scaling_cell,
    sharded_scaling_cell,
)
from repro.experiments.setups import (
    run_mechanism,
    sinusoid_trace_for_load,
    two_query_world,
    zipf_world,
)
from repro.protocol import BidRequest, Quote, decode, encode
from repro.sim import (
    FederationConfig,
    MetricsCollector,
    ShardedFederation,
    ShardTransport,
    derive_shard_seed,
    plan_shards,
    split_market_classes,
)
from repro.sim.faults import derive_fault_seed
from repro.sim.shards import _CORE_KINDS
from repro.workload.trace import zipf_trace

from test_golden_trace import _outcome_digest

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def _small_world():
    world = two_query_world(num_nodes=30, seed=0)
    trace = sinusoid_trace_for_load(
        world,
        load_fraction=1.5,
        horizon_ms=2_000.0,
        frequency_hz=0.05,
        seed=10,
    )
    return world, trace


def _sharded(world, shards, mode="inline"):
    return ShardedFederation(
        world.specs,
        world.placement,
        world.classes,
        world.cost_model,
        config=FederationConfig(seed=2),
        shards=shards,
        mode=mode,
    )


# ---------------------------------------------------------------------------
# partitioner


def test_derive_shard_seed_matches_fault_scheme():
    """Shard RNG seeds reuse the fault layer's sha256 derivation."""
    assert derive_shard_seed(7, ("shard-node-latency", 3)) == derive_fault_seed(
        7, ("shard-node-latency", 3)
    )
    assert derive_shard_seed(7, ("a",)) != derive_shard_seed(8, ("a",))


def test_plan_shards_groups_overlapping_bidder_sets():
    """Classes whose bidder sets overlap land on one shard (affinity)."""
    candidates = {0: (0, 1, 2), 1: (2, 3), 2: (5, 6)}
    plan = plan_shards(candidates, node_ids=range(8), num_shards=2)
    shard_of = plan.node_to_shard
    # 0-3 share classes 0/1 transitively; 5-6 share class 2.
    assert len({shard_of[n] for n in (0, 1, 2, 3)}) == 1
    assert len({shard_of[n] for n in (5, 6)}) == 1
    # Every node is placed exactly once.
    placed = [n for shard in plan.shard_nodes for n in shard]
    assert sorted(placed) == list(range(8))


def test_plan_shards_is_deterministic_and_balanced():
    candidates = {k: tuple(range(k, k + 3)) for k in range(0, 30, 3)}
    a = plan_shards(candidates, range(40), 4)
    b = plan_shards(candidates, range(40), 4)
    assert a == b
    sizes = [len(shard) for shard in a.shard_nodes]
    assert max(sizes) - min(sizes) <= 1
    assert a.imbalance() >= 1.0


def test_plan_shards_rejects_bad_counts():
    with pytest.raises(ValueError):
        plan_shards({}, range(4), 0)
    with pytest.raises(ValueError):
        plan_shards({}, range(4), 5)


# ---------------------------------------------------------------------------
# shards=1 — byte identity with the single-process engine


def test_shards1_byte_identical_to_single_process():
    world, trace = _small_world()
    for mechanism, factory in (
        ("qa-nt", QantAllocator),
        ("greedy", GreedyAllocator),
    ):
        direct = run_mechanism(
            world, trace, mechanism, factory, FederationConfig(seed=2)
        )
        result = _sharded(world, shards=1).run(trace, mechanism)
        assert result.outcome_digest() == _outcome_digest(
            direct.metrics.outcomes
        )
        assert result.completed == direct.metrics.completed
        assert result.messages == direct.messages
        assert result.mean_response_ms() == pytest.approx(
            direct.metrics.mean_response_ms(), abs=0.0
        )


# ---------------------------------------------------------------------------
# shards>1 — invariance across shard counts and worker modes


def test_invariant_payload_across_shard_counts_and_modes():
    """The sharded market's decisions do not depend on the partition.

    Inline vs fork pins the wire codec round trip (inline shards speak
    the same encoded frames); 2 vs 3 shards pins the merge order and the
    node-keyed RNG streams.
    """
    world, trace = _small_world()
    for mechanism in ("qa-nt", "greedy"):
        payloads = []
        for shards, mode in ((2, "inline"), (3, "inline"), (2, "fork")):
            with _sharded(world, shards, mode) as federation:
                payloads.append(
                    federation.run(trace, mechanism).invariant_payload()
                )
        assert payloads[0] == payloads[1] == payloads[2]
        assert payloads[0]["completed"] > 0


def test_rerun_on_same_federation_is_identical():
    """Worker reuse across runs must not leak state between runs."""
    world, trace = _small_world()
    with _sharded(world, 2, "fork") as federation:
        first = federation.run(trace, "qa-nt").invariant_payload()
        second = federation.run(trace, "qa-nt").invariant_payload()
    assert first == second


def test_shard_counters_surface_in_batch_summary():
    world, trace = _small_world()
    with _sharded(world, 2) as federation:
        summary = federation.run(trace, "qa-nt").batch_summary()
    assert summary["shards"] == 2.0
    assert summary["cross_shard_bids"] > 0
    assert summary["barrier_wait_ms"] >= 0.0
    assert summary["shard_imbalance"] >= 1.0
    # The single-process path must NOT grow these keys: existing goldens
    # serialise batch_summary() and would break.
    single = MetricsCollector().batch_summary()
    for key in ("cross_shard_bids", "barrier_wait_ms", "shard_imbalance"):
        assert key not in single


# ---------------------------------------------------------------------------
# the 1,000-node golden (shard-count/jobs invariant by construction)


def _sharded_1000node_payload(shards: int, mode: str) -> str:
    world = two_query_world(num_nodes=1_000, seed=0)
    trace = quantise_trace(
        sinusoid_trace_for_load(
            world,
            load_fraction=1.5,
            horizon_ms=2_000.0,
            frequency_hz=0.05,
            seed=10,
        ),
        25.0,
    )
    payload = {}
    with ShardedFederation(
        world.specs,
        world.placement,
        world.classes,
        world.cost_model,
        config=FederationConfig(seed=2),
        shards=shards,
        mode=mode,
    ) as federation:
        for mechanism in ("qa-nt", "greedy"):
            payload[mechanism] = federation.run(
                trace, mechanism
            ).invariant_payload()
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def test_sharded_1000node_matches_golden():
    """The 4-shard forked 1,000-node pair reproduces the stored payload."""
    assert _sharded_1000node_payload(4, "fork") == (
        GOLDEN_DIR / "sharded_1000node_seed0.json"
    ).read_text()


@pytest.mark.slow
def test_sharded_1000node_golden_is_shard_count_invariant():
    """The same golden re-verifies at a different shard count and mode —
    the "identical across --jobs/shard-count re-runs" acceptance pin."""
    assert _sharded_1000node_payload(2, "inline") == (
        GOLDEN_DIR / "sharded_1000node_seed0.json"
    ).read_text()


# ---------------------------------------------------------------------------
# transport


def test_shard_transport_fanout_speaks_protocol():
    """A BidRequest fan-out over ShardTransport returns decoded Quotes."""
    world, __ = _small_world()
    with _sharded(world, 2) as federation:
        transport = federation.transport
        peers = tuple(range(transport.num_shards))
        before = transport.messages
        result = transport.fanout(
            -1, peers, BidRequest(qid=1, class_index=0, origin_node=-1)
        )
        assert result.delivered == peers
        assert result.replied == peers
        assert result.replies, "candidate servers must answer with quotes"
        assert all(isinstance(reply, Quote) for reply in result.replies)
        assert all(reply.class_index == 0 for reply in result.replies)
        # One request leg + one reply batch per shard.
        assert transport.messages - before == 2 * len(peers)


def test_shard_transport_requires_real_message():
    from repro.protocol import ProtocolError

    world, __ = _small_world()
    with _sharded(world, 2) as federation:
        with pytest.raises(ProtocolError):
            federation.transport.fanout(-1, (0,), None)


def test_sharded_scaling_cell_shape():
    payload = sharded_scaling_cell(
        "qa-nt", 2, 0, 0, num_nodes=30, mode="inline"
    )
    for key in (
        "shards",
        "completed",
        "wall_ms",
        "cross_shard_bids",
        "shard_imbalance",
    ):
        assert key in payload
    assert payload["shards"] == 2.0
    # The shards=1 origin delegates to the single-process engine; the
    # sweep aggregator indexes every cell by one uniform key set, so the
    # origin must carry (zeroed) shard counters too.  (Its *metrics* are
    # the legacy engine's, not the tick-barrier plane's — invariance
    # across counts holds among the multi-process points, shards >= 2.)
    origin = sharded_scaling_cell(
        "qa-nt", 1, 0, 0, num_nodes=30, mode="inline"
    )
    assert set(origin) == set(payload)
    assert origin["shards"] == 1.0
    assert origin["cross_shard_bids"] == 0.0
    assert origin["barrier_wait_ms"] == 0.0
    assert origin["shard_imbalance"] == 1.0


# ---------------------------------------------------------------------------
# local market planes (market="local") — ownership, exactness, reconciliation


@functools.lru_cache(maxsize=1)
def _zipf_small():
    """The affinity-rich local-market fixture: most classes shard-local."""
    world = zipf_world(num_nodes=50, num_classes=20, seed=0)
    trace = tuple(
        zipf_trace(
            20,
            mean_interarrival_ms=120.0,
            horizon_ms=60_000.0,
            origin_nodes=list(world.placement.node_ids),
            max_queries=400,
            seed=10,
        )
    )
    return world, trace


def _local(world, shards, mode="inline", interval=1):
    return ShardedFederation(
        world.specs,
        world.placement,
        world.classes,
        world.cost_model,
        config=FederationConfig(seed=2),
        shards=shards,
        mode=mode,
        market="local",
        reconcile_interval=interval,
    )


@functools.lru_cache(maxsize=4)
def _local_baseline(mechanism: str):
    """Canonical invariant payload: 2 inline shards, reconcile every tick."""
    world, trace = _zipf_small()
    with _local(world, 2, "inline", 1) as federation:
        return federation.run(list(trace), mechanism).invariant_payload()


def test_split_market_classes_component_granular():
    """Ownership is decided per affinity component, never per class."""
    candidates = {0: (0, 1), 1: (1, 2), 2: (5, 6), 3: (7,)}
    plan = plan_shards(candidates, node_ids=range(8), num_shards=2)
    owner = split_market_classes(candidates, plan)
    assert set(owner) == {0, 1, 2, 3}
    shard_of = plan.node_to_shard
    # Classes 0 and 1 share node 1: one component, one verdict for both.
    assert owner[0] == owner[1]
    for k, cand in candidates.items():
        shards_touched = {shard_of[n] for n in cand}
        if owner[k] >= 0:
            assert shards_touched == {owner[k]}
        else:
            assert len(shards_touched) > 1


def test_local_market_matches_coordinator_plane():
    """The N+1-plane engine reproduces the coordinator-market decisions
    bit for bit — the PR-level exactness contract (DESIGN.md §7)."""
    world, trace = _zipf_small()
    for mechanism in ("qa-nt", "greedy"):
        with _sharded(world, 2) as federation:
            coordinator = federation.run(
                list(trace), mechanism
            ).invariant_payload()
        assert _local_baseline(mechanism) == coordinator


@pytest.mark.parametrize("mode", ["inline", "fork", "tcp"])
def test_local_market_invariant_across_transport_modes(mode):
    """Pipe, socket and inline planes make identical decisions — the tcp
    leg pins the JSON-frame wire's float round-trip on every CI run."""
    world, trace = _zipf_small()
    with _local(world, 2, mode, interval=4) as federation:
        payload = federation.run(list(trace), "qa-nt").invariant_payload()
    assert payload == _local_baseline("qa-nt")
    assert payload["completed"] > 0


@given(
    shards=st.sampled_from([2, 4, 8]),
    mode=st.sampled_from(["inline", "fork", "tcp"]),
    interval=st.sampled_from([1, 4, 16]),
    mechanism=st.sampled_from(["qa-nt", "greedy"]),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_local_market_invariance_property(shards, mode, interval, mechanism):
    """Invariant payload is identical across shard counts, transport
    modes and reconciliation intervals: reconciliation bounds *quote*
    staleness for cross-shard observers, never market arithmetic."""
    world, trace = _zipf_small()
    with _local(world, shards, mode, interval) as federation:
        payload = federation.run(list(trace), mechanism).invariant_payload()
    assert payload == _local_baseline(mechanism)


def test_reconcile_counters_surface_in_batch_summary():
    world, trace = _zipf_small()
    with _local(world, 2, "inline", interval=4) as federation:
        summary = federation.run(list(trace), "qa-nt").batch_summary()
    assert summary["reconcile_interval"] == 4.0
    assert summary["reconcile_barriers"] >= 1.0
    assert 1.0 <= summary["reconcile_lag_ticks_max"] <= 4.0
    assert summary["price_staleness_max"] >= 0.0
    assert summary["overlapped_frames"] > 0.0
    assert summary["local_classes"] > 0.0
    assert summary["local_classes"] + summary["residual_classes"] == 20.0
    # Coordinator-market runs must NOT grow these keys: their goldens
    # serialise batch_summary() and would break.
    with _sharded(world, 2) as federation:
        coordinator = federation.run(list(trace), "qa-nt").batch_summary()
    for key in ("reconcile_barriers", "price_staleness_max"):
        assert key not in coordinator
        assert key not in MetricsCollector().batch_summary()


def test_stale_quotes_and_prices_from_last_barrier():
    world, trace = _zipf_small()
    with _local(world, 2, "inline", interval=4) as federation:
        federation.run(list(trace), "qa-nt")
        candidates = sorted(world.classes[0].candidate_nodes(world.placement))
        quotes = federation.stale_quotes(0, now=0.0)
        assert [nid for nid, __ in quotes] == candidates
        assert all(est >= 0.0 for __, est in quotes)
        prices = federation.stale_prices(0)
        assert prices is not None and len(prices) == len(candidates)
    # The bounded-staleness mirror only exists on local-market fronts.
    with _sharded(world, 2) as federation:
        with pytest.raises(RuntimeError):
            federation.stale_quotes(0)
        with pytest.raises(RuntimeError):
            federation.stale_prices(0)


def test_shard_self_time_feeds_profile_schema_v2():
    from repro.profiling import read_profile_payload

    world, trace = _zipf_small()
    with _local(world, 2, "fork", interval=4) as federation:
        federation.run(list(trace), "qa-nt")
        times = federation.shard_self_time_s()
    assert len(times) == 2
    assert all(t >= 0.0 for t in times)
    assert sum(times) > 0.0
    # v1 payloads stay readable; v2 keeps the shards section.
    v1 = {"schema_version": 1, "kind": "profile", "rows": []}
    assert read_profile_payload(v1)["shards"] == []


def test_tcp_workers_report_child_rss():
    """`bench --mem` coverage for socket workers: the collect barrier
    folds every tcp child's ru_maxrss into ``child_peak_kb()``."""
    world, trace = _zipf_small()
    with _local(world, 2, "tcp", interval=4) as federation:
        federation.run(list(trace), "qa-nt")
        transport = federation.transport
        assert transport.child_peak_kb() > 0
        def fn():
            return None

        fn.child_peak_kb = transport.child_peak_kb
        from repro.bench.harness import measure_peak

        assert measure_peak(fn) >= transport.child_peak_kb()


# ---------------------------------------------------------------------------
# frame ordering under scripted worker delays


class _SleepyEchoCore:
    """Scripted-delay worker double: answers a fan-out with one Quote
    carrying its own identity, after sleeping its scripted delay."""

    def __init__(self, init):
        self._ident = int(init["ident"])
        self._delay_s = float(init["delay_s"])

    def handle(self, frame):
        if frame[0] == "fanout":
            time.sleep(self._delay_s)
            request = decode(frame[1])
            return {
                "replies": [
                    encode(
                        Quote(
                            qid=request.qid,
                            node_id=self._ident,
                            class_index=request.class_index,
                            estimated_completion_ms=float(self._ident),
                        )
                    )
                ]
            }
        return {"ok": True}


@pytest.mark.parametrize("mode", ["fork", "tcp"])
def test_out_of_order_replies_keep_fixed_shard_merge(mode):
    """A slow shard 0 lets shard 1's reply reach the coordinator first;
    the merge must still come back in fixed shard order."""
    inits = [
        {"kind": "test-sleepy", "ident": 0, "delay_s": 0.25},
        {"kind": "test-sleepy", "ident": 1, "delay_s": 0.0},
    ]
    _CORE_KINDS["test-sleepy"] = _SleepyEchoCore
    try:
        transport = ShardTransport(inits, mode=mode)
        try:
            started = time.perf_counter()
            result = transport.fanout(
                -1, (0, 1), BidRequest(qid=7, class_index=3, origin_node=-1)
            )
            elapsed = time.perf_counter() - started
            assert [q.node_id for q in result.replies] == [0, 1]
            assert result.replied == (0, 1)
            # Both requests were in flight together: the barrier costs
            # max(delays), not their sum (double-buffering's guarantee).
            assert elapsed < 2 * 0.25
        finally:
            transport.close()
    finally:
        del _CORE_KINDS["test-sleepy"]


# ---------------------------------------------------------------------------
# the local-market golden (shard/mode/R invariant by construction)


def _localmarket_zipf_payload(shards: int, mode: str, interval: int) -> str:
    world, trace = _zipf_small()
    payload = {}
    with _local(world, shards, mode, interval) as federation:
        for mechanism in ("qa-nt", "greedy"):
            payload[mechanism] = federation.run(
                list(trace), mechanism
            ).invariant_payload()
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def test_localmarket_zipf_matches_golden():
    """The 4-shard forked R=4 Zipf pair reproduces the stored payload."""
    assert _localmarket_zipf_payload(4, "fork", 4) == (
        GOLDEN_DIR / "localmarket_zipf_seed0.json"
    ).read_text()


@pytest.mark.slow
def test_localmarket_golden_is_config_invariant():
    """The same golden re-verifies over sockets at a different shard
    count and reconciliation cadence."""
    assert _localmarket_zipf_payload(2, "tcp", 16) == (
        GOLDEN_DIR / "localmarket_zipf_seed0.json"
    ).read_text()


def test_reconcile_scaling_cell_shape_and_invariance():
    cells = {
        interval: reconcile_scaling_cell(
            "qa-nt",
            interval,
            0,
            0,
            num_nodes=30,
            num_classes=10,
            shards=2,
            max_queries=120,
            mode="inline",
        )
        for interval in (1, 4)
    }
    for interval, cell in cells.items():
        assert cell["reconcile_interval"] == float(interval)
        assert cell["shards"] == 2.0
        assert cell["local_classes"] + cell["residual_classes"] == 10.0
        assert set(cell) == set(cells[1])
    # R moves barrier cadence and staleness, never the market outcome.
    for key in ("completed", "mean_response_ms", "p99_response_ms"):
        assert cells[1][key] == cells[4][key]
    assert cells[1]["reconcile_barriers"] >= cells[4]["reconcile_barriers"]
