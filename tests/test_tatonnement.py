"""Unit tests for repro.core.tatonnement (the centralised umpire)."""

import pytest

from repro.core.market import PriceVector, is_equilibrium
from repro.core.supply import CapacitySupplySet
from repro.core.tatonnement import TatonnementUmpire
from repro.core.vectors import QueryVector, aggregate


def two_node_market():
    """Two complementary sellers, demand requiring both to specialise."""
    supply_sets = [
        CapacitySupplySet([100.0, 200.0], 1000.0),  # fast at class 0
        CapacitySupplySet([200.0, 100.0], 1000.0),  # fast at class 1
    ]
    demands = [QueryVector([8, 2]), QueryVector([2, 8])]
    return demands, supply_sets


class TestUmpire:
    def test_converges_on_feasible_market(self):
        demands, supply_sets = two_node_market()
        umpire = TatonnementUmpire(step=0.001, tolerance=0.5)
        result = umpire.find_equilibrium(demands, supply_sets)
        assert result.converged
        assert is_equilibrium(result.excess, tolerance=0.5)

    def test_supply_meets_demand_at_equilibrium(self):
        demands, supply_sets = two_node_market()
        result = TatonnementUmpire(step=0.001).find_equilibrium(
            demands, supply_sets
        )
        total_demand = aggregate(demands)
        supplied = result.aggregate_supply()
        for k in range(2):
            assert supplied[k] >= total_demand[k] - 0.5

    def test_reports_nonconvergence(self):
        # Demand grossly beyond capacity can never clear.
        supply_sets = [CapacitySupplySet([100.0], 100.0)]
        demands = [QueryVector([100])]
        result = TatonnementUmpire(step=0.01, max_iterations=20).find_equilibrium(
            demands, supply_sets
        )
        assert not result.converged
        assert result.iterations == 20

    def test_trajectory_recorded(self):
        demands, supply_sets = two_node_market()
        result = TatonnementUmpire(step=0.001).find_equilibrium(
            demands, supply_sets, record_trajectory=True
        )
        assert len(result.trajectory) >= 1
        assert isinstance(result.trajectory[0], PriceVector)

    def test_trajectory_not_recorded_by_default(self):
        demands, supply_sets = two_node_market()
        result = TatonnementUmpire(step=0.001).find_equilibrium(
            demands, supply_sets
        )
        assert result.trajectory == []

    def test_initial_prices_respected(self):
        demands, supply_sets = two_node_market()
        umpire = TatonnementUmpire(step=0.001)
        result = umpire.find_equilibrium(
            demands, supply_sets, initial_prices=PriceVector([5.0, 5.0])
        )
        assert result.converged

    def test_wrong_price_length_rejected(self):
        demands, supply_sets = two_node_market()
        with pytest.raises(ValueError):
            TatonnementUmpire().find_equilibrium(
                demands, supply_sets, initial_prices=PriceVector([1.0])
            )

    def test_empty_market_rejected(self):
        with pytest.raises(ValueError):
            TatonnementUmpire().find_equilibrium([], [])

    def test_mismatched_nodes_rejected(self):
        with pytest.raises(ValueError):
            TatonnementUmpire().find_equilibrium(
                [QueryVector([1])],
                [CapacitySupplySet([1.0], 1.0)] * 2,
            )

    def test_bad_step_rejected(self):
        with pytest.raises(ValueError):
            TatonnementUmpire(step=0.0)

    def test_larger_step_converges_in_fewer_iterations(self):
        # The paper's lambda trade-off: bigger steps -> fewer iterations.
        demands, supply_sets = two_node_market()
        slow = TatonnementUmpire(step=0.0005, tolerance=0.5).find_equilibrium(
            demands, supply_sets
        )
        fast = TatonnementUmpire(step=0.002, tolerance=0.5).find_equilibrium(
            demands, supply_sets
        )
        assert fast.converged and slow.converged
        assert fast.iterations <= slow.iterations
