"""QA-NT as a federation allocation mechanism.

Wires one :class:`repro.core.qant.QantPricingAgent` into every (adopting)
server node and drives the paper's negotiation: the client asks the
candidate servers, each offers iff its remaining supply vector covers the
query's class, and the client accepts the best offer (earliest estimated
completion).  If every server refuses, the query re-enters next period's
demand — exactly step 4 and the resubmission rule of Section 3.3.

Two paper-motivated options are exposed:

* ``adopters`` — run QA-NT on only a subset of nodes (Section 4 claims the
  mechanism still helps when partially deployed; ablation A3).  Non-adopting
  nodes behave greedily: they always offer.
* ``activation_threshold`` — Section 5.1 suggests that a deployment
  "properly track query prices but only use them to calculate the nodes'
  query supply vectors if they are above a specific threshold".  Each node
  therefore runs the full price dynamics at all times, but *enforces* its
  supply vector (i.e. actually refuses requests) only while one of its
  prices exceeds the threshold — high prices are the decentralised
  overload signal.  Below the threshold a node accepts any feasible
  request, eliminating the integer-rounding penalty at light load the
  paper discusses.  Pass ``None`` to always enforce (the raw Section 3.3
  algorithm, used by the rounding ablation).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Set, Tuple

from ..core.classification import (
    PrivatelyClassifiedAgent,
    cost_band_classification,
)
from ..core.period_engine import QantPeriodEngine
from ..core.qant import QantParameters, QantPricingAgent
from ..core.supply import CapacitySupplySet
from ..query.model import Query
from .base import Allocator, AssignmentDecision
from .market_tick import MarketTickDispatcher

try:  # Optional, mirroring repro.sim.fleet: no numpy, no vector paths.
    import numpy as _np
except ImportError:  # pragma: no cover - scalar paths cover this
    _np = None

__all__ = [
    "QantAllocator",
]


class QantAllocator(Allocator):
    """The paper's decentralised query-market mechanism."""

    name = "qa-nt"
    respects_autonomy = True
    distributed = True

    #: Default per-node price level above which supply vectors are
    #: enforced: with the default lambda of 0.1, a class reaches it after
    #: roughly seven net refusals — a sustained-overload signal.
    DEFAULT_ACTIVATION_THRESHOLD = 2.0

    #: Default backlog allowance: the period length plus twice the node's
    #: largest class cost.  One max-cost of headroom guarantees an idle
    #: node can always admit its biggest query (otherwise integer supply
    #: rounds long queries to zero — the Section 5.1 rounding issue); the
    #: second softens retry quantisation under bursty loads.  Measured in
    #: the allowance ablation.
    DEFAULT_ALLOWANCE_FACTOR = 2.0

    def __init__(
        self,
        parameters: Optional[QantParameters] = None,
        adopters: Optional[Iterable[int]] = None,
        activation_threshold: Optional[float] = DEFAULT_ACTIVATION_THRESHOLD,
        queue_allowance_ms: Optional[float] = None,
        allowance_factor: float = DEFAULT_ALLOWANCE_FACTOR,
        max_offer_premium: Optional[float] = None,
        private_buckets: Optional[int] = None,
    ):
        """``queue_allowance_ms`` bounds each node's committed backlog: a
        node sells supply only up to ``allowance - current_backlog`` per
        period.  The default allowance is the period length plus the
        node's largest class cost, which guarantees an idle node can
        always admit at least one query of any class it holds data for —
        otherwise per-period integer supply rounds long queries to zero
        (the paper's Section 5.1 rounding discussion)."""
        super().__init__()
        self._params = parameters or QantParameters()
        self._adopters: Optional[Set[int]] = (
            set(adopters) if adopters is not None else None
        )
        if allowance_factor <= 0:
            raise ValueError("allowance factor must be positive")
        self._activation_threshold = activation_threshold
        self._queue_allowance_ms = queue_allowance_ms
        self._allowance_factor = allowance_factor
        self._max_offer_premium = max_offer_premium
        if private_buckets is not None and private_buckets <= 0:
            raise ValueError("private_buckets must be positive")
        #: When set, every node prices its *own* coarse classification of
        #: the query classes (Section 3.3's autonomy-preserving option)
        #: with this many cost bands, instead of the global class set.
        self._private_buckets = private_buckets
        self._agents: Dict[int, object] = {}
        self._allowances: Dict[int, float] = {}
        #: Per class, the candidate fan-out as precompiled 5-slot bidder
        #: tuples — the request-for-bid loop iterates this instead of
        #: re-resolving every node's agent per query (see `_after_bind`).
        self._bidders_by_class: Dict[int, Tuple] = {}
        #: Serial number of the current period, bumped by
        #: `on_period_start`; keys the per-class saturation fast path.
        self._period_serial = 0
        #: ``class_index -> period serial`` recording that every bidder of
        #: the class was observed *saturated* this period: zero remaining
        #: supply, class price pinned at the cap, and (with an activation
        #: threshold) the enforce latch set.  A request-for-bid against a
        #: fully saturated class is then an all-refuse exchange whose only
        #: agent-side effect is one refusal count per node, so `assign`
        #: skips the fan-out loop and defers those counts (flushed at the
        #: next period tick, before any period stats are computed).
        self._saturated_in: Dict[int, int] = {}
        self._deferred_refusals: Dict[int, int] = {}
        #: Per class, the nodes that offered on the last successful
        #: exchange — the stale cache graceful degradation falls back to
        #: when a faulted fan-out yields total silence (fault runs only).
        self._last_good: Dict[int, Tuple[int, ...]] = {}
        #: The batched period-boundary engine over every plain pricing
        #: agent, plus the (node_id, agent) rows it cannot manage —
        #: privately-classifying agents and non-batchable solver methods —
        #: which keep the original per-agent loop (see `_after_bind`).
        self._engine: Optional[QantPeriodEngine] = None
        self._engine_node_ids: Tuple[int, ...] = ()
        self._scalar_agents: Tuple[Tuple[int, object], ...] = ()
        #: The vectorised request-for-bid exchange (see
        #: :mod:`repro.allocation.market_tick`); built in `_after_bind`
        #: only when the whole fleet is dispatchable, ``None`` otherwise.
        self._dispatcher: Optional[MarketTickDispatcher] = None
        #: The context's network when its transport is the plain
        #: simulator adapter, enabling the one-draw-per-tick bulk latency
        #: path of `assign_batch`; ``None`` under any custom transport.
        self._bulk_rtt_network = None
        #: Whether single `assign` calls may also use the vector exchange
        #: and keep dispatcher state cached across calls.  Armed by
        #: `on_run_start` (inside a federation run every observer goes
        #: through `sync_market_state`); direct API users keep the scalar
        #: loop and always-live agent state.
        self._vector_singles = False
        #: Fleet rows / allowances of the engine-managed nodes, for the
        #: vectorised free-capacity probe (``None`` without fleet arrays).
        self._engine_rows_np = None
        self._engine_allowances_np = None
        #: Whether anything touched the market since the last period
        #: boundary (an assignment ran, a query completed).  While False,
        #: a quiescent engine can fast-forward boundaries in O(1).
        self._interacted = True

    @property
    def agents(self) -> Dict[int, QantPricingAgent]:
        """The per-node pricing agents (adopting nodes only)."""
        return self._agents

    def _is_adopter(self, node_id: int) -> bool:
        return self._adopters is None or node_id in self._adopters

    def _after_bind(self) -> None:
        for node_id, node in self.context.nodes.items():
            if not self._is_adopter(node_id):
                continue
            if self._queue_allowance_ms is not None:
                allowance = self._queue_allowance_ms
            else:
                max_cost = max(
                    (c for c in node.class_costs_ms if not math.isinf(c)),
                    default=0.0,
                )
                allowance = (
                    self.context.period_ms + self._allowance_factor * max_cost
                )
            self._allowances[node_id] = allowance
            if self._private_buckets is None:
                self._agents[node_id] = QantPricingAgent(
                    node.make_supply_set(self.context.period_ms),
                    parameters=self._params,
                )
            else:
                scheme = cost_band_classification(
                    node.class_costs_ms, self._private_buckets
                )
                self._agents[node_id] = PrivatelyClassifiedAgent(
                    scheme,
                    node.class_costs_ms,
                    self.context.period_ms,
                    parameters=self._params,
                )
        # Candidate sets and agent bindings are both fixed for the life of
        # the federation, so the request-for-bid fan-out can be compiled
        # once per class.  Each bidder is a 5-slot tuple
        # ``(node_id, agent, remaining, price_values, refused)``:
        #
        # * a non-adopter is ``(nid, None, None, None, None)`` — it always
        #   offers (greedy behaviour);
        # * a plain pricing agent carries its live per-period state lists
        #   (see ``QantPricingAgent.bid_state``), letting ``assign`` mirror
        #   ``quote`` inline with no per-node call frame;
        # * a privately-classifying agent carries ``None`` state (its
        #   global→bucket mapping makes inlining not worth it) and is
        #   quoted through the method call.
        self._bidders_by_class = {
            class_index: tuple(
                self._compile_bidder(node_id) for node_id in candidates
            )
            for class_index, candidates in
            self.context.candidates_by_class.items()
        }
        # All agents share `self._params`, so the raise arithmetic the
        # inlined loop mirrors can be hoisted once.
        self._raise_factor = 1.0 + self._params.adjustment
        self._price_floor = self._params.price_floor
        self._price_cap = self._params.price_cap
        # Partition the fleet for the period boundary: every plain pricing
        # agent goes into the batched engine; privately-classifying agents
        # and non-batchable solver methods stay on the scalar loop.
        # Boundary deferral is only enabled for an all-engine fleet — with
        # scalar rows ticking anyway, the observability gain of always
        # materialising outweighs the saving.
        engine_rows = [
            (node_id, agent)
            for node_id, agent in self._agents.items()
            if QantPeriodEngine.accepts(agent)
        ]
        engine_ids = {node_id for node_id, __ in engine_rows}
        self._scalar_agents = tuple(
            (node_id, agent)
            for node_id, agent in self._agents.items()
            if node_id not in engine_ids
        )
        if engine_rows:
            self._engine_node_ids = tuple(nid for nid, __ in engine_rows)
            self._engine = QantPeriodEngine(
                [agent for __, agent in engine_rows],
                [self._allowances[nid] for nid in self._engine_node_ids],
                can_defer=not self._scalar_agents,
            )
        fleet = self.context.fleet
        if fleet is not None and self._engine_node_ids:
            self._engine_rows_np = _np.array(
                [fleet.row_of[nid] for nid in self._engine_node_ids],
                dtype=_np.intp,
            )
            self._engine_allowances_np = _np.array(
                [self._allowances[nid] for nid in self._engine_node_ids],
                dtype=float,
            )
        # The vector exchange requires the whole fan-out to follow the
        # inlined plain-agent arithmetic: full adoption, global classes,
        # no premium filter, no message faults, every bidder an
        # exact-type pricing agent with live state lists.  Anything else
        # keeps the scalar loop (which remains the outage fallback even
        # when the dispatcher is active).
        if (
            fleet is not None
            and self.context.faults is None
            and self._adopters is None
            and self._private_buckets is None
            and self._max_offer_premium is None
            and all(
                b[2] is not None and type(b[1]) is QantPricingAgent
                for bidders in self._bidders_by_class.values()
                for b in bidders
            )
        ):
            self._dispatcher = MarketTickDispatcher(
                fleet,
                self.context.nodes,
                self._bidders_by_class,
                self._activation_threshold,
                self._raise_factor,
                self._price_floor,
                self._price_cap,
            )
        # Bulk latency draws are only exact against the plain simulated
        # wire; a custom transport must see one fanout call per query.
        from ..sim.transport import SimTransport  # lazy: package cycle

        transport = self.context.transport
        if (
            type(transport) is SimTransport
            and transport.network is self.context.network
        ):
            self._bulk_rtt_network = self.context.network
        self._interacted = True
        self.on_period_start()

    def _compile_bidder(self, node_id: int):
        agent = self._agents.get(node_id)
        if isinstance(agent, QantPricingAgent):
            remaining, values, refused = agent.bid_state()
            return (node_id, agent, remaining, values, refused)
        return (node_id, agent, None, None, None)

    def on_period_start(self) -> None:
        """Step 2 of QA-NT at every node: re-solve eq. 4.

        The supply set is rebuilt each period with the node's *free*
        backlog allowance (allowance minus outstanding queued work), so a
        node with a committed queue does not sell time it no longer has,
        while an idle node can always admit its largest query.

        Plain pricing agents are driven through the batched
        :class:`~repro.core.period_engine.QantPeriodEngine` (bit-identical
        to this method's scalar loop; the boundary has no cross-agent
        coupling, so ordering engine rows before scalar rows is
        unobservable); the remaining agents keep the per-agent path.
        """
        if self._dispatcher is not None:
            # Scatter cached exchange state back into the live lists
            # before anything below (deferred-refusal flush, boundary
            # solves) reads or rewrites them.
            self._dispatcher.sync()
        self._flush_deferred_refusals()
        self._period_serial += 1
        engine = self._engine
        if engine is not None:
            engine.advance(self._interacted, self._engine_free_capacities)
            self._interacted = False
        nodes = self.context.nodes
        allowances = self._allowances
        for node_id, agent in self._scalar_agents:
            node = nodes[node_id]
            if agent.in_period:
                # Steps 12-14: unsold supply lowers prices before the new
                # period's supply vector is computed.
                agent.end_period()
            free_ms = max(0.0, allowances[node_id] - node.current_load_ms())
            if isinstance(agent, PrivatelyClassifiedAgent):
                agent.rebind_capacity(free_ms)
            else:
                supply_set = agent.supply_set
                if isinstance(supply_set, CapacitySupplySet):
                    # Rebind in place of reconstructing: the cost row never
                    # changes period to period, only the free capacity does.
                    supply_set = supply_set.with_capacity(free_ms)
                else:
                    supply_set = CapacitySupplySet(node.class_costs_ms, free_ms)
                agent.rebind_supply_set(supply_set)
            agent.begin_period()

    def _flush_deferred_refusals(self) -> None:
        """Apply refusal counts deferred by the saturation fast path.

        Runs before any period-closing bookkeeping (``end_period`` stats)
        so every agent's ``refused`` counters are exact whenever period
        statistics are derived from them.
        """
        deferred = self._deferred_refusals
        if not deferred:
            return
        for class_index, count in deferred.items():
            if not count:
                continue
            # Saturation is only ever recorded for classes whose bidders
            # are all plain pricing agents, so every slot carries state.
            for bidder in self._bidders_by_class[class_index]:
                bidder[4][class_index] += count
        deferred.clear()

    def _engine_free_capacities(self) -> list:
        """Per engine row, the node's free backlog allowance right now.

        Only called when a boundary materialises — fast-forwarded ticks
        skip the per-node load probes entirely.
        """
        rows = self._engine_rows_np
        if rows is not None:
            # Vectorised over the fleet's slot_free mirror: each element
            # follows the exact scalar expression
            # ``max(0.0, allowance - current_load_ms())`` (the where-forms
            # reproduce ``max``'s sign behaviour bit-for-bit).
            now = self.context.simulator.now
            remaining = self.context.fleet.slot_free[rows] - now
            load = _np.where(remaining > 0.0, remaining, 0.0)
            free = self._engine_allowances_np - load
            return _np.where(free > 0.0, free, 0.0)
        nodes = self.context.nodes
        allowances = self._allowances
        return [
            max(0.0, allowances[nid] - nodes[nid].current_load_ms())
            for nid in self._engine_node_ids
        ]

    def sync_market_state(self) -> None:
        """Materialise any fast-forwarded period boundaries.

        Observers that read agent state between boundaries (the
        :class:`~repro.sim.tracing.MarketTracer`, tests, notebooks) call
        this first; afterwards every agent holds exactly the state a
        never-deferred run would show.
        """
        if self._dispatcher is not None:
            self._dispatcher.sync()
        if self._engine is not None:
            self._engine.flush()

    @property
    def period_engine_stats(self):
        """Counters of the batched boundary engine (None when unused)."""
        engine = self._engine
        return engine.stats if engine is not None else None

    @property
    def batch_dispatch_stats(self):
        """Counters of the vectorised fan-out (None when undispatchable)."""
        dispatcher = self._dispatcher
        return dispatcher.stats if dispatcher is not None else None

    def on_completion(self, query: Query, node_id: int, actual_ms: float) -> None:
        # A completion frees node capacity, so the next boundary must
        # re-probe loads rather than fast-forward.
        self._interacted = True

    def on_run_start(self) -> None:
        self._vector_singles = self._dispatcher is not None

    def on_run_end(self) -> None:
        self._vector_singles = False
        self.sync_market_state()

    def assign(self, query: Query) -> AssignmentDecision:
        engine = self._engine
        if engine is not None:
            self._interacted = True
            if engine.deferred_ticks_pending:
                # The current period's boundary was fast-forwarded; the
                # fan-out below reads live agent state, so settle it now.
                engine.flush()
        class_index = query.class_index
        context = self.context
        if context.faults is not None:
            return self._assign_faulty(query)
        candidates = context.available_candidates(class_index)
        if not candidates:
            return AssignmentDecision(node_id=None)
        # The request-for-bid exchange as a protocol event: fault-free,
        # every candidate replies and the delay is the slowest round trip.
        exchange = self._request_bids(query, candidates)
        return self._assign_with_exchange(
            query, candidates, exchange.delay_ms, exchange.messages
        )

    def assign_batch(self, queries):
        """All arrivals of one simulated tick, as one market tick.

        Bit-identical to sequential :meth:`assign` calls (the caller
        guarantees the batch shares a timestamp, negotiation delays are
        positive and no message faults are active): the only fused work
        is the per-query latency fan-out — every exchange's legs come
        from one C-level draw that splits the Mersenne stream exactly as
        the sequential calls would — while the market arithmetic itself
        runs per query in arrival order (prices and supply must see each
        query's effect before the next, exactly as the paper's sequential
        negotiation does).
        """
        context = self._context
        network = self._bulk_rtt_network
        if len(queries) < 2 or network is None or context.faults is not None:
            return [self.assign(query) for query in queries]
        engine = self._engine
        if engine is not None:
            self._interacted = True
            if engine.deferred_ticks_pending:
                engine.flush()
        candidate_sets = [
            context.available_candidates(query.class_index)
            for query in queries
        ]
        delays = network.round_trip_ms_batch(
            [len(candidates) for candidates in candidate_sets]
        )
        decisions = []
        for query, candidates, delay in zip(queries, candidate_sets, delays):
            if not candidates:
                decisions.append(AssignmentDecision(node_id=None))
            else:
                decisions.append(
                    self._assign_with_exchange(
                        query,
                        candidates,
                        delay,
                        2 * len(candidates),
                        use_vector=True,
                    )
                )
        dispatcher = self._dispatcher
        if dispatcher is not None and not self._vector_singles:
            # Scatter the batch's cached market state back into the live
            # agent lists before handing control to the event loop —
            # between batches every observer sees exactly the scalar
            # state.  Inside a federation run (`_vector_singles`) the
            # cache stays warm across assigns; `sync_market_state` is the
            # contract every observer goes through instead.
            dispatcher.sync()
        return decisions

    def _assign_with_exchange(
        self,
        query: Query,
        candidates,
        delay: float,
        messages: int,
        use_vector: bool = False,
    ) -> AssignmentDecision:
        """Market reaction to one already-charged request-for-bid fan-out."""
        class_index = query.class_index
        context = self.context
        num_candidates = len(candidates)
        # Single-pass bid collection over the precompiled fan-out.  Each
        # bidder answers the request-for-bid with `quote` semantics: the
        # unconditional price dynamics (refusals must keep adjusting prices
        # so the overload signal can form) plus the Section 5.1 activation
        # rule (the supply vector is only enforced while the node's prices
        # signal overload).  For plain pricing agents the whole exchange is
        # inlined here against the agent's live state lists — this loop
        # runs nodes x requests times and dominates paper-scale wall-clock,
        # so it trades one method call per node for direct list reads.
        # Any change here must stay in lock-step with
        # `QantPricingAgent.quote` (same arithmetic, same clamp order) or
        # golden traces will move.
        bidders = self._bidders_by_class[class_index]
        full_fanout = len(bidders) == num_candidates
        if full_fanout:
            if self._saturated_in.get(class_index) == self._period_serial:
                # Every bidder is saturated (no supply, price at the cap,
                # latch set): the exchange is an all-refuse no-op except
                # for one refusal count per node, deferred to the next
                # period tick.  Latency/messages above were charged — and
                # the RNG drawn — exactly as for the explicit fan-out.
                deferred = self._deferred_refusals
                deferred[class_index] = deferred.get(class_index, 0) + 1
                return AssignmentDecision(
                    node_id=None, delay_ms=delay, messages=messages
                )
            vector = use_vector or self._vector_singles
            dispatcher = self._dispatcher if vector else None
            if dispatcher is not None:
                # Vectorised exchange over the full fan-out: same offers,
                # price raises, latch updates and accept as the scalar
                # loop below, as a handful of numpy ops (see
                # repro.allocation.market_tick for the bit-identity
                # argument).  Only taken mid-batch or during a federation
                # run (`_vector_singles`), where every observer goes
                # through the `sync_market_state` contract, so nobody
                # ever sees a stale agent.
                chosen, now_saturated = dispatcher.exchange(
                    class_index, context.simulator.now
                )
                if chosen is None:
                    if now_saturated:
                        self._saturated_in[class_index] = self._period_serial
                    return AssignmentDecision(
                        node_id=None, delay_ms=delay, messages=messages
                    )
                return AssignmentDecision(
                    chosen, delay_ms=delay, messages=messages
                )
            saturated = True
        else:
            # Some candidate is in an outage window: run the fan-out over
            # the filtered bidders for this query only (failure
            # experiments), and never record saturation from a partial
            # exchange.
            dispatcher = self._dispatcher
            if dispatcher is not None and (use_vector or self._vector_singles):
                # The scalar loop below reads/writes the live agent
                # lists, so settle any cached vector state first.
                dispatcher.sync()
                dispatcher.stats.scalar_fallbacks += 1
            live = set(candidates)
            bidders = [b for b in bidders if b[0] in live]
            saturated = False
        threshold = self._activation_threshold
        factor = self._raise_factor
        floor = self._price_floor
        cap = self._price_cap
        offers = []
        append = offers.append
        for node_id, agent, remaining, values, refused in bidders:
            if agent is None:
                append(node_id)
                saturated = False
                continue
            if remaining is None:
                # Privately-classifying agent: quote through the method.
                saturated = False
                if agent.quote(class_index, threshold):
                    append(node_id)
                continue
            if remaining[class_index] >= 1.0:
                append(node_id)
                saturated = False
                continue
            # Refusal: raise the class price (steps 8-9), then apply the
            # activation rule — mirrors `QantPricingAgent.quote` exactly.
            refused[class_index] += 1
            old = values[class_index]
            new = old * factor
            if new < floor:
                new = floor
            elif new > cap:
                new = cap
            if new != old:
                values[class_index] = new
                agent._price_epoch += 1
                agent._prices_cache = None
                if agent._max_price is not None and new > agent._max_price:
                    agent._max_price = new
            if new != cap:
                # Price still below the cap: the next refusal will move it
                # again, so this bidder is not yet a no-op.
                saturated = False
            if threshold is None:
                continue
            if agent._enforce_locked_at is not None:
                # The allocator quotes one fixed threshold, so the latch
                # value can only be `threshold` itself: still locked.
                continue
            max_price = agent._max_price
            if max_price is None:
                max_price = max(values)
                agent._max_price = max_price
            if max_price < threshold:
                append(node_id)
                saturated = False
            else:
                agent._enforce_locked_at = threshold
        if offers and self._max_offer_premium is not None:
            offers = self._filter_premium(offers, candidates, class_index)
        if not offers:
            if saturated:
                self._saturated_in[class_index] = self._period_serial
            return AssignmentDecision(
                node_id=None, delay_ms=delay, messages=messages
            )
        # Earliest-estimated-completion winner, inlined (node-id ascending,
        # strict `<`, so ties resolve to the lowest id — the same order
        # `_best_offer` produces).  `estimated_completion_ms` is unrolled
        # for the serial-node common case.
        nodes = context.nodes
        now = context.simulator.now
        chosen = -1
        best = float("inf")
        for nid in offers:
            node = nodes[nid]
            slot_free = node._slot_free_at
            earliest = slot_free[0] if len(slot_free) == 1 else min(slot_free)
            start = now if now >= earliest else earliest
            estimate = start + node._costs[class_index]
            if estimate < best:
                best = estimate
                chosen = nid
        agent = self._agents.get(chosen)
        if agent is not None and agent.supply_left(class_index) >= 1:
            agent.accept(class_index)
        return AssignmentDecision(chosen, delay_ms=delay, messages=messages)

    def _assign_faulty(self, query: Query) -> AssignmentDecision:
        """The request-for-bid exchange under message-level faults.

        Requests and replies travel through the protocol transport (the
        fault-injected fan-out of :meth:`repro.sim.network.Network
        .fanout`), which models the bid timeout: a server whose *request*
        arrived runs its full quote dynamics (prices move even when the
        client never hears back — the stale-price regime partitioned
        markets exhibit), but only servers whose *reply* beat the timeout
        can win.  On total silence the client degrades gracefully: it
        falls back to the reachable subset of the last nodes known to
        offer for this class rather than stalling, counting the
        assignment as degraded.
        """
        class_index = query.class_index
        context = self.context
        faults = context.faults
        candidates = context.available_candidates(class_index)
        if not candidates:
            return AssignmentDecision(node_id=None)
        exchange = self._request_bids(query, candidates)
        delay = exchange.delay_ms
        messages = exchange.messages
        delivered = exchange.delivered
        replied = exchange.replied
        threshold = self._activation_threshold
        agents = self._agents
        offered = set()
        for nid in delivered:
            agent = agents.get(nid)
            if agent is None or agent.quote(class_index, threshold):
                offered.add(nid)
        offers = [nid for nid in replied if nid in offered]
        if offers and self._max_offer_premium is not None:
            offers = self._filter_premium(offers, candidates, class_index)
        if offers:
            chosen = self._best_offer(offers, class_index)
            self._last_good[class_index] = tuple(offers)
            agent = agents.get(chosen)
            if agent is not None and agent.supply_left(class_index) >= 1:
                agent.accept(class_index)
            return AssignmentDecision(chosen, delay_ms=delay, messages=messages)
        if not replied:
            # Total silence (every reply lost, late, or partitioned away):
            # fall back to the stale cache instead of stalling.
            cached = self._last_good.get(class_index, ())
            live = set(candidates)
            reachable = faults.reachable(
                query.origin_node,
                [nid for nid in cached if nid in live],
                context.simulator.now,
            )
            if reachable:
                chosen = self._best_offer(reachable, class_index)
                faults.note_degraded()
                agent = agents.get(chosen)
                if agent is not None and agent.supply_left(class_index) >= 1:
                    agent.accept(class_index)
                return AssignmentDecision(
                    chosen, delay_ms=delay, messages=messages
                )
        return AssignmentDecision(node_id=None, delay_ms=delay, messages=messages)

    # -- internals ------------------------------------------------------------------

    def _best_offer(self, offers, class_index: int) -> int:
        """Pick the offering node with the earliest estimated completion."""
        nodes = self.context.nodes
        return min(
            offers,
            key=lambda nid: (
                nodes[nid].estimated_completion_ms(class_index),
                nid,
            ),
        )

    def _filter_premium(self, offers, candidates, class_index: int):
        """Drop offers whose execution time is beyond the premium cap.

        The client already holds every candidate's execution-time estimate
        from the probe round; declining an offer more than
        ``max_offer_premium`` times the class's best estimate and retrying
        next period is preferable to committing to a far-inferior mirror.
        """
        if self._max_offer_premium is None or not offers:
            return offers
        nodes = self.context.nodes
        # One estimate per candidate, reused for both the best-estimate
        # baseline and the per-offer comparison.
        exec_ms = {
            nid: nodes[nid].execution_time_ms(class_index)
            for nid in candidates
        }
        cap = min(exec_ms.values()) * self._max_offer_premium
        return [nid for nid in offers if exec_ms[nid] <= cap]

    def _node_enforcing(self, agent: QantPricingAgent) -> bool:
        """Whether this node currently enforces its supply vector.

        Decentralised: the decision uses only the node's own prices.
        """
        if self._activation_threshold is None:
            return True
        return agent.max_price >= self._activation_threshold
