"""Shared fixtures: small worlds reused across the test suite."""

import pytest

from repro.catalog import CatalogParameters, generate_catalog_and_placement
from repro.experiments.setups import two_query_world, zipf_world
from repro.query import (
    QueryClassParameters,
    calibrated_cost_model,
    generate_query_classes,
)
from repro.sim import generate_machine_specs


@pytest.fixture(scope="session")
def small_catalog_world():
    """A small catalog-backed world: catalog, placement, classes, specs, model."""
    params = CatalogParameters(
        num_relations=100, num_nodes=10, bundle_size=10, mirrors=4, num_groups=2
    )
    catalog, placement = generate_catalog_and_placement(params, seed=1)
    class_params = QueryClassParameters(num_classes=6, max_joins=5)
    classes = generate_query_classes(catalog, placement, class_params, seed=2)
    specs = generate_machine_specs(10, seed=3, nodes_without_hash_join=1)
    eligible = [sorted(qc.candidate_nodes(placement)) for qc in classes]
    model = calibrated_cost_model(
        catalog, classes, specs, target_best_ms=1000.0, eligible_nodes=eligible
    )
    return catalog, placement, classes, specs, model


@pytest.fixture(scope="session")
def tiny_two_query_world():
    """The paper's two-query world at test scale (12 nodes)."""
    return two_query_world(num_nodes=12, seed=5)


@pytest.fixture(scope="session")
def tiny_zipf_world():
    """The Table 3 world at test scale."""
    return zipf_world(
        num_nodes=12, num_relations=60, num_classes=8, max_joins=6, seed=7
    )
