"""End-to-end tests of the asyncio market backend (repro.protocol.local).

The acceptance bar for the transport seam: the same MarketSession that
drives the simulator's SimTransport must allocate >= 100 queries across
>= 4 nodes over LocalAsyncTransport — with zero imports from repro.sim
anywhere in the protocol package (proved in a clean subprocess, because
this test process has long since imported the simulator itself).
"""

import subprocess
import sys

import pytest

from repro.protocol import (
    AssignQuery,
    BidRequest,
    LocalAsyncTransport,
    LocalNode,
    MarketSession,
    NegotiationPolicy,
    PeriodTick,
    ProtocolError,
    Quote,
    Refusal,
    run_local_market,
)


class TestLocalNode:
    def _node(self, **kwargs):
        defaults = dict(
            node_id=0, class_costs_ms=(5.0, 10.0), capacity_ms=50.0
        )
        defaults.update(kwargs)
        return LocalNode(**defaults)

    def test_supply_spreads_over_classes(self):
        node = self._node()
        assert all(units > 0 for units in node.supply)

    def test_quotes_then_refuses_when_sold_out(self):
        node = self._node(class_costs_ms=(5.0,), capacity_ms=10.0)
        assert node.supply == [2]
        request = BidRequest(qid=1, class_index=0, origin_node=-1)
        assert isinstance(node.handle(request), Quote)
        # Quotes do not consume supply; assignments do.
        for qid in range(2):
            node.handle(AssignQuery(qid=qid, node_id=0, class_index=0))
        price_before = node.prices[0]
        refusal = node.handle(request)
        assert isinstance(refusal, Refusal)
        # A refusal is a trading failure: the price has already risen.
        assert node.prices[0] > price_before

    def test_period_tick_decays_unsold_prices_and_resolves_supply(self):
        node = self._node()
        price_before = node.prices[0]
        node.backlog_ms = 40.0
        node.handle(PeriodTick(period_index=1, period_ms=25.0))
        assert node.prices[0] == pytest.approx(price_before * 0.95)
        assert node.backlog_ms == pytest.approx(15.0)
        assert all(units > 0 for units in node.supply)

    def test_quote_estimates_backlog_plus_cost(self):
        node = self._node()
        node.backlog_ms = 7.0
        quote = node.handle(BidRequest(qid=1, class_index=1, origin_node=-1))
        assert isinstance(quote, Quote)
        assert quote.estimated_completion_ms == pytest.approx(17.0)


class TestLocalAsyncTransport:
    def test_requires_a_real_message(self):
        transport = LocalAsyncTransport([LocalNode(0, (5.0,), 50.0)])
        try:
            with pytest.raises(ProtocolError):
                transport.fanout(-1, (0,))
        finally:
            transport.close()

    def test_fanout_is_deterministic_for_a_seed(self):
        def one_run():
            nodes = [LocalNode(i, (5.0, 9.0), 60.0) for i in range(4)]
            transport = LocalAsyncTransport(
                nodes, seed=3, drop_probability=0.2
            )
            try:
                results = [
                    transport.fanout(
                        -1,
                        (0, 1, 2, 3),
                        BidRequest(qid=i, class_index=0, origin_node=-1),
                    )
                    for i in range(10)
                ]
                return [
                    (r.delay_ms, r.messages, r.delivered, r.replied)
                    for r in results
                ]
            finally:
                transport.close()

        assert one_run() == one_run()

    def test_dropped_requests_are_not_delivered(self):
        nodes = [LocalNode(i, (5.0,), 50.0) for i in range(3)]
        transport = LocalAsyncTransport(
            nodes, seed=0, drop_probability=0.999
        )
        try:
            result = transport.fanout(
                -1, (0, 1, 2), BidRequest(qid=1, class_index=0, origin_node=-1)
            )
            # With near-certain drops nothing arrives: the client waits
            # out the full bid timeout and each lost request is one leg.
            assert result.delivered == () and result.replied == ()
            assert result.messages == 3
            assert result.delay_ms == transport.bid_timeout_ms
            assert all(node.quotes_sent == 0 for node in nodes)
        finally:
            transport.close()


class TestLocalMarketDemo:
    def test_allocates_100_queries_across_4_nodes(self):
        """The ISSUE acceptance bar, via the full MarketSession loop."""
        report = run_local_market(
            num_nodes=4, num_queries=120, num_classes=2, seed=0
        )
        assert report.assigned >= 100
        assert report.nodes_used >= 4
        assert report.quotes_seen > 0
        assert report.periods > 0
        # Messages: every query pays at least the 8-leg bid fan-out plus
        # the 2-leg confirm.
        assert report.messages >= report.assigned * 10

    def test_scales_to_more_nodes_and_classes(self):
        report = run_local_market(
            num_nodes=6, num_queries=150, num_classes=3, seed=42
        )
        assert report.assigned >= 120
        assert report.nodes_used >= 5

    def test_session_drives_local_transport_directly(self):
        nodes = [LocalNode(i, (6.0, 11.0), 80.0) for i in range(4)]
        transport = LocalAsyncTransport(nodes, seed=1)
        session = MarketSession(
            transport, NegotiationPolicy(max_attempts=3)
        )
        try:
            outcome = session.negotiate(
                BidRequest(qid=0, class_index=1, origin_node=-1),
                transport.node_ids,
            )
            assert outcome.assigned
            assert outcome.completion is not None
            assert outcome.completion.node_id == outcome.node_id
        finally:
            transport.close()

    def test_protocol_package_never_imports_the_simulator(self):
        """Run the demo in a clean interpreter and assert no repro.sim
        (or repro.core / repro.allocation) module was ever imported."""
        script = (
            "import sys\n"
            "from repro.protocol import run_local_market\n"
            "report = run_local_market(num_nodes=4, num_queries=120)\n"
            "assert report.assigned >= 100, report\n"
            "assert report.nodes_used >= 4, report\n"
            "polluted = [name for name in sys.modules\n"
            "            if name.startswith(('repro.sim', 'repro.core',\n"
            "                                'repro.allocation'))]\n"
            "assert not polluted, polluted\n"
            "print('clean', report.assigned, report.nodes_used)\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert completed.stdout.startswith("clean")
