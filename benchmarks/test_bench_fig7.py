"""Bench E9 — regenerate Figure 7 (the real-deployment comparison).

Paper: 300 queries on five real DBMS nodes at two uniform inter-arrival
settings; QA-NT's total time beats Greedy's in both runs, and a large
fraction of the time goes to assignment (waiting for estimate replies
from every node).  Times here are ~10x scaled down (see DESIGN.md).

The decisive regime is sustained overload (the paper's ~1 s queries at
300 ms inter-arrival mean the testbed queued constantly).  That regime
needs multi-second SQLite runs, so it is reserved for
``REPRO_BENCH_FULL=1``; the default configuration finishes in ~25 s and
asserts the noise-tolerant invariants only (everything completes,
assignment cost is visible, QA-NT stays competitive) — wall-clock
threaded runs at light load are jitter-dominated (see EXPERIMENTS.md).
"""

from repro.experiments.fig7 import run_fig7


def test_bench_fig7(benchmark, save_result, full_scale):
    if full_scale:
        kwargs = dict(
            num_queries=120,
            interarrivals_ms=(30.0, 40.0),
            table_size_mb=(2.0, 5.0),
            seed=0,
        )
    else:
        kwargs = dict(
            num_queries=100,
            interarrivals_ms=(30.0, 40.0),
            table_size_mb=(0.8, 2.0),
            seed=0,
        )
    result = benchmark.pedantic(run_fig7, kwargs=kwargs, rounds=1, iterations=1)
    save_result("fig7", result.render())
    gaps = kwargs["interarrivals_ms"]
    for (mechanism, gap), run in result.runs.items():
        assert len(run.outcomes) == kwargs["num_queries"]
        assert run.mean_total_ms >= run.mean_assign_ms > 0
    ratios = [
        result.runs[("qa-nt", gap)].mean_total_ms
        / result.runs[("greedy", gap)].mean_total_ms
        for gap in gaps
    ]
    if full_scale:
        # Sustained overload: the paper's result — QA-NT clearly ahead
        # overall (measured 0.52x-0.99x of Greedy's total time across
        # runs) and never meaningfully behind.
        assert sum(ratios) / len(ratios) < 0.9
        assert max(ratios) < 1.1
    else:
        # Light load on a shared machine: assert competitiveness, not a
        # winner — the signal is smaller than the OS jitter here.
        assert sum(ratios) / len(ratios) < 1.6
