"""Tests for fig6 calibration and the experiment setup helpers."""

import math

import pytest

from repro.experiments.fig6 import _calibrate_crossover
from repro.experiments.setups import (
    MechanismRun,
    sinusoid_trace_for_load,
    zipf_trace_for_world,
)
from repro.sim import MetricsCollector


class TestCrossoverCalibration:
    def test_capacity_moved_to_crossover(self, tiny_zipf_world):
        world = tiny_zipf_world
        crossover_ms = 5_000.0
        calibrated = _calibrate_crossover(world, crossover_ms)
        capacity = calibrated.capacity_qpms([1.0] * len(calibrated.classes))
        expected = len(calibrated.classes) / crossover_ms
        assert capacity == pytest.approx(expected, rel=0.02)

    def test_structure_preserved(self, tiny_zipf_world):
        calibrated = _calibrate_crossover(tiny_zipf_world, 5_000.0)
        assert calibrated.classes == tiny_zipf_world.classes
        assert calibrated.placement is tiny_zipf_world.placement
        assert calibrated.specs == tiny_zipf_world.specs

    def test_relative_costs_preserved(self, tiny_zipf_world):
        world = tiny_zipf_world
        calibrated = _calibrate_crossover(world, 5_000.0)
        qc = world.classes[0]
        spec_a, spec_b = world.specs[0], world.specs[1]
        original_ratio = world.cost_model.execution_time_ms(
            qc, spec_a
        ) / world.cost_model.execution_time_ms(qc, spec_b)
        new_ratio = calibrated.cost_model.execution_time_ms(
            qc, spec_a
        ) / calibrated.cost_model.execution_time_ms(qc, spec_b)
        assert new_ratio == pytest.approx(original_ratio)

    def test_requires_rescalable_model(self, tiny_two_query_world):
        with pytest.raises(TypeError):
            _calibrate_crossover(tiny_two_query_world, 5_000.0)


class TestTraceHelpers:
    def test_sinusoid_trace_mean_load(self, tiny_two_query_world):
        world = tiny_two_query_world
        load = 0.8
        horizon = 200_000.0
        trace = sinusoid_trace_for_load(
            world, load_fraction=load, horizon_ms=horizon, seed=1
        )
        capacity = world.capacity_qpms([2.0, 1.0])
        realised_rate = len(trace) / horizon
        assert realised_rate == pytest.approx(load * capacity, rel=0.2)

    def test_sinusoid_trace_mix_is_two_to_one(self, tiny_two_query_world):
        trace = sinusoid_trace_for_load(
            tiny_two_query_world,
            load_fraction=1.0,
            horizon_ms=300_000.0,
            seed=2,
        )
        q1 = sum(1 for e in trace if e.class_index == 0)
        q2 = sum(1 for e in trace if e.class_index == 1)
        assert q1 == pytest.approx(2 * q2, rel=0.2)

    def test_zipf_trace_classes_within_world(self, tiny_zipf_world):
        trace = zipf_trace_for_world(
            tiny_zipf_world,
            mean_interarrival_ms=500.0,
            horizon_ms=30_000.0,
            max_queries=200,
            seed=3,
        )
        valid = set(range(len(tiny_zipf_world.classes)))
        assert {e.class_index for e in trace} <= valid

    def test_mechanism_run_mean_response(self):
        metrics = MetricsCollector()
        run = MechanismRun(mechanism="x", metrics=metrics, messages=0)
        assert math.isnan(run.mean_response_ms)
