"""Unit tests for repro.query.estimate (estimators and calibration)."""

import pytest

from repro.query.estimate import (
    HistoryCalibratedEstimator,
    NoisyEstimator,
    PerfectEstimator,
)


class TestPerfectEstimator:
    def test_returns_base_cost(self):
        est = PerfectEstimator()
        assert est.estimate_ms("sig", 123.0) == 123.0

    def test_observe_is_noop(self):
        est = PerfectEstimator()
        est.observe("sig", 100.0, 500.0)
        assert est.estimate_ms("sig", 100.0) == 100.0


class TestNoisyEstimator:
    def test_noise_within_error_factor(self):
        est = NoisyEstimator(error_factor=2.0, seed=1)
        for i in range(50):
            estimate = est.estimate_ms("sig%d" % i, 100.0)
            assert 50.0 <= estimate <= 200.0

    def test_bias_frozen_per_signature(self):
        est = NoisyEstimator(error_factor=3.0, seed=2)
        first = est.estimate_ms("sig", 100.0)
        second = est.estimate_ms("sig", 100.0)
        assert first == second
        assert est.bias_of("sig") is not None

    def test_bias_scales_with_cost(self):
        est = NoisyEstimator(seed=3)
        small = est.estimate_ms("sig", 100.0)
        large = est.estimate_ms("sig", 200.0)
        assert large == pytest.approx(2 * small)

    def test_rejects_factor_below_one(self):
        with pytest.raises(ValueError):
            NoisyEstimator(error_factor=0.5)

    def test_unknown_signature_has_no_bias(self):
        assert NoisyEstimator().bias_of("never-seen") is None


class TestHistoryCalibration:
    def test_learns_systematic_bias(self):
        # Base estimator is consistently 4x too low; after observations the
        # calibrated estimate approaches the actual runtime.
        est = HistoryCalibratedEstimator(PerfectEstimator(), smoothing=0.5)
        for __ in range(20):
            est.observe("sig", base_cost_ms=100.0, actual_ms=400.0)
        assert est.estimate_ms("sig", 100.0) == pytest.approx(400.0, rel=0.05)

    def test_first_observation_jumps_to_ratio(self):
        est = HistoryCalibratedEstimator(PerfectEstimator())
        est.observe("sig", 100.0, 300.0)
        assert est.correction_of("sig") == pytest.approx(3.0)

    def test_smoothing_blends(self):
        est = HistoryCalibratedEstimator(PerfectEstimator(), smoothing=0.5)
        est.observe("sig", 100.0, 100.0)  # correction 1.0
        est.observe("sig", 100.0, 300.0)  # blend towards 3.0
        assert est.correction_of("sig") == pytest.approx(2.0)

    def test_signatures_independent(self):
        est = HistoryCalibratedEstimator(PerfectEstimator())
        est.observe("a", 100.0, 500.0)
        assert est.estimate_ms("b", 100.0) == 100.0

    def test_observation_counting(self):
        est = HistoryCalibratedEstimator(PerfectEstimator())
        assert est.observations_of("sig") == 0
        est.observe("sig", 100.0, 100.0)
        est.observe("sig", 100.0, 100.0)
        assert est.observations_of("sig") == 2

    def test_fixes_noisy_base(self):
        # The paper's remedy: history calibration on top of a biased
        # optimizer recovers the true runtime.
        noisy = NoisyEstimator(error_factor=3.0, seed=4)
        est = HistoryCalibratedEstimator(noisy, smoothing=0.5)
        for __ in range(20):
            est.observe("sig", base_cost_ms=100.0, actual_ms=100.0)
        assert est.estimate_ms("sig", 100.0) == pytest.approx(100.0, rel=0.1)

    def test_zero_base_estimate_ignored(self):
        class ZeroBase(PerfectEstimator):
            def estimate_ms(self, signature, base_cost_ms):
                return 0.0

        est = HistoryCalibratedEstimator(ZeroBase())
        est.observe("sig", 100.0, 100.0)  # must not divide by zero
        assert est.correction_of("sig") == 1.0

    def test_bad_smoothing_rejected(self):
        with pytest.raises(ValueError):
            HistoryCalibratedEstimator(PerfectEstimator(), smoothing=0.0)
