"""Integration tests for repro.sim.federation (end-to-end runs)."""

import pytest

from repro.allocation import GreedyAllocator, QantAllocator, RandomAllocator
from repro.experiments.setups import (
    sinusoid_trace_for_load,
    two_query_world,
)
from repro.sim import FederationConfig, build_federation


@pytest.fixture(scope="module")
def world():
    return two_query_world(num_nodes=10, seed=2)


def run(world, allocator, trace, **config_kwargs):
    config = FederationConfig(seed=4, **config_kwargs)
    federation = build_federation(
        world.specs,
        world.placement,
        world.classes,
        world.cost_model,
        allocator,
        config,
    )
    metrics = federation.run(trace)
    return federation, metrics


@pytest.fixture(scope="module")
def light_trace(world):
    return sinusoid_trace_for_load(
        world, load_fraction=0.4, horizon_ms=20_000.0, seed=5
    )


class TestEndToEnd:
    def test_all_queries_complete_under_light_load(self, world, light_trace):
        __, metrics = run(world, GreedyAllocator(), light_trace)
        assert metrics.completed == len(light_trace)
        assert metrics.dropped == 0

    def test_qant_completes_light_load(self, world, light_trace):
        __, metrics = run(world, QantAllocator(), light_trace)
        assert metrics.completed == len(light_trace)

    def test_outcomes_are_causally_ordered(self, world, light_trace):
        __, metrics = run(world, GreedyAllocator(), light_trace)
        for outcome in metrics.outcomes:
            assert outcome.arrival_ms <= outcome.assigned_ms
            assert outcome.assigned_ms <= outcome.start_ms + 1e-9
            assert outcome.start_ms < outcome.finish_ms

    def test_assignments_only_to_eligible_nodes(self, world, light_trace):
        federation, metrics = run(world, RandomAllocator(), light_trace)
        for outcome in metrics.outcomes:
            node = federation.nodes[outcome.node_id]
            assert node.can_evaluate(outcome.class_index)

    def test_node_execution_is_serial(self, world, light_trace):
        federation, __ = run(world, GreedyAllocator(), light_trace)
        for node in federation.nodes.values():
            records = sorted(node.history, key=lambda r: r.start_ms)
            for earlier, later in zip(records, records[1:]):
                assert later.start_ms >= earlier.finish_ms - 1e-9

    def test_messages_counted(self, world, light_trace):
        federation, __ = run(world, GreedyAllocator(), light_trace)
        assert federation.network.messages_sent > 0

    def test_deterministic_given_seed(self, world, light_trace):
        __, first = run(world, GreedyAllocator(), light_trace)
        __, second = run(world, GreedyAllocator(), light_trace)
        assert first.mean_response_ms() == second.mean_response_ms()

    def test_empty_trace_rejected(self, world):
        federation = build_federation(
            world.specs,
            world.placement,
            world.classes,
            world.cost_model,
            GreedyAllocator(),
            FederationConfig(),
        )
        with pytest.raises(ValueError):
            federation.run([])


class TestOverloadBehaviour:
    def test_qant_resubmissions_happen_under_overload(self, world):
        trace = sinusoid_trace_for_load(
            world, load_fraction=2.5, horizon_ms=15_000.0, seed=6
        )
        __, metrics = run(
            world, QantAllocator(), trace, drain_ms=120_000.0
        )
        assert metrics.mean_resubmissions() > 0

    def test_short_drain_drops_backlog(self, world):
        trace = sinusoid_trace_for_load(
            world, load_fraction=3.0, horizon_ms=10_000.0, seed=7
        )
        __, metrics = run(
            world,
            QantAllocator(activation_threshold=None, queue_allowance_ms=300.0),
            trace,
            drain_ms=0.0,
        )
        assert metrics.dropped > 0

    def test_greedy_never_refuses(self, world):
        trace = sinusoid_trace_for_load(
            world, load_fraction=2.5, horizon_ms=10_000.0, seed=8
        )
        __, metrics = run(world, GreedyAllocator(), trace, drain_ms=300_000.0)
        assert metrics.mean_resubmissions() == 0.0
        assert metrics.dropped == 0


class TestBuildValidation:
    def test_spec_count_must_match_placement(self, world):
        with pytest.raises(ValueError):
            build_federation(
                world.specs[:-1],
                world.placement,
                world.classes,
                world.cost_model,
                GreedyAllocator(),
                FederationConfig(),
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FederationConfig(period_ms=0.0)
        with pytest.raises(ValueError):
            FederationConfig(drain_ms=-1.0)
