"""Tests for the CLI and the node-failure extension experiment."""

import math

import pytest

from repro.cli import EXPERIMENTS, main
from repro.experiments.failures import run_failures
from repro.query import MachineSpec
from repro.sim import Simulator
from repro.sim.node import SimulatedNode


class TestCli:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(EXPERIMENTS)

    def test_run_fig1(self, capsys):
        assert main(["run", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "662.5" in out and "431.25" in out

    def test_run_fig2(self, capsys):
        assert main(["run", "fig2"]) == 0
        assert "demand d" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nonexistent"])

    def test_every_registered_experiment_has_render(self):
        # The registry contract: every callable yields a render()able.
        for name, factory in EXPERIMENTS.items():
            assert callable(factory)


class TestNodeOutages:
    def make_node(self):
        sim = Simulator()
        node = SimulatedNode(
            node_id=0,
            spec=MachineSpec(),
            relations=frozenset({0}),
            class_costs_ms=[100.0],
            simulator=sim,
        )
        return sim, node

    def test_available_by_default(self):
        __, node = self.make_node()
        assert node.is_available()

    def test_unavailable_during_outage(self):
        sim, node = self.make_node()
        node.schedule_outage(10.0, 20.0)
        assert node.is_available(5.0)
        assert not node.is_available(10.0)
        assert not node.is_available(19.9)
        assert node.is_available(20.0)

    def test_multiple_outages(self):
        __, node = self.make_node()
        node.schedule_outage(10.0, 20.0)
        node.schedule_outage(30.0, 40.0)
        assert node.is_available(25.0)
        assert not node.is_available(35.0)

    def test_invalid_outage_rejected(self):
        __, node = self.make_node()
        with pytest.raises(ValueError):
            node.schedule_outage(20.0, 10.0)
        with pytest.raises(ValueError):
            node.schedule_outage(-5.0, 10.0)


@pytest.mark.slow
class TestFailureExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_failures(
            num_nodes=20,
            failed_fraction=0.3,
            outage_window_ms=(10_000.0, 20_000.0),
            horizon_ms=30_000.0,
            load_fraction=0.5,
            seed=2,
        )

    def test_failed_nodes_recorded(self, result):
        assert result.failed_nodes
        assert all(nid % 3 == 0 for nid in result.failed_nodes)

    def test_all_phases_measured(self, result):
        for mechanism in ("qa-nt", "greedy"):
            phases = result.phases[mechanism]
            for phase in ("before", "during", "after"):
                assert not math.isnan(phases[phase])

    def test_outage_degrades_response(self, result):
        # Losing 1/3 of the nodes under load must hurt.
        for mechanism in ("qa-nt", "greedy"):
            assert result.degradation(mechanism) > 1.0

    def test_render(self, result):
        text = result.render()
        assert "during outage" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            run_failures(failed_fraction=0.0)
        with pytest.raises(ValueError):
            run_failures(outage_window_ms=(50_000.0, 10_000.0))
