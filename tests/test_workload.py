"""Unit tests for repro.workload (arrival processes, traces)."""

import random
import statistics

import pytest

from repro.workload.arrival import (
    FixedArrivals,
    PoissonArrivals,
    UniformArrivals,
)
from repro.workload.sinusoid import SinusoidArrivals
from repro.workload.trace import (
    build_trace,
    two_class_sinusoid_trace,
    zipf_trace,
)
from repro.workload.zipf import TruncatedZipf, ZipfArrivals


class TestUniformArrivals:
    def test_times_sorted_and_bounded(self):
        process = UniformArrivals(mean_ms=50.0)
        times = process.sample(10_000.0, random.Random(0))
        assert times == sorted(times)
        assert all(0 <= t < 10_000.0 for t in times)

    def test_mean_gap_near_target(self):
        process = UniformArrivals(mean_ms=50.0)
        times = process.sample(200_000.0, random.Random(1))
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert statistics.mean(gaps) == pytest.approx(50.0, rel=0.15)

    def test_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            UniformArrivals(0.0)


class TestPoissonArrivals:
    def test_rate_realised(self):
        process = PoissonArrivals(rate_per_ms=0.02)
        times = process.sample(100_000.0, random.Random(2))
        assert len(times) == pytest.approx(2000, rel=0.15)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)


class TestFixedArrivals:
    def test_respects_horizon(self):
        process = FixedArrivals([5.0, 15.0, 25.0])
        assert process.sample(20.0, random.Random(0)) == [5.0, 15.0]

    def test_sorts_input(self):
        process = FixedArrivals([30.0, 10.0])
        assert process.sample(100.0, random.Random(0)) == [10.0, 30.0]

    def test_rejects_negative_times(self):
        with pytest.raises(ValueError):
            FixedArrivals([-1.0])


class TestSinusoidArrivals:
    def test_rate_profile(self):
        process = SinusoidArrivals(frequency_hz=0.05, peak_rate_per_ms=0.1)
        # sin(0)=0 -> half the peak at t=0; peak a quarter-cycle later.
        assert process.rate_at(0.0) == pytest.approx(0.05)
        assert process.rate_at(5_000.0) == pytest.approx(0.1)
        assert process.rate_at(15_000.0) == pytest.approx(0.0, abs=1e-9)

    def test_mean_rate(self):
        process = SinusoidArrivals(frequency_hz=0.05, peak_rate_per_ms=0.1)
        assert process.mean_rate_per_ms() == pytest.approx(0.05)

    def test_phase_shift(self):
        base = SinusoidArrivals(frequency_hz=0.05, peak_rate_per_ms=0.1)
        shifted = SinusoidArrivals(
            frequency_hz=0.05, peak_rate_per_ms=0.1, phase_deg=180.0
        )
        assert shifted.rate_at(5_000.0) == pytest.approx(
            base.rate_at(15_000.0), abs=1e-9
        )

    def test_event_count_matches_mean_rate(self):
        process = SinusoidArrivals(frequency_hz=0.05, peak_rate_per_ms=0.02)
        times = process.sample(100_000.0, random.Random(3))
        assert len(times) == pytest.approx(1000, rel=0.15)

    def test_events_cluster_at_rate_peaks(self):
        process = SinusoidArrivals(frequency_hz=0.05, peak_rate_per_ms=0.05)
        times = process.sample(20_000.0, random.Random(4))
        peak_window = [t for t in times if 2_500.0 <= t < 7_500.0]
        trough_window = [t for t in times if 12_500.0 <= t < 17_500.0]
        assert len(peak_window) > 3 * max(1, len(trough_window))

    def test_validation(self):
        with pytest.raises(ValueError):
            SinusoidArrivals(frequency_hz=0.0, peak_rate_per_ms=0.1)
        with pytest.raises(ValueError):
            SinusoidArrivals(frequency_hz=1.0, peak_rate_per_ms=0.0)


class TestTruncatedZipf:
    def test_samples_within_support(self):
        zipf = TruncatedZipf(a=1.0, support=100)
        rng = random.Random(5)
        draws = [zipf.sample(rng) for __ in range(1000)]
        assert all(1 <= d <= 100 for d in draws)

    def test_small_values_most_likely(self):
        zipf = TruncatedZipf(a=1.0, support=100)
        rng = random.Random(6)
        draws = [zipf.sample(rng) for __ in range(5000)]
        ones = sum(1 for d in draws if d == 1)
        tens = sum(1 for d in draws if d == 10)
        assert ones > 5 * tens

    def test_mean_formula(self):
        zipf = TruncatedZipf(a=1.0, support=3)
        # weights 1, 1/2, 1/3 -> mean = (1 + 1 + 1) / (11/6) = 18/11.
        assert zipf.mean == pytest.approx(18.0 / 11.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TruncatedZipf(a=0.0)
        with pytest.raises(ValueError):
            TruncatedZipf(support=0)


class TestZipfArrivals:
    def test_gaps_capped(self):
        process = ZipfArrivals(
            mean_interarrival_ms=20_000.0, max_interarrival_ms=30_000.0
        )
        rng = random.Random(7)
        for __ in range(200):
            assert process.gap_ms(rng) <= 30_000.0

    def test_mean_gap_matches_target_when_uncapped(self):
        process = ZipfArrivals(
            mean_interarrival_ms=100.0, max_interarrival_ms=1e12
        )
        rng = random.Random(8)
        gaps = [process.gap_ms(rng) for __ in range(30_000)]
        assert statistics.mean(gaps) == pytest.approx(100.0, rel=0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfArrivals(mean_interarrival_ms=0.0)


class TestTraceBuilders:
    def test_build_trace_sorted(self):
        trace = build_trace(
            {0: PoissonArrivals(0.01), 1: PoissonArrivals(0.01)},
            horizon_ms=10_000.0,
            origin_nodes=[0, 1, 2],
            seed=9,
        )
        times = [e.time_ms for e in trace]
        assert times == sorted(times)

    def test_build_trace_origins_valid(self):
        trace = build_trace(
            {0: PoissonArrivals(0.01)},
            horizon_ms=10_000.0,
            origin_nodes=[5, 6],
            seed=10,
        )
        assert {e.origin_node for e in trace} <= {5, 6}

    def test_build_trace_deterministic(self):
        kwargs = dict(
            processes={0: PoissonArrivals(0.01)},
            horizon_ms=5_000.0,
            origin_nodes=[0],
            seed=11,
        )
        assert build_trace(**kwargs) == build_trace(**kwargs)

    def test_build_trace_validation(self):
        with pytest.raises(ValueError):
            build_trace({}, horizon_ms=0.0, origin_nodes=[0])
        with pytest.raises(ValueError):
            build_trace({}, horizon_ms=10.0, origin_nodes=[])

    def test_two_class_trace_rates(self):
        trace = two_class_sinusoid_trace(
            horizon_ms=200_000.0,
            q1_peak_rate_per_ms=0.02,
            origin_nodes=[0],
            seed=12,
        )
        q1 = sum(1 for e in trace if e.class_index == 0)
        q2 = sum(1 for e in trace if e.class_index == 1)
        # Q1's peak (and hence mean) rate is twice Q2's.
        assert q1 == pytest.approx(2 * q2, rel=0.2)

    def test_zipf_trace_max_queries(self):
        trace = zipf_trace(
            num_classes=5,
            mean_interarrival_ms=10.0,
            horizon_ms=50_000.0,
            origin_nodes=[0],
            max_queries=100,
            seed=13,
        )
        assert len(trace) == 100

    def test_zipf_trace_covers_classes(self):
        trace = zipf_trace(
            num_classes=4,
            mean_interarrival_ms=50.0,
            horizon_ms=50_000.0,
            origin_nodes=[0],
            seed=14,
        )
        assert {e.class_index for e in trace} == {0, 1, 2, 3}
