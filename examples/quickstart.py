"""Quickstart: query markets in five minutes.

Walks through the paper's core ideas on its own worked example (Section 1
/ Figure 1):

1. the load balancer vs the throughput-optimal allocation (662 ms vs
   431 ms average response);
2. Pareto optimality of the QA allocation, checked by enumeration;
3. a market of QA-NT pricing agents *discovering* that allocation on its
   own: constant demand drives excess demand to zero (Proposition 3.1).

Run:  python examples/quickstart.py
"""

from repro.core import (
    CapacitySupplySet,
    QantParameters,
    QueryMarketEconomy,
    QueryVector,
)
from repro.experiments.fig1 import EXECUTION_TIMES_MS, run_fig1


def main() -> None:
    # --- 1 + 2: the worked example, recomputed and verified ------------------
    fig1 = run_fig1()
    print("Figure 1 — load balancing vs throughput-optimal allocation")
    print(fig1.render())
    print()
    print("QA Pareto-dominates LB:", fig1.qa_dominates_lb)
    print("QA is Pareto optimal:  ", fig1.qa_is_pareto_optimal)
    print()

    # --- 3: let the market find it -------------------------------------------
    # One QA-NT agent per node; capacities are one 500 ms period.
    supply_sets = [
        CapacitySupplySet(EXECUTION_TIMES_MS[0], 500.0),  # N1: q1 400, q2 100
        CapacitySupplySet(EXECUTION_TIMES_MS[1], 500.0),  # N2: q1 450, q2 500
    ]
    # Corner ("greedy") supply shows the specialisation crisply: at the
    # market's fixed point N1 sells only q2 and N2 only q1 — exactly the
    # QA allocation of Figure 1.
    economy = QueryMarketEconomy(
        supply_sets,
        parameters=QantParameters(adjustment=0.1, supply_method="greedy"),
        seed=7,
    )
    # Per-period demand at system capacity: one q1 (N2's whole period)
    # and five q2 (N1's whole period).
    demand = QueryVector((1, 5))
    print("Market discovery — consumption under constant at-capacity load:")
    for period in range(30):
        record = economy.run_period(demand)
        if period % 5 == 4 or period == 0:
            print(
                "  period %2d: consumed=%s planned supply: N1=%s N2=%s"
                % (
                    record.period,
                    tuple(int(x) for x in record.consumed),
                    tuple(int(x) for x in economy.agents[0].planned_supply),
                    tuple(int(x) for x in economy.agents[1].planned_supply),
                )
            )
    last = economy.history[-1]
    specialised = (
        tuple(int(x) for x in economy.agents[0].planned_supply),
        tuple(int(x) for x in economy.agents[1].planned_supply),
    )
    print()
    print("Final per-period consumption:", tuple(int(x) for x in last.consumed))
    print("Node specialisation: N1=%s N2=%s" % specialised)
    print(
        "The invisible hand found Figure 1's QA allocation:"
        if specialised == ((0, 5), (1, 0))
        else "Specialisation still drifting (non-tatonnement is stochastic):"
    )
    print("  N1 sells only the cheap q2 queries, N2 only q1.")


if __name__ == "__main__":
    main()
