"""Unit tests for repro.core.equity (future-work equitable allocation)."""

import pytest

from repro.core.equity import (
    equitable_allocation,
    equitable_consumptions,
    jain_fairness_index,
    utility_spread,
)
from repro.core.pareto import Allocation, is_pareto_optimal
from repro.core.preferences import WeightedThroughputPreference
from repro.core.vectors import QueryVector, aggregate


class TestProgressiveFilling:
    def test_scarce_supply_split_evenly(self):
        supply = QueryVector([4, 0])
        demands = [QueryVector([4, 0]), QueryVector([4, 0])]
        consumptions = equitable_consumptions(supply, demands)
        assert [c.total() for c in consumptions] == [2.0, 2.0]

    def test_all_supply_distributed_when_demanded(self):
        supply = QueryVector([3, 2])
        demands = [QueryVector([3, 2]), QueryVector([3, 2])]
        consumptions = equitable_consumptions(supply, demands)
        assert aggregate(consumptions) == supply

    def test_consumption_never_exceeds_demand(self):
        supply = QueryVector([10, 10])
        demands = [QueryVector([1, 0]), QueryVector([0, 2])]
        consumptions = equitable_consumptions(supply, demands)
        for consumption, demand in zip(consumptions, demands):
            assert consumption.componentwise_le(demand)

    def test_uneven_demand_max_min_fair(self):
        # 5 units of supply; node 0 wants 1, nodes 1-2 want 5 each.
        supply = QueryVector([5])
        demands = [QueryVector([1]), QueryVector([5]), QueryVector([5])]
        consumptions = equitable_consumptions(supply, demands)
        totals = [c.total() for c in consumptions]
        assert totals == [1.0, 2.0, 2.0]

    def test_scarcest_class_granted_first(self):
        # Node 0 demands both classes; class 1 supply is scarce, so the
        # fill takes class 1 first and class 0 still ends up fully served.
        supply = QueryVector([2, 1])
        demands = [QueryVector([2, 1])]
        consumptions = equitable_consumptions(supply, demands)
        assert consumptions[0] == QueryVector([2, 1])

    def test_deterministic_tie_break(self):
        supply = QueryVector([1])
        demands = [QueryVector([1]), QueryVector([1])]
        consumptions = equitable_consumptions(supply, demands)
        assert consumptions[0].total() == 1.0
        assert consumptions[1].total() == 0.0

    def test_custom_preferences_steer_filling(self):
        # Node 0 values class-0 queries 10x: after one grant its utility
        # is 10, so the remaining grants go to node 1 first.
        supply = QueryVector([3])
        demands = [QueryVector([3]), QueryVector([3])]
        prefs = [
            WeightedThroughputPreference([10.0]),
            WeightedThroughputPreference([1.0]),
        ]
        consumptions = equitable_consumptions(supply, demands, prefs)
        assert consumptions[1].total() > consumptions[0].total()

    def test_validation(self):
        with pytest.raises(ValueError):
            equitable_consumptions(QueryVector([1]), [])
        with pytest.raises(ValueError):
            equitable_consumptions(QueryVector([1]), [QueryVector([1, 2])])
        with pytest.raises(ValueError):
            equitable_consumptions(
                QueryVector([1]), [QueryVector([1])], preferences=[]
            )


class TestEquitableAllocation:
    def test_allocation_is_pareto_optimal_among_redistributions(self):
        supplies = [QueryVector([2, 0]), QueryVector([2, 2])]
        demands = [QueryVector([4, 2]), QueryVector([4, 2])]
        allocation = equitable_allocation(supplies, demands)
        # Alternative: hand everything to node 0.
        greedy_all = Allocation(
            supplies=tuple(supplies),
            consumptions=(QueryVector([4, 2]), QueryVector([0, 0])),
        )
        assert is_pareto_optimal(allocation, [allocation, greedy_all])

    def test_spread_zero_when_perfectly_divisible(self):
        supplies = [QueryVector([4])]
        demands = [QueryVector([2]), QueryVector([2])]
        allocation = equitable_allocation(supplies, demands)
        assert utility_spread(allocation) == 0.0

    def test_spread_bounded_by_one_unit_for_equal_demands(self):
        supplies = [QueryVector([5])]
        demands = [QueryVector([5]), QueryVector([5]), QueryVector([5])]
        allocation = equitable_allocation(supplies, demands)
        assert utility_spread(allocation) <= 1.0


class TestFairnessIndex:
    def test_perfectly_fair(self):
        allocation = Allocation(
            supplies=(QueryVector([2]), QueryVector([2])),
            consumptions=(QueryVector([2]), QueryVector([2])),
        )
        assert jain_fairness_index(allocation) == pytest.approx(1.0)

    def test_maximally_unfair(self):
        allocation = Allocation(
            supplies=(QueryVector([4]), QueryVector([0])),
            consumptions=(QueryVector([4]), QueryVector([0])),
        )
        assert jain_fairness_index(allocation) == pytest.approx(0.5)

    def test_empty_allocation_is_vacuously_fair(self):
        allocation = Allocation(
            supplies=(QueryVector([0]),),
            consumptions=(QueryVector([0]),),
        )
        assert jain_fairness_index(allocation) == 1.0

    def test_equitable_beats_greedy_distribution_on_fairness(self):
        supply = QueryVector([6])
        demands = [QueryVector([6]), QueryVector([6]), QueryVector([6])]
        fair = equitable_allocation(
            [supply], demands
        )
        greedy = Allocation(
            supplies=(supply, QueryVector([0]), QueryVector([0])),
            consumptions=(
                QueryVector([6]),
                QueryVector([0]),
                QueryVector([0]),
            ),
        )
        assert jain_fairness_index(fair) > jain_fairness_index(greedy)
