"""Experiment E8 — Zipf heterogeneous workload (paper Figure 6).

The second simulation set: 10,000 queries over 100 select-join-project-sort
classes (0–49 joins, ≈2,000 ms best-node execution), inter-arrival times
Zipf(a=1) capped at 30 s, mean inter-arrival swept from 10 ms to
20,000 ms.  The figure reports Greedy's response time normalised by
QA-NT's per mean inter-arrival.  Paper shape: 13–24 % QA-NT advantage at
small inter-arrivals (deep overload, shrinking as overload deepens),
peaking ≈26 % at moderate overload (~10 s), and converging to 1.0 once
the system stops being overloaded (≥17 s).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

from ..allocation import GreedyAllocator, QantAllocator
from ..sim import FederationConfig
from .reporting import format_series
from .setups import (
    World,
    run_mechanism,
    zipf_trace_for_world,
    zipf_world,
)
from .spec import ScalePreset, ScenarioSpec, register

__all__ = [
    "Fig6Result",
    "fig6_cell",
    "run_fig6",
]

#: Mechanism pair the figure compares.
_PAIR = {"qa-nt": QantAllocator, "greedy": GreedyAllocator}


@dataclass
class Fig6Result:
    """Greedy response normalised by QA-NT per mean inter-arrival."""

    interarrivals_ms: List[float]
    greedy_normalised: List[float]

    def render(self) -> str:
        """The Figure 6 series as text."""
        return format_series(
            "greedy response / qa-nt response vs mean inter-arrival (ms)",
            self.interarrivals_ms,
            self.greedy_normalised,
        )

    def to_dict(self) -> dict:
        """JSON-ready form of the Figure 6 series."""
        return asdict(self)


def fig6_cell(
    mechanism: str,
    interarrival_ms: float,
    point_index: int,
    seed: int,
    num_nodes: int = 100,
    num_relations: int = 1000,
    num_classes: int = 100,
    max_queries: int = 10_000,
    horizon_ms: float = 300_000.0,
    crossover_ms: Optional[float] = 17_000.0,
    world: Optional[World] = None,
    config: Optional[FederationConfig] = None,
) -> Dict[str, float]:
    """One (mechanism, inter-arrival, seed) cell of Figure 6.

    When ``world`` is omitted the Zipf world is rebuilt (and crossover-
    calibrated) from ``seed``, so parallel cells are self-contained;
    a caller passing a prebuilt world must have applied the calibration
    itself (the legacy driver does).
    """
    if world is None:
        world = zipf_world(
            num_nodes=num_nodes,
            num_relations=num_relations,
            num_classes=num_classes,
            seed=seed,
        )
        if crossover_ms is not None:
            world = _calibrate_crossover(world, crossover_ms)
    trace = zipf_trace_for_world(
        world,
        mean_interarrival_ms=interarrival_ms,
        horizon_ms=horizon_ms,
        max_queries=max_queries,
        seed=seed + 20 + point_index,
    )
    run = run_mechanism(
        world,
        trace,
        mechanism,
        _PAIR[mechanism],
        config or FederationConfig(seed=seed + 2),
    )
    return run.metrics_dict()


def run_fig6(
    interarrivals_ms: Sequence[float] = (
        10.0,
        100.0,
        1_000.0,
        5_000.0,
        10_000.0,
        17_000.0,
        20_000.0,
    ),
    num_nodes: int = 100,
    num_relations: int = 1000,
    num_classes: int = 100,
    max_queries: int = 10_000,
    horizon_ms: float = 300_000.0,
    crossover_ms: Optional[float] = 17_000.0,
    seed: int = 0,
    world: Optional[World] = None,
    config: Optional[FederationConfig] = None,
) -> Fig6Result:
    """Sweep the mean inter-arrival time on the Zipf world.

    ``crossover_ms`` rescales the cost model so the system stops being
    overloaded at that per-class mean inter-arrival, matching the paper's
    observation that gains vanish past ≈17,000 ms.  The paper pins both
    this boundary and the 2,000 ms average best execution time; our
    analytical cost model cannot honour both at once, so the crossover —
    the property Figure 6's shape depends on — wins (see EXPERIMENTS.md).
    Pass ``None`` to keep the Table 3 execution-time calibration instead.
    """
    world = world or zipf_world(
        num_nodes=num_nodes,
        num_relations=num_relations,
        num_classes=num_classes,
        seed=seed,
    )
    if crossover_ms is not None:
        world = _calibrate_crossover(world, crossover_ms)
    ratios = []
    for index, mean_gap in enumerate(interarrivals_ms):
        cells = {
            mechanism: fig6_cell(
                mechanism,
                mean_gap,
                index,
                seed,
                max_queries=max_queries,
                horizon_ms=horizon_ms,
                world=world,
                config=config,
            )
            for mechanism in _PAIR
        }
        ratios.append(
            cells["greedy"]["mean_response_ms"]
            / cells["qa-nt"]["mean_response_ms"]
        )
    return Fig6Result(
        interarrivals_ms=list(interarrivals_ms), greedy_normalised=ratios
    )


def _calibrate_crossover(world: World, crossover_ms: float) -> World:
    """Rescale the cost model so capacity equals ``K / crossover_ms``.

    The system saturates exactly when every class arrives with mean
    inter-arrival ``crossover_ms``; multiplying all costs by
    ``capacity * crossover_ms / K`` moves the saturation boundary there
    (capacity is inversely proportional to the cost scale).
    """
    num_classes = len(world.classes)
    capacity = world.capacity_qpms([1.0] * num_classes)
    factor = capacity * crossover_ms / num_classes
    model = world.cost_model
    if not hasattr(model, "rescaled"):
        raise TypeError("crossover calibration needs a rescalable cost model")
    return World(
        specs=world.specs,
        placement=world.placement,
        classes=world.classes,
        cost_model=model.rescaled(model.scale * factor),
        catalog=world.catalog,
    )


register(
    ScenarioSpec(
        name="fig6",
        title="Fig. 6 — Greedy/QA-NT response ratio vs Zipf inter-arrival",
        axis="interarrival_ms",
        mechanisms=("qa-nt", "greedy"),
        ratio_of=("greedy", "qa-nt"),
        cell=fig6_cell,
        scales={
            "small": ScalePreset(
                points=(1_000.0, 10_000.0, 17_000.0),
                fixed={
                    "num_nodes": 30,
                    "num_relations": 300,
                    "num_classes": 30,
                    "max_queries": 2_500,
                    "horizon_ms": 200_000.0,
                },
            ),
            "paper": ScalePreset(
                points=(
                    10.0,
                    100.0,
                    1_000.0,
                    5_000.0,
                    10_000.0,
                    17_000.0,
                    20_000.0,
                ),
                fixed={},
            ),
        },
    )
)
