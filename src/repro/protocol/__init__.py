"""Transport-agnostic market-protocol core of the QA-NT reproduction.

The paper's market is a conversation: bid requests fan out, quotes and
refusals come back, assignments are confirmed, period ticks resettle
prices.  This package makes that conversation explicit and pluggable —
typed frozen messages with a versioned JSON codec (:mod:`~repro.protocol
.messages`), a :class:`Transport` seam (:mod:`~repro.protocol.transport`),
the :class:`MarketSession` negotiation state machine (:mod:`~repro
.protocol.session`), and an in-process asyncio backend (:mod:`~repro
.protocol.local`) that proves the seam without touching the simulator.

Standard library only, fully typed (``mypy --strict`` in CI), and free of
``repro.core`` / ``repro.sim`` imports by design: a live broker daemon
must be able to depend on this package alone.
"""

from .messages import (
    PROTOCOL_VERSION,
    AssignQuery,
    BidRequest,
    CompletionReport,
    Message,
    MESSAGE_TYPES,
    PeriodTick,
    ProtocolError,
    Quote,
    Refusal,
    decode,
    encode,
    message_tag,
)
from .session import (
    MarketSession,
    NegotiationOutcome,
    NegotiationPolicy,
    SessionState,
)
from .transport import (
    MAX_FRAME_BYTES,
    FanoutResult,
    FrameDecoder,
    Transport,
    encode_frame,
)
from .local import (
    LocalAsyncTransport,
    LocalNode,
    MarketReport,
    run_local_market,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "BidRequest",
    "Quote",
    "Refusal",
    "AssignQuery",
    "CompletionReport",
    "PeriodTick",
    "Message",
    "MESSAGE_TYPES",
    "message_tag",
    "encode",
    "decode",
    "FanoutResult",
    "FrameDecoder",
    "MAX_FRAME_BYTES",
    "Transport",
    "encode_frame",
    "MarketSession",
    "NegotiationPolicy",
    "NegotiationOutcome",
    "SessionState",
    "LocalAsyncTransport",
    "LocalNode",
    "MarketReport",
    "run_local_market",
]
