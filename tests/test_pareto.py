"""Unit tests for repro.core.pareto (Definition 1 machinery)."""

import pytest

from repro.core.pareto import (
    Allocation,
    enumerate_allocations,
    is_pareto_optimal,
    pareto_dominates,
    pareto_front,
)
from repro.core.preferences import WeightedThroughputPreference
from repro.core.supply import ExplicitSupplySet
from repro.core.vectors import QueryVector


def alloc(*consumptions):
    """Allocation with supplies mirroring consumptions (clearing trivially)."""
    vectors = [QueryVector(c) for c in consumptions]
    return Allocation(supplies=tuple(vectors), consumptions=tuple(vectors))


class TestAllocation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Allocation(
                supplies=(QueryVector([1]),),
                consumptions=(QueryVector([1]), QueryVector([1])),
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Allocation(supplies=(), consumptions=())

    def test_aggregates(self):
        a = alloc((1, 2), (3, 4))
        assert a.aggregate_supply() == QueryVector([4, 6])
        assert a.aggregate_consumption() == QueryVector([4, 6])

    def test_market_clearing(self):
        a = alloc((1, 1))
        assert a.is_market_clearing()
        b = Allocation(
            supplies=(QueryVector([2, 0]),),
            consumptions=(QueryVector([1, 0]),),
        )
        assert not b.is_market_clearing()

    def test_respects_demand(self):
        a = alloc((1, 1), (0, 2))
        assert a.respects_demand([QueryVector([2, 1]), QueryVector([0, 2])])
        assert not a.respects_demand([QueryVector([0, 1]), QueryVector([0, 2])])

    def test_total_consumed(self):
        assert alloc((1, 2), (3, 0)).total_consumed() == 6.0


class TestDominance:
    def test_dominates_when_one_node_strictly_better(self):
        better = alloc((2, 0), (1, 0))
        worse = alloc((1, 0), (1, 0))
        assert pareto_dominates(better, worse)

    def test_no_domination_when_tradeoff(self):
        a = alloc((2, 0), (0, 0))
        b = alloc((0, 0), (2, 0))
        assert not pareto_dominates(a, b)
        assert not pareto_dominates(b, a)

    def test_equal_allocations_do_not_dominate(self):
        a = alloc((1, 1))
        assert not pareto_dominates(a, alloc((1, 1)))

    def test_custom_preferences(self):
        # Node 0 values class 1 ten times more.
        prefs = [WeightedThroughputPreference([1.0, 10.0])]
        rich = alloc((0, 1))
        poor = alloc((5, 0))
        assert pareto_dominates(rich, poor, prefs)

    def test_node_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pareto_dominates(alloc((1,)), alloc((1,), (1,)))

    def test_preference_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pareto_dominates(
                alloc((1,)), alloc((2,)), [WeightedThroughputPreference([1])] * 2
            )


class TestFrontAndOptimality:
    def test_is_pareto_optimal_against_alternatives(self):
        candidate = alloc((2, 0), (1, 0))
        alternatives = [candidate, alloc((1, 0), (1, 0)), alloc((2, 0), (0, 0))]
        assert is_pareto_optimal(candidate, alternatives)
        assert not is_pareto_optimal(alloc((1, 0), (1, 0)), alternatives)

    def test_front_excludes_dominated(self):
        a = alloc((2, 0), (1, 0))
        b = alloc((1, 0), (1, 0))
        c = alloc((0, 0), (3, 0))
        front = pareto_front([a, b, c])
        assert a in front and c in front and b not in front

    def test_front_of_empty_list(self):
        assert pareto_front([]) == []

    def test_front_keeps_incomparable(self):
        a = alloc((2, 0), (0, 0))
        b = alloc((0, 0), (2, 0))
        assert set(map(id, pareto_front([a, b]))) == {id(a), id(b)}


class TestEnumeration:
    def test_enumerates_only_feasible_clearing_allocations(self):
        demands = [QueryVector([1, 1]), QueryVector([1, 0])]
        supply_sets = [
            ExplicitSupplySet([QueryVector([1, 0]), QueryVector([0, 1])]),
            ExplicitSupplySet([QueryVector([1, 0])]),
        ]
        allocations = enumerate_allocations(demands, supply_sets)
        assert allocations  # non-empty
        total_demand = QueryVector([2, 1])
        for allocation in allocations:
            assert allocation.is_market_clearing()
            assert allocation.aggregate_supply().componentwise_le(total_demand)
            assert allocation.respects_demand(demands)

    def test_supply_exceeding_demand_excluded(self):
        demands = [QueryVector([0, 0])]
        supply_sets = [ExplicitSupplySet([QueryVector([1, 0])])]
        allocations = enumerate_allocations(demands, supply_sets)
        # Only the zero supply vector survives.
        assert all(a.aggregate_supply().is_zero() for a in allocations)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            enumerate_allocations(
                [QueryVector([1])],
                [
                    ExplicitSupplySet([QueryVector([1])]),
                    ExplicitSupplySet([QueryVector([1])]),
                ],
            )
