"""Experiments E5–E7 — QA-NT in dynamic environments (paper Figure 5).

Three panels, all on the two-query world:

* **5a** — Greedy's response time normalised by QA-NT's as the average
  workload sweeps 10–300 % of system capacity (20 s, 0.05 Hz sinusoid).
  Paper shape: Greedy ≈5 % better below 75 %, 15–32 % worse above.
* **5b** — the same normalised ratio as the sinusoid frequency sweeps
  0.05–2 Hz at 80 % average load; the QA-NT advantage shrinks with
  frequency.
* **5c** — per-half-second counts of Q1 queries arriving vs executed by
  QA-NT and by Greedy near total capacity; QA-NT tracks the arrival curve
  more closely because it reserves capacity by pricing Q2 onto slower
  nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..allocation import GreedyAllocator, QantAllocator
from ..sim import FederationConfig
from .reporting import format_series
from .setups import (
    World,
    run_mechanisms,
    sinusoid_trace_for_load,
    two_query_world,
)

__all__ = [
    "Fig5aResult",
    "Fig5bResult",
    "Fig5cResult",
    "run_fig5a",
    "run_fig5b",
    "run_fig5c",
]

#: Mechanism pair the panels compare.
_PAIR = {"qa-nt": QantAllocator, "greedy": GreedyAllocator}


@dataclass
class Fig5aResult:
    """Greedy response normalised by QA-NT per load level."""

    loads: List[float]
    greedy_normalised: List[float]

    def render(self) -> str:
        """The 5a series as text."""
        return format_series(
            "greedy response / qa-nt response vs load fraction",
            self.loads,
            self.greedy_normalised,
        )


def run_fig5a(
    loads: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0),
    num_nodes: int = 100,
    horizon_ms: float = 20_000.0,
    frequency_hz: float = 0.05,
    seed: int = 0,
    config: Optional[FederationConfig] = None,
) -> Fig5aResult:
    """Sweep average load as a fraction of system capacity (panel 5a)."""
    world = two_query_world(num_nodes=num_nodes, seed=seed)
    ratios = []
    for index, load in enumerate(loads):
        trace = sinusoid_trace_for_load(
            world,
            load_fraction=load,
            horizon_ms=horizon_ms,
            frequency_hz=frequency_hz,
            seed=seed + 10 + index,
        )
        runs = run_mechanisms(
            world,
            trace,
            mechanisms=dict(_PAIR),
            config=config or FederationConfig(seed=seed + 2),
        )
        ratios.append(
            runs["greedy"].mean_response_ms / runs["qa-nt"].mean_response_ms
        )
    return Fig5aResult(loads=list(loads), greedy_normalised=ratios)


@dataclass
class Fig5bResult:
    """Greedy response normalised by QA-NT per sinusoid frequency."""

    frequencies_hz: List[float]
    greedy_normalised: List[float]

    def render(self) -> str:
        """The 5b series as text."""
        return format_series(
            "greedy response / qa-nt response vs frequency (Hz)",
            self.frequencies_hz,
            self.greedy_normalised,
        )


def run_fig5b(
    frequencies_hz: Sequence[float] = (0.05, 0.1, 0.25, 0.5, 1.0, 2.0),
    num_nodes: int = 100,
    horizon_ms: float = 40_000.0,
    load_fraction: float = 0.8,
    seed: int = 0,
    config: Optional[FederationConfig] = None,
) -> Fig5bResult:
    """Sweep the sinusoid frequency at 80 % average load (panel 5b)."""
    world = two_query_world(num_nodes=num_nodes, seed=seed)
    ratios = []
    for index, freq in enumerate(frequencies_hz):
        trace = sinusoid_trace_for_load(
            world,
            load_fraction=load_fraction,
            horizon_ms=horizon_ms,
            frequency_hz=freq,
            seed=seed + 10 + index,
        )
        runs = run_mechanisms(
            world,
            trace,
            mechanisms=dict(_PAIR),
            config=config or FederationConfig(seed=seed + 2),
        )
        ratios.append(
            runs["greedy"].mean_response_ms / runs["qa-nt"].mean_response_ms
        )
    return Fig5bResult(
        frequencies_hz=list(frequencies_hz), greedy_normalised=ratios
    )


@dataclass
class Fig5cResult:
    """Per-bucket Q1 arrivals and executions (panel 5c)."""

    bucket_ms: float
    q1_arrivals: List[int]
    q1_executed_qant: List[int]
    q1_executed_greedy: List[int]

    @property
    def times_s(self) -> List[float]:
        """Bucket start times in seconds."""
        return [i * self.bucket_ms / 1000.0 for i in range(len(self.q1_arrivals))]

    def tracking_error(self, executed: Sequence[int]) -> float:
        """Mean absolute arrival-vs-executed gap (lower tracks better)."""
        return sum(
            abs(a - e) for a, e in zip(self.q1_arrivals, executed)
        ) / max(1, len(self.q1_arrivals))

    def render(self) -> str:
        """All three 5c series as text."""
        return "\n".join(
            (
                format_series("Q1 arrivals", self.times_s, self.q1_arrivals),
                format_series(
                    "Q1 executed (qa-nt)", self.times_s, self.q1_executed_qant
                ),
                format_series(
                    "Q1 executed (greedy)", self.times_s, self.q1_executed_greedy
                ),
            )
        )


def run_fig5c(
    num_nodes: int = 100,
    horizon_ms: float = 15_000.0,
    load_fraction: float = 0.95,
    frequency_hz: float = 0.05,
    bucket_ms: float = 500.0,
    seed: int = 0,
    config: Optional[FederationConfig] = None,
) -> Fig5cResult:
    """Near-capacity tracking of the Q1 arrival curve (panel 5c)."""
    world = two_query_world(num_nodes=num_nodes, seed=seed)
    trace = sinusoid_trace_for_load(
        world,
        load_fraction=load_fraction,
        horizon_ms=horizon_ms,
        frequency_hz=frequency_hz,
        seed=seed + 1,
    )
    runs = run_mechanisms(
        world,
        trace,
        mechanisms=dict(_PAIR),
        config=config or FederationConfig(seed=seed + 2),
    )
    num_buckets = int(horizon_ms // bucket_ms)
    arrivals = [0] * num_buckets
    for event in trace:
        if event.class_index == 0:
            bucket = min(num_buckets - 1, int(event.time_ms // bucket_ms))
            arrivals[bucket] += 1
    executed = {
        name: run.metrics.executed_per_period(
            bucket_ms, horizon_ms, class_index=0
        )[:num_buckets]
        for name, run in runs.items()
    }
    return Fig5cResult(
        bucket_ms=bucket_ms,
        q1_arrivals=arrivals,
        q1_executed_qant=executed["qa-nt"],
        q1_executed_greedy=executed["greedy"],
    )
