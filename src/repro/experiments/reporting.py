"""Plain-text reporting of experiment results.

Every experiment driver returns a structured result object plus a
``render()`` helper that prints the same rows/series the paper's table or
figure shows, so the benchmark harness can regenerate each artefact as
text.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = [
    "format_table",
    "format_series",
    "table_to_csv",
    "series_to_csv",
]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render rows as an aligned monospace table."""
    str_rows: List[List[str]] = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[object]
) -> str:
    """Render one figure series as ``name: (x, y) ...`` pairs, one per line."""
    if len(xs) != len(ys):
        raise ValueError("series x and y lengths differ")
    lines = [name]
    for x, y in zip(xs, ys):
        lines.append("  %s\t%s" % (_cell(x), _cell(y)))
    return "\n".join(lines)


def table_to_csv(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render rows as CSV (RFC-4180 quoting for commas/quotes).

    The text artefacts under ``benchmarks/results/`` are for humans; CSV
    is for spreadsheets and plotting scripts.
    """
    lines = [",".join(_csv_cell(h) for h in headers)]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        lines.append(",".join(_csv_cell(c) for c in row))
    return "\n".join(lines)


def series_to_csv(
    x_name: str, y_name: str, xs: Sequence[object], ys: Sequence[object]
) -> str:
    """One figure series as a two-column CSV."""
    if len(xs) != len(ys):
        raise ValueError("series x and y lengths differ")
    return table_to_csv((x_name, y_name), list(zip(xs, ys)))


def _cell(value: object) -> str:
    if isinstance(value, float):
        return "%.3f" % value
    return str(value)


def _csv_cell(value: object) -> str:
    text = repr(value) if isinstance(value, float) else str(value)
    if any(ch in text for ch in ',"\n'):
        return '"%s"' % text.replace('"', '""')
    return text
