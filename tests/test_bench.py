"""Tests for the microbenchmark subsystem (:mod:`repro.bench`)."""

import json

import pytest

from repro import cli
from repro.bench import (
    BENCH_SCHEMA_VERSION,
    KERNELS,
    Measurement,
    bench_payload,
    compare_payloads,
    find_regressions,
    measure,
    render_results,
    run_benchmarks,
    write_bench_artifact,
)

#: Kernels ISSUE-level tooling relies on being present.
REQUIRED_KERNELS = {
    "qant.run_period",
    "supply.greedy",
    "supply.proportional",
    "supply.exact",
    "vector.arith",
    "vector.aggregate",
    "sim.event_throughput",
    "e2e.federation_sweep",
}


class TestRegistry:
    def test_at_least_six_kernels_registered(self):
        assert len(KERNELS) >= 6

    def test_required_kernels_present(self):
        assert REQUIRED_KERNELS <= set(KERNELS)

    def test_every_kernel_setup_returns_callable(self):
        # Exclude the expensive end-to-end kernel; its setup builds a
        # 20-node world and is covered by the CLI smoke in CI.
        for name, kernel in KERNELS.items():
            if name.startswith("e2e."):
                continue
            fn = kernel.setup()
            assert callable(fn)
            fn()  # one untimed execution must not raise

    def test_duplicate_registration_rejected(self):
        from repro.bench.kernels import register_kernel

        with pytest.raises(ValueError):
            register_kernel("vector.arith", "dup")(lambda: (lambda: None))


class TestHarness:
    def test_measure_reports_positive_time(self):
        ns_per_op, inner = measure(lambda: sum(range(50)), repeat=1)
        assert ns_per_op > 0
        assert inner >= 1

    def test_measure_rejects_zero_repeat(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeat=0)

    def test_unknown_filter_raises(self):
        with pytest.raises(ValueError, match="no benchmark kernel matches"):
            run_benchmarks(name_filter="definitely-not-a-kernel", repeat=1)

    def test_run_filtered_and_payload_schema(self, tmp_path):
        fast = {
            "vector.arith": KERNELS["vector.arith"],
            "vector.aggregate": KERNELS["vector.aggregate"],
        }
        results = run_benchmarks(
            name_filter="vector", repeat=1, kernels=fast
        )
        assert set(results) == set(fast)
        for measurement in results.values():
            assert measurement.ns_per_op > 0
            assert measurement.ops_per_s > 0
            assert measurement.repeat == 1

        payload = bench_payload(results, label="unit")
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert payload["kind"] == "bench"
        assert payload["label"] == "unit"
        assert "python_version" in payload["environment"]
        assert set(payload["kernels"]) == set(fast)
        entry = payload["kernels"]["vector.arith"]
        assert {"description", "ns_per_op", "ops_per_s", "repeat"} <= set(
            entry
        )

        path = write_bench_artifact(payload, "unit", directory=str(tmp_path))
        assert path.name == "BENCH_unit.json"
        on_disk = json.loads(path.read_text())
        assert on_disk["kernels"].keys() == payload["kernels"].keys()

    def test_compare_payloads_speedup_factors(self):
        def entry(ns):
            return {"description": "", "ns_per_op": ns, "ops_per_s": 1e9 / ns}

        before = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "kind": "bench",
            "kernels": {"a": entry(200.0), "b": entry(100.0)},
        }
        after = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "kind": "bench",
            "kernels": {"a": entry(100.0)},
        }
        speedups = compare_payloads(before, after)
        assert speedups == {"a": 2.0}

    def test_compare_rejects_wrong_schema(self):
        good = {"schema_version": BENCH_SCHEMA_VERSION, "kind": "bench", "kernels": {}}
        bad = {"schema_version": 999, "kind": "bench", "kernels": {}}
        with pytest.raises(ValueError):
            compare_payloads(good, bad)

    def test_find_regressions_flags_only_kernels_over_threshold(self):
        def entry(ns):
            return {"description": "", "ns_per_op": ns, "ops_per_s": 1e9 / ns}

        def measurement(name, ns):
            return Measurement(
                name=name, description="", ns_per_op=ns, repeat=1, inner_loops=1
            )

        baseline = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "kind": "bench",
            "kernels": {
                "fast": entry(100.0),
                "slow": entry(100.0),
                "gone": entry(100.0),
            },
        }
        results = {
            "fast": measurement("fast", 120.0),  # +20%: under threshold
            "slow": measurement("slow", 200.0),  # +100%: regression
            "new": measurement("new", 50.0),  # no baseline: ignored
        }
        regressions = find_regressions(baseline, results, threshold_pct=50.0)
        assert set(regressions) == {"slow"}
        assert regressions["slow"] == pytest.approx(100.0)

    def test_find_regressions_rejects_negative_threshold(self):
        baseline = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "kind": "bench",
            "kernels": {},
        }
        with pytest.raises(ValueError):
            find_regressions(baseline, {}, threshold_pct=-1.0)

    def test_render_results_table(self):
        results = run_benchmarks(
            name_filter="vector.arith", repeat=1
        )
        table = render_results(results)
        assert "kernel" in table and "ns/op" in table
        assert "vector.arith" in table


class TestCli:
    def test_bench_subcommand_writes_artifact(self, tmp_path, capsys):
        rc = cli.main(
            [
                "bench",
                "--filter",
                "vector",
                "--repeat",
                "1",
                "--json",
                "--label",
                "clitest",
                "--out",
                str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "vector.arith" in out
        artifact = tmp_path / "BENCH_clitest.json"
        assert artifact.exists()
        payload = json.loads(artifact.read_text())
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert "vector.aggregate" in payload["kernels"]

    def test_bench_subcommand_bad_filter_fails(self, capsys):
        rc = cli.main(["bench", "--filter", "nope-nothing", "--repeat", "1"])
        assert rc == 2
        assert "no benchmark kernel" in capsys.readouterr().err

    def test_bench_subcommand_rejects_zero_repeat(self, capsys):
        rc = cli.main(["bench", "--repeat", "0"])
        assert rc == 2
        assert "--repeat" in capsys.readouterr().err

    def test_bench_subcommand_rejects_path_label(self, capsys):
        rc = cli.main(
            ["bench", "--filter", "vector.arith", "--repeat", "1", "--json",
             "--label", "bad/label"]
        )
        assert rc == 2
        assert "label" in capsys.readouterr().err

    def test_bench_subcommand_rejects_missing_baseline(self, capsys):
        rc = cli.main(
            ["bench", "--filter", "vector.arith", "--repeat", "1",
             "--baseline", "/definitely/not/there.json"]
        )
        assert rc == 2
        assert "cannot read baseline" in capsys.readouterr().err

    def test_fail_above_requires_baseline(self, capsys):
        rc = cli.main(
            ["bench", "--filter", "vector.arith", "--repeat", "1",
             "--fail-above", "50"]
        )
        assert rc == 2
        assert "--fail-above requires --baseline" in capsys.readouterr().err

    @staticmethod
    def _baseline_artifact(tmp_path, ns_per_op):
        payload = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "kind": "bench",
            "kernels": {
                "vector.arith": {
                    "description": "",
                    "ns_per_op": ns_per_op,
                    "ops_per_s": 1e9 / ns_per_op,
                }
            },
        }
        path = tmp_path / "BENCH_gate.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_fail_above_passes_against_slow_baseline(self, tmp_path, capsys):
        baseline = self._baseline_artifact(tmp_path, ns_per_op=1e12)
        rc = cli.main(
            ["bench", "--filter", "vector.arith", "--repeat", "1",
             "--baseline", baseline, "--fail-above", "50"]
        )
        assert rc == 0
        assert "OK: no kernel regressed" in capsys.readouterr().out

    def test_fail_above_trips_against_fast_baseline(self, tmp_path, capsys):
        baseline = self._baseline_artifact(tmp_path, ns_per_op=1e-3)
        rc = cli.main(
            ["bench", "--filter", "vector.arith", "--repeat", "1",
             "--baseline", baseline, "--fail-above", "50"]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "FAIL: 1 kernel(s) regressed" in err
        assert "vector.arith" in err

    def test_fail_above_rejects_negative_threshold(self, tmp_path, capsys):
        baseline = self._baseline_artifact(tmp_path, ns_per_op=1e12)
        rc = cli.main(
            ["bench", "--filter", "vector.arith", "--repeat", "1",
             "--baseline", baseline, "--fail-above", "-5"]
        )
        assert rc == 2
        assert "non-negative" in capsys.readouterr().err

    def test_write_artifact_rejects_path_label(self, tmp_path):
        with pytest.raises(ValueError, match="file-name fragment"):
            write_bench_artifact({}, "../escape", directory=str(tmp_path))
