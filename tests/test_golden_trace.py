"""Golden-trace regression tests for the hot-path optimisations.

The files under ``tests/golden/`` were captured from the *pre-optimisation*
code (PR 1 tree) via::

    json.dumps(_json_safe(run_sweep(REGISTRY.get(name), scale="small",
               seeds=(0,)).to_dict()), indent=2, sort_keys=True) + "\n"

The perf work (price-epoch solver caching, in-place price updates, trusted
vector constructors, network/node fast paths) must not change a single
simulated decision, so the serialized sweep results have to stay
*byte-identical*.  Any diff here means an optimisation reordered floating-
point arithmetic or consumed RNG draws differently — a correctness bug,
not a tolerance issue.
"""

import json
import pathlib

import pytest

from repro.experiments.runner import _json_safe, run_sweep
from repro.experiments.spec import REGISTRY

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def _serialize(name: str) -> str:
    result = run_sweep(REGISTRY.get(name), scale="small", seeds=(0,))
    return (
        json.dumps(_json_safe(result.to_dict()), indent=2, sort_keys=True)
        + "\n"
    )


def _golden(name: str) -> str:
    return (GOLDEN_DIR / name).read_text()


def test_fig4_small_seed0_matches_golden():
    """All six mechanisms on the fig4 sweep reproduce the stored trace."""
    assert _serialize("fig4") == _golden("fig4_small_seed0.json")


@pytest.mark.slow
def test_ablation_rounding_small_seed0_matches_golden():
    """The supply-method ablation (exercises every solver + carry-over
    variant) reproduces the stored trace."""
    assert _serialize("ablation-rounding") == _golden(
        "ablation_rounding_small_seed0.json"
    )
