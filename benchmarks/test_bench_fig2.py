"""Bench E2 — regenerate Figure 2 (aggregate demand/supply/consumption).

Paper: aggregate demand (2, 6) lies outside the aggregate supply set; the
LB strategy consumes 3 queries in the first period, QA consumes 6.
"""

from repro.experiments.fig2 import run_fig2


def test_bench_fig2(benchmark, save_result):
    result = benchmark.pedantic(run_fig2, rounds=3, iterations=1)
    save_result("fig2", result.render())
    assert result.aggregate_demand.components == (2.0, 6.0)
    assert result.demand_is_infeasible
    assert result.qa_aggregate_consumption.total() == 6.0
    assert result.lb_aggregate_consumption.total() == 3.0
