"""Bench E7 — regenerate Figure 5c (tracking the Q1 arrival curve).

Paper: near total capacity, QA-NT's per-half-second Q1 executions follow
the Q1 arrival sinusoid closely, whereas Greedy overloads the system and
falls behind the curve.
"""

from repro.experiments.fig5 import run_fig5c


def test_bench_fig5c(benchmark, save_result, bench_nodes):
    result = benchmark.pedantic(
        run_fig5c,
        kwargs=dict(num_nodes=bench_nodes, horizon_ms=15_000.0, seed=0),
        rounds=1,
        iterations=1,
    )
    save_result("fig5c", result.render())
    assert sum(result.q1_arrivals) > 0
    # Both series executed a comparable volume of Q1 queries; tracking
    # error quantifies who follows the curve (reported, shape asserted
    # loosely because a single window is noisy).
    qant_err = result.tracking_error(result.q1_executed_qant)
    greedy_err = result.tracking_error(result.q1_executed_greedy)
    assert qant_err <= greedy_err * 1.5
