"""Deterministic fault injection for the federation simulator.

The paper motivates QA-NT with "multiple node failures" and temporary
overloads (Section 1) and claims the non-tatonnement process re-converges
without coordination — behaviour that only shows up when messages are
lost, replies arrive late, and agents act on stale prices.  This module
provides that adversity as a first-class, *seeded* subsystem:

* **message faults** — per-message drop probability, latency spikes, and
  scripted node-pair partitions, applied by :class:`repro.sim.network
  .Network` when an injector is attached;
* **node churn** — crash/recover windows (exponential or scripted)
  layered on :meth:`repro.sim.node.SimulatedNode.schedule_outage`'s
  existing fail/drain machinery;
* **client-side robustness policy** — the bid timeout the allocators
  apply to their request-for-bid fan-outs and the capped exponential
  backoff the federation applies to resubmissions.

Everything is driven by a dedicated fault RNG hierarchy derived from
``fault_seed`` with sha256 (process-stable, like the sweep runner's seed
derivation), so fault streams are reproducible independently of the
workload seeds.  With no injector attached — the default — the simulator
follows exactly the pre-fault code paths and consumes exactly the same
RNG draws, so golden traces stay byte-identical.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..protocol.session import NegotiationPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import SimulatedNode

__all__ = [
    "PartitionWindow",
    "FaultSpec",
    "FaultInjector",
    "derive_fault_seed",
    "half_partition",
]


def derive_fault_seed(seed: int, tag: Sequence[object]) -> int:
    """A process-stable child seed for one fault sub-stream.

    Mirrors the sweep runner's derivation: Python's builtin ``hash`` is
    salted per process, so sub-streams key a :class:`random.Random` off a
    sha256 digest of ``(seed, tag)`` instead — the same pair yields the
    same child seed in every process, which is what makes parallel chaos
    sweeps byte-identical to serial ones.
    """
    payload = repr((int(seed), tuple(tag))).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class PartitionWindow:
    """A network partition severing two node groups during a window.

    While ``start_ms <= now < end_ms``, no message crosses between a node
    of ``group_a`` and a node of ``group_b`` (both directions); traffic
    within each group is unaffected.  Nodes in neither group are never
    severed by this window.
    """

    group_a: Tuple[int, ...]
    group_b: Tuple[int, ...]
    start_ms: float
    end_ms: float

    def __post_init__(self) -> None:
        if self.end_ms <= self.start_ms:
            raise ValueError("a partition must end after it starts")
        if self.start_ms < 0:
            raise ValueError("partition start must be non-negative")
        set_a, set_b = frozenset(self.group_a), frozenset(self.group_b)
        if not set_a or not set_b:
            raise ValueError("both partition groups must be non-empty")
        if set_a & set_b:
            raise ValueError("partition groups must be disjoint")
        object.__setattr__(self, "group_a", tuple(sorted(set_a)))
        object.__setattr__(self, "group_b", tuple(sorted(set_b)))
        object.__setattr__(self, "_set_a", set_a)
        object.__setattr__(self, "_set_b", set_b)

    def severs(self, a: int, b: int, now_ms: float) -> bool:
        """True iff this window cuts the ``a``<->``b`` pair at ``now_ms``."""
        if not self.start_ms <= now_ms < self.end_ms:
            return False
        set_a: frozenset = self._set_a  # type: ignore[attr-defined]
        set_b: frozenset = self._set_b  # type: ignore[attr-defined]
        return (a in set_a and b in set_b) or (a in set_b and b in set_a)


def half_partition(
    node_ids: Iterable[int], start_ms: float, end_ms: float
) -> PartitionWindow:
    """Split ``node_ids`` into even/odd halves for ``[start_ms, end_ms)``.

    The even/odd split is deliberately nasty for the two-query world:
    Q2's data lives only on even nodes, so every odd-origin Q2 request is
    severed from *all* of its candidate servers for the window.
    """
    ids = sorted(node_ids)
    return PartitionWindow(
        group_a=tuple(n for n in ids if n % 2 == 0),
        group_b=tuple(n for n in ids if n % 2 == 1),
        start_ms=start_ms,
        end_ms=end_ms,
    )


@dataclass(frozen=True)
class FaultSpec:
    """Declarative description of one run's fault schedule and policy.

    The default instance is completely inert (:attr:`active` is False):
    a federation built with it behaves — and draws RNG — exactly like one
    built with no fault spec at all.
    """

    #: Probability that any individual message (request or reply leg) is
    #: silently lost.
    drop_probability: float = 0.0
    #: Probability that a message leg suffers a latency spike, and the
    #: extra delay the spike adds.
    spike_probability: float = 0.0
    spike_ms: float = 25.0
    #: Scripted node-pair partitions.
    partitions: Tuple[PartitionWindow, ...] = ()
    #: Node churn: Poisson crash rate per node per simulated minute, with
    #: exponentially distributed downtime.  Crashed nodes drain committed
    #: work but accept nothing new (the existing outage machinery).
    crash_rate_per_min: float = 0.0
    mean_downtime_ms: float = 2_500.0
    #: Scripted per-node outage windows ``{node_id: ((start, end), ...)}``
    #: driven through the same scheduler as churn (experiment F1 uses
    #: this instead of ad-hoc node toggling).
    scripted_outages: Mapping[int, Tuple[Tuple[float, float], ...]] = field(
        default_factory=dict
    )
    #: Client-side robustness policy: how long a client waits for bid
    #: replies before treating a silent peer as failed, and the capped
    #: exponential backoff applied to resubmissions.
    bid_timeout_ms: float = 10.0
    backoff_base_ms: float = 250.0
    backoff_factor: float = 2.0
    backoff_cap_ms: float = 2_000.0
    #: Seed of the dedicated fault RNG hierarchy (independent of every
    #: workload seed).
    fault_seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError("drop probability must be in [0, 1]")
        if not 0.0 <= self.spike_probability <= 1.0:
            raise ValueError("spike probability must be in [0, 1]")
        if self.spike_ms < 0:
            raise ValueError("spike latency must be non-negative")
        if self.crash_rate_per_min < 0:
            raise ValueError("crash rate must be non-negative")
        if self.mean_downtime_ms <= 0:
            raise ValueError("mean downtime must be positive")
        if self.bid_timeout_ms <= 0:
            raise ValueError("bid timeout must be positive")
        if self.backoff_base_ms <= 0:
            raise ValueError("backoff base must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if self.backoff_cap_ms < self.backoff_base_ms:
            raise ValueError("backoff cap must be >= the base delay")
        for windows in self.scripted_outages.values():
            for start, end in windows:
                if end <= start or start < 0:
                    raise ValueError(
                        "scripted outage windows must be non-negative and "
                        "end after they start"
                    )

    @property
    def message_faults(self) -> bool:
        """True when the message layer (and the client-side timeout /
        backoff machinery) is engaged."""
        return (
            self.drop_probability > 0.0
            or self.spike_probability > 0.0
            or bool(self.partitions)
        )

    @property
    def node_faults(self) -> bool:
        """True when any node crash/recover schedule is requested."""
        return self.crash_rate_per_min > 0.0 or bool(self.scripted_outages)

    @property
    def active(self) -> bool:
        """True when the spec injects any fault at all."""
        return self.message_faults or self.node_faults

    @property
    def negotiation_policy(self) -> NegotiationPolicy:
        """The spec's client-side robustness knobs as the market
        protocol's :class:`~repro.protocol.session.NegotiationPolicy` —
        the single source of truth for the timeout and backoff formula
        shared by the simulator and live transports."""
        return NegotiationPolicy(
            bid_timeout_ms=self.bid_timeout_ms,
            backoff_base_ms=self.backoff_base_ms,
            backoff_factor=self.backoff_factor,
            backoff_cap_ms=self.backoff_cap_ms,
        )


class FaultInjector:
    """Executes one :class:`FaultSpec` against a federation run.

    Holds the dedicated fault RNG streams (message decisions and churn
    schedules are drawn from *separate* sha-derived children of
    ``fault_seed``, so enabling churn does not shift the drop stream) and
    the fault counters the metrics layer snapshots at the end of a run.
    """

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self._policy = spec.negotiation_policy
        self._msg_rng = random.Random(
            derive_fault_seed(spec.fault_seed, ("messages",))
        )
        self._churn_seed = derive_fault_seed(spec.fault_seed, ("churn",))
        self._churn_windows: Optional[Dict[int, List[Tuple[float, float]]]] = None
        # -- counters (snapshotted into MetricsCollector at end of run) --
        self.timeouts = 0
        self.lost_messages = 0
        self.degraded_assignments = 0
        self.backoff_retries = 0
        self.crash_count = 0

    # -- message faults ----------------------------------------------------------

    @property
    def message_faults(self) -> bool:
        """Mirror of :attr:`FaultSpec.message_faults`."""
        return self.spec.message_faults

    def drop_message(self) -> bool:
        """Decide (from the fault stream) whether one message leg is lost."""
        p = self.spec.drop_probability
        if p <= 0.0:
            return False
        return self._msg_rng.random() < p

    def spike_penalty_ms(self) -> float:
        """Extra latency (possibly zero) one message leg suffers."""
        spec = self.spec
        if spec.spike_probability <= 0.0:
            return 0.0
        if self._msg_rng.random() < spec.spike_probability:
            return spec.spike_ms
        return 0.0

    def partitioned(self, a: int, b: int, now_ms: float) -> bool:
        """True iff nodes ``a`` and ``b`` cannot exchange messages now."""
        for window in self.spec.partitions:
            if window.severs(a, b, now_ms):
                return True
        return False

    def reachable(
        self, origin: int, candidates: Sequence[int], now_ms: float
    ) -> Tuple[int, ...]:
        """``candidates`` minus the nodes partitioned away from ``origin``."""
        if not self.spec.partitions:
            return tuple(candidates)
        return tuple(
            nid
            for nid in candidates
            if not self.partitioned(origin, nid, now_ms)
        )

    def partition_ms(self) -> float:
        """Total wall-clock during which *any* partition window is active.

        Overlapping windows are unioned, so the value is the length of
        time the network was split at all — the paper-style "length of
        the (partition-induced) overload period".
        """
        intervals = sorted(
            (w.start_ms, w.end_ms) for w in self.spec.partitions
        )
        total = 0.0
        cur_start: Optional[float] = None
        cur_end = 0.0
        for start, end in intervals:
            if cur_start is None:
                cur_start, cur_end = start, end
            elif start <= cur_end:
                cur_end = max(cur_end, end)
            else:
                total += cur_end - cur_start
                cur_start, cur_end = start, end
        if cur_start is not None:
            total += cur_end - cur_start
        return total

    # -- client-side policy -------------------------------------------------------

    @property
    def negotiation_policy(self) -> NegotiationPolicy:
        """The run's client-side policy (see :attr:`FaultSpec
        .negotiation_policy`)."""
        return self._policy

    def backoff_ms(self, attempt: int) -> float:
        """Capped exponential resubmission delay for retry ``attempt``.

        Delegates to the market protocol's
        :meth:`~repro.protocol.session.NegotiationPolicy.backoff_ms` —
        bit-identical arithmetic to the formula this class always used.
        Monotone non-decreasing in ``attempt`` and bounded by
        ``backoff_cap_ms`` — the properties the hypothesis suite pins.
        """
        return self._policy.backoff_ms(attempt)

    # -- node churn ---------------------------------------------------------------

    def churn_windows(
        self, node_ids: Sequence[int], horizon_ms: float
    ) -> Dict[int, List[Tuple[float, float]]]:
        """The crash/recover schedule for this run (generated once).

        Per node, crash times follow a Poisson process at
        ``crash_rate_per_min`` with exponentially distributed downtimes;
        everything is drawn from the dedicated churn stream in ascending
        node-id order, so the schedule depends only on
        ``(fault_seed, node_ids, horizon_ms)``.
        """
        if self._churn_windows is not None:
            return self._churn_windows
        windows: Dict[int, List[Tuple[float, float]]] = {}
        spec = self.spec
        if spec.crash_rate_per_min > 0.0 and horizon_ms > 0.0:
            rng = random.Random(self._churn_seed)
            rate_per_ms = spec.crash_rate_per_min / 60_000.0
            for nid in sorted(node_ids):
                t = rng.expovariate(rate_per_ms)
                node_windows: List[Tuple[float, float]] = []
                while t < horizon_ms:
                    downtime = rng.expovariate(1.0 / spec.mean_downtime_ms)
                    node_windows.append((t, t + downtime))
                    t += downtime + rng.expovariate(rate_per_ms)
                if node_windows:
                    windows[nid] = node_windows
        self._churn_windows = windows
        return windows

    def install_node_faults(
        self, nodes: Mapping[int, "SimulatedNode"], horizon_ms: float
    ) -> None:
        """Schedule every scripted outage and churn window on the nodes.

        Layered directly on :meth:`SimulatedNode.schedule_outage`, so a
        crashed node drains its committed queue and refuses new work —
        the same fail/drain semantics the F1 experiment always had.
        """
        for nid in sorted(self.spec.scripted_outages):
            node = nodes.get(nid)
            if node is None:
                continue
            for start, end in self.spec.scripted_outages[nid]:
                node.schedule_outage(start, end)
        for nid, windows in sorted(
            self.churn_windows(sorted(nodes), horizon_ms).items()
        ):
            node = nodes.get(nid)
            if node is None:
                continue
            for start, end in windows:
                node.schedule_outage(start, end)
                self.crash_count += 1

    # -- counters -----------------------------------------------------------------

    def note_lost(self, count: int = 1) -> None:
        """Account ``count`` lost messages (drops and partition losses)."""
        self.lost_messages += count

    def note_timeouts(self, count: int = 1) -> None:
        """Account ``count`` peers that never answered within the timeout."""
        self.timeouts += count

    def note_degraded(self) -> None:
        """Account one graceful-degradation assignment (stale-cache path)."""
        self.degraded_assignments += 1

    def note_backoff(self) -> None:
        """Account one backoff-scheduled resubmission."""
        self.backoff_retries += 1
