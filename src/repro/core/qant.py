"""QA-NT: the decentralised non-tatonnement pricing agent (Section 3.3).

One :class:`QantPricingAgent` runs inside every *server* node.  Per time
period ``tau`` it follows the paper's pseudo-code:

1. solve eq. 4 at the current private prices, obtaining the period's
   optimal supply vector ``s_i``;
2. while the period lasts, *immediately* offer to evaluate a requested
   query of class *k* iff ``s_ik > 0`` (no fairness negotiation) and
   decrement ``s_ik`` when the offer is accepted;
3. when a request arrives for a class with no remaining supply, refuse and
   raise that class's price: ``p_k += lambda * p_k``;
4. at the period's end, lower the price of every class with unsold supply:
   ``p_k -= s_ik * lambda * p_k``.

Prices are strictly private — they are never exchanged between nodes — so
each node may even use its own query classification (paper Section 3.3).
Trading failures are the *only* price signals, which is what makes the
process non-tatonnement: trade happens continuously at disequilibrium
prices rather than waiting for an umpire to clear the market.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .market import PriceVector
from .supply import SupplySet, solve_supply
from .vectors import QueryVector

__all__ = [
    "QantParameters",
    "QantPeriodStats",
    "QantPricingAgent",
]

#: Prices are clamped to this floor so a class can always recover: a price
#: that reached exactly zero could never be raised again by the
#: multiplicative update.
DEFAULT_PRICE_FLOOR = 1e-6

#: Symmetric cap guarding against runaway prices during long overloads.
DEFAULT_PRICE_CAP = 1e9


@dataclass(frozen=True)
class QantParameters:
    """Tunables of the QA-NT price dynamics.

    ``adjustment`` is the paper's ``lambda``: the relative step applied on
    every trading failure.  The paper observes larger values react faster
    but estimate the equilibrium less accurately (ablation A1).
    """

    adjustment: float = 0.1
    #: How a seller splits its capacity across classes at given prices.
    #: ``"proportional"`` (default) responds smoothly to prices, which
    #: stabilises the market (see
    #: :meth:`repro.core.supply.CapacitySupplySet._solve_proportional`);
    #: ``"greedy"``/``"fractional"``/``"exact"`` give the corner solution
    #: of the pure linear seller problem and are kept for ablations.
    supply_method: str = "proportional"
    #: Accumulate fractional supply across periods.  When the supply
    #: budget is shorter than a query's execution time, the per-period
    #: equilibrium supply is a small real number (the paper's Section 5.1
    #: rounding discussion); carrying the fraction forward lets a node
    #: offer one such query every few periods instead of never.
    carry_over: bool = True
    price_floor: float = DEFAULT_PRICE_FLOOR
    price_cap: float = DEFAULT_PRICE_CAP

    def __post_init__(self) -> None:
        if self.adjustment <= 0:
            raise ValueError("lambda (adjustment) must be positive")
        if self.price_floor <= 0:
            raise ValueError("price floor must be positive")
        if self.price_cap <= self.price_floor:
            raise ValueError("price cap must exceed the price floor")


@dataclass
class QantPeriodStats:
    """Bookkeeping for one elapsed period of one agent (for tests/metrics)."""

    planned_supply: QueryVector
    accepted: List[int]
    refused: List[int]

    @property
    def total_accepted(self) -> int:
        """Queries this node agreed to evaluate during the period."""
        return sum(self.accepted)

    @property
    def total_refused(self) -> int:
        """Requests turned away (each one raised a price)."""
        return sum(self.refused)


class QantPricingAgent:
    """The per-node QA-NT agent: private prices + period supply budget.

    The agent is deliberately framework-agnostic: the discrete-event
    simulator (:mod:`repro.sim`) and the threaded SQLite federation
    (:mod:`repro.dbms`) both drive it through the same four calls —
    :meth:`begin_period`, :meth:`would_offer`, :meth:`accept`,
    :meth:`end_period`.
    """

    def __init__(
        self,
        supply_set: SupplySet,
        parameters: Optional[QantParameters] = None,
        initial_prices: Optional[PriceVector] = None,
    ):
        self._supply_set = supply_set
        self._params = parameters or QantParameters()
        num_classes = supply_set.num_classes
        self._prices = initial_prices or PriceVector.uniform(num_classes)
        if self._prices.num_classes != num_classes:
            raise ValueError("initial prices cover the wrong number of classes")
        self._remaining: List[float] = [0.0] * num_classes
        self._credit: List[float] = [0.0] * num_classes
        self._planned = QueryVector.zeros(num_classes)
        self._accepted = [0] * num_classes
        self._refused = [0] * num_classes
        self._in_period = False

    # -- read-only state ----------------------------------------------------

    @property
    def num_classes(self) -> int:
        """Number of query classes this agent prices."""
        return self._supply_set.num_classes

    @property
    def prices(self) -> PriceVector:
        """The node's *private* price vector (never shared on the wire)."""
        return self._prices

    @property
    def supply_set(self) -> SupplySet:
        """The node's supply set ``S_i``."""
        return self._supply_set

    @property
    def remaining_supply(self) -> Tuple[float, ...]:
        """Unsold portion of the period's planned supply vector."""
        return tuple(self._remaining)

    @property
    def planned_supply(self) -> QueryVector:
        """The supply vector chosen at :meth:`begin_period` (eq. 4)."""
        return self._planned

    @property
    def in_period(self) -> bool:
        """True between :meth:`begin_period` and :meth:`end_period`."""
        return self._in_period

    def rebind_supply_set(self, supply_set: SupplySet) -> None:
        """Replace the agent's supply set (prices are kept).

        Supply sets change between periods when a node's free capacity
        changes — e.g. outstanding queued work reduces what it can sell
        next period.  Only allowed between periods.
        """
        if self._in_period:
            raise RuntimeError("cannot swap the supply set mid-period")
        if supply_set.num_classes != self.num_classes:
            raise ValueError("new supply set covers a different class count")
        self._supply_set = supply_set

    # -- the QA-NT pseudo-code ------------------------------------------------

    def begin_period(self) -> QueryVector:
        """Step 2: solve eq. 4 at current prices; reset the period budget.

        The optimal supply is generally fractional when query execution
        times exceed the period length.  With ``carry_over`` enabled
        (default), the fractional parts accumulate as per-class credit and
        convert into whole offered queries once they reach 1 — otherwise
        they are simply floored away (the paper's rounding error, worth
        ablating).  Returns the planned (integer) supply vector.
        """
        optimal = solve_supply(
            self._supply_set,
            self._prices.values,
            method=self._params.supply_method,
        )
        if self._params.carry_over:
            planned_counts = []
            for k, amount in enumerate(optimal):
                self._credit[k] += amount
                whole = float(int(self._credit[k] + 1e-9))
                self._credit[k] -= whole
                planned_counts.append(whole)
            self._planned = QueryVector(planned_counts)
        else:
            self._planned = optimal.rounded()
        self._remaining = list(self._planned.components)
        self._accepted = [0] * self.num_classes
        self._refused = [0] * self.num_classes
        self._in_period = True
        return self._planned

    def would_offer(self, class_index: int) -> bool:
        """Steps 4–10: react to a client's request for a class-*k* query.

        Returns True when the node offers to evaluate the query
        (``s_ik > 0``).  When it refuses, the class price is raised
        immediately (step 9) — a refusal is a trading failure and therefore
        a price signal.
        """
        self._require_period()
        self._check_class(class_index)
        if self._remaining[class_index] >= 1.0:
            return True
        self._refused[class_index] += 1
        self._raise_price(class_index)
        return False

    def accept(self, class_index: int) -> None:
        """Step 6: a previously made offer was accepted; consume supply."""
        self._require_period()
        self._check_class(class_index)
        if self._remaining[class_index] < 1.0:
            raise RuntimeError(
                "node accepted a class-%d query without remaining supply"
                % class_index
            )
        self._remaining[class_index] -= 1.0
        self._accepted[class_index] += 1

    def end_period(self) -> QantPeriodStats:
        """Steps 12–14: unsold supply lowers prices; close the period."""
        self._require_period()
        for k, leftover in enumerate(self._remaining):
            if leftover > 0:
                self._lower_price(k, leftover)
        self._in_period = False
        return QantPeriodStats(
            planned_supply=self._planned,
            accepted=list(self._accepted),
            refused=list(self._refused),
        )

    def run_period(self, requests: Sequence[int]) -> QantPeriodStats:
        """Convenience driver: one whole period over a request stream.

        ``requests`` is the ordered sequence of class indices asked of this
        node during the period; every offer is assumed accepted (the
        paper's servers offer immediately and clients in a single-server
        negotiation always accept).  Mainly for tests and the synchronous
        market runner.
        """
        self.begin_period()
        for class_index in requests:
            if self.would_offer(class_index):
                self.accept(class_index)
        return self.end_period()

    # -- price updates --------------------------------------------------------

    def _raise_price(self, class_index: int) -> None:
        factor = 1.0 + self._params.adjustment
        self._prices = self._prices.scaled_class(
            class_index, factor, floor=self._params.price_floor
        )
        self._clamp_cap(class_index)

    def _lower_price(self, class_index: int, leftover: float) -> None:
        # p_k -= s_ik * lambda * p_k, clamped so the price stays positive
        # even when s_ik * lambda >= 1 (large unsold surpluses).
        factor = max(0.0, 1.0 - leftover * self._params.adjustment)
        self._prices = self._prices.scaled_class(
            class_index, factor, floor=self._params.price_floor
        )

    def _clamp_cap(self, class_index: int) -> None:
        if self._prices[class_index] > self._params.price_cap:
            values = list(self._prices.values)
            values[class_index] = self._params.price_cap
            self._prices = PriceVector(values)

    # -- guards ----------------------------------------------------------------

    def _require_period(self) -> None:
        if not self._in_period:
            raise RuntimeError(
                "agent is outside a period; call begin_period() first"
            )

    def _check_class(self, class_index: int) -> None:
        if not 0 <= class_index < self.num_classes:
            raise IndexError("class index %d out of range" % class_index)
