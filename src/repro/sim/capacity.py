"""System capacity estimation for workload scaling.

Several experiments express load as a percentage of *total system
capacity* (Fig. 5a sweeps 10–300 %, Fig. 5b runs at 80 %).  Capacity here
is the maximum sustainable aggregate throughput (queries per millisecond)
for a given class mix: the largest ``R`` such that arrival rates
``R * mix_k`` can be served when every node divides its time optimally
among the classes it can evaluate.

This is a small linear program::

    maximise R
    s.t.  sum_k f_ik <= 1                 for every node i
          sum_i f_ik / e_ik >= R * mix_k  for every class k
          f_ik = 0 where node i cannot evaluate class k

solved with :func:`scipy.optimize.linprog` when SciPy is available, and by
a conservative binary search over a greedy feasibility check otherwise.
"""

from __future__ import annotations

import math
from typing import List, Sequence

__all__ = [
    "system_capacity_qpms",
]


def system_capacity_qpms(
    cost_matrix_ms: Sequence[Sequence[float]],
    mix: Sequence[float],
) -> float:
    """Max sustainable throughput in queries/ms for the given class mix.

    ``cost_matrix_ms[i][k]`` is node *i*'s execution time for class *k*
    (``inf`` = ineligible); ``mix`` is the workload's class proportions
    (normalised internally).
    """
    total_mix = sum(mix)
    if total_mix <= 0:
        raise ValueError("the class mix must have positive total weight")
    shares = [m / total_mix for m in mix]
    try:
        return _capacity_linprog(cost_matrix_ms, shares)
    except ImportError:
        return _capacity_greedy(cost_matrix_ms, shares)


def _capacity_linprog(
    costs: Sequence[Sequence[float]], mix: Sequence[float]
) -> float:
    from scipy.optimize import linprog

    num_nodes = len(costs)
    num_classes = len(mix)
    num_vars = num_nodes * num_classes + 1  # f_ik ... , R

    def f_index(i: int, k: int) -> int:
        return i * num_classes + k

    c = [0.0] * num_vars
    c[-1] = -1.0  # maximise R

    a_ub: List[List[float]] = []
    b_ub: List[float] = []
    # Node time budgets: sum_k f_ik <= 1.
    for i in range(num_nodes):
        row = [0.0] * num_vars
        for k in range(num_classes):
            row[f_index(i, k)] = 1.0
        a_ub.append(row)
        b_ub.append(1.0)
    # Throughput cover: R * mix_k - sum_i f_ik / e_ik <= 0.
    for k in range(num_classes):
        row = [0.0] * num_vars
        for i in range(num_nodes):
            if not math.isinf(costs[i][k]):
                row[f_index(i, k)] = -1.0 / costs[i][k]
        row[-1] = mix[k]
        a_ub.append(row)
        b_ub.append(0.0)

    bounds = []
    for i in range(num_nodes):
        for k in range(num_classes):
            if math.isinf(costs[i][k]):
                bounds.append((0.0, 0.0))
            else:
                bounds.append((0.0, 1.0))
    bounds.append((0.0, None))

    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not result.success:
        raise RuntimeError("capacity LP failed: %s" % result.message)
    return float(result.x[-1])


def _capacity_greedy(
    costs: Sequence[Sequence[float]], mix: Sequence[float]
) -> float:
    """Binary search on R with a greedy feasibility check (SciPy-free).

    Conservative: greedy packing may reject a feasible R, so the returned
    capacity is a lower bound.
    """
    upper = sum(
        max(
            (1.0 / c for c in row if not math.isinf(c)),
            default=0.0,
        )
        for row in costs
    )
    if upper <= 0:
        return 0.0
    lo, hi = 0.0, upper
    for __ in range(50):
        mid = (lo + hi) / 2.0
        if _greedy_feasible(costs, mix, mid):
            lo = mid
        else:
            hi = mid
    return lo


def _greedy_feasible(
    costs: Sequence[Sequence[float]], mix: Sequence[float], rate: float
) -> bool:
    demand = [rate * m for m in mix]  # queries/ms per class
    budgets = [1.0] * len(costs)
    # Serve the scarcest classes first: fewest eligible nodes, then cost.
    order = sorted(
        range(len(mix)),
        key=lambda k: sum(1 for row in costs if not math.isinf(row[k])),
    )
    for k in order:
        nodes = sorted(
            (i for i in range(len(costs)) if not math.isinf(costs[i][k])),
            key=lambda i: costs[i][k],
        )
        for i in nodes:
            if demand[k] <= 1e-12:
                break
            serve = min(demand[k], budgets[i] / costs[i][k])
            demand[k] -= serve
            budgets[i] -= serve * costs[i][k]
        if demand[k] > 1e-9:
            return False
    return True
