"""Equivalence and observability tests for the batched period engine.

The engine (:mod:`repro.core.period_engine`) re-implements the QA-NT
period boundary — steps 12–14 decay, capacity rebind, eq. 4 solve,
carry-over credit — as batched numpy over all agents.  Its contract is
*bit-identity* with the scalar per-agent loop it replaced, so the main
test here is a twin race: two identical fleets, one driven by the scalar
``end_period``/``with_capacity``/``begin_period`` sequence and one by
``engine.advance``, interleaved with the same mid-period interactions
(quotes, refusal price raises, accepts), asserting every piece of agent
state stays exactly ``==`` after every boundary.  Any drift is a golden-
trace bug waiting to happen.
"""

import math
import random

import pytest

from repro.core.period_engine import BATCHED_METHODS, QantPeriodEngine
from repro.core.qant import QantParameters, QantPricingAgent
from repro.core.supply import CapacitySupplySet, ExplicitSupplySet
from repro.core.vectors import QueryVector

METHODS = sorted(BATCHED_METHODS)


def _make_fleet(rng, num_agents, num_classes, method, carry):
    """One fleet of agents over varied cost rows (some inf = can't serve)."""
    params = QantParameters(supply_method=method, carry_over=carry)
    agents = []
    for __ in range(num_agents):
        costs = [
            math.inf if rng.random() < 0.25 else rng.uniform(40.0, 900.0)
            for __ in range(num_classes)
        ]
        if all(math.isinf(c) for c in costs):
            costs[0] = rng.uniform(40.0, 900.0)
        agents.append(
            QantPricingAgent(CapacitySupplySet(costs, 2_000.0), params)
        )
    return agents


def _twin_fleets(seed, num_agents, num_classes, method, carry):
    rng = random.Random(seed)
    reference = _make_fleet(rng, num_agents, num_classes, method, carry)
    rng = random.Random(seed)  # identical draw sequence -> identical twins
    batched = _make_fleet(rng, num_agents, num_classes, method, carry)
    return reference, batched


def _scalar_boundary(agents, capacities):
    """The exact per-agent sequence `QantAllocator.on_period_start` ran."""
    for agent, capacity in zip(agents, capacities):
        if agent.in_period:
            agent.end_period()
        agent.rebind_supply_set(agent.supply_set.with_capacity(capacity))
        agent.begin_period()


def _assert_state_equal(reference, batched):
    """Every observable and internal field must match bit-for-bit."""
    for i, (ref, bat) in enumerate(zip(reference, batched)):
        where = "agent %d" % i
        assert bat._price_values == ref._price_values, where
        assert bat._price_epoch == ref._price_epoch, where
        assert bat._remaining == ref._remaining, where
        assert bat._credit == ref._credit, where
        assert bat._accepted == ref._accepted, where
        assert bat._refused == ref._refused, where
        assert bat._in_period == ref._in_period, where
        assert bat._enforce_locked_at == ref._enforce_locked_at, where
        assert (
            bat.planned_supply.components == ref.planned_supply.components
        ), where
        assert bat.supply_set.capacity_ms == ref.supply_set.capacity_ms, where
        # Lazily-recomputed views must also converge to the same values.
        assert bat.max_price == ref.max_price, where
        assert bat.prices.values == ref.prices.values, where


def _interact(rng, reference, batched, num_classes):
    """Apply one identical burst of market traffic to both twins."""
    for __ in range(rng.randrange(0, 12)):
        idx = rng.randrange(len(reference))
        class_index = rng.randrange(num_classes)
        threshold = rng.choice([None, 2.0])
        ref_offer = reference[idx].quote(class_index, threshold)
        bat_offer = batched[idx].quote(class_index, threshold)
        assert ref_offer == bat_offer
        if ref_offer and reference[idx].supply_left(class_index) >= 1.0:
            reference[idx].accept(class_index)
            batched[idx].accept(class_index)


class TestScalarEquivalence:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("carry", [True, False])
    def test_boundary_race_stays_bit_identical(self, method, carry):
        """40 boundaries with random traffic and shifting free capacity."""
        num_classes = 5
        reference, batched = _twin_fleets(1234, 8, num_classes, method, carry)
        engine = QantPeriodEngine(batched, [2_000.0] * 8, can_defer=False)
        rng = random.Random(99)
        for __ in range(40):
            capacities = [
                rng.choice([0.0, 150.0, 2_000.0, rng.uniform(0.0, 2_000.0)])
                for __ in range(8)
            ]
            _scalar_boundary(reference, capacities)
            engine.advance(True, lambda: capacities)
            _assert_state_equal(reference, batched)
            _interact(rng, reference, batched, num_classes)

    @pytest.mark.parametrize("method", METHODS)
    def test_quiet_ticks_without_gather_stay_identical(self, method):
        """interacted=False boundaries (no re-gather) must not drift."""
        reference, batched = _twin_fleets(55, 6, 4, method, True)
        engine = QantPeriodEngine(batched, [2_000.0] * 6, can_defer=False)
        capacities = [2_000.0] * 6
        engine.advance(True, lambda: capacities)
        _scalar_boundary(reference, capacities)
        for __ in range(30):
            _scalar_boundary(reference, capacities)
            engine.advance(False, lambda: capacities)
            _assert_state_equal(reference, batched)

    def test_single_agent_single_class(self):
        reference, batched = _twin_fleets(7, 1, 1, "proportional", True)
        engine = QantPeriodEngine(batched, [2_000.0], can_defer=False)
        for tick in range(10):
            capacities = [2_000.0 if tick % 2 else 70.0]
            _scalar_boundary(reference, capacities)
            engine.advance(True, lambda: capacities)
            _assert_state_equal(reference, batched)


def _warm_to_fixed_point(reference, engine, allowances, limit=400):
    """Tick both twins until idle decay reaches the price floor and the
    engine declares the fleet quiescent (geometric decay: ~120 ticks)."""
    for __ in range(limit):
        _scalar_boundary(reference, allowances)
        engine.advance(True, lambda: allowances)
        if engine._eligible:
            return
    raise AssertionError("fleet never reached the quiescent fixed point")


class TestDeferral:
    def test_quiescent_ticks_fast_forward_and_replay_exactly(self):
        """At the fixed point, deferred ticks must flush to the same state
        an always-ticking twin reaches — including carry-over credit."""
        reference, batched = _twin_fleets(21, 6, 4, "proportional", True)
        allowances = [2_000.0] * 6
        engine = QantPeriodEngine(batched, allowances, can_defer=True)
        _warm_to_fixed_point(reference, engine, allowances)
        ticks = 25
        for __ in range(ticks):
            _scalar_boundary(reference, allowances)
            engine.advance(False, lambda: allowances)
        assert engine.stats.deferred_ticks > 0
        assert engine.deferred_ticks_pending > 0
        engine.flush()
        assert engine.deferred_ticks_pending == 0
        assert engine.stats.replayed_ticks == engine.stats.deferred_ticks
        _assert_state_equal(reference, batched)

    def test_interaction_materialises_deferred_ticks(self):
        reference, batched = _twin_fleets(3, 4, 3, "greedy-fractional", True)
        allowances = [1_500.0] * 4
        engine = QantPeriodEngine(batched, allowances, can_defer=True)
        rng = random.Random(5)
        _warm_to_fixed_point(reference, engine, allowances)
        for __ in range(10):
            _scalar_boundary(reference, allowances)
            engine.advance(False, lambda: allowances)
        assert engine.deferred_ticks_pending > 0
        # A boundary with interacted=True must first settle the backlog.
        _scalar_boundary(reference, allowances)
        engine.advance(True, lambda: allowances)
        assert engine.deferred_ticks_pending == 0
        _assert_state_equal(reference, batched)
        _interact(rng, reference, batched, 3)
        _scalar_boundary(reference, allowances)
        engine.advance(True, lambda: allowances)
        _assert_state_equal(reference, batched)

    def test_busy_nodes_never_defer(self):
        """Free capacity below the allowance pins boundaries materialised."""
        __, batched = _twin_fleets(9, 3, 3, "proportional", True)
        engine = QantPeriodEngine(batched, [2_000.0] * 3, can_defer=True)
        capacities = [1_999.0] * 3  # queued work outstanding somewhere
        for __ in range(20):
            engine.advance(False, lambda: capacities)
        assert engine.stats.deferred_ticks == 0

    def test_can_defer_false_disables_fast_forward(self):
        __, batched = _twin_fleets(11, 3, 3, "proportional", True)
        allowances = [2_000.0] * 3
        engine = QantPeriodEngine(batched, allowances, can_defer=False)
        for __ in range(20):
            engine.advance(False, lambda: allowances)
        assert engine.stats.deferred_ticks == 0
        assert engine.stats.ticks == 20


class TestAccepts:
    def test_accepts_plain_capacity_agent(self):
        agent = QantPricingAgent(CapacitySupplySet([100.0], 1_000.0))
        assert QantPeriodEngine.accepts(agent)

    def test_rejects_exact_method(self):
        agent = QantPricingAgent(
            CapacitySupplySet([100.0], 1_000.0),
            QantParameters(supply_method="exact"),
        )
        assert not QantPeriodEngine.accepts(agent)

    def test_rejects_explicit_supply_set(self):
        supply = ExplicitSupplySet([QueryVector([1.0, 0.0])])
        assert not QantPeriodEngine.accepts(QantPricingAgent(supply))

    def test_rejects_subclasses(self):
        class Tweaked(QantPricingAgent):
            pass

        agent = Tweaked(CapacitySupplySet([100.0], 1_000.0))
        assert not QantPeriodEngine.accepts(agent)

    def test_init_rejects_mixed_parameters(self):
        a = QantPricingAgent(
            CapacitySupplySet([100.0], 1_000.0),
            QantParameters(adjustment=0.1),
        )
        b = QantPricingAgent(
            CapacitySupplySet([100.0], 1_000.0),
            QantParameters(adjustment=0.2),
        )
        with pytest.raises(ValueError, match="share one QantParameters"):
            QantPeriodEngine([a, b], [1_000.0, 1_000.0])

    def test_init_rejects_mid_period_agents(self):
        agent = QantPricingAgent(CapacitySupplySet([100.0], 1_000.0))
        agent.begin_period()
        with pytest.raises(ValueError, match="between periods"):
            QantPeriodEngine([agent], [1_000.0])

    def test_init_rejects_non_batchable_agent(self):
        agent = QantPricingAgent(
            CapacitySupplySet([100.0], 1_000.0),
            QantParameters(supply_method="exact"),
        )
        with pytest.raises(ValueError, match="not batchable"):
            QantPeriodEngine([agent], [1_000.0])

    def test_init_rejects_allowance_mismatch(self):
        agent = QantPricingAgent(CapacitySupplySet([100.0], 1_000.0))
        with pytest.raises(ValueError, match="allowance per agent"):
            QantPeriodEngine([agent], [1_000.0, 2_000.0])


def _paper_cell_run(parameters=None):
    """One 20-node fig5a-style qa-nt cell; returns the live allocator."""
    from repro.allocation import QantAllocator
    from repro.experiments.setups import (
        run_mechanism,
        sinusoid_trace_for_load,
        two_query_world,
    )
    from repro.sim import FederationConfig

    world = two_query_world(num_nodes=20, seed=0)
    trace = sinusoid_trace_for_load(
        world,
        load_fraction=1.5,
        horizon_ms=2_000.0,
        frequency_hz=0.05,
        seed=10,
    )
    allocator = QantAllocator(parameters=parameters)
    run_mechanism(world, trace, "qa-nt", lambda: allocator, FederationConfig(seed=2))
    return allocator


class TestObservability:
    def test_fig5a_cell_reports_engine_counters(self):
        """The PR 5 caches must show real activity on a fig5a cell: rows
        are re-solved when prices/capacity move AND reused when not."""
        allocator = _paper_cell_run()
        stats = allocator.period_engine_stats
        assert stats is not None
        assert stats.ticks > 100  # 2 s horizon + drain at 500 ms periods
        assert stats.solved_rows > 0
        assert stats.reused_rows > 0
        # Drained runs go quiescent: the deferral fast path must engage.
        assert stats.deferred_ticks > 0
        assert stats.replayed_ticks <= stats.deferred_ticks

    def test_fig5a_cell_supply_cache_hit_rate(self):
        """The scalar fallback path (exact solver) drives the PR 2 supply
        memo; a fig5a cell must show a non-trivial hit rate."""
        allocator = _paper_cell_run(QantParameters(supply_method="exact"))
        assert allocator.period_engine_stats is None  # all rows fell back
        infos = [
            agent.supply_set.cache_info()
            for agent in allocator.agents.values()
        ]
        hits = sum(info.hits for info in infos)
        misses = sum(info.misses for info in infos)
        assert hits > 0 and misses > 0
        # At 1.5x load, refusals rotate price tokens and free capacity
        # shifts the whole-solve key every period, so hits come mostly
        # from density-ordering reuse — a modest but real rate.
        assert hits / (hits + misses) > 0.05
        assert all(info.entries >= 0 for info in infos)

    def test_sync_market_state_settles_deferred_boundaries(self):
        allocator = _paper_cell_run()
        engine = allocator._engine
        assert engine is not None
        # After on_run_end (called by Federation.run) nothing is pending.
        assert engine.deferred_ticks_pending == 0
        allocator.sync_market_state()  # idempotent on a settled engine
        assert engine.deferred_ticks_pending == 0
