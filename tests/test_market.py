"""Unit tests for repro.core.market (prices, excess demand, equilibrium)."""

import pytest

from repro.core.market import (
    PriceVector,
    excess_demand,
    is_equilibrium,
    market_excess_demand,
)
from repro.core.supply import CapacitySupplySet
from repro.core.vectors import QueryVector


class TestPriceVector:
    def test_uniform(self):
        assert PriceVector.uniform(3).values == (1.0, 1.0, 1.0)
        assert PriceVector.uniform(2, 5.0).values == (5.0, 5.0)

    def test_rejects_negative_prices(self):
        with pytest.raises(ValueError):
            PriceVector([1.0, -0.1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PriceVector([])

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            PriceVector([float("inf")])

    def test_value_of(self):
        p = PriceVector([2.0, 3.0])
        assert p.value_of(QueryVector([1, 2])) == 8.0

    def test_equality_and_hash(self):
        assert PriceVector([1, 2]) == PriceVector([1, 2])
        assert hash(PriceVector([1, 2])) == hash(PriceVector([1, 2]))
        assert PriceVector([1, 2]) != PriceVector([2, 1])

    def test_indexing_and_iteration(self):
        p = PriceVector([1.0, 2.0])
        assert p[1] == 2.0
        assert list(p) == [1.0, 2.0]
        assert len(p) == 2

    def test_adjusted_implements_eq6(self):
        p = PriceVector([1.0, 1.0])
        adjusted = p.adjusted([2.0, -1.0], step=0.5)
        assert adjusted.values == (2.0, 0.5)

    def test_adjusted_clamps_at_floor(self):
        p = PriceVector([1.0])
        assert p.adjusted([-100.0], step=1.0, floor=0.1).values == (0.1,)

    def test_adjusted_rejects_bad_step(self):
        with pytest.raises(ValueError):
            PriceVector([1.0]).adjusted([1.0], step=0.0)

    def test_adjusted_length_check(self):
        with pytest.raises(ValueError):
            PriceVector([1.0]).adjusted([1.0, 2.0], step=0.1)

    def test_scaled_class(self):
        p = PriceVector([1.0, 2.0])
        assert p.scaled_class(1, 1.5).values == (1.0, 3.0)

    def test_scaled_class_floor(self):
        p = PriceVector([1.0])
        assert p.scaled_class(0, 0.0, floor=0.5).values == (0.5,)

    def test_scaled_class_bad_index(self):
        with pytest.raises(IndexError):
            PriceVector([1.0]).scaled_class(3, 1.0)


class TestExcessDemand:
    def test_signed(self):
        z = excess_demand(QueryVector([3, 1]), QueryVector([1, 2]))
        assert z == (2.0, -1.0)

    def test_equilibrium_ignores_oversupply(self):
        assert is_equilibrium((-5.0, 0.0))
        assert not is_equilibrium((0.5, 0.0), tolerance=0.1)

    def test_equilibrium_tolerance(self):
        assert is_equilibrium((0.4,), tolerance=0.5)

    def test_market_excess_demand(self):
        demands = [QueryVector([2, 2])]
        supply_sets = [CapacitySupplySet([100.0, 100.0], 200.0)]
        z = market_excess_demand(demands, supply_sets, PriceVector([1.0, 0.0]))
        # All capacity to class 0: supply (2, 0) vs demand (2, 2).
        assert z == (0.0, 2.0)

    def test_market_excess_demand_length_check(self):
        with pytest.raises(ValueError):
            market_excess_demand(
                [QueryVector([1])], [], PriceVector([1.0])
            )
