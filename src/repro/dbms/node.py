"""A real DBMS server node: SQLite behind a serial worker thread.

The paper's Section 5.2 deployment ran the pricing mechanism against five
Windows PCs with a commercial RDBMS.  The reproduction substitutes SQLite
(in-memory, one database per node) with a per-node *slowdown factor*
emulating the 1.3–3.06 GHz hardware spread: after executing a statement
the worker idles for ``(slowdown - 1) x elapsed``, so a node with
slowdown 3 behaves like a machine three times slower.

Each node owns:

* a private SQLite connection used only by its worker thread (queries
  execute serially, like the paper's nodes);
* an optimizer-cost probe built on ``EXPLAIN QUERY PLAN`` — deliberately
  crude, because the paper found raw optimizer estimates "usually
  incorrect";
* a :class:`repro.query.HistoryCalibratedEstimator` that fixes the crude
  estimates from past executions of queries with the same plan signature,
  reproducing the paper's remedy.
"""

from __future__ import annotations

import queue
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..catalog import Relation
from ..query import (
    HistoryCalibratedEstimator,
    PerfectEstimator,
    QueryClass,
    create_table_sql,
    insert_rows_sql,
    plan_signature,
    render_query_sql,
)

__all__ = [
    "ExecutionResult",
    "SqliteServerNode",
]


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one statement executed on a node."""

    qid: int
    class_index: int
    rows: int
    submitted_s: float
    started_s: float
    finished_s: float

    @property
    def wait_s(self) -> float:
        """Queueing delay on the node before execution began."""
        return self.started_s - self.submitted_s

    @property
    def execution_s(self) -> float:
        """Wall-clock execution time including the slowdown idle."""
        return self.finished_s - self.started_s


class SqliteServerNode:
    """One autonomous SQLite-backed server with a serial executor."""

    def __init__(
        self,
        node_id: int,
        slowdown: float = 1.0,
        rows_per_mb: float = 2000.0,
    ):
        """``rows_per_mb`` scales catalog relation sizes down to a row
        count that executes in milliseconds rather than the paper's
        seconds — the substitution that keeps Fig. 7 runnable on one
        machine (documented in DESIGN.md)."""
        if slowdown < 1.0:
            raise ValueError("slowdown must be >= 1 (1 = fastest machine)")
        self.node_id = node_id
        self.slowdown = slowdown
        self._rows_per_mb = rows_per_mb
        self._conn = sqlite3.connect(":memory:", check_same_thread=False)
        self._conn_lock = threading.Lock()
        self._jobs: "queue.Queue[Optional[Tuple]]" = queue.Queue()
        self._worker = threading.Thread(
            target=self._run_worker, name="sqlite-node-%d" % node_id, daemon=True
        )
        self._worker.start()
        self._relations: Dict[int, Relation] = {}
        self._row_counts: Dict[int, int] = {}
        self.estimator = HistoryCalibratedEstimator(PerfectEstimator())
        self._closed = False

    # -- schema loading --------------------------------------------------------

    def load_relation(self, relation: Relation) -> None:
        """Create and populate one relation on this node."""
        rows = max(10, int(relation.size_mb * self._rows_per_mb))
        with self._conn_lock:
            cursor = self._conn.cursor()
            cursor.execute(create_table_sql(relation))
            cursor.execute(insert_rows_sql(relation, rows))
            cursor.execute(
                "CREATE INDEX idx_rel_%04d_key ON rel_%04d(key)"
                % (relation.rid, relation.rid)
            )
            self._conn.commit()
        self._relations[relation.rid] = relation
        self._row_counts[relation.rid] = rows

    def create_view(self, name: str, rid: int, max_val: int) -> None:
        """Create a select-project view over a loaded relation.

        The paper's dataset included 80 select-project views over the 20
        base tables; views behave as additional relations for query
        routing.
        """
        if rid not in self._relations:
            raise KeyError("relation %d is not loaded on node %d" % (rid, self.node_id))
        with self._conn_lock:
            self._conn.execute(
                "CREATE VIEW %s AS SELECT key, val FROM rel_%04d WHERE val < %d"
                % (name, rid, max_val)
            )
            self._conn.commit()

    def holds(self, rids: Sequence[int]) -> bool:
        """True iff every relation in ``rids`` is loaded here."""
        return all(rid in self._relations for rid in rids)

    @property
    def relation_ids(self) -> List[int]:
        """Relations loaded on this node."""
        return sorted(self._relations)

    # -- estimation -------------------------------------------------------------

    def optimizer_cost_ms(self, query_class: QueryClass) -> float:
        """A crude optimizer cost from ``EXPLAIN QUERY PLAN``.

        Scans cost their table's full row count, index searches a flat
        fraction; the absolute scale is wrong on purpose — the history
        calibration layer is what makes estimates usable (Section 5.2).
        """
        sql = render_query_sql(query_class, constant=0)
        with self._conn_lock:
            plan_rows = self._conn.execute(
                "EXPLAIN QUERY PLAN " + sql
            ).fetchall()
        cost = 0.0
        for row in plan_rows:
            detail = str(row[-1])
            table_rows = self._rows_of_detail(detail)
            if detail.startswith("SCAN"):
                cost += table_rows
            elif detail.startswith("SEARCH"):
                cost += max(1.0, table_rows * 0.05)
        # Rows -> milliseconds under a nominal 1000 rows/ms machine.
        return max(0.1, cost / 1000.0) * self.slowdown

    def _rows_of_detail(self, detail: str) -> float:
        for rid, rows in self._row_counts.items():
            if ("rel_%04d" % rid) in detail:
                return float(rows)
        return 100.0

    def estimate_ms(self, query_class: QueryClass) -> float:
        """History-calibrated execution-time estimate for one query."""
        signature = plan_signature(query_class)
        return self.estimator.estimate_ms(
            signature, self.optimizer_cost_ms(query_class)
        )

    # -- execution ----------------------------------------------------------------

    def submit(
        self,
        qid: int,
        query_class: QueryClass,
        constant: int,
        on_complete,
    ) -> None:
        """Queue one query for serial execution; ``on_complete`` receives
        the :class:`ExecutionResult` from the worker thread."""
        if self._closed:
            raise RuntimeError("node %d is closed" % self.node_id)
        self._jobs.put((qid, query_class, constant, time.monotonic(), on_complete))

    def queue_depth(self) -> int:
        """Jobs waiting (approximate; the running job is not counted)."""
        return self._jobs.qsize()

    def _run_worker(self) -> None:
        while True:
            job = self._jobs.get()
            if job is None:
                return
            qid, query_class, constant, submitted_s, on_complete = job
            started_s = time.monotonic()
            sql = render_query_sql(query_class, constant=constant)
            with self._conn_lock:
                rows = len(self._conn.execute(sql).fetchall())
            elapsed = time.monotonic() - started_s
            if self.slowdown > 1.0:
                time.sleep(elapsed * (self.slowdown - 1.0))
            finished_s = time.monotonic()
            result = ExecutionResult(
                qid=qid,
                class_index=query_class.index,
                rows=rows,
                submitted_s=submitted_s,
                started_s=started_s,
                finished_s=finished_s,
            )
            self.estimator.observe(
                plan_signature(query_class),
                self.optimizer_cost_ms(query_class),
                (finished_s - started_s) * 1000.0,
            )
            on_complete(self.node_id, result)

    # -- lifecycle -------------------------------------------------------------------

    def close(self, timeout_s: float = 10.0) -> None:
        """Drain the queue, stop the worker, close the connection."""
        if self._closed:
            return
        self._closed = True
        self._jobs.put(None)
        self._worker.join(timeout=timeout_s)
        with self._conn_lock:
            self._conn.close()

    def __enter__(self) -> "SqliteServerNode":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
