"""Watching the market react to node failures.

The paper motivates autonomic query allocation with transient overloads
caused by node failures (Section 1): prices are the decentralised
overload signal (Section 5.1).  This example fails a third of the
federation mid-run, traces every node's private prices, and shows the
overload signal rising during the outage and settling afterwards —
alongside the response-time comparison against Greedy.

Run:  python examples/failure_recovery.py
"""

from repro.allocation import QantAllocator
from repro.experiments.failures import run_failures
from repro.experiments.setups import two_query_world
from repro.sim import FederationConfig, build_federation
from repro.sim.tracing import MarketTracer
from repro.workload import PoissonArrivals, build_trace


def main() -> None:
    # --- response-time comparison around the outage --------------------------
    result = run_failures(
        num_nodes=30,
        failed_fraction=0.3,
        outage_window_ms=(20_000.0, 40_000.0),
        horizon_ms=60_000.0,
        load_fraction=0.8,
        seed=1,
    )
    print(result.render())
    print()
    qant = result.phases["qa-nt"]
    print(
        "QA-NT returns to %.0f ms after the outage (baseline %.0f ms): the"
        " market sheds the backlog instead of dragging it along."
        % (qant["after"], qant["before"])
    )
    print()

    # --- the price signal ------------------------------------------------------
    world = two_query_world(num_nodes=30, seed=1)
    capacity = world.capacity_qpms([2.0, 1.0])
    trace = build_trace(
        {
            0: PoissonArrivals(0.8 * capacity * 2.0 / 3.0),
            1: PoissonArrivals(0.8 * capacity / 3.0),
        },
        horizon_ms=60_000.0,
        origin_nodes=world.placement.node_ids,
        seed=2,
    )
    allocator = QantAllocator()
    tracer = MarketTracer(allocator)
    federation = build_federation(
        world.specs,
        world.placement,
        world.classes,
        world.cost_model,
        allocator,
        FederationConfig(seed=3, drain_ms=60_000.0),
    )
    for nid in range(0, 30, 3):
        federation.nodes[nid].schedule_outage(20_000.0, 40_000.0)
    federation.run(trace)

    overloaded = tracer.overload_periods(threshold=2.0)
    if overloaded:
        print(
            "Price-based overload signal active from %.1fs to %.1fs"
            " (outage was 20s-40s)."
            % (min(overloaded) / 1000.0, max(overloaded) / 1000.0)
        )
    else:
        print("No node's prices crossed the overload threshold.")
    # Show one healthy node's signal around the outage.
    series = tracer.price_series(node_id=1)
    samples = [s for s in series if s[0] % 5000 < 500]
    print("max price at node 1 over time:")
    for time_ms, price in samples:
        bar = "#" * min(60, int(price * 4))
        print("  %6.1fs  %8.2f  %s" % (time_ms / 1000.0, price, bar))


if __name__ == "__main__":
    main()
