"""Unit tests for repro.sim.capacity (the workload-scaling LP)."""

import math

import pytest

from repro.sim.capacity import (
    _capacity_greedy,
    _greedy_feasible,
    system_capacity_qpms,
)

INF = math.inf


class TestCapacity:
    def test_single_node_single_class(self):
        # One node, 100 ms per query -> 0.01 queries per ms.
        assert system_capacity_qpms([[100.0]], [1.0]) == pytest.approx(
            0.01, rel=1e-3
        )

    def test_two_identical_nodes_double_capacity(self):
        one = system_capacity_qpms([[100.0]], [1.0])
        two = system_capacity_qpms([[100.0], [100.0]], [1.0])
        assert two == pytest.approx(2 * one, rel=1e-3)

    def test_mix_weighting(self):
        # One node; class 0 costs 100, class 1 costs 300; equal mix.
        # Per 'unit' of mixed traffic: 0.5*100 + 0.5*300 = 200 ms.
        cap = system_capacity_qpms([[100.0, 300.0]], [1.0, 1.0])
        assert cap == pytest.approx(1.0 / 200.0, rel=1e-3)

    def test_specialisation_exploited(self):
        # Two nodes, each fast at a different class; equal mix.  The
        # optimum dedicates each node to its fast class.
        costs = [[100.0, 1000.0], [1000.0, 100.0]]
        cap = system_capacity_qpms(costs, [1.0, 1.0])
        assert cap == pytest.approx(0.02, rel=1e-2)

    def test_ineligible_class_limits_capacity(self):
        # Class 1 only on node 1.
        costs = [[100.0, INF], [100.0, 100.0]]
        cap = system_capacity_qpms(costs, [0.0, 1.0])
        assert cap == pytest.approx(0.01, rel=1e-3)

    def test_mix_normalisation(self):
        costs = [[100.0, 200.0]]
        assert system_capacity_qpms(costs, [2.0, 1.0]) == pytest.approx(
            system_capacity_qpms(costs, [4.0, 2.0]), rel=1e-6
        )

    def test_zero_mix_rejected(self):
        with pytest.raises(ValueError):
            system_capacity_qpms([[100.0]], [0.0])

    def test_unservable_class_gives_zero_capacity(self):
        cap = system_capacity_qpms([[INF]], [1.0])
        assert cap == pytest.approx(0.0, abs=1e-6)


class TestGreedyFallback:
    def test_greedy_close_to_lp_on_simple_instance(self):
        costs = [[100.0, 1000.0], [1000.0, 100.0]]
        lp = system_capacity_qpms(costs, [1.0, 1.0])
        greedy = _capacity_greedy(costs, [0.5, 0.5])
        assert greedy <= lp + 1e-6
        assert greedy >= 0.5 * lp

    def test_feasibility_check(self):
        costs = [[100.0]]
        assert _greedy_feasible(costs, [1.0], 0.009)
        assert not _greedy_feasible(costs, [1.0], 0.011)
