"""Unit tests for repro.catalog (schema, generator, placement)."""

import pytest

from repro.catalog import (
    Catalog,
    CatalogParameters,
    Placement,
    Relation,
    generate_catalog,
    generate_catalog_and_placement,
    generate_placement,
)


class TestRelation:
    def test_tuple_metrics(self):
        r = Relation(rid=0, name="r", size_mb=1.0, num_attributes=10)
        assert r.tuple_bytes == 200
        assert r.num_tuples == 5000

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Relation(rid=0, name="r", size_mb=0.0)

    def test_rejects_zero_attributes(self):
        with pytest.raises(ValueError):
            Relation(rid=0, name="r", size_mb=1.0, num_attributes=0)


class TestCatalog:
    def make(self):
        return Catalog(
            [
                Relation(rid=0, name="a", size_mb=2.0),
                Relation(rid=1, name="b", size_mb=4.0),
            ]
        )

    def test_lookup(self):
        cat = self.make()
        assert cat.get(1).name == "b"
        assert 0 in cat and 5 not in cat
        assert len(cat) == 2

    def test_duplicate_rid_rejected(self):
        with pytest.raises(ValueError):
            Catalog(
                [
                    Relation(rid=0, name="a", size_mb=1.0),
                    Relation(rid=0, name="b", size_mb=1.0),
                ]
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Catalog([])

    def test_size_statistics(self):
        cat = self.make()
        assert cat.total_size_mb() == 6.0
        assert cat.average_size_mb() == 3.0

    def test_relation_ids_sorted(self):
        assert self.make().relation_ids == [0, 1]


class TestPlacement:
    def make(self):
        return Placement({0: {0, 1}, 1: {1, 2}, 2: {0, 1, 2}})

    def test_relations_of(self):
        p = self.make()
        assert p.relations_of(0) == frozenset({0, 1})

    def test_mirrors_of(self):
        p = self.make()
        assert p.mirrors_of(1) == frozenset({0, 1, 2})
        assert p.mirrors_of(99) == frozenset()

    def test_holders_requires_all_relations(self):
        p = self.make()
        assert p.holders([0, 1]) == frozenset({0, 2})
        assert p.holders([0, 1, 2]) == frozenset({2})

    def test_holders_of_empty_list_is_everyone(self):
        assert self.make().holders([]) == frozenset({0, 1, 2})

    def test_holders_of_unplaced_relation_empty(self):
        assert self.make().holders([42]) == frozenset()

    def test_statistics(self):
        p = self.make()
        assert p.average_mirrors() == pytest.approx(7 / 3)
        assert p.average_relations_per_node() == pytest.approx(7 / 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Placement({})


class TestGenerator:
    def params(self):
        return CatalogParameters(
            num_relations=100,
            num_nodes=20,
            bundle_size=10,
            mirrors=4,
            num_groups=4,
        )

    def test_catalog_statistics(self):
        catalog = generate_catalog(self.params(), seed=0)
        assert len(catalog) == 100
        sizes = [r.size_mb for r in catalog]
        assert all(1.0 <= s <= 20.0 for s in sizes)
        # Uniform(1, 20) has mean 10.5 (Table 3's reported average).
        assert 8.0 <= catalog.average_size_mb() <= 13.0

    def test_placement_statistics(self):
        catalog, placement = generate_catalog_and_placement(self.params(), seed=0)
        assert placement.num_nodes == 20
        assert placement.average_mirrors() == pytest.approx(4.0)
        # 100 relations x 4 copies / 20 nodes = 20 per node.
        assert placement.average_relations_per_node() == pytest.approx(20.0)

    def test_every_relation_placed(self):
        catalog, placement = generate_catalog_and_placement(self.params(), seed=1)
        for rid in catalog.relation_ids:
            assert placement.mirrors_of(rid)

    def test_bundles_are_colocated(self):
        # All relations of one bundle share the same mirror set.
        catalog, placement = generate_catalog_and_placement(self.params(), seed=2)
        bundle = list(range(10))  # first bundle: rids 0..9
        mirror_sets = {placement.mirrors_of(rid) for rid in bundle}
        assert len(mirror_sets) == 1

    def test_deterministic_given_seed(self):
        a = generate_placement(generate_catalog(self.params(), 5), self.params(), 5)
        b = generate_placement(generate_catalog(self.params(), 5), self.params(), 5)
        assert all(
            a.relations_of(n) == b.relations_of(n) for n in range(20)
        )

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CatalogParameters(num_relations=0)
        with pytest.raises(ValueError):
            CatalogParameters(min_size_mb=5.0, max_size_mb=1.0)
        with pytest.raises(ValueError):
            CatalogParameters(num_groups=0)
        with pytest.raises(ValueError):
            CatalogParameters(num_nodes=5, num_groups=10)
