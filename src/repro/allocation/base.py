"""Allocator interface shared by QA-NT and all baseline mechanisms.

An allocator decides, for each arriving query, which server node will
evaluate it.  The federation simulator hands the allocator an
:class:`AllocationContext` (nodes, candidate sets, network, clock) at bind
time and then drives three hooks:

* :meth:`Allocator.on_period_start` — fired every ``period_ms`` (QA-NT
  recomputes supply vectors here; most baselines ignore it);
* :meth:`Allocator.assign` — the allocation decision for one query; a
  ``node_id`` of ``None`` means every server refused and the client must
  resubmit next period (paper Section 3.3);
* :meth:`Allocator.on_completion` — feedback with the actual runtime, used
  by history-calibrated estimators.

Each decision also carries the negotiation *cost*: how many network
messages were exchanged and how long the client waited before the query
could be enqueued.  This is how the paper's observation that QA-NT "requires
more network messages" and that both real implementations "waited for a
reply from all nodes" becomes measurable.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from ..protocol.messages import AssignQuery, BidRequest
from ..protocol.transport import FanoutResult, Transport
from ..query.model import Query, QueryClass

if TYPE_CHECKING:  # imported lazily to avoid a package-level cycle
    from ..sim.engine import Simulator
    from ..sim.faults import FaultInjector
    from ..sim.network import Network
    from ..sim.node import SimulatedNode

__all__ = [
    "AllocationContext",
    "AssignmentDecision",
    "Allocator",
]


@dataclass
class AllocationContext:
    """Everything an allocator may consult when deciding."""

    simulator: "Simulator"
    network: "Network"
    nodes: Dict[int, "SimulatedNode"]
    classes: Sequence[QueryClass]
    #: ``candidates_by_class[k]`` lists the ids of nodes able to evaluate
    #: class *k* (they hold all its relations), in ascending id order.
    candidates_by_class: Dict[int, Tuple[int, ...]]
    period_ms: float
    rng: random.Random
    #: Fault injector when *message-level* faults are active; ``None``
    #: otherwise, in which case every allocator follows exactly its
    #: fault-free code path (and RNG draw sequence).
    faults: Optional["FaultInjector"] = None
    #: The market-protocol transport every negotiation exchange rides.
    #: Defaults to a :class:`repro.sim.transport.SimTransport` over
    #: ``network``; tests may inject any other
    #: :class:`repro.protocol.transport.Transport`.
    transport: Optional[Transport] = None
    #: Shared :class:`repro.sim.fleet.FleetArrays` mirror of the nodes'
    #: schedulers when available (numpy present, all nodes single-slot);
    #: ``None`` otherwise.  Allocators may use it for vectorised
    #: completion estimates but must keep a scalar path.
    fleet: Optional[object] = None

    def __post_init__(self) -> None:
        if self.transport is None:
            # Lazy import for the same reason as OUTAGE_EPOCH below:
            # importing repro.sim at module import time closes a cycle.
            from ..sim.transport import SimTransport

            self.transport = SimTransport(self.network)
        # Availability fast path: while no node of this federation has an
        # outage scheduled, per-query filtering is a no-op and the static
        # candidate tuple can be returned as-is.  The process-wide
        # OUTAGE_EPOCH cell (see repro.sim.node) tells us when to recheck;
        # it is resolved lazily because importing repro.sim at module
        # import time would close a package cycle.
        self._outage_epoch_cell: Optional[list] = None
        self._outage_checked_epoch = -1
        self._outage_free = False

    def candidates(self, class_index: int) -> Tuple[int, ...]:
        """Candidate server ids for ``class_index`` (may be empty)."""
        return self.candidates_by_class.get(class_index, ())

    def available_candidates(self, class_index: int) -> Tuple[int, ...]:
        """Candidates currently accepting work (outages filtered out).

        Every mechanism routes through this so node failures (Section 1's
        motivating scenario) affect all of them identically: a failed node
        is simply unreachable and the query negotiates with the rest.

        This is called once per allocation attempt (paper scale: hundreds
        of thousands of times), so the no-outage common case skips the
        per-node availability scan entirely and returns the registry
        tuple; the scan only runs while some node actually has outages.
        """
        candidates = self.candidates_by_class.get(class_index, ())
        cell = self._outage_epoch_cell
        if cell is None:
            from ..sim.node import OUTAGE_EPOCH

            cell = self._outage_epoch_cell = OUTAGE_EPOCH
        epoch = cell[0]
        if epoch != self._outage_checked_epoch:
            self._outage_checked_epoch = epoch
            self._outage_free = not any(
                node.has_outages for node in self.nodes.values()
            )
        if self._outage_free:
            return candidates
        nodes = self.nodes
        return tuple(
            [nid for nid in candidates if nodes[nid].is_available()]
        )


@dataclass(frozen=True)
class AssignmentDecision:
    """Outcome of one allocation attempt."""

    #: Chosen server node, or ``None`` when every candidate refused (the
    #: query re-enters the next period's demand).
    node_id: Optional[int]
    #: Negotiation latency the client experienced before enqueueing.
    delay_ms: float = 0.0
    #: Network messages spent on this decision.
    messages: int = 0


class Allocator(abc.ABC):
    """Base class of all allocation mechanisms."""

    #: Short mechanism name used in reports (e.g. "qa-nt", "greedy").
    name: str = "abstract"
    #: Whether the mechanism respects server administrative autonomy
    #: (Table 2 column): True when servers decide what they accept.
    respects_autonomy: bool = False
    #: Whether the mechanism needs a central coordinator (Table 2).
    distributed: bool = True

    def __init__(self) -> None:
        self._context: Optional[AllocationContext] = None

    @property
    def context(self) -> AllocationContext:
        """The bound context (raises until :meth:`bind` is called)."""
        if self._context is None:
            raise RuntimeError("allocator %r is not bound yet" % self.name)
        return self._context

    def bind(self, context: AllocationContext) -> None:
        """Attach the allocator to a federation.  Idempotent re-binding is
        rejected to catch accidental reuse across simulations."""
        if self._context is not None:
            raise RuntimeError(
                "allocator %r is already bound; create a fresh instance "
                "per simulation" % self.name
            )
        self._context = context
        self._after_bind()

    def _after_bind(self) -> None:
        """Hook for subclasses needing per-federation setup."""

    def on_period_start(self) -> None:
        """Called at every period boundary; default does nothing."""

    def on_run_start(self) -> None:
        """Called once by the federation before the event loop starts.

        Mechanisms may switch into run-scoped modes here (e.g. the QA-NT
        dispatcher's cross-assign state caching, safe only while every
        observer goes through the ``sync_market_state`` contract);
        direct API users who never start a run keep the plain behaviour.
        """

    @abc.abstractmethod
    def assign(self, query: Query) -> AssignmentDecision:
        """Decide which node evaluates ``query`` (or refuse)."""

    def assign_batch(
        self, queries: Sequence[Query]
    ) -> "Sequence[AssignmentDecision]":
        """Decide for a batch of queries sharing one simulated tick.

        The contract is strict sequential equivalence: the returned
        decisions (and every observable side effect — prices, supply,
        RNG state, message counts) must be bit-identical to calling
        :meth:`assign` once per query in order.  The federation only
        routes through here when the arrivals genuinely share a
        timestamp, negotiation delays are strictly positive (so no
        completion can land mid-batch), and no message faults are active;
        mechanisms unable to exploit the batching simply inherit this
        sequential default.
        """
        return [self.assign(query) for query in queries]

    def on_completion(self, query: Query, node_id: int, actual_ms: float) -> None:
        """Feedback after execution; default does nothing."""

    def on_run_end(self) -> None:
        """Called once after the simulation drains; default does nothing.

        Mechanisms that batch or defer period bookkeeping (see
        :class:`~repro.allocation.qant.QantAllocator`'s period engine)
        materialise their final state here so post-run inspection of the
        agents observes exactly what a never-deferred run would have.
        """

    # -- shared protocol helpers --------------------------------------------------

    def _request_bids(
        self, query: Query, candidates: Sequence[int]
    ) -> FanoutResult:
        """The request-for-bid fan-out: one protocol exchange with every
        candidate, over the context's transport.

        Fault-free, every request arrives and every reply beats the
        timeout, so ``replied == candidates`` and the delay is the
        slowest round trip (both the paper's implementations wait for all
        replies).  Under message faults the
        :class:`~repro.protocol.transport.FanoutResult` semantics apply:
        only peers in ``replied`` may win, while peers in ``delivered``
        ran their server-side dynamics regardless.
        """
        request = BidRequest(
            qid=query.qid,
            class_index=query.class_index,
            origin_node=query.origin_node,
            attempt=query.resubmissions,
        )
        return self.context.transport.fanout(
            query.origin_node, candidates, request
        )

    def _dispatch(self, query: Query, node_id: int) -> "AssignmentDecision":
        """Send the query to one already-chosen server.

        Used by the single-target mechanisms (random, round-robin,
        markov): one :class:`~repro.protocol.messages.AssignQuery`
        exchange with the chosen node.  When the request or its ack is
        lost, late, or partitioned away, the client cannot confirm the
        assignment — the decision becomes a refusal and the federation's
        backoff machinery paces the resubmission.
        """
        assign = AssignQuery(
            qid=query.qid, node_id=node_id, class_index=query.class_index
        )
        result = self.context.transport.fanout(
            query.origin_node, (node_id,), assign
        )
        return AssignmentDecision(
            node_id if result.replied else None,
            delay_ms=result.delay_ms,
            messages=result.messages,
        )

    def _coordinated_dispatch(
        self, query: Query, node_id: int
    ) -> "AssignmentDecision":
        """Dispatch after consulting a central coordinator (BNQRD, LB).

        The coordinator is co-located control-plane infrastructure
        reached over a reliable path, so only the client → server
        dispatch leg is ever exposed to message faults.  Fault-free the
        exchange is client → coordinator → client → server: two round
        trips, four messages — charged in one draw-compatible call so
        traces do not move.
        """
        context = self.context
        if context.faults is None:
            delay = context.network.round_trip_ms(2)
            return AssignmentDecision(node_id, delay_ms=delay, messages=4)
        # Coordinator round trip first (reliable), then the dispatch leg
        # on the faulty wire — the draw order the traces pin.
        coordination_ms = context.network.round_trip_ms(1)
        assign = AssignQuery(
            qid=query.qid, node_id=node_id, class_index=query.class_index
        )
        result = context.transport.fanout(
            query.origin_node, (node_id,), assign
        )
        return AssignmentDecision(
            node_id if result.replied else None,
            delay_ms=result.delay_ms + coordination_ms,
            messages=result.messages + 2,
        )
