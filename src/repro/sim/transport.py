"""The simulator's backend for the market protocol's transport seam.

:class:`SimTransport` adapts :class:`repro.sim.network.Network` (latency
model, message accounting, optional fault injection) to the
:class:`repro.protocol.transport.Transport` interface, so the allocators
and :class:`repro.protocol.session.MarketSession` drive the simulated
wire through the same verb a live asyncio/HTTP broker would use.

The adapter is deliberately paper-thin: the simulator *charges* an
exchange (messages, latency, fault outcomes) without materialising
payload bytes, so the ``request`` message is accepted — allocators pass
the real :class:`~repro.protocol.messages.BidRequest` /
:class:`~repro.protocol.messages.AssignQuery` they are performing — but
not serialised, and :attr:`~repro.protocol.transport.FanoutResult
.replies` stays empty.  Server-side reactions (quotes, refusal price
dynamics) happen in the allocator against the ``delivered`` set, exactly
as before the seam existed, which is what keeps every golden trace
byte-identical.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..protocol.messages import Message
from ..protocol.transport import FanoutResult, Transport
from .network import Network

__all__ = [
    "SimTransport",
]


class SimTransport(Transport):
    """Protocol transport over the discrete-event simulated network."""

    def __init__(self, network: Network) -> None:
        self._network = network

    @property
    def network(self) -> Network:
        """The wrapped simulated network."""
        return self._network

    def fanout(
        self,
        origin: int,
        peers: Sequence[int],
        request: Optional[Message] = None,
    ) -> FanoutResult:
        """Charge one request/reply fan-out on the simulated wire.

        ``request`` is accepted for interface parity but not serialised —
        the simulator models message counts and latency, not payload
        bytes.  Fault semantics (drops, spikes, partitions, the bid
        timeout) apply whenever the network carries an injector.
        """
        return self._network.fanout(origin, peers)
