"""Overload surge: mechanisms under the paper's dynamic workload.

Builds the paper's two-query world (Q1 evaluable everywhere, Q2 on half
the nodes, heterogeneous hardware), drives it with the 0.05 Hz sinusoid
surge of Figure 3 at an average load beyond total system capacity, and
compares all six allocation mechanisms — a miniature of Figures 4 and 5.

Run:  python examples/overload_surge.py [num_nodes] [load_fraction]
"""

import sys

from repro.experiments.reporting import format_table
from repro.experiments.setups import (
    default_mechanism_factories,
    run_mechanisms,
    sinusoid_trace_for_load,
    two_query_world,
)
from repro.sim import FederationConfig


def main(num_nodes: int = 40, load_fraction: float = 1.3) -> None:
    world = two_query_world(num_nodes=num_nodes, seed=1)
    capacity = world.capacity_qpms([2.0, 1.0])
    print(
        "Two-query world: %d nodes, capacity %.2f queries/s for the 2:1 mix"
        % (num_nodes, capacity * 1000.0)
    )
    trace = sinusoid_trace_for_load(
        world,
        load_fraction=load_fraction,
        horizon_ms=60_000.0,
        frequency_hz=0.05,
        seed=2,
    )
    print(
        "Surge: %d queries over 60 s, average load %.0f%% of capacity"
        % (len(trace), 100 * load_fraction)
    )
    print()

    runs = run_mechanisms(
        world,
        trace,
        mechanisms=default_mechanism_factories(),
        config=FederationConfig(seed=3, drain_ms=120_000.0),
    )
    reference = runs["qa-nt"].mean_response_ms
    rows = []
    for name, run in sorted(
        runs.items(), key=lambda item: item[1].mean_response_ms
    ):
        rows.append(
            (
                name,
                run.mean_response_ms,
                run.mean_response_ms / reference,
                run.metrics.completed,
                run.messages,
            )
        )
    print(
        format_table(
            (
                "mechanism",
                "mean response (ms)",
                "normalised",
                "completed",
                "messages",
            ),
            rows,
        )
    )
    print()
    best = rows[0][0]
    print(
        "Winner under overload: %s — the market prices Q2 onto nodes the"
        " scarce Q1 class does not need." % best
    )


if __name__ == "__main__":
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    load = float(sys.argv[2]) if len(sys.argv) > 2 else 1.3
    main(nodes, load)
