"""Benches A1–A5 — the ablations DESIGN.md calls out.

* A1: lambda (price-adjustment aggressiveness) — convergence vs accuracy;
* A2: period length T — static vs dynamic trade-off;
* A3: partial adoption — QA-NT on a subset of nodes;
* A4: Markov/static allocator vs QA-NT on static load;
* A5: supply-vector rounding (integer corner vs smooth proportional).
"""

from repro.experiments.ablations import (
    run_lambda_sweep,
    run_partial_adoption,
    run_period_sweep,
    run_rounding_ablation,
    run_static_markov,
)


def test_bench_ablation_lambda(benchmark, save_result):
    result = benchmark.pedantic(
        run_lambda_sweep,
        kwargs=dict(
            lambdas=(0.001, 0.005, 0.02, 0.05),
            num_nodes=20,
            horizon_ms=30_000.0,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_lambda", result.render())
    # The paper's trade-off: larger lambda converges in fewer iterations...
    assert (
        result.tatonnement_iterations[0] > result.tatonnement_iterations[1]
    )
    # ...until it overshoots: the largest lambda leaves residual excess.
    assert result.tatonnement_residual[-1] > result.tatonnement_residual[0]
    assert all(r > 0 for r in result.qant_response_ms)


def test_bench_ablation_period(benchmark, save_result):
    result = benchmark.pedantic(
        run_period_sweep,
        kwargs=dict(
            periods_ms=(250.0, 500.0, 2000.0),
            num_nodes=20,
            horizon_ms=30_000.0,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_period", result.render())
    assert len(result.response_slow_dynamics_ms) == 3
    assert len(result.response_fast_dynamics_ms) == 3


def test_bench_ablation_partial_adoption(benchmark, save_result):
    result = benchmark.pedantic(
        run_partial_adoption,
        kwargs=dict(
            adoption_fractions=(0.0, 0.5, 1.0),
            num_nodes=20,
            horizon_ms=30_000.0,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_partial_adoption", result.render())
    # Section 4's claim measured: full adoption at least matches none.
    assert result.monotone_gain


def test_bench_markov_static(benchmark, save_result):
    result = benchmark.pedantic(
        run_static_markov,
        kwargs=dict(num_nodes=20, horizon_ms=60_000.0, seed=0),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_markov_static", result.render())
    # All three mechanisms serve the static load; QA-NT is competitive
    # with the stochastic planner (the paper says it "comes close" —
    # with queue-aware offers it often wins outright).
    assert result.response_ms["qa-nt"] <= 3.0 * result.response_ms["markov"]
    assert result.response_ms["markov"] > 0


def test_bench_ablation_rounding(benchmark, save_result):
    result = benchmark.pedantic(
        run_rounding_ablation,
        kwargs=dict(num_nodes=20, horizon_ms=20_000.0, seed=0),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_rounding", result.render())
    assert set(result.response_ms) == {
        "greedy-int",
        "greedy-carry",
        "proportional",
    }
