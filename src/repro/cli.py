"""Command-line interface: regenerate any paper artefact from a shell.

Usage::

    python -m repro list
    python -m repro run fig1
    python -m repro run fig4 --scale paper --seed 3
    python -m repro run fig5a --seeds 3 --jobs 4 --json
    python -m repro run all --scale small --json
    python -m repro bench --filter supply --repeat 5
    python -m repro bench --json --label pr2
    python -m repro bench --baseline BENCH_pr2.json --fail-above 50
    python -m repro profile fig5a --scale paper

Every experiment is a :class:`~repro.experiments.spec.ScenarioSpec` in
the global registry; the CLI is a thin shell over
:func:`~repro.experiments.runner.run_sweep` and
:func:`~repro.experiments.runner.run_single`.

``--scale small`` (default) runs each experiment on a reduced federation
that finishes in seconds-to-minutes; ``--scale paper`` uses the paper's
full dimensions (100 nodes, 10,000 queries) and can take much longer.
``--seeds N`` replicates each run across N derived seeds (the first is
``--seed`` itself), ``--jobs N`` fans sweep cells out over N worker
processes (results are byte-identical to a serial run), and ``--json``
writes a versioned artifact under ``benchmarks/results/``.

``bench`` times the registered microbenchmark kernels
(:mod:`repro.bench`) and optionally writes a ``BENCH_<label>.json``
artifact next to the experiment artifacts; ``--baseline`` adds a speedup
column against a previously written artifact, and ``--fail-above PCT``
turns the comparison into a regression gate (exit code 1 when any kernel
is more than PCT percent slower than its baseline — the CI bench-smoke
check runs with a generous tolerance to absorb shared-runner noise).

``profile`` runs one experiment under cProfile and prints the hottest
functions — the first stop when a paper-scale run feels slow.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional, Sequence

from . import experiments as _experiments  # noqa: F401  (populates the registry)
from .experiments.runner import (
    DEFAULT_RESULTS_DIR,
    replicate_seeds,
    run_single,
    run_sweep,
    single_run_payload,
    write_json_artifact,
)
from .experiments.spec import REGISTRY, SCALES, ScenarioSpec

__all__ = ["main", "EXPERIMENTS"]

#: Mirrors :data:`repro.profiling.SORT_KEYS` without importing cProfile
#: machinery at CLI-parse time.
_PROFILE_SORT_KEYS = ("tottime", "cumtime", "ncalls")


def _legacy_entry(name: str) -> Callable[[str, int], object]:
    """A ``callable(scale, seed)`` view of one registered experiment.

    Sweepable specs return a :class:`SweepResult`; plain specs return the
    driver's native result object.  Both carry ``render()``/``to_dict()``.
    """

    def run(scale: str, seed: int) -> object:
        spec = REGISTRY.get(name)
        if spec.sweepable:
            return run_sweep(spec, scale=scale, seeds=(seed,))
        return run_single(spec, scale, seed)

    return run


#: Legacy registry view: experiment name -> callable(scale, seed) returning
#: an object with a ``render()`` method.  Kept importable for callers of the
#: pre-registry CLI; the names are exactly ``REGISTRY.names()``.
EXPERIMENTS: Dict[str, Callable[[str, int], object]] = {
    name: _legacy_entry(name) for name in REGISTRY.names()
}


def _progress(message: str) -> None:
    if sys.stderr.isatty():
        print(message, file=sys.stderr, flush=True)


def _sweep_progress(name: str) -> Callable[[int, int, object], None]:
    def report(done: int, total: int, result: object) -> None:
        _progress("%s: cell %d/%d" % (name, done, total))

    return report


def _run_one(
    name: str,
    scale: str,
    seeds: Sequence[int],
    jobs: int,
    as_json: bool,
    out_dir: str,
    fault_seed: Optional[int] = None,
    pool=None,
) -> None:
    """Run one registered experiment and print/persist its results.

    ``pool`` is the shared :class:`~concurrent.futures
    .ProcessPoolExecutor` created once in :func:`main` for ``--jobs N``,
    so ``run all`` reuses warm workers across specs instead of spawning a
    fresh pool per experiment.
    """
    spec: ScenarioSpec = REGISTRY.get(name)
    started = time.time()
    if spec.sweepable:
        result = run_sweep(
            spec,
            scale=scale,
            seeds=seeds,
            jobs=jobs,
            progress=_sweep_progress(name),
            fault_seed=fault_seed if spec.fault_aware else None,
            pool=pool,
        )
        rendered = result.render()
        payload = result.to_dict()
    else:
        results = []
        for seed in seeds:
            _progress("%s: seed %d" % (name, seed))
            results.append(run_single(spec, scale, seed))
        rendered = results[0].render()
        if len(results) > 1:
            rendered += "\n(%d replicate seeds measured; JSON has all)" % len(
                results
            )
        payload = single_run_payload(spec, scale, seeds, results)
    elapsed = time.time() - started
    print("=== %s (%.1fs) ===" % (name, elapsed))
    print(rendered)
    if as_json:
        path = write_json_artifact(name, payload, out_dir)
        print("wrote %s" % path)
    print()


def _run_bench(args: argparse.Namespace) -> int:
    """Handle the ``bench`` subcommand."""
    from .bench import (
        bench_payload,
        confirm_regressions,
        load_baseline,
        render_results,
        resolve_auto_baseline,
        run_benchmarks,
        write_bench_artifact,
    )
    from .bench.harness import _check_label

    if args.json:
        try:
            _check_label(args.label)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.fail_above is not None and not args.baseline:
        print("--fail-above requires --baseline", file=sys.stderr)
        return 2
    if args.fail_above is not None and args.fail_above < 0:
        print("--fail-above must be non-negative", file=sys.stderr)
        return 2
    baseline = None
    baseline_path = args.baseline
    if baseline_path == "auto":
        try:
            baseline_path = str(resolve_auto_baseline())
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        _progress("bench: --baseline auto -> %s" % baseline_path)
    if baseline_path:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError) as exc:
            print("cannot read baseline %s: %s" % (baseline_path, exc), file=sys.stderr)
            return 2
    try:
        results = run_benchmarks(
            name_filter=args.filter,
            repeat=args.repeat,
            progress=lambda name: _progress("bench: %s" % name),
            measure_mem=args.mem,
        )
        rendered = render_results(results, baseline=baseline)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(rendered)
    if args.fail_above is not None:
        # Gate before the artifact write: confirm_regressions re-measures
        # flagged kernels (shared-runner load phases read 30-60% slow for
        # a minute at a time) and folds the confirmed timings back into
        # `results`, so the artifact records the numbers the gate judged.
        regressions = confirm_regressions(
            baseline,
            results,
            args.fail_above,
            repeat=args.repeat,
            progress=lambda msg: _progress("bench: %s" % msg),
        )
    if args.json:
        payload = bench_payload(results, label=args.label)
        path = write_bench_artifact(payload, label=args.label, directory=args.out)
        print("wrote %s" % path)
    if args.fail_above is not None:
        if regressions:
            print(
                "FAIL: %d kernel(s) regressed more than %.0f%% vs %s"
                % (len(regressions), args.fail_above, baseline_path),
                file=sys.stderr,
            )
            for name, pct in sorted(regressions.items()):
                print("  %s: +%.1f%%" % (name, pct), file=sys.stderr)
            return 1
        print(
            "OK: no kernel regressed more than %.0f%% vs %s"
            % (args.fail_above, baseline_path)
        )
    return 0


def _run_profile(args: argparse.Namespace) -> int:
    """Handle the ``profile`` subcommand."""
    import json as _json

    from .profiling import (
        collect_experiment,
        collect_kernel,
        profile_payload,
        _check_render_args,
        _render,
    )

    if (args.kernel is None) == (args.experiment is None):
        print(
            "profile needs exactly one target: an experiment id or "
            "--kernel NAME",
            file=sys.stderr,
        )
        return 2
    started = time.time()
    try:
        _check_render_args(args.sort, args.limit)
        if args.kernel is not None:
            target = "kernel:%s" % args.kernel
            profiler = collect_kernel(args.kernel)
            header = "=== profile: --kernel %s (%.1fs wall) ===" % (
                args.kernel,
                time.time() - started,
            )
        else:
            target = "experiment:%s scale=%s seed=%d" % (
                args.experiment,
                args.scale,
                args.seed,
            )
            profiler = collect_experiment(
                args.experiment, scale=args.scale, seed=args.seed
            )
            header = "=== profile: %s --scale %s --seed %d (%.1fs wall) ===" % (
                args.experiment,
                args.scale,
                args.seed,
                time.time() - started,
            )
    except (KeyError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.json:
        payload = profile_payload(
            profiler, target, sort=args.sort, limit=args.limit
        )
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(header)
    print(_render(profiler, args.sort, args.limit, None))
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("list", help="list available experiments")
    run = commands.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        choices=REGISTRY.names() + ["all"],
        help="experiment id (see 'list')",
    )
    run.add_argument(
        "--scale",
        # Every spec carries the universal "small"/"paper" presets;
        # some register extras (e.g. scaling-shards "localmarket"),
        # so the run command accepts the union and validates the
        # (experiment, scale) pair after parsing.
        choices=sorted(
            {
                scale
                for name in REGISTRY.names()
                for scale in REGISTRY.get(name).scales
            }
        ),
        default="small",
        help="federation/workload size (default: small; extra presets "
        "are experiment-specific, e.g. scaling-shards --scale localmarket)",
    )
    run.add_argument("--seed", type=int, default=0, help="base random seed")
    run.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        metavar="N",
        help="base seed of the fault streams of fault-aware experiments "
        "(e.g. chaos); independent of --seed, default 0",
    )
    run.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="number of replicate seeds derived from --seed (default: 1)",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep cells (default: 1, serial)",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="write a versioned JSON artifact per experiment",
    )
    run.add_argument(
        "--out",
        default=DEFAULT_RESULTS_DIR,
        help="artifact directory (default: %s)" % DEFAULT_RESULTS_DIR,
    )
    bench = commands.add_parser(
        "bench", help="time the hot-path microbenchmark kernels"
    )
    bench.add_argument(
        "--filter",
        default=None,
        metavar="SUBSTR",
        help="only run kernels whose name contains SUBSTR",
    )
    bench.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="timing rounds per kernel; the best round wins (default: 3)",
    )
    bench.add_argument(
        "--json",
        action="store_true",
        help="write a BENCH_<label>.json artifact",
    )
    bench.add_argument(
        "--label",
        default="local",
        help="artifact label: BENCH_<label>.json (default: local)",
    )
    bench.add_argument(
        "--out",
        default=DEFAULT_RESULTS_DIR,
        help="artifact directory (default: %s)" % DEFAULT_RESULTS_DIR,
    )
    bench.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="earlier BENCH_*.json to show per-kernel speedups against; "
        "'auto' picks the newest committed BENCH_pr<N>.json at the repo "
        "root",
    )
    bench.add_argument(
        "--mem",
        action="store_true",
        help="also record each kernel's peak heap growth (tracemalloc; "
        "measured on an extra untimed call)",
    )
    bench.add_argument(
        "--fail-above",
        type=float,
        default=None,
        metavar="PCT",
        help="exit non-zero if any kernel is more than PCT%% slower than "
        "the --baseline artifact (the CI regression gate)",
    )
    profile = commands.add_parser(
        "profile",
        help="run one experiment under cProfile and print the hot spots",
    )
    profile.add_argument(
        "experiment",
        nargs="?",
        default=None,
        choices=REGISTRY.names(),
        help="experiment id (see 'list'); omit when using --kernel",
    )
    profile.add_argument(
        "--kernel",
        default=None,
        metavar="NAME",
        help="profile a registered bench kernel instead of an experiment "
        "(same seeded fixture 'repro bench' times)",
    )
    profile.add_argument(
        "--scale",
        choices=SCALES,
        default="small",
        help="federation/workload size (default: small)",
    )
    profile.add_argument("--seed", type=int, default=0, help="base random seed")
    profile.add_argument(
        "--sort",
        choices=_PROFILE_SORT_KEYS,
        default="tottime",
        help="pstats sort key (default: tottime)",
    )
    profile.add_argument(
        "--limit",
        type=int,
        default=25,
        help="number of rows to print (default: 25)",
    )
    profile.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable hotspot rows (versioned schema) "
        "instead of the pstats table",
    )
    # `--top` writes into the same dest as `--limit`; SUPPRESS keeps the
    # alias from clobbering --limit's default at namespace set-up.
    profile.add_argument(
        "--top",
        type=int,
        dest="limit",
        default=argparse.SUPPRESS,
        metavar="N",
        help="alias for --limit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for name in REGISTRY.names():
            print(name)
        return 0
    if args.command == "bench":
        if args.repeat < 1:
            print("--repeat must be >= 1", file=sys.stderr)
            return 2
        return _run_bench(args)
    if args.command == "profile":
        return _run_profile(args)

    if args.seeds < 1:
        print("--seeds must be >= 1", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    seeds = replicate_seeds(args.seed, args.seeds)
    names = REGISTRY.names() if args.experiment == "all" else [args.experiment]
    for name in names:
        if args.scale not in REGISTRY.get(name).scales:
            print(
                "experiment %r has no scale %r (known: %s)"
                % (name, args.scale, ", ".join(sorted(REGISTRY.get(name).scales))),
                file=sys.stderr,
            )
            return 2
    if args.fault_seed is not None and args.experiment != "all":
        if not REGISTRY.get(args.experiment).fault_aware:
            print(
                "--fault-seed only applies to fault-aware experiments",
                file=sys.stderr,
            )
            return 2
    pool = None
    try:
        if args.jobs > 1:
            from concurrent.futures import ProcessPoolExecutor

            pool = ProcessPoolExecutor(max_workers=args.jobs)
        for name in names:
            _run_one(
                name,
                args.scale,
                seeds,
                args.jobs,
                args.json,
                args.out,
                fault_seed=args.fault_seed,
                pool=pool,
            )
    finally:
        if pool is not None:
            pool.shutdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
