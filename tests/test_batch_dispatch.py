"""Twin-fleet bit-identity tests for the market-tick batch dispatcher.

The federation coalesces same-tick arrivals into one
:meth:`~repro.allocation.base.Allocator.assign_batch` call, and QA-NT
answers full fan-outs through the vectorised
:class:`~repro.allocation.market_tick.MarketTickDispatcher`.  The whole
construction carries one contract: a run with ``batch_ticks=True`` must
be *bit-identical* to the same run with batching disabled — every
decision, every float, every RNG draw, every message count, and every
agent's post-run market state.  These tests drive twin federations over
quantised traces (so real multi-query batches form) and hash everything.
"""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation import GreedyAllocator, QantAllocator, RandomAllocator
from repro.experiments.scaling import quantise_trace
from repro.experiments.setups import (
    run_mechanism,
    sinusoid_trace_for_load,
    two_query_world,
)
from repro.sim import FederationConfig, build_federation
from repro.sim.faults import FaultSpec
from repro.sim.network import LatencyModel

_MECHANISMS = (
    ("qa-nt", QantAllocator),
    ("greedy", GreedyAllocator),
    ("random", RandomAllocator),  # draws context RNG per assign
)

_FAULT_SPECS = {
    # No faults: the vector exchange handles every full fan-out.
    "none": None,
    # Node churn only: no message faults, so batching stays enabled and
    # outage windows force partial fan-outs through the scalar fallback.
    "churn": FaultSpec(crash_rate_per_min=4.0, fault_seed=7),
    # Message faults: batching is disabled outright (backoff draws would
    # interleave differently), so both runs take the scalar path.
    "drops": FaultSpec(drop_probability=0.05, fault_seed=7),
}


def _outcome_digest(outcomes) -> str:
    """Same full-record pin as tests/test_golden_trace.py."""
    digest = hashlib.sha256()
    for o in outcomes:
        digest.update(
            (
                "%d,%d,%d,%r,%r,%d,%r,%r,%d;"
                % (
                    o.qid,
                    o.class_index,
                    o.origin_node,
                    o.arrival_ms,
                    o.assigned_ms,
                    o.node_id,
                    o.start_ms,
                    o.finish_ms,
                    o.resubmissions,
                )
            ).encode()
        )
    return digest.hexdigest()


def _quantised_run(name, factory, seed, tick_ms, batch_ticks, faults=None):
    world = two_query_world(num_nodes=12, seed=seed)
    trace = quantise_trace(
        sinusoid_trace_for_load(
            world,
            load_fraction=1.5,
            horizon_ms=1_500.0,
            frequency_hz=0.05,
            seed=seed + 10,
        ),
        tick_ms,
    )
    return run_mechanism(
        world,
        trace,
        name,
        factory,
        FederationConfig(seed=seed + 2, batch_ticks=batch_ticks, faults=faults),
    )


@settings(max_examples=12, deadline=None)
@given(
    st.integers(min_value=0, max_value=3),
    st.sampled_from([5.0, 25.0, 100.0]),
    st.integers(min_value=0, max_value=len(_MECHANISMS) - 1),
    st.sampled_from(sorted(_FAULT_SPECS)),
)
def test_batched_runs_match_scalar_bit_for_bit(
    seed, tick_ms, mech_index, fault_key
):
    name, factory = _MECHANISMS[mech_index]
    faults = _FAULT_SPECS[fault_key]
    batched = _quantised_run(name, factory, seed, tick_ms, True, faults)
    scalar = _quantised_run(name, factory, seed, tick_ms, False, faults)
    assert _outcome_digest(batched.metrics.outcomes) == _outcome_digest(
        scalar.metrics.outcomes
    )
    assert batched.messages == scalar.messages
    assert batched.metrics.completed == scalar.metrics.completed
    # The scalar twin never records batch activity; the batched twin
    # only does where batching is actually legal.
    assert scalar.metrics.batch_ticks == 0
    if faults is not None and faults.message_faults:
        assert batched.metrics.batch_ticks == 0


def _agent_state(agent):
    return (
        tuple(agent.prices),
        agent.max_price,
        tuple(agent._remaining),
        tuple(agent._refused),
        tuple(agent._accepted),
        agent._price_epoch,
        agent._enforce_locked_at,
    )


def test_qant_agent_state_matches_scalar_after_run():
    # Beyond the outcome digest: every agent's post-run market state
    # (prices, supply, refusal counters, epoch, enforce latch) must be
    # exactly what the never-batched run leaves behind.
    world = two_query_world(num_nodes=16, seed=0)
    trace = quantise_trace(
        sinusoid_trace_for_load(
            world,
            load_fraction=1.5,
            horizon_ms=1_500.0,
            frequency_hz=0.05,
            seed=3,
        ),
        50.0,
    )
    states = {}
    metrics = {}
    for batch in (True, False):
        allocator = QantAllocator()
        federation = build_federation(
            world.specs,
            world.placement,
            world.classes,
            world.cost_model,
            allocator,
            FederationConfig(seed=2, batch_ticks=batch),
        )
        metrics[batch] = federation.run(trace)
        states[batch] = {
            node_id: _agent_state(agent)
            for node_id, agent in sorted(allocator.agents.items())
        }
    assert states[True] == states[False]
    assert _outcome_digest(metrics[True].outcomes) == _outcome_digest(
        metrics[False].outcomes
    )
    # The batched twin really batched — and really vectorised.
    assert metrics[True].batch_ticks > 0
    assert metrics[True].batched_queries >= 2 * metrics[True].batch_ticks
    assert metrics[True].max_batch >= 2
    assert metrics[True].vector_exchanges > 0


def test_zero_base_latency_disables_batching():
    # With base_ms == 0 a negotiation can complete synchronously, so an
    # assignment's completion could land mid-batch; the federation must
    # fall back to per-query dispatch (and stay bit-identical).
    world = two_query_world(num_nodes=10, seed=1)
    trace = quantise_trace(
        sinusoid_trace_for_load(
            world,
            load_fraction=1.0,
            horizon_ms=1_000.0,
            frequency_hz=0.05,
            seed=5,
        ),
        25.0,
    )
    latency = LatencyModel(base_ms=0.0, jitter_ms=0.0)
    runs = {}
    for batch in (True, False):
        runs[batch] = run_mechanism(
            world,
            trace,
            "qa-nt",
            QantAllocator,
            FederationConfig(seed=2, batch_ticks=batch, latency=latency),
        )
    assert _outcome_digest(runs[True].metrics.outcomes) == _outcome_digest(
        runs[False].metrics.outcomes
    )
    assert runs[True].metrics.batch_ticks == 0


def _churn_run(prepare=None, faults=_FAULT_SPECS["churn"]):
    """One qa-nt churn run; ``prepare(federation, allocator)`` may script it."""
    world = two_query_world(num_nodes=14, seed=0)
    trace = quantise_trace(
        sinusoid_trace_for_load(
            world,
            load_fraction=1.5,
            horizon_ms=1_500.0,
            frequency_hz=0.05,
            seed=9,
        ),
        25.0,
    )
    allocator = QantAllocator()
    federation = build_federation(
        world.specs,
        world.placement,
        world.classes,
        world.cost_model,
        allocator,
        FederationConfig(seed=2, batch_ticks=True, faults=faults),
    )
    if prepare is not None:
        prepare(federation, allocator)
    metrics = federation.run(trace)
    return allocator, metrics


def test_partial_fanout_mid_run_falls_back_and_recovers():
    # Crash-only churn keeps the dispatcher armed but shrinks candidate
    # sets inside outage windows: those queries must drop to the scalar
    # loop (a counted fallback), full fan-outs must return to the vector
    # path afterwards, and the whole interleaving must be bit-identical
    # to a run that never vectorises anything.
    vectorised, metrics = _churn_run()
    stats = vectorised.batch_dispatch_stats
    assert stats is not None, "churn must not disable the dispatcher"
    assert stats.scalar_fallbacks > 0, "no outage window hit a fan-out"
    assert stats.vector_exchanges > 0, "vector path never resumed"

    def never_vectorise(federation, allocator):
        # Simulate the undispatchable fleet: every exchange takes the
        # scalar loop over the live agent lists for the entire run.
        allocator._dispatcher = None

    scalar, scalar_metrics = _churn_run(prepare=never_vectorise)
    assert _outcome_digest(metrics.outcomes) == _outcome_digest(
        scalar_metrics.outcomes
    )
    assert {
        node_id: _agent_state(agent)
        for node_id, agent in sorted(vectorised.agents.items())
    } == {
        node_id: _agent_state(agent)
        for node_id, agent in sorted(scalar.agents.items())
    }


def test_scripted_vector_singles_outage_is_bit_identical():
    # Script an outage of the vector-singles path itself: sync + disable
    # at 500 ms, re-enable at 1,000 ms.  Queries inside the window run
    # the scalar loop against live lists; the first exchange after
    # re-enable re-gathers from scratch.  Any cached-state leak across
    # either edge shows up as a digest diff against the unscripted run.
    baseline, baseline_metrics = _churn_run(faults=None)

    def script(federation, allocator):
        def off():
            allocator.sync_market_state()
            allocator._vector_singles = False

        def on():
            allocator._vector_singles = True

        federation.simulator.schedule(500.0, off)
        federation.simulator.schedule(1_000.0, on)

    toggled, toggled_metrics = _churn_run(prepare=script, faults=None)
    assert _outcome_digest(baseline_metrics.outcomes) == _outcome_digest(
        toggled_metrics.outcomes
    )
    assert {
        node_id: _agent_state(agent)
        for node_id, agent in sorted(baseline.agents.items())
    } == {
        node_id: _agent_state(agent)
        for node_id, agent in sorted(toggled.agents.items())
    }
    # The toggle really moved traffic: the scripted run answered fewer
    # exchanges on the vector path than the unscripted one.
    assert (
        toggled.batch_dispatch_stats.vector_exchanges
        < baseline.batch_dispatch_stats.vector_exchanges
    )


def test_batch_summary_counters_surface_in_metrics():
    run = _quantised_run("qa-nt", QantAllocator, 0, 25.0, True)
    summary = run.metrics.batch_summary()
    assert set(summary) == {
        "batch_ticks",
        "batched_queries",
        "max_batch",
        "vector_exchanges",
        "scalar_fallbacks",
        "batch_syncs",
    }
    assert summary["batch_ticks"] > 0
    assert summary["batched_queries"] >= 2 * summary["batch_ticks"]
    assert summary["max_batch"] >= 2
    assert summary["vector_exchanges"] > 0
    # A non-batched run never forms batches, but single assigns inside a
    # federation run still go through the (bit-identical) vector
    # exchange, so the dispatcher counters may be nonzero.
    scalar = _quantised_run("qa-nt", QantAllocator, 0, 25.0, False).metrics
    assert scalar.batch_ticks == 0
    assert scalar.batched_queries == 0
    assert scalar.max_batch == 0
    assert scalar.vector_exchanges > 0
