"""Discrete-event simulation kernel.

A minimal, deterministic event-heap simulator: events are slim
``(time, seq, handle, callback, args)`` slots ordered by time with FIFO
tie-breaking, so two runs with the same seeds produce identical traces.
Passing callback arguments through the slot (instead of closing over them)
keeps the hot deliver path free of per-event closure allocation.  All
simulation modules measure time in **milliseconds** (matching the paper's
reporting units).

The kernel is deliberately tiny — scheduling, cancellation, bounded runs —
because everything domain-specific (nodes, networks, markets) is built on
top of it in sibling modules.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = [
    "EventHandle",
    "Simulator",
]


class EventHandle:
    """Handle to a scheduled event, usable for cancellation."""

    __slots__ = ("time", "seq", "cancelled", "fired", "_simulator")

    def __init__(self, time: float, seq: int, simulator: "Optional[Simulator]" = None):
        self.time = time
        self.seq = seq
        self.cancelled = False
        self.fired = False
        self._simulator = simulator

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired/cancelled)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._simulator is not None:
            self._simulator._on_cancel()


class _EventStream:
    """A pre-sorted run of events sharing one resident heap slot.

    Large workload traces schedule every arrival up front; putting each
    one in the heap makes ``heapify``/``heappush`` costs scale with the
    trace length.  A stream keeps the full ``(time, callback, args)``
    run in a plain list and exposes only its head to the heap — when the
    head fires, the next entry is pushed.  Sequence numbers for the whole
    run are reserved contiguously at registration, so interleaving with
    individually scheduled events is identical to having ``schedule_at``
    been called once per entry at registration time.

    Stream entries are not cancellable (they carry no per-event handle);
    use :meth:`Simulator.schedule_at` for events that may be cancelled.
    """

    __slots__ = ("_entries", "_pos", "_base_seq")

    def __init__(
        self,
        entries: Sequence[Tuple[float, Callable[..., Any], Tuple[Any, ...]]],
        base_seq: int,
    ) -> None:
        self._entries = entries
        self._pos = 0
        self._base_seq = base_seq


# Shared heap-slot handle for stream entries: never cancelled, and nothing
# reads `fired` back, so one immortal instance serves every stream slot
# (heap tuples never compare it — (time, seq) is globally unique).
_STREAM_HANDLE = EventHandle(0.0, -1)


class Simulator:
    """A deterministic discrete-event simulator clocked in milliseconds."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, EventHandle, Callable[[], Any]]] = []
        self._seq = 0
        self._events_processed = 0
        self._live = 0
        self._cancelled_pending = 0

    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still due to fire (cancelled ones excluded)."""
        return self._live

    @property
    def heap_size(self) -> int:
        """Physical heap length, including cancelled-but-uncompacted entries."""
        return len(self._heap)

    def _on_cancel(self) -> None:
        """Account for a live event turning cancelled; compact when stale
        entries outnumber live heap entries (amortised O(1) per
        cancellation).

        The threshold is heap-local — cancelled entries must make up more
        than half the *physical heap* — rather than compared against the
        live-event count: streams keep most of their pending events out of
        the heap, so ``_live`` can dwarf ``len(self._heap)`` and a
        live-count threshold would let a small heap fill up with stale
        entries and never compact.
        """
        self._live -= 1
        self._cancelled_pending += 1
        if (
            self._cancelled_pending > 64
            and self._cancelled_pending * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from the heap and restore the invariant."""
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_pending = 0

    def schedule(
        self, delay_ms: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay_ms`` from now.

        Extra positional ``args`` are stored in the event slot and passed
        to ``callback`` when it fires — the slim-dispatch alternative to
        allocating a closure per event on hot paths (message deliveries,
        query completions).
        """
        if delay_ms < 0:
            raise ValueError("cannot schedule an event in the past")
        return self.schedule_at(self._now + delay_ms, callback, *args)

    def schedule_at(
        self, time_ms: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``time_ms``."""
        if time_ms < self._now:
            raise ValueError(
                "cannot schedule at %.3f, current time is %.3f"
                % (time_ms, self._now)
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time_ms, seq, self)
        heapq.heappush(
            self._heap, (time_ms, handle.seq, handle, callback, args)
        )
        self._live += 1
        return handle

    def schedule_stream(
        self,
        entries: Sequence[Tuple[float, Callable[..., Any], Tuple[Any, ...]]],
    ) -> None:
        """Schedule a pre-sorted run of ``(time_ms, callback, args)`` events.

        Equivalent to calling :meth:`schedule_at` once per entry, in order,
        right now — the whole run's sequence numbers are reserved here, so
        FIFO tie-breaking against other events is identical — but only the
        stream's next-due entry occupies a heap slot at any moment.  This
        keeps the heap size O(live streams + individually scheduled
        events) instead of O(trace length) for bulk workload registration.

        ``entries`` must be sorted ascending by time and lie at/after the
        current clock.  Stream entries cannot be cancelled.
        """
        if not entries:
            return
        prev = self._now
        for time_ms, _callback, _args in entries:
            if time_ms < prev:
                raise ValueError(
                    "stream entries must be sorted ascending and not "
                    "scheduled in the past"
                )
            prev = time_ms
        base_seq = self._seq
        self._seq = base_seq + len(entries)
        self._live += len(entries)
        self._push_stream_head(_EventStream(entries, base_seq))

    def _push_stream_head(self, stream: _EventStream) -> None:
        """Put the stream's next pending entry into the heap."""
        time_ms, callback, args = stream._entries[stream._pos]
        heapq.heappush(
            self._heap,
            (
                time_ms,
                stream._base_seq + stream._pos,
                _STREAM_HANDLE,
                self._advance_stream,
                (stream, callback, args),
            ),
        )

    def _advance_stream(
        self,
        stream: _EventStream,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
    ) -> None:
        """Fire one stream entry; expose the next one to the heap first
        (the callback may itself drain the heap or schedule new work)."""
        stream._pos += 1
        if stream._pos < len(stream._entries):
            self._push_stream_head(stream)
        callback(*args)

    def step(self) -> bool:
        """Execute the next event.  Returns False when the heap is empty."""
        # `self._heap` is re-read per iteration on purpose: `_compact`
        # (triggered by cancellations inside callbacks) rebinds it.
        heappop = heapq.heappop
        while self._heap:
            time_ms, __, handle, callback, args = heappop(self._heap)
            if handle.cancelled:
                self._cancelled_pending -= 1
                continue
            handle.fired = True
            self._live -= 1
            self._now = time_ms
            self._events_processed += 1
            callback(*args)
            return True
        return False

    def run(self, until_ms: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap empties, ``until_ms`` passes, or ``max_events``.

        ``until_ms`` is inclusive: events scheduled exactly at ``until_ms``
        still fire.  The final clock value is well-defined either way:

        * when every event due by ``until_ms`` has fired (the heap drained
          or only later events remain), the clock advances to ``until_ms``
          so a time-bounded run always ends at its bound;
        * when ``max_events`` stops the run with due events still pending,
          the clock stays at the last executed event's time, so a
          subsequent :meth:`run` resumes exactly where this one stopped
          (it is *not* advanced to ``until_ms`` — time that was never
          simulated must not be claimed).

        Cancelled entries at the front of the heap are discarded before the
        bounds are checked, so a stale entry inside the window can neither
        fire an event beyond ``until_ms`` nor consume ``max_events`` budget.
        """
        heappop = heapq.heappop
        if until_ms is None and max_events is None:
            # Unbounded drain: the common case.  The pop/dispatch loop is
            # inlined (no per-event `step()` frame), which also serves as
            # the batched delivery path — consecutive same-timestamp
            # events (a period tick's retry burst, simultaneous message
            # deliveries) dispatch back-to-back in FIFO seq order with no
            # per-event bound checks.  `self._heap` is re-read every
            # iteration because `_compact` may rebind it inside a callback.
            while self._heap:
                time_ms, __, handle, callback, args = heappop(self._heap)
                if handle.cancelled:
                    self._cancelled_pending -= 1
                    continue
                handle.fired = True
                self._live -= 1
                self._now = time_ms
                self._events_processed += 1
                callback(*args)
            return
        executed = 0
        while True:
            heap = self._heap  # re-read: `_compact` rebinds it
            while heap and heap[0][2].cancelled:
                heappop(heap)
                self._cancelled_pending -= 1
            if not heap:
                break
            if until_ms is not None and heap[0][0] > until_ms:
                break
            if max_events is not None and executed >= max_events:
                # Budget exhausted with due events pending: leave the
                # clock at the last executed event (resumable), per the
                # docstring contract.
                return
            time_ms, __, handle, callback, args = heappop(heap)
            handle.fired = True
            self._live -= 1
            self._now = time_ms
            self._events_processed += 1
            callback(*args)
            executed += 1
        if until_ms is not None and self._now < until_ms:
            self._now = until_ms

    def every(
        self,
        interval_ms: float,
        callback: Callable[[], Any],
        start_ms: Optional[float] = None,
        until_ms: Optional[float] = None,
    ) -> None:
        """Schedule ``callback`` periodically (period ticks, metric samples).

        The recurrence reschedules itself after each firing; ``until_ms``
        (inclusive) bounds the last firing.
        """
        if interval_ms <= 0:
            raise ValueError("interval must be positive")
        first = self._now if start_ms is None else start_ms

        def fire_and_reschedule() -> None:
            callback()
            next_time = self._now + interval_ms
            if until_ms is None or next_time <= until_ms:
                self.schedule_at(next_time, fire_and_reschedule)

        self.schedule_at(first, fire_and_reschedule)
