"""Profiling entry point: cProfile any registered experiment or kernel.

``python -m repro profile <scenario> --scale paper`` runs one scenario
under :mod:`cProfile` and prints the hottest functions, which is how the
paper-scale optimisation targets of this repo were found (the QA-NT
request-for-bid fan-out, the network latency sampling, the per-period
supply solves).  The profile is collected around exactly the code path
``python -m repro run`` executes for a single seed, serially — worker
processes would escape the profiler.

``python -m repro profile --kernel fed.fig5a_paper_short`` profiles one
registered *bench* kernel instead — the same seeded fixture ``python -m
repro bench`` times, so a hotspot hunt on a kernel that regressed is one
command with no scenario bookkeeping around it.  The kernel's ``setup()``
runs outside the profiled region; one warm-up call absorbs first-call
effects (lazy imports, cache fills) so the profile reflects the
steady-state the bench harness measures.

Profiler note: cProfile's tracing typically inflates this simulator's
wall-clock ~3x and overstates Python-level call overhead relative to
C-level work (RNG draws, heap operations); treat the ranking as the
signal, not the absolute numbers, and confirm wins with
``python -m repro bench``.
"""

from __future__ import annotations

import cProfile
import io
import platform
import pstats
from typing import Optional, Sequence

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "SORT_KEYS",
    "collect_experiment",
    "collect_kernel",
    "profile_experiment",
    "profile_kernel",
    "profile_payload",
    "read_profile_payload",
]

#: pstats sort keys exposed on the CLI.
SORT_KEYS = ("tottime", "cumtime", "ncalls")

#: Version stamp of every ``repro profile --json`` payload (the
#: ``bench_payload`` convention: bump on incompatible row-shape changes).
#: v2 adds the ``shards`` section — per-shard aggregate frame-handling
#: self-time for kernels backed by worker processes, which cProfile's
#: in-process tracing cannot see.  v1 payloads stay readable through
#: :func:`read_profile_payload`.
PROFILE_SCHEMA_VERSION = 2


def _check_render_args(sort: str, limit: int) -> None:
    if sort not in SORT_KEYS:
        raise ValueError(
            "unknown sort key %r (expected one of %s)"
            % (sort, ", ".join(SORT_KEYS))
        )
    if limit < 1:
        raise ValueError("limit must be >= 1")


def _render(
    profiler: cProfile.Profile,
    sort: str,
    limit: int,
    stream: Optional[io.TextIOBase],
) -> str:
    """Render a collected profile as a pstats report string."""
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(limit)
    report = buffer.getvalue()
    if stream is not None:
        stream.write(report)
    return report


def collect_experiment(
    name: str, scale: str = "small", seed: int = 0
) -> cProfile.Profile:
    """Run one registered experiment under cProfile; return the profiler."""
    from .experiments.runner import run_single, run_sweep
    from .experiments.spec import REGISTRY

    spec = REGISTRY.get(name)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        if spec.sweepable:
            run_sweep(spec, scale=scale, seeds=(seed,))
        else:
            run_single(spec, scale, seed)
    finally:
        profiler.disable()
    return profiler


def collect_kernel(name: str) -> cProfile.Profile:
    """Run one registered bench kernel under cProfile; return the profiler.

    The kernel's seeded ``setup()`` and one warm-up call stay outside the
    profiled region, mirroring how the bench harness times it.  Raises
    ``KeyError`` for an unknown kernel name.
    """
    from .bench.kernels import KERNELS

    kernel = KERNELS.get(name)
    if kernel is None:
        raise KeyError(
            "unknown bench kernel %r (see 'python -m repro bench')" % (name,)
        )
    fn = kernel.setup()
    fn()  # warm-up: lazy imports and cache fills stay out of the profile
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        fn()
    finally:
        profiler.disable()
    # Sharded kernels expose the workers' aggregate frame-handling
    # self-time (a `shard_self_time_s` callable on the run closure);
    # cProfile cannot trace into forked workers, so this rides along on
    # the profiler object for `profile_payload` to fold into schema v2.
    reporter = getattr(fn, "shard_self_time_s", None)
    if callable(reporter):
        profiler.shard_self_time_s = [float(t) for t in reporter()]
    return profiler


def profile_experiment(
    name: str,
    scale: str = "small",
    seed: int = 0,
    sort: str = "tottime",
    limit: int = 25,
    stream: Optional[io.TextIOBase] = None,
) -> str:
    """Run one registered experiment under cProfile; return the report.

    ``sort`` is a :mod:`pstats` sort key (see :data:`SORT_KEYS`);
    ``limit`` bounds the number of rows.  The rendered report is returned
    and, when ``stream`` is given, also written there incrementally.
    """
    _check_render_args(sort, limit)
    return _render(collect_experiment(name, scale, seed), sort, limit, stream)


def profile_kernel(
    name: str,
    sort: str = "tottime",
    limit: int = 25,
    stream: Optional[io.TextIOBase] = None,
) -> str:
    """Run one registered bench kernel under cProfile; return the report.

    See :func:`collect_kernel` for what is and is not inside the profiled
    region.
    """
    _check_render_args(sort, limit)
    return _render(collect_kernel(name), sort, limit, stream)


def profile_payload(
    profiler: cProfile.Profile,
    target: str,
    sort: str = "tottime",
    limit: int = 25,
    shard_self_time_s: Optional[Sequence[float]] = None,
) -> dict:
    """Machine-readable hotspot rows for ``repro profile --json``.

    The ``bench_payload`` convention applied to profiles: a versioned
    envelope whose ``rows`` are the top ``limit`` functions under the
    chosen ``sort`` key, each a flat record scripts can aggregate without
    parsing pstats text — shard-imbalance hunts diff these across shard
    counts.  ``total_time_s`` is the profiler's own (inflated ~3x, see
    the module docs) account of the traced run; row fractions are
    meaningful, absolutes are not.

    Schema v2: the ``shards`` section carries per-shard aggregate
    frame-handling self-time (seconds of real worker wall clock, *not*
    profiler-inflated) for sharded kernels — pass ``shard_self_time_s``
    explicitly or let :func:`collect_kernel` attach it to the profiler.
    Single-process targets get an empty list.
    """
    _check_render_args(sort, limit)
    stats = pstats.Stats(profiler)
    stats.sort_stats(sort)
    rows = []
    for func in stats.fcn_list[:limit]:
        primitive_calls, ncalls, tottime, cumtime, __ = stats.stats[func]
        filename, line, function = func
        rows.append(
            {
                "file": filename,
                "line": line,
                "function": function,
                "ncalls": ncalls,
                "primitive_calls": primitive_calls,
                "tottime_s": tottime,
                "cumtime_s": cumtime,
            }
        )
    if shard_self_time_s is None:
        shard_self_time_s = getattr(profiler, "shard_self_time_s", [])
    return {
        "schema_version": PROFILE_SCHEMA_VERSION,
        "kind": "profile",
        "target": target,
        "sort": sort,
        "limit": limit,
        "total_time_s": stats.total_tt,
        "python_version": platform.python_version(),
        "rows": rows,
        "shards": [
            {"shard": index, "self_time_s": float(seconds)}
            for index, seconds in enumerate(shard_self_time_s)
        ],
    }


def read_profile_payload(payload: dict) -> dict:
    """Normalise a stored ``repro profile --json`` payload to v2 shape.

    v1 payloads (no ``shards`` section) remain readable: they come back
    with an empty ``shards`` list and their version restated as the
    current schema.  Unknown future versions raise, matching the bench
    baseline loader's posture.
    """
    version = payload.get("schema_version")
    if version not in (1, PROFILE_SCHEMA_VERSION):
        raise ValueError(
            "unsupported profile schema_version %r (supported: 1, %d)"
            % (version, PROFILE_SCHEMA_VERSION)
        )
    if payload.get("kind") != "profile":
        raise ValueError("not a profile payload: kind=%r" % payload.get("kind"))
    normalised = dict(payload)
    normalised.setdefault("shards", [])
    normalised["schema_version"] = PROFILE_SCHEMA_VERSION
    return normalised
