"""Sweep execution: expand a spec into cells, run them, aggregate, persist.

The runner turns a sweepable :class:`~repro.experiments.spec.ScenarioSpec`
into a grid of independent :class:`~repro.experiments.spec.SweepCell` s
(mechanism x sweep-point x seed) and executes them either serially or on
a :class:`concurrent.futures.ProcessPoolExecutor`.  Replicate seeds are
derived deterministically in the parent process (sha256-keyed
:class:`random.Random` spawning), and cells are aggregated in grid order,
so a parallel run is byte-identical to a serial one.

Results aggregate into a :class:`SweepResult` carrying every per-cell
metric plus per-point mean/stdev across seeds, and serialise to a
versioned JSON artifact written next to the text renders under
``benchmarks/results/``.
"""

from __future__ import annotations

import hashlib
import json
import math
import pathlib
import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .spec import ScenarioSpec, SweepCell

__all__ = [
    "SCHEMA_VERSION",
    "CellResult",
    "MetricStats",
    "SweepResult",
    "derive_cell_seed",
    "replicate_seeds",
    "expand_cells",
    "run_sweep",
    "run_single",
    "single_run_payload",
    "write_json_artifact",
]

#: Version stamp of every JSON artifact this module writes.
SCHEMA_VERSION = 1

#: Default artifact directory (next to the benchmark text renders).
DEFAULT_RESULTS_DIR = "benchmarks/results"


# --------------------------------------------------------------------- seeds


def derive_cell_seed(seed: int, cell_key: Sequence[object]) -> int:
    """A deterministic, process-stable seed derived from ``(seed, key)``.

    Python's builtin ``hash`` is salted per process, so the derivation
    keys a :class:`random.Random` off a sha256 digest instead: the same
    (seed, key) pair yields the same child seed in every process and on
    every run, which is what makes parallel sweeps reproducible.
    """
    payload = repr((int(seed), tuple(cell_key))).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return random.Random(int.from_bytes(digest[:8], "big")).randrange(1 << 31)


def replicate_seeds(base_seed: int, count: int) -> Tuple[int, ...]:
    """``count`` deterministic replicate seeds spawned from ``base_seed``.

    The first replicate *is* ``base_seed`` so a single-seed sweep
    reproduces the legacy ``run_figX(seed=...)`` numbers exactly; the
    rest are hash-derived so replicates are independent but stable.
    """
    if count < 1:
        raise ValueError("need at least one replicate")
    return tuple(
        [int(base_seed)]
        + [derive_cell_seed(base_seed, ("replicate", i)) for i in range(1, count)]
    )


# --------------------------------------------------------------------- cells


def expand_cells(
    spec: ScenarioSpec, scale: str, seeds: Sequence[int]
) -> List[SweepCell]:
    """The full (seed x point x mechanism) grid of ``spec`` at ``scale``."""
    if not spec.sweepable:
        raise ValueError("scenario %r is not sweepable" % spec.name)
    preset = spec.preset(scale)
    cells = []
    for seed_index, seed in enumerate(seeds):
        for point_index, point in enumerate(preset.points):
            for mechanism in spec.mechanisms:
                cells.append(
                    SweepCell(
                        experiment=spec.name,
                        mechanism=mechanism,
                        point=point,
                        point_index=point_index,
                        seed=int(seed),
                        seed_index=seed_index,
                    )
                )
    return cells


@dataclass(frozen=True)
class CellResult:
    """One executed cell and its flat metric mapping."""

    cell: SweepCell
    metrics: Mapping[str, float]


def _execute_cell(payload) -> CellResult:
    """Run one cell (top-level so process pools can pickle it).

    ``extra`` carries per-cell keyword arguments derived in the parent
    process (currently the fault-aware scenarios' ``fault_seed``), so
    worker processes never re-derive anything.
    """
    cell_fn, cell, fixed, extra = payload
    metrics = dict(
        cell_fn(
            cell.mechanism,
            cell.point,
            cell.point_index,
            cell.seed,
            **fixed,
            **extra,
        )
    )
    return CellResult(cell=cell, metrics=metrics)


# --------------------------------------------------------------------- stats


@dataclass(frozen=True)
class MetricStats:
    """One metric's values across seeds plus mean/stdev."""

    values: Tuple[float, ...]

    @property
    def mean(self) -> float:
        """Arithmetic mean across seeds."""
        return sum(self.values) / len(self.values)

    @property
    def stdev(self) -> float:
        """Sample standard deviation (0 for a single seed)."""
        n = len(self.values)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((v - mu) ** 2 for v in self.values) / (n - 1))


@dataclass(frozen=True)
class SweepResult:
    """Aggregated outcome of one sweep: the full cell grid plus stats."""

    experiment: str
    title: str
    axis: str
    scale: str
    points: Tuple[object, ...]
    mechanisms: Tuple[str, ...]
    seeds: Tuple[int, ...]
    primary_metric: str
    cells: Tuple[CellResult, ...]
    ratio_of: Optional[Tuple[str, str]] = None
    #: Sweep-level fault seed (fault-aware scenarios only).  ``None`` for
    #: fault-free sweeps — and then omitted from the JSON payload, so
    #: pre-existing artifacts stay byte-identical.
    fault_seed: Optional[int] = None

    # -- lookups -----------------------------------------------------------

    def metric_names(self) -> List[str]:
        """Every metric any cell reported, sorted."""
        names = set()
        for result in self.cells:
            names.update(result.metrics)
        return sorted(names)

    def stats(
        self, mechanism: str, point_index: int, metric: Optional[str] = None
    ) -> MetricStats:
        """Across-seed stats of one metric at one grid position."""
        metric = metric or self.primary_metric
        values = [
            float(result.metrics[metric])
            for result in self.cells
            if result.cell.mechanism == mechanism
            and result.cell.point_index == point_index
        ]
        if not values:
            raise KeyError(
                "no cells for (%s, point %d)" % (mechanism, point_index)
            )
        return MetricStats(values=tuple(values))

    def series(
        self, mechanism: str, metric: Optional[str] = None
    ) -> List[MetricStats]:
        """Per-point stats for one mechanism, in axis order."""
        return [
            self.stats(mechanism, index, metric)
            for index in range(len(self.points))
        ]

    def ratio_stats(
        self,
        numerator: str,
        denominator: str,
        point_index: int,
        metric: Optional[str] = None,
    ) -> MetricStats:
        """Across-seed stats of the paired per-seed ratio at one point.

        The pairing (same seed feeds both mechanisms, hence the same
        trace) cancels workload randomness — the comparison the paper's
        normalised figures make.
        """
        num = self.stats(numerator, point_index, metric)
        den = self.stats(denominator, point_index, metric)
        return MetricStats(
            values=tuple(n / d for n, d in zip(num.values, den.values))
        )

    def ratio_series(
        self, metric: Optional[str] = None
    ) -> Optional[List[MetricStats]]:
        """Per-point paired ratio stats for ``ratio_of`` (None if unset)."""
        if self.ratio_of is None:
            return None
        numerator, denominator = self.ratio_of
        return [
            self.ratio_stats(numerator, denominator, index, metric)
            for index in range(len(self.points))
        ]

    # -- presentation ------------------------------------------------------

    def render(self) -> str:
        """The sweep as an aligned text table (primary metric only)."""
        from .reporting import format_table

        multi_seed = len(self.seeds) > 1
        headers = [self.axis]
        for mechanism in self.mechanisms:
            headers.append("%s %s" % (mechanism, self.primary_metric))
        if self.ratio_of is not None:
            headers.append("%s / %s" % self.ratio_of)
        rows = []
        ratios = self.ratio_series()
        for index, point in enumerate(self.points):
            row = [point]
            for mechanism in self.mechanisms:
                row.append(_stat_cell(self.stats(mechanism, index), multi_seed))
            if ratios is not None:
                row.append(_stat_cell(ratios[index], multi_seed))
            rows.append(row)
        table = format_table(headers, rows)
        footer = "seeds: %s  scale: %s" % (list(self.seeds), self.scale)
        return "%s\n%s" % (table, footer)

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """Versioned, JSON-ready form: every cell plus per-point stats."""
        summary: Dict[str, dict] = {}
        for mechanism in self.mechanisms:
            per_metric: Dict[str, list] = {}
            for metric in self.metric_names():
                entries = []
                for index, point in enumerate(self.points):
                    stats = self.stats(mechanism, index, metric)
                    entries.append(
                        {
                            "point": point,
                            "mean": stats.mean,
                            "stdev": stats.stdev,
                            "values": list(stats.values),
                        }
                    )
                per_metric[metric] = entries
            summary[mechanism] = per_metric
        payload = {
            "schema_version": SCHEMA_VERSION,
            "kind": "sweep",
            "experiment": self.experiment,
            "title": self.title,
            "axis": self.axis,
            "scale": self.scale,
            "points": list(self.points),
            "mechanisms": list(self.mechanisms),
            "seeds": list(self.seeds),
            "primary_metric": self.primary_metric,
            "ratio_of": list(self.ratio_of) if self.ratio_of else None,
            "cells": [
                {
                    "mechanism": result.cell.mechanism,
                    "point": result.cell.point,
                    "point_index": result.cell.point_index,
                    "seed": result.cell.seed,
                    "seed_index": result.cell.seed_index,
                    "metrics": dict(result.metrics),
                }
                for result in self.cells
            ],
            "summary": summary,
        }
        if self.fault_seed is not None:
            payload["fault_seed"] = self.fault_seed
        if self.ratio_of is not None:
            payload["ratio_summary"] = [
                {
                    "point": point,
                    "mean": stats.mean,
                    "stdev": stats.stdev,
                    "values": list(stats.values),
                }
                for point, stats in zip(self.points, self.ratio_series())
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SweepResult":
        """Rebuild a result from :meth:`to_dict` output (summary ignored)."""
        if payload.get("schema_version") != SCHEMA_VERSION:
            raise ValueError(
                "unsupported schema version %r" % payload.get("schema_version")
            )
        if payload.get("kind") != "sweep":
            raise ValueError("not a sweep payload: kind=%r" % payload.get("kind"))
        cells = tuple(
            CellResult(
                cell=SweepCell(
                    experiment=payload["experiment"],
                    mechanism=entry["mechanism"],
                    point=entry["point"],
                    point_index=entry["point_index"],
                    seed=entry["seed"],
                    seed_index=entry["seed_index"],
                ),
                metrics=dict(entry["metrics"]),
            )
            for entry in payload["cells"]
        )
        ratio_of = payload.get("ratio_of")
        return cls(
            experiment=payload["experiment"],
            title=payload.get("title", payload["experiment"]),
            axis=payload["axis"],
            scale=payload["scale"],
            points=tuple(payload["points"]),
            mechanisms=tuple(payload["mechanisms"]),
            seeds=tuple(payload["seeds"]),
            primary_metric=payload["primary_metric"],
            cells=cells,
            ratio_of=tuple(ratio_of) if ratio_of else None,
            fault_seed=payload.get("fault_seed"),
        )


def _stat_cell(stats: MetricStats, multi_seed: bool) -> str:
    if multi_seed:
        return "%.3f +/-%.3f" % (stats.mean, stats.stdev)
    return "%.3f" % stats.mean


# ------------------------------------------------------------------ running


def run_sweep(
    spec: ScenarioSpec,
    scale: str = "small",
    seeds: Sequence[int] = (0,),
    jobs: int = 1,
    progress: Optional[Callable[[int, int, CellResult], None]] = None,
    fault_seed: Optional[int] = None,
    pool: Optional[ProcessPoolExecutor] = None,
) -> SweepResult:
    """Expand ``spec`` at ``scale`` and execute every cell.

    ``jobs > 1`` fans the cells out on a process pool; results are
    collected in grid order either way, so the aggregate is byte-identical
    to a serial run.  ``progress(done, total, cell_result)`` is invoked
    after each cell completes.

    ``pool`` lets a caller running *several* sweeps (``repro run all
    --jobs N``) share one executor across them instead of paying worker
    spawn + interpreter warm-up per spec; the caller owns its lifetime.
    Without it, ``jobs > 1`` creates (and tears down) a private pool.
    Cell seeds are derived in the parent either way, so reusing warm
    workers cannot change a single result byte.

    ``fault_seed`` seeds the fault streams of fault-aware scenarios
    (default 0): each cell receives a sha-derived per-cell child of it —
    derived here, in the parent process — so fault schedules are
    reproducible independently of the workload ``seeds`` and identical
    across serial and parallel executions.  Fault-free scenarios reject a
    fault seed to catch mistargeted invocations.
    """
    if jobs < 1:
        raise ValueError("jobs must be positive")
    seeds = tuple(int(s) for s in seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    if fault_seed is not None and not spec.fault_aware:
        raise ValueError(
            "scenario %r is not fault-aware; --fault-seed does not apply"
            % spec.name
        )
    cells = expand_cells(spec, scale, seeds)
    fixed = dict(spec.preset(scale).fixed)
    fault_base = None
    if spec.fault_aware:
        fault_base = 0 if fault_seed is None else int(fault_seed)
    payloads = [
        (
            spec.cell,
            cell,
            fixed,
            (
                {"fault_seed": derive_cell_seed(fault_base, ("fault",) + cell.cell_key)}
                if fault_base is not None
                else {}
            ),
        )
        for cell in cells
    ]
    results: List[CellResult] = []
    executor = pool
    owns_pool = False
    if executor is None and jobs > 1 and len(payloads) > 1:
        executor = ProcessPoolExecutor(max_workers=min(jobs, len(payloads)))
        owns_pool = True
    if executor is not None and len(payloads) > 1:
        try:
            for result in executor.map(_execute_cell, payloads):
                results.append(result)
                if progress is not None:
                    progress(len(results), len(payloads), result)
        finally:
            if owns_pool:
                executor.shutdown()
    else:
        for payload in payloads:
            result = _execute_cell(payload)
            results.append(result)
            if progress is not None:
                progress(len(results), len(payloads), result)
    return SweepResult(
        experiment=spec.name,
        title=spec.title,
        axis=spec.axis,
        scale=scale,
        points=tuple(spec.preset(scale).points),
        mechanisms=spec.mechanisms,
        seeds=seeds,
        primary_metric=spec.primary_metric,
        cells=tuple(results),
        ratio_of=spec.ratio_of,
        fault_seed=fault_base,
    )


def run_single(spec: ScenarioSpec, scale: str = "small", seed: int = 0):
    """Run a non-sweep scenario once: ``runner(seed=seed, **fixed)``."""
    if spec.runner is None:
        raise ValueError(
            "scenario %r has no plain runner; use run_sweep" % spec.name
        )
    return spec.runner(seed=seed, **dict(spec.preset(scale).fixed))


def single_run_payload(
    spec: ScenarioSpec,
    scale: str,
    seeds: Sequence[int],
    results: Sequence[object],
) -> dict:
    """Versioned JSON payload for a non-sweep scenario's per-seed results."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "single",
        "experiment": spec.name,
        "title": spec.title,
        "scale": scale,
        "seeds": [int(s) for s in seeds],
        "results": [result.to_dict() for result in results],
    }


# ---------------------------------------------------------------- artifacts


def write_json_artifact(
    name: str,
    payload: Mapping,
    directory: str = DEFAULT_RESULTS_DIR,
) -> pathlib.Path:
    """Write ``payload`` as ``<directory>/<name>.json`` and return the path.

    Keys are sorted and NaN/inf are nulled so the artifact is strict JSON
    and byte-identical across serial and parallel runs of the same sweep.
    """
    target = pathlib.Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = target / ("%s.json" % name)
    text = json.dumps(_json_safe(payload), indent=2, sort_keys=True)
    path.write_text(text + "\n")
    return path


def _json_safe(value):
    """Recursively replace non-finite floats with None (strict JSON)."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value
