"""Pareto dominance and Pareto optimality of allocations (paper Def. 1).

An *allocation* (called a *solution* in the paper) assigns each node a
consumption vector and a supply vector, written ``<[s_i], [c_i]>``.  One
allocation Pareto-dominates another iff every node weakly prefers its
consumption in the first and at least one node strictly prefers it.  An
allocation is Pareto optimal when no feasible allocation dominates it.

The enumeration helpers here are exponential in the problem size and exist
for verifying small instances (the paper's two-node example, unit tests,
property-based tests) — the whole point of QA-NT is to reach Pareto optimal
allocations *without* such enumeration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from .preferences import PreferenceRelation, ThroughputPreference
from .vectors import QueryVector, aggregate

__all__ = [
    "Allocation",
    "pareto_dominates",
    "is_pareto_optimal",
    "pareto_front",
    "enumerate_allocations",
]


@dataclass(frozen=True)
class Allocation:
    """A solution ``<[s_i], [c_i]>`` of the QA problem.

    ``supplies[i]`` and ``consumptions[i]`` are the supply and consumption
    vectors of node *i*.  The class only stores the solution; feasibility
    with respect to supply sets is checked by the caller (see
    :func:`enumerate_allocations`).
    """

    supplies: Tuple[QueryVector, ...]
    consumptions: Tuple[QueryVector, ...]

    def __post_init__(self) -> None:
        if len(self.supplies) != len(self.consumptions):
            raise ValueError(
                "allocation must have one supply and one consumption vector "
                "per node (%d supplies vs %d consumptions)"
                % (len(self.supplies), len(self.consumptions))
            )
        if not self.supplies:
            raise ValueError("allocation must cover at least one node")

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``I`` covered by the allocation."""
        return len(self.supplies)

    def aggregate_supply(self) -> QueryVector:
        """System-wide supply ``s = sum_i s_i`` (paper eq. 1)."""
        return aggregate(self.supplies)

    def aggregate_consumption(self) -> QueryVector:
        """System-wide consumption ``c = sum_i c_i`` (paper eq. 1)."""
        return aggregate(self.consumptions)

    def is_market_clearing(self) -> bool:
        """True iff aggregate supply equals aggregate consumption (eq. 3)."""
        return self.aggregate_supply() == self.aggregate_consumption()

    def respects_demand(self, demands: Sequence[QueryVector]) -> bool:
        """True iff every node consumes at most what it demanded."""
        if len(demands) != self.num_nodes:
            raise ValueError("demand list length does not match allocation")
        return all(
            c.componentwise_le(d) for c, d in zip(self.consumptions, demands)
        )

    def total_consumed(self) -> float:
        """Total number of queries consumed across all nodes."""
        return self.aggregate_consumption().total()


def _preferences_for(
    num_nodes: int,
    preferences: Optional[Sequence[PreferenceRelation]],
) -> Sequence[PreferenceRelation]:
    if preferences is None:
        shared = ThroughputPreference()
        return [shared] * num_nodes
    if len(preferences) != num_nodes:
        raise ValueError(
            "expected %d preference relations, got %d"
            % (num_nodes, len(preferences))
        )
    return preferences


def pareto_dominates(
    first: Allocation,
    second: Allocation,
    preferences: Optional[Sequence[PreferenceRelation]] = None,
) -> bool:
    """Paper Definition 1: does ``first`` Pareto-dominate ``second``?

    Every node must weakly prefer its consumption under ``first`` and at
    least one node must strictly prefer it.  When ``preferences`` is omitted
    the paper's throughput preference is used for every node.
    """
    if first.num_nodes != second.num_nodes:
        raise ValueError("allocations cover different numbers of nodes")
    prefs = _preferences_for(first.num_nodes, preferences)
    weakly_better_everywhere = all(
        pref.prefers(c1, c2)
        for pref, c1, c2 in zip(prefs, first.consumptions, second.consumptions)
    )
    strictly_better_somewhere = any(
        pref.strictly_prefers(c1, c2)
        for pref, c1, c2 in zip(prefs, first.consumptions, second.consumptions)
    )
    return weakly_better_everywhere and strictly_better_somewhere


def is_pareto_optimal(
    candidate: Allocation,
    alternatives: Iterable[Allocation],
    preferences: Optional[Sequence[PreferenceRelation]] = None,
) -> bool:
    """True iff no allocation in ``alternatives`` dominates ``candidate``.

    ``alternatives`` should enumerate the feasible solution space (it may
    include ``candidate`` itself — an allocation never dominates itself).
    """
    prefs = _preferences_for(candidate.num_nodes, preferences)
    return not any(
        pareto_dominates(other, candidate, prefs) for other in alternatives
    )


def pareto_front(
    allocations: Sequence[Allocation],
    preferences: Optional[Sequence[PreferenceRelation]] = None,
) -> List[Allocation]:
    """All allocations in ``allocations`` not dominated by any other."""
    if not allocations:
        return []
    prefs = _preferences_for(allocations[0].num_nodes, preferences)
    front = []
    for candidate in allocations:
        if not any(
            pareto_dominates(other, candidate, prefs)
            for other in allocations
            if other is not candidate
        ):
            front.append(candidate)
    return front


def enumerate_allocations(
    demands: Sequence[QueryVector],
    supply_sets: Sequence[Iterable[QueryVector]],
) -> List[Allocation]:
    """Enumerate every feasible market-clearing allocation of a tiny instance.

    For each combination of per-node supply vectors (one from each node's
    supply set) whose aggregate does not exceed aggregate demand, the
    aggregate supply is distributed to consumers greedily, never exceeding a
    node's own demand.  Exponential — intended only for verification of
    instances with a handful of nodes and small supply sets, such as the
    paper's Figure 1 example.
    """
    if len(demands) != len(supply_sets):
        raise ValueError("need exactly one supply set per node")
    num_classes = demands[0].num_classes
    total_demand = aggregate(demands)
    allocations: List[Allocation] = []
    for combo in itertools.product(*[list(s) for s in supply_sets]):
        agg_supply = aggregate(combo)
        if not agg_supply.componentwise_le(total_demand):
            continue
        consumptions = _distribute(agg_supply, demands, num_classes)
        allocations.append(
            Allocation(supplies=tuple(combo), consumptions=tuple(consumptions))
        )
    return allocations


def _distribute(
    agg_supply: QueryVector,
    demands: Sequence[QueryVector],
    num_classes: int,
) -> List[QueryVector]:
    """Split aggregate supply into per-node consumptions bounded by demand."""
    remaining = list(agg_supply.components)
    consumptions = []
    for demand in demands:
        comps = []
        for k in range(num_classes):
            take = min(remaining[k], demand[k])
            comps.append(take)
            remaining[k] -= take
        consumptions.append(QueryVector(comps))
    return consumptions
