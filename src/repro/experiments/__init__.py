"""Experiment drivers: one module per paper table/figure plus ablations.

The per-experiment index (experiment id -> workload -> modules -> bench)
lives in DESIGN.md; measured-vs-paper results live in EXPERIMENTS.md.
"""

from .ablations import (
    run_lambda_sweep,
    run_partial_adoption,
    run_period_sweep,
    run_rounding_ablation,
    run_static_markov,
)
from .chaos import CHAOS_GRID, chaos_cell
from .failures import FailureResult, run_failures
from .runner import (
    CellResult,
    MetricStats,
    SweepResult,
    derive_cell_seed,
    expand_cells,
    replicate_seeds,
    run_single,
    run_sweep,
    single_run_payload,
    write_json_artifact,
)
from .spec import (
    REGISTRY,
    ExperimentRegistry,
    ScalePreset,
    ScenarioSpec,
    SweepCell,
    register,
)
from .fig1 import Fig1Result, run_fig1
from .fig2 import Fig2Result, run_fig2
from .fig3 import Fig3Result, run_fig3
from .fig4 import Fig4Result, run_fig4
from .fig5 import (
    Fig5aResult,
    Fig5bResult,
    Fig5cResult,
    run_fig5a,
    run_fig5b,
    run_fig5c,
)
from .fig6 import Fig6Result, run_fig6
from .fig7 import Fig7Result, run_fig7
from .replication import Replication, ratio_confident, replicate
from .scaling import quantise_trace, scaling_cell
from .setups import (
    World,
    run_mechanisms,
    sinusoid_trace_for_load,
    two_query_world,
    zipf_trace_for_world,
    zipf_world,
)
from .table2 import Table2Result, run_table2
from .table3 import Table3Result, run_table3

__all__ = [
    "CHAOS_GRID",
    "CellResult",
    "ExperimentRegistry",
    "chaos_cell",
    "FailureResult",
    "Fig1Result",
    "MetricStats",
    "REGISTRY",
    "Replication",
    "ScalePreset",
    "ScenarioSpec",
    "SweepCell",
    "SweepResult",
    "derive_cell_seed",
    "expand_cells",
    "register",
    "replicate_seeds",
    "run_single",
    "run_sweep",
    "single_run_payload",
    "write_json_artifact",
    "quantise_trace",
    "ratio_confident",
    "replicate",
    "run_failures",
    "scaling_cell",
    "Fig2Result",
    "Fig3Result",
    "Fig4Result",
    "Fig5aResult",
    "Fig5bResult",
    "Fig5cResult",
    "Fig6Result",
    "Fig7Result",
    "Table2Result",
    "Table3Result",
    "World",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5a",
    "run_fig5b",
    "run_fig5c",
    "run_fig6",
    "run_fig7",
    "run_lambda_sweep",
    "run_mechanisms",
    "run_partial_adoption",
    "run_period_sweep",
    "run_rounding_ablation",
    "run_static_markov",
    "run_table2",
    "run_table3",
    "sinusoid_trace_for_load",
    "two_query_world",
    "zipf_trace_for_world",
    "zipf_world",
]
