"""Synthetic federated catalog: relations, mirrors, and node placement."""

from .generator import (
    CatalogParameters,
    generate_catalog,
    generate_catalog_and_placement,
    generate_placement,
)
from .placement import Placement
from .schema import Catalog, Relation

__all__ = [
    "Catalog",
    "CatalogParameters",
    "Placement",
    "Relation",
    "generate_catalog",
    "generate_catalog_and_placement",
    "generate_placement",
]
