"""Simulated network substrate with per-message latency accounting.

Allocation mechanisms differ sharply in how chatty they are (the paper
notes QA-NT "requires more network messages" than its competitors), so the
network model counts every message and charges a latency drawn from a
simple base-plus-jitter model.  Latency matters twice: it delays query
assignment (negotiation round-trips) and it is part of the measured
"time to assign" in the real-deployment experiment (Fig. 7).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from .engine import Simulator

__all__ = [
    "LatencyModel",
    "Network",
]


@dataclass(frozen=True)
class LatencyModel:
    """One-way message latency: ``base_ms`` plus uniform jitter.

    Defaults approximate the paper's switched 100 Mb LAN: sub-millisecond
    one-way latency with occasional jitter.
    """

    base_ms: float = 0.5
    jitter_ms: float = 0.5

    def __post_init__(self) -> None:
        if self.base_ms < 0 or self.jitter_ms < 0:
            raise ValueError("latency components must be non-negative")

    def sample(self, rng: random.Random) -> float:
        """Draw a one-way latency in milliseconds."""
        if self.jitter_ms == 0:
            return self.base_ms
        return self.base_ms + rng.uniform(0.0, self.jitter_ms)


class Network:
    """Message-passing layer over the event simulator.

    Tracks the number of messages sent — the chattiness metric reported in
    Table 2's qualitative comparison and available for ablations.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
    ):
        self._sim = simulator
        self._latency = latency or LatencyModel()
        self._rng = random.Random(seed)
        self._messages_sent = 0

    @property
    def messages_sent(self) -> int:
        """Total messages delivered (or in flight) so far."""
        return self._messages_sent

    @property
    def latency_model(self) -> LatencyModel:
        """The latency model in effect."""
        return self._latency

    def send(self, deliver: Callable[[], None]) -> float:
        """Send one message; ``deliver`` runs after the sampled latency.

        Returns the sampled latency so callers composing multi-message
        exchanges can account for it synchronously.
        """
        self._messages_sent += 1
        delay = self._latency.sample(self._rng)
        self._sim.schedule(delay, deliver)
        return delay

    def round_trip_ms(self, num_peers: int = 1) -> float:
        """Charge a synchronous request/reply exchange with ``num_peers``.

        Returns the latency of the *slowest* round trip — the paper's real
        implementation "waited for a reply from all nodes before deciding"
        — and counts ``2 * num_peers`` messages without scheduling
        deliveries (the caller folds the delay into its own event).
        """
        if num_peers <= 0:
            return 0.0
        self._messages_sent += 2 * num_peers
        latency = self._latency
        base = latency.base_ms
        jitter = latency.jitter_ms
        if jitter == 0:
            return base + base
        # Unrolled equivalent of max((sample + sample) for each peer): the
        # draw order and the per-pair summation order are preserved
        # exactly, so traces stay byte-identical to the pre-optimisation
        # implementation while skipping 2*num_peers method dispatches.
        uniform = self._rng.uniform
        worst = (base + uniform(0.0, jitter)) + (base + uniform(0.0, jitter))
        for __ in range(num_peers - 1):
            trip = (base + uniform(0.0, jitter)) + (base + uniform(0.0, jitter))
            if trip > worst:
                worst = trip
        return worst
