"""Golden-trace regression tests for the hot-path optimisations.

The files under ``tests/golden/`` were captured from the *pre-optimisation*
code (PR 1 tree) via::

    json.dumps(_json_safe(run_sweep(REGISTRY.get(name), scale="small",
               seeds=(0,)).to_dict()), indent=2, sort_keys=True) + "\n"

The perf work (price-epoch solver caching, in-place price updates, trusted
vector constructors, network/node fast paths) must not change a single
simulated decision, so the serialized sweep results have to stay
*byte-identical*.  Any diff here means an optimisation reordered floating-
point arithmetic or consumed RNG draws differently — a correctness bug,
not a tolerance issue.
"""

import hashlib
import json
import pathlib

import pytest

from repro.allocation import GreedyAllocator, QantAllocator, RoundRobinAllocator
from repro.experiments.runner import _json_safe, run_sweep
from repro.experiments.scaling import quantise_trace
from repro.experiments.setups import (
    run_mechanism,
    sinusoid_trace_for_load,
    two_query_world,
)
from repro.experiments.spec import REGISTRY
from repro.sim import FederationConfig
from repro.sim.faults import FaultSpec, half_partition

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def _serialize(name: str) -> str:
    result = run_sweep(REGISTRY.get(name), scale="small", seeds=(0,))
    return (
        json.dumps(_json_safe(result.to_dict()), indent=2, sort_keys=True)
        + "\n"
    )


def _outcome_digest(outcomes) -> str:
    """SHA-256 over every field of every outcome, in completion order.

    ``%r`` of a float is its shortest round-trip repr, so two runs hash
    equal iff every recorded bit is equal — a far stronger pin than the
    summary means alone.
    """
    digest = hashlib.sha256()
    for o in outcomes:
        digest.update(
            (
                "%d,%d,%d,%r,%r,%d,%r,%r,%d;"
                % (
                    o.qid,
                    o.class_index,
                    o.origin_node,
                    o.arrival_ms,
                    o.assigned_ms,
                    o.node_id,
                    o.start_ms,
                    o.finish_ms,
                    o.resubmissions,
                )
            ).encode()
        )
    return digest.hexdigest()


def paper_short_payload() -> str:
    """The 100-node short-horizon golden payload (fig5a's 1.5x-load cell).

    Seed plumbing matches ``fig5a_cell("qa-nt"/"greedy", 1.5, 0, 0,
    num_nodes=100)`` exactly (world seed 0, trace seed 10, federation
    seed 2) with the horizon cut to 2 s so the trace stays test-sized.
    Every per-query record is pinned via :func:`_outcome_digest`.
    """
    world = two_query_world(num_nodes=100, seed=0)
    trace = sinusoid_trace_for_load(
        world,
        load_fraction=1.5,
        horizon_ms=2_000.0,
        frequency_hz=0.05,
        seed=10,
    )
    payload = {}
    for mechanism, factory in (
        ("qa-nt", QantAllocator),
        ("greedy", GreedyAllocator),
    ):
        run = run_mechanism(
            world, trace, mechanism, factory, FederationConfig(seed=2)
        )
        metrics = run.metrics
        payload[mechanism] = {
            "completed": metrics.completed,
            "dropped": metrics.dropped,
            "messages": run.messages,
            "mean_response_ms": metrics.mean_response_ms(),
            "mean_assign_ms": metrics.mean_assign_ms(),
            "mean_resubmissions": metrics.mean_resubmissions(),
            "p95_response_ms": metrics.percentile_response_ms(0.95),
            "last_finish_ms": metrics.last_finish_ms(),
            "executed_per_period": metrics.executed_per_period(
                500.0, 2_000.0
            ),
            "outcome_digest": _outcome_digest(metrics.outcomes),
        }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def chaos_payload() -> str:
    """A *faulted* 20-node golden payload pinning the fault layer itself.

    Same fixture as the ``fed.fig5a_chaos_short`` bench kernel: 5%
    message drops, 5% latency spikes, an even/odd half-partition over
    [800, 1200) ms, and 2 crashes/node/min, all under ``fault_seed=7``.
    Pins every per-query record *and* the per-mechanism fault counters,
    so any change to fault RNG stream order, drop/timeout accounting, or
    the backoff/degradation paths shows up as a byte diff.
    """
    world = two_query_world(num_nodes=20, seed=0)
    trace = sinusoid_trace_for_load(
        world,
        load_fraction=1.5,
        horizon_ms=2_000.0,
        frequency_hz=0.05,
        seed=10,
    )
    spec = FaultSpec(
        drop_probability=0.05,
        spike_probability=0.05,
        partitions=(
            half_partition(world.placement.node_ids, 800.0, 1_200.0),
        ),
        crash_rate_per_min=2.0,
        fault_seed=7,
    )
    payload = {}
    for mechanism, factory in (
        ("qa-nt", QantAllocator),
        ("greedy", GreedyAllocator),
        ("round-robin", RoundRobinAllocator),
    ):
        run = run_mechanism(
            world,
            trace,
            mechanism,
            factory,
            FederationConfig(seed=2, faults=spec),
        )
        metrics = run.metrics
        payload[mechanism] = {
            "completed": metrics.completed,
            "dropped": metrics.dropped,
            "messages": run.messages,
            "mean_response_ms": metrics.mean_response_ms(),
            "mean_resubmissions": metrics.mean_resubmissions(),
            "fault_summary": metrics.fault_summary(),
            "outcome_digest": _outcome_digest(metrics.outcomes),
        }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def scaling_1000node_payload() -> str:
    """The 1,000-node scaling-curve golden payload (batched dispatch).

    Same fixture as the ``fed.fig5a_1000node`` bench kernel and the
    ``scaling`` scenario's largest paper point (world seed 0, quantised
    trace seed 10, federation seed 2), horizon cut to 2 s.  Arrival
    timestamps sit on a 25 ms grid, so nearly every query reaches QA-NT
    through a multi-query market-tick batch — this pins the vectorised
    fan-out (bid matrices, argmin best-offer, bulk refusals) per query,
    per bit, at full federation scale.
    """
    world = two_query_world(num_nodes=1_000, seed=0)
    trace = quantise_trace(
        sinusoid_trace_for_load(
            world,
            load_fraction=1.5,
            horizon_ms=2_000.0,
            frequency_hz=0.05,
            seed=10,
        ),
        25.0,
    )
    payload = {}
    for mechanism, factory in (
        ("qa-nt", QantAllocator),
        ("greedy", GreedyAllocator),
    ):
        run = run_mechanism(
            world, trace, mechanism, factory, FederationConfig(seed=2)
        )
        metrics = run.metrics
        payload[mechanism] = {
            "completed": metrics.completed,
            "dropped": metrics.dropped,
            "messages": run.messages,
            "mean_response_ms": metrics.mean_response_ms(),
            "p99_response_ms": metrics.percentile_response_ms(0.99),
            "batch_summary": metrics.batch_summary(),
            "outcome_digest": _outcome_digest(metrics.outcomes),
        }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _golden(name: str) -> str:
    return (GOLDEN_DIR / name).read_text()


def test_fig4_small_seed0_matches_golden():
    """All six mechanisms on the fig4 sweep reproduce the stored trace."""
    assert _serialize("fig4") == _golden("fig4_small_seed0.json")


def test_fig5a_paper_short_matches_golden():
    """The 100-node short-horizon qa-nt/greedy pair (the PR 3 bidding-path
    optimisation target) reproduces the stored per-query digests."""
    assert paper_short_payload() == _golden("fig5a_paper_short_seed0.json")


def test_chaos_seed0_matches_golden():
    """The faulted 20-node qa-nt/greedy/round-robin triple reproduces the
    stored per-query digests and fault counters bit-for-bit."""
    assert chaos_payload() == _golden("chaos_seed0.json")


def test_scaling_1000node_matches_golden():
    """The 1,000-node batched qa-nt/greedy pair reproduces the stored
    per-query digests and batch counters bit-for-bit."""
    assert scaling_1000node_payload() == _golden(
        "scaling_1000node_seed0.json"
    )


@pytest.mark.slow
def test_ablation_rounding_small_seed0_matches_golden():
    """The supply-method ablation (exercises every solver + carry-over
    variant) reproduces the stored trace."""
    assert _serialize("ablation-rounding") == _golden(
        "ablation_rounding_small_seed0.json"
    )
