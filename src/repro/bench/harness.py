"""Microbenchmark harness: calibrated timing loops and BENCH artifacts.

The harness times registered kernels (see :mod:`repro.bench.kernels`) the
way ``timeit`` does — an inner loop calibrated so one measurement round
lasts long enough for the clock to resolve, repeated a few times, keeping
the *best* round (background noise only ever slows a run down, so the
minimum is the least-noisy estimate of the true cost).

Results serialise into a versioned ``BENCH_<label>.json`` artifact next to
the experiment artifacts under ``benchmarks/results/``, so every PR can
record a perf datapoint and the repo accumulates a trajectory of ns/op
per kernel over time.  Compare two artifacts with
:func:`compare_payloads`.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import platform
import re
import time
import tracemalloc
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

from .kernels import KERNELS, Kernel

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_BENCH_DIR",
    "Measurement",
    "measure",
    "measure_peak",
    "resolve_auto_baseline",
    "run_benchmarks",
    "bench_payload",
    "write_bench_artifact",
    "compare_payloads",
    "confirm_regressions",
    "find_regressions",
    "render_results",
]

#: Version stamp of every BENCH artifact this module writes.  v2 added the
#: optional per-kernel ``peak_kb`` field (``bench --mem``); v1 artifacts
#: are still accepted for comparison — see :data:`_SUPPORTED_SCHEMAS`.
BENCH_SCHEMA_VERSION = 2

#: Schema versions :func:`compare_payloads` can consume.  Timing fields
#: are identical across these, so committed v1 baselines stay comparable.
_SUPPORTED_SCHEMAS = frozenset({1, 2})

#: Default artifact directory (shared with the experiment JSON artifacts).
DEFAULT_BENCH_DIR = "benchmarks/results"

#: One measurement round aims to last this long (seconds); long enough to
#: swamp timer resolution, short enough that a full sweep stays pleasant.
_TARGET_ROUND_S = 0.2

#: Calibration stops doubling once a probe run exceeds this (seconds).
_CALIBRATION_FLOOR_S = 0.02


@dataclass(frozen=True)
class Measurement:
    """Timing result of one kernel."""

    name: str
    description: str
    ns_per_op: float
    repeat: int
    inner_loops: int
    #: Peak Python heap growth of one op in KiB (``bench --mem``), else None.
    peak_kb: Optional[float] = None

    @property
    def ops_per_s(self) -> float:
        """Operations per second implied by :attr:`ns_per_op`."""
        if self.ns_per_op <= 0:
            return math.inf
        return 1e9 / self.ns_per_op

    def to_dict(self) -> dict:
        """JSON-ready form."""
        payload = {
            "description": self.description,
            "ns_per_op": self.ns_per_op,
            "ops_per_s": self.ops_per_s,
            "repeat": self.repeat,
            "inner_loops": self.inner_loops,
        }
        if self.peak_kb is not None:
            payload["peak_kb"] = self.peak_kb
        return payload


def measure(
    fn: Callable[[], object],
    repeat: int = 3,
    target_round_s: float = _TARGET_ROUND_S,
    wall: bool = False,
) -> tuple:
    """Time ``fn``: returns ``(best_ns_per_op, inner_loops)``.

    The inner loop count is calibrated by doubling until one probe run
    takes at least :data:`_CALIBRATION_FLOOR_S`, then scaled so one round
    lasts about ``target_round_s``.  ``repeat`` rounds run and the best
    (minimum) per-op time wins.

    Rounds are timed with process CPU time (``time.process_time``), not
    wall clock: every kernel is single-threaded pure computation, so the
    two agree on an idle machine, but on a shared runner a neighbour's
    load phase inflates wall clock 30-60 % for minutes at a time while
    barely moving the CPU time this process actually consumed — and the
    regression gate compares against baselines captured under unknown
    load.

    ``wall=True`` switches to ``time.perf_counter`` for kernels whose
    work happens partly in *other* processes (the sharded federation):
    parent CPU time would miss everything the shard workers burn, so
    wall clock — noisier, but honest — is the only meaningful metric.
    Kernels opt in via :attr:`repro.bench.kernels.Kernel.wall_time`.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    perf_counter = time.perf_counter if wall else time.process_time
    inner = 1
    while True:
        started = perf_counter()
        for __ in range(inner):
            fn()
        elapsed = perf_counter() - started
        if elapsed >= _CALIBRATION_FLOOR_S or inner >= 1 << 20:
            break
        inner *= 2
    if elapsed < target_round_s:
        inner = max(1, int(inner * target_round_s / max(elapsed, 1e-9)))
    best = math.inf
    for __ in range(repeat):
        started = perf_counter()
        for __ in range(inner):
            fn()
        elapsed = perf_counter() - started
        per_op = elapsed / inner
        if per_op < best:
            best = per_op
    return best * 1e9, inner


def measure_peak(fn: Callable[[], object]) -> float:
    """Peak Python heap growth of one ``fn()`` call, in KiB.

    Runs *outside* the timed rounds — tracemalloc's allocation hooks slow
    Python allocation down by an order of magnitude, so mixing tracing
    into timing would corrupt ns/op.  One untraced warm-up call lets
    caches and lazy imports settle first, leaving the steady-state
    per-op footprint.

    Multi-process kernels expose a ``child_peak_kb`` attribute on the
    timed callable (a zero-argument callable returning the largest child
    worker's peak RSS in KiB); its reading is added so ``bench --mem``
    reports the whole process tree instead of silently reporting only the
    parent.  Max-over-children rather than a sum: forked workers share
    copy-on-write pages with the parent, so summing RSS would multiply
    the shared interpreter image by the worker count.
    """
    fn()
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        fn()
        __, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    total_kb = peak / 1024.0
    child_peak = getattr(fn, "child_peak_kb", None)
    if callable(child_peak):
        total_kb += float(child_peak())
    return total_kb


def run_benchmarks(
    name_filter: Optional[str] = None,
    repeat: int = 3,
    kernels: Optional[Mapping[str, Kernel]] = None,
    progress: Optional[Callable[[str], None]] = None,
    measure_mem: bool = False,
) -> Dict[str, Measurement]:
    """Run every registered kernel whose name contains ``name_filter``.

    Returns measurements keyed by kernel name, in registration order.
    Each kernel's ``setup`` runs exactly once (outside the timed region).
    ``measure_mem`` adds a traced (untimed) extra call per kernel
    recording its peak heap growth.
    """
    registry = KERNELS if kernels is None else kernels
    selected = [
        kernel
        for name, kernel in registry.items()
        if name_filter is None or name_filter in name
    ]
    if not selected:
        raise ValueError(
            "no benchmark kernel matches filter %r (have: %s)"
            % (name_filter, ", ".join(registry))
        )
    results: Dict[str, Measurement] = {}
    for kernel in selected:
        if progress is not None:
            progress(kernel.name)
        fn = kernel.setup()
        ns_per_op, inner = measure(fn, repeat=repeat, wall=kernel.wall_time)
        peak_kb = measure_peak(fn) if measure_mem else None
        results[kernel.name] = Measurement(
            name=kernel.name,
            description=kernel.description,
            ns_per_op=ns_per_op,
            repeat=repeat,
            inner_loops=inner,
            peak_kb=peak_kb,
        )
    return results


def _environment() -> dict:
    """The machine/runtime fingerprint stored with every artifact."""
    return {
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def bench_payload(
    results: Mapping[str, Measurement], label: str = "local"
) -> dict:
    """Versioned, JSON-ready artifact payload for ``results``."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "bench",
        "label": label,
        "created_unix": time.time(),
        "environment": _environment(),
        "kernels": {
            name: measurement.to_dict()
            for name, measurement in results.items()
        },
    }


def _check_label(label: str) -> None:
    if not label or "/" in label or "\\" in label or label in (".", ".."):
        raise ValueError(
            "label must be a plain file-name fragment, got %r" % label
        )


def write_bench_artifact(
    payload: Mapping,
    label: str = "local",
    directory: str = DEFAULT_BENCH_DIR,
) -> pathlib.Path:
    """Write ``payload`` as ``<directory>/BENCH_<label>.json``."""
    _check_label(label)
    target = pathlib.Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = target / ("BENCH_%s.json" % label)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def compare_payloads(before: Mapping, after: Mapping) -> Dict[str, float]:
    """Per-kernel speedup factors ``before_ns / after_ns`` (> 1 = faster).

    Only kernels present in both artifacts are compared; schema versions
    must match.
    """
    for payload in (before, after):
        if payload.get("schema_version") not in _SUPPORTED_SCHEMAS:
            raise ValueError(
                "unsupported schema version %r" % payload.get("schema_version")
            )
        if payload.get("kind") != "bench":
            raise ValueError("not a bench payload: kind=%r" % payload.get("kind"))
    speedups = {}
    after_kernels = after["kernels"]
    for name, entry in before["kernels"].items():
        other = after_kernels.get(name)
        if other is None or not other.get("ns_per_op"):
            continue
        speedups[name] = entry["ns_per_op"] / other["ns_per_op"]
    return speedups


def find_regressions(
    baseline: Mapping,
    results: Mapping[str, Measurement],
    threshold_pct: float,
    normalize_common: bool = False,
) -> Dict[str, float]:
    """Kernels slower than ``baseline`` by more than ``threshold_pct``.

    Returns ``{kernel: regression_pct}`` where the regression percentage
    is ``(after_ns / before_ns - 1) * 100`` — e.g. 50.0 means the kernel
    now takes 1.5x its baseline time.  Kernels missing from either side
    are ignored (new kernels have no baseline to regress against).  This
    backs ``repro bench --baseline ... --fail-above PCT``, the CI gate
    that keeps the hot paths from quietly decaying.

    ``normalize_common`` divides every kernel's slowdown by the suite's
    *median* slowdown (clamped to >= 1, so a faster-than-baseline machine
    is never penalised) before applying the threshold.  Shared runners
    drift through host phases — frequency scaling, hypervisor steal —
    where every kernel reads 30-60 % slow against a baseline captured
    under different conditions; a code regression hits *one* kernel's
    relative position, a machine phase hits all of them.  Normalisation
    needs at least three compared kernels to estimate the common mode and
    silently falls back to absolute comparison below that.
    """
    if threshold_pct < 0:
        raise ValueError("threshold must be non-negative")
    speedups = compare_payloads(
        baseline, bench_payload(results, label="current")
    )
    ratios = {name: 1.0 / speedup for name, speedup in speedups.items()}
    common = 1.0
    if normalize_common and len(ratios) >= 3:
        ordered = sorted(ratios.values())
        mid = len(ordered) // 2
        median = (
            ordered[mid]
            if len(ordered) % 2
            else (ordered[mid - 1] + ordered[mid]) / 2.0
        )
        common = max(1.0, median)
    regressions = {}
    for name, ratio in ratios.items():
        regression_pct = (ratio / common - 1.0) * 100.0
        if regression_pct > threshold_pct:
            regressions[name] = regression_pct
    return regressions


def confirm_regressions(
    baseline: Mapping,
    results: Dict[str, Measurement],
    threshold_pct: float,
    kernels: Optional[Mapping[str, Kernel]] = None,
    repeat: int = 1,
    rounds: int = 2,
    normalize_common: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, float]:
    """Re-measure regressed kernels and keep only persistent regressions.

    Two noise defences on top of :func:`find_regressions`, for gating on
    shared machines whose effective speed drifts 30-60 % in phases:
    common-mode normalisation (``normalize_common``, see
    :func:`find_regressions`) absorbs suite-wide slowdowns, and each
    kernel still flagged is re-run up to ``rounds`` more times, its best
    time merged back into ``results`` (in place, so the reported table
    and artifact reflect the confirmed numbers).  Only kernels over the
    threshold through every round are returned — a *real* regression
    reproduces on every re-measure.
    """
    registry = KERNELS if kernels is None else kernels
    regressions = find_regressions(
        baseline, results, threshold_pct, normalize_common=normalize_common
    )
    for __ in range(rounds):
        retry = {
            name: registry[name]
            for name in regressions
            if name in registry
        }
        if not retry:
            break
        if progress is not None:
            progress(
                "re-measuring %d regressed kernel(s) to rule out "
                "machine noise: %s" % (len(retry), ", ".join(retry))
            )
        remeasured = run_benchmarks(kernels=retry, repeat=repeat)
        for name, measurement in remeasured.items():
            if measurement.ns_per_op < results[name].ns_per_op:
                results[name] = measurement
        regressions = {
            name: pct
            for name, pct in find_regressions(
                baseline,
                results,
                threshold_pct,
                normalize_common=normalize_common,
            ).items()
            if name in regressions
        }
    return regressions


def render_results(
    results: Mapping[str, Measurement],
    baseline: Optional[Mapping] = None,
) -> str:
    """Aligned text table of measurements (with optional baseline column).

    A ``peak KiB`` column appears when any measurement carries a memory
    reading (``bench --mem``).
    """
    headers = ["kernel", "ns/op", "ops/s"]
    with_mem = any(m.peak_kb is not None for m in results.values())
    if with_mem:
        headers.append("peak KiB")
    speedups: Mapping[str, float] = {}
    if baseline is not None:
        headers.append("vs baseline")
        speedups = compare_payloads(
            baseline, bench_payload(results, label="current")
        )
    rows = []
    for name, measurement in results.items():
        row = [
            name,
            _format_ns(measurement.ns_per_op),
            _format_ops(measurement.ops_per_s),
        ]
        if with_mem:
            peak = measurement.peak_kb
            row.append("{:,.1f}".format(peak) if peak is not None else "-")
        if baseline is not None:
            factor = speedups.get(name)
            row.append("%.2fx" % factor if factor is not None else "-")
        rows.append(row)
    widths = [
        max(len(str(headers[col])), *(len(str(r[col])) for r in rows))
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)).rstrip()
    ]
    for row in rows:
        lines.append(
            "  ".join(str(c).ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def _format_ns(value: float) -> str:
    if value >= 1e6:
        return "{:,.0f}".format(value)
    if value >= 1000:
        return "{:,.1f}".format(value)
    return "%.1f" % value


def _format_ops(value: float) -> str:
    if value >= 1000:
        return "{:,.0f}".format(value)
    return "%.1f" % value


def load_baseline(path: str) -> dict:
    """Read a previously written BENCH artifact for comparison."""
    return json.loads(pathlib.Path(path).read_text())


#: Committed per-PR baselines live at the repo root as ``BENCH_pr<N>.json``.
_PR_BASELINE_RE = re.compile(r"^BENCH_pr(\d+)\.json$")


def resolve_auto_baseline(directory: str = ".") -> pathlib.Path:
    """The newest committed ``BENCH_pr<N>.json`` under ``directory``.

    "Newest" means the highest PR number ``N``, not the file mtime — a
    fresh checkout gives every file the same timestamp.  This backs
    ``repro bench --baseline auto``, which spares callers from knowing
    which PR last published a baseline (and from the ``--out`` default
    ``benchmarks/results`` vs. root-level committed baselines mix-up).
    Raises ``ValueError`` when the directory holds no such file.
    """
    best: Optional[pathlib.Path] = None
    best_number = -1
    for path in pathlib.Path(directory).iterdir():
        match = _PR_BASELINE_RE.match(path.name)
        if match and int(match.group(1)) > best_number:
            best_number = int(match.group(1))
            best = path
    if best is None:
        raise ValueError(
            "no committed BENCH_pr<N>.json baseline found in %r" % directory
        )
    return best


__all__.append("load_baseline")
