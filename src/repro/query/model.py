"""Query classes, query instances, and class generation (paper Section 2.1).

The workload consists of read-only select-join-project-sort (SJPS) queries.
Queries are grouped into disjoint *classes* (templates): queries of the same
class differ only in selection constants, use similar resources, and have
similar estimated cost on any given node (though different nodes may cost
them differently).  QA-NT treats classes as the traded commodities.

A :class:`QueryClass` records which relations a template touches; the
candidate servers of a class are the nodes holding all of them
(:meth:`repro.catalog.Placement.holders`).  :class:`Query` is one runtime
instance flowing through the simulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..catalog import Catalog, Placement

__all__ = [
    "QueryClass",
    "Query",
    "QueryClassParameters",
    "generate_query_classes",
]


@dataclass(frozen=True)
class QueryClass:
    """A template family of SJPS queries (one traded commodity).

    ``selectivity`` is the fraction of the dominant input surviving each
    join (and the final selection); ``requires_sort`` adds a final sort for
    the ORDER BY the paper's "…-sort" queries carry.
    """

    index: int
    relation_ids: Tuple[int, ...]
    selectivity: float = 0.5
    requires_sort: bool = True

    def __post_init__(self) -> None:
        if not self.relation_ids:
            raise ValueError("a query class must touch at least one relation")
        if len(set(self.relation_ids)) != len(self.relation_ids):
            raise ValueError("a query class cannot repeat a relation")
        if not 0 < self.selectivity <= 1:
            raise ValueError("selectivity must be in (0, 1]")

    @property
    def num_joins(self) -> int:
        """Number of joins (relations minus one)."""
        return len(self.relation_ids) - 1

    def candidate_nodes(self, placement: Placement) -> FrozenSet[int]:
        """Nodes that hold every relation this class touches."""
        return placement.holders(self.relation_ids)


@dataclass
class Query:
    """One runtime query instance travelling through the system."""

    qid: int
    class_index: int
    origin_node: int
    arrival_ms: float
    #: Times the query was refused by every server and resubmitted.
    resubmissions: int = 0
    #: When the allocator committed the query to a node (set by the
    #: federation; None until assigned).
    assigned_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.arrival_ms < 0:
            raise ValueError("arrival time must be non-negative")


@dataclass(frozen=True)
class QueryClassParameters:
    """Knobs of query-class generation (defaults = paper Table 3)."""

    num_classes: int = 100
    min_joins: int = 0
    max_joins: int = 49
    min_selectivity: float = 0.05
    max_selectivity: float = 0.8
    sort_probability: float = 0.8
    #: Minimum number of nodes able to evaluate a class.  With fewer than
    #: two candidates there is no allocation decision to make, so classes
    #: below this are regenerated; mirrored placement (≈5 copies per
    #: relation, Table 3) makes multi-candidate classes the norm.
    min_candidates: int = 2
    #: Preferred number of candidate nodes per class (matches the ≈5
    #: mirrors of Table 3; achieved when placement overlap allows).
    target_candidates: int = 4
    #: Classes whose relation sets no node fully holds are regenerated up
    #: to this many times before giving up.
    max_attempts_per_class: int = 50

    def __post_init__(self) -> None:
        if self.num_classes <= 0:
            raise ValueError("need at least one query class")
        if not 0 <= self.min_joins <= self.max_joins:
            raise ValueError("invalid join range")
        if not 0 < self.min_selectivity <= self.max_selectivity <= 1:
            raise ValueError("invalid selectivity range")


def generate_query_classes(
    catalog: Catalog,
    placement: Placement,
    params: Optional[QueryClassParameters] = None,
    seed: int = 0,
) -> List[QueryClass]:
    """Generate query classes whose relations are co-located somewhere.

    Each class is built by picking a random node and sampling the class's
    relations from that node's local holdings, which guarantees at least
    one candidate server; mirrored bundles then provide several more.  Join
    counts are sampled uniformly from ``[min_joins, max_joins]`` but capped
    by the chosen node's holdings.
    """
    params = params or QueryClassParameters()
    rng = random.Random(seed)
    node_ids = placement.node_ids
    classes: List[QueryClass] = []
    for index in range(params.num_classes):
        query_class = _generate_one_class(
            index, placement, node_ids, params, rng
        )
        classes.append(query_class)
    return classes


def _generate_one_class(
    index: int,
    placement: Placement,
    node_ids: Sequence[int],
    params: QueryClassParameters,
    rng: random.Random,
) -> QueryClass:
    """Sample a class whose relations are co-located on several mirrors.

    The relations are drawn from the *intersection* of a small set of
    peer nodes' holdings (seeded by the mirrors of one of the home node's
    relations), so the class is evaluable by all those peers.  When the
    intersection is too small for the desired join count, peers are
    dropped until either the relations fit or the candidate floor would
    be violated (in which case the join count shrinks instead).
    """
    last_error: Optional[str] = None
    for __ in range(params.max_attempts_per_class):
        home = rng.choice(list(node_ids))
        local = sorted(placement.relations_of(home))
        if not local:
            last_error = "node %d holds no relations" % home
            continue
        seed_relation = rng.choice(local)
        mirrors = [n for n in placement.mirrors_of(seed_relation) if n != home]
        rng.shuffle(mirrors)
        peers = [home] + mirrors[: max(0, params.target_candidates - 1)]

        joins = rng.randint(params.min_joins, params.max_joins)
        relation_ids = _sample_colocated(
            placement, peers, joins + 1, params.min_candidates, rng
        )
        if relation_ids is None:
            last_error = "no co-located relation set found"
            continue
        holders = placement.holders(relation_ids)
        if len(holders) < params.min_candidates and len(node_ids) > 1:
            last_error = "only %d holder(s) for sampled relations" % len(holders)
            continue
        return QueryClass(
            index=index,
            relation_ids=relation_ids,
            selectivity=rng.uniform(
                params.min_selectivity, params.max_selectivity
            ),
            requires_sort=rng.random() < params.sort_probability,
        )
    raise RuntimeError(
        "could not generate query class %d: %s" % (index, last_error)
    )


def _sample_colocated(
    placement: Placement,
    peers: List[int],
    num_relations: int,
    min_candidates: int,
    rng: random.Random,
) -> Optional[Tuple[int, ...]]:
    """Relations common to as many of ``peers`` as possible.

    Starts from all peers' intersection and drops trailing peers while
    the pool is too small for ``num_relations``; never drops below
    ``min_candidates`` peers — the join count shrinks instead.
    """
    active = list(peers)
    while True:
        pool = set(placement.relations_of(active[0]))
        for node in active[1:]:
            pool &= placement.relations_of(node)
        if len(pool) >= num_relations or len(active) <= max(1, min_candidates):
            break
        active.pop()
    if not pool:
        return None
    count = min(num_relations, len(pool))
    return tuple(sorted(rng.sample(sorted(pool), count)))
