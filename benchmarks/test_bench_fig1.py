"""Bench E1 — regenerate Figure 1 (the introduction's worked example).

Paper numbers: LB averages 662 ms per query and keeps the nodes busy
until 900/950 ms; the QA allocation averages 431 ms and frees N1 at
600 ms; LB is 54 % slower.
"""

import pytest

from repro.experiments.fig1 import run_fig1


def test_bench_fig1(benchmark, save_result):
    result = benchmark.pedantic(run_fig1, rounds=3, iterations=1)
    save_result("fig1", result.render())
    assert result.lb_mean_response_ms == pytest.approx(662.5)
    assert result.qa_mean_response_ms == pytest.approx(431.25)
    assert result.qa_dominates_lb and result.qa_is_pareto_optimal
