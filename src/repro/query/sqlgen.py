"""SQL text generation for query-class instances.

Query classes are *templates*: queries of one class share structure and
differ only in selection constants (paper Section 2.1).  This module
renders a class into executable SQL — a select-join-project-sort statement
over the synthetic schema — used by the SQLite substrate
(:mod:`repro.dbms`) and by examples.  The canonical physical schema gives
every relation the columns ``key`` (join column), ``val`` (selection
column) and ``payload_0..n`` (projection filler).
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..catalog import Relation
from .model import Query, QueryClass

__all__ = [
    "table_name",
    "create_table_sql",
    "insert_rows_sql",
    "render_query_sql",
    "plan_signature",
]


def table_name(rid: int) -> str:
    """Canonical physical table name for relation ``rid``."""
    return "rel_%04d" % rid


def create_table_sql(relation: Relation) -> str:
    """DDL for one relation under the canonical physical schema."""
    payload_cols = ", ".join(
        "payload_%d INTEGER" % i
        for i in range(max(0, relation.num_attributes - 2))
    )
    columns = "key INTEGER, val INTEGER"
    if payload_cols:
        columns += ", " + payload_cols
    return "CREATE TABLE %s (%s)" % (table_name(relation.rid), columns)


def insert_rows_sql(relation: Relation, num_rows: int) -> str:
    """A parameterless bulk INSERT building ``num_rows`` synthetic rows.

    Rows are generated with SQLite-compatible recursive CTE arithmetic so
    loading needs no Python-side row materialisation.  ``key`` cycles over
    a small domain (making joins selective but non-empty) and ``val`` is
    uniform over [0, 1000).
    """
    if num_rows <= 0:
        raise ValueError("num_rows must be positive")
    payload_exprs = ", ".join(
        "(n * %d) %% 997" % (i + 3)
        for i in range(max(0, relation.num_attributes - 2))
    )
    select = "n % 1000, (n * 7) % 1000"
    if payload_exprs:
        select += ", " + payload_exprs
    return (
        "INSERT INTO %s "
        "WITH RECURSIVE seq(n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM seq "
        "WHERE n < %d) SELECT %s FROM seq"
        % (table_name(relation.rid), num_rows, select)
    )


def render_query_sql(
    query_class: QueryClass,
    constant: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> str:
    """Render one instance of ``query_class`` as a SJPS SQL statement.

    The instance's selection ``constant`` is the only varying part — the
    defining property of a query template.  When omitted, it is drawn from
    ``rng`` (or a fresh generator) to mimic real clients.
    """
    if constant is None:
        constant = (rng or random.Random()).randrange(0, 1000)
    rids = query_class.relation_ids
    tables = [table_name(rid) for rid in rids]
    aliases = ["t%d" % i for i in range(len(tables))]
    from_clause = ", ".join(
        "%s AS %s" % (tbl, alias) for tbl, alias in zip(tables, aliases)
    )
    predicates: List[str] = [
        "%s.key = %s.key" % (aliases[i], aliases[i + 1])
        for i in range(len(aliases) - 1)
    ]
    threshold = max(1, int(1000 * query_class.selectivity))
    predicates.append(
        "%s.val < %d" % (aliases[0], (constant % threshold) + threshold)
    )
    sql = "SELECT %s.key, %s.val FROM %s WHERE %s" % (
        aliases[0],
        aliases[0],
        from_clause,
        " AND ".join(predicates),
    )
    if query_class.requires_sort:
        sql += " ORDER BY %s.val" % aliases[0]
    return sql


def plan_signature(query_class: QueryClass) -> str:
    """A stable signature identifying the class's execution plan shape.

    The paper's real implementation estimated costs from "past execution
    information concerning queries with the same plan"; the signature is
    the grouping key for that history (constants excluded by design).
    """
    return "sjps:%s:sort=%d" % (
        ",".join(str(rid) for rid in query_class.relation_ids),
        int(query_class.requires_sort),
    )
