"""Equitable allocation — the paper's first future-work item (Section 6).

The paper's conclusion proposes extending QA-NT with "the constraint of
equitable allocation, in which the utility (satisfaction) of all nodes is
equalized".  This module implements that extension for the consumption
side of the market: given the aggregate supply the sellers produced,
distribute it to consuming nodes by *progressive filling* (max-min
fairness) instead of first-come-first-served.

Progressive filling repeatedly grants one more query to a node with the
currently lowest utility that still has unmet demand, so at termination
no node's utility can be raised without lowering that of a node that is
already weakly worse off — the classic max-min fair point.  Because every
unit of supply that some node demands is eventually handed out, the
result remains Pareto optimal under throughput preferences; fairness only
picks *which* Pareto-optimal allocation the market settles on (this is
the Second Welfare Theorem remark of Section 3.3 in action).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .pareto import Allocation
from .preferences import PreferenceRelation, ThroughputPreference
from .vectors import QueryVector, aggregate

__all__ = [
    "equitable_consumptions",
    "equitable_allocation",
    "utility_spread",
    "jain_fairness_index",
]


def equitable_consumptions(
    supply: QueryVector,
    demands: Sequence[QueryVector],
    preferences: Optional[Sequence[PreferenceRelation]] = None,
) -> List[QueryVector]:
    """Distribute ``supply`` to consumers by progressive filling.

    Each round, the node with the lowest current utility (among nodes
    with unmet demand that the remaining supply can serve) receives one
    query of its scarcest demanded class.  Ties break towards the lower
    node index, making the result deterministic.
    """
    num_nodes = len(demands)
    if num_nodes == 0:
        raise ValueError("need at least one consuming node")
    num_classes = supply.num_classes
    if any(d.num_classes != num_classes for d in demands):
        raise ValueError("demand vectors cover a different number of classes")
    if preferences is None:
        shared = ThroughputPreference()
        prefs: Sequence[PreferenceRelation] = [shared] * num_nodes
    elif len(preferences) != num_nodes:
        raise ValueError("need exactly one preference per node")
    else:
        prefs = preferences

    remaining_supply = list(supply.components)
    consumed = [[0.0] * num_classes for __ in range(num_nodes)]
    unmet = [list(d.components) for d in demands]

    while True:
        grant = _next_grant(remaining_supply, unmet, consumed, prefs)
        if grant is None:
            break
        node, class_index = grant
        consumed[node][class_index] += 1.0
        unmet[node][class_index] -= 1.0
        remaining_supply[class_index] -= 1.0
    return [QueryVector(c) for c in consumed]


def _next_grant(
    remaining_supply: List[float],
    unmet: List[List[float]],
    consumed: List[List[float]],
    prefs: Sequence[PreferenceRelation],
) -> Optional[Tuple[int, int]]:
    """The (node, class) receiving the next unit, or None when done."""
    best: Optional[Tuple[float, int, int]] = None
    for node, node_unmet in enumerate(unmet):
        servable = [
            k
            for k, want in enumerate(node_unmet)
            if want >= 1.0 and remaining_supply[k] >= 1.0
        ]
        if not servable:
            continue
        utility = prefs[node].utility(QueryVector(consumed[node]))
        # Scarcest class first: least remaining aggregate supply.
        class_index = min(servable, key=lambda k: (remaining_supply[k], k))
        key = (utility, node, class_index)
        if best is None or key < best:
            best = key
    if best is None:
        return None
    return best[1], best[2]


def equitable_allocation(
    supplies: Sequence[QueryVector],
    demands: Sequence[QueryVector],
    preferences: Optional[Sequence[PreferenceRelation]] = None,
) -> Allocation:
    """An :class:`Allocation` whose consumptions are max-min fair.

    Suppliers and consumers need not be the same nodes: the shorter of
    the two lists is padded with zero vectors so the allocation covers
    every participating node (a pure client supplies nothing; a pure
    server consumes nothing).
    """
    consumptions = equitable_consumptions(
        aggregate(supplies), demands, preferences
    )
    num_classes = consumptions[0].num_classes
    padded_supplies = list(supplies)
    padded_consumptions = list(consumptions)
    while len(padded_supplies) < len(padded_consumptions):
        padded_supplies.append(QueryVector.zeros(num_classes))
    while len(padded_consumptions) < len(padded_supplies):
        padded_consumptions.append(QueryVector.zeros(num_classes))
    return Allocation(
        supplies=tuple(padded_supplies),
        consumptions=tuple(padded_consumptions),
    )


def utility_spread(
    allocation: Allocation,
    preferences: Optional[Sequence[PreferenceRelation]] = None,
) -> float:
    """Max minus min node utility — zero means perfectly equalised."""
    if preferences is None:
        shared = ThroughputPreference()
        preferences = [shared] * allocation.num_nodes
    utilities = [
        pref.utility(consumption)
        for pref, consumption in zip(preferences, allocation.consumptions)
    ]
    return max(utilities) - min(utilities)


def jain_fairness_index(
    allocation: Allocation,
    preferences: Optional[Sequence[PreferenceRelation]] = None,
) -> float:
    """Jain's fairness index over node utilities (1.0 = perfectly fair).

    ``J = (sum u_i)^2 / (n * sum u_i^2)``; ranges from ``1/n`` (one node
    gets everything) to 1 (all equal).  An all-zero allocation is vacuously
    fair.
    """
    if preferences is None:
        shared = ThroughputPreference()
        preferences = [shared] * allocation.num_nodes
    utilities = [
        pref.utility(consumption)
        for pref, consumption in zip(preferences, allocation.consumptions)
    ]
    total = sum(utilities)
    squares = sum(u * u for u in utilities)
    if squares == 0:
        return 1.0
    return (total * total) / (len(utilities) * squares)
