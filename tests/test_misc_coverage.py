"""Miscellaneous coverage: smaller public APIs exercised end to end."""

import math

import pytest

from repro.core import (
    CapacitySupplySet,
    PriceVector,
    QantParameters,
    QueryVector,
    ftwe_allocation,
)
from repro.dbms import DbmsQueryOutcome, DbmsRunResult
from repro.experiments.fig7 import Fig7Result
from repro.experiments.table2 import Table2Result, Table2Row
from repro.query import MachineSpec
from repro.sim import LatencyModel, Simulator
from repro.sim.network import Network


class TestDbmsResultTypes:
    def outcome(self, total_s=1.0):
        return DbmsQueryOutcome(
            qid=0,
            class_index=0,
            node_id=1,
            arrival_s=10.0,
            assigned_s=10.1,
            finished_s=10.0 + total_s,
        )

    def test_outcome_times(self):
        outcome = self.outcome()
        assert outcome.assign_ms == pytest.approx(100.0)
        assert outcome.total_ms == pytest.approx(1000.0)

    def test_run_result_means(self):
        run = DbmsRunResult(mechanism="greedy")
        run.outcomes.append(self.outcome(1.0))
        run.outcomes.append(self.outcome(3.0))
        assert run.mean_total_ms == pytest.approx(2000.0)
        assert run.mean_assign_ms == pytest.approx(100.0)

    def test_empty_run_result_is_nan(self):
        run = DbmsRunResult(mechanism="qa-nt")
        assert math.isnan(run.mean_total_ms)
        assert math.isnan(run.mean_assign_ms)


class TestFig7Result:
    def make(self, greedy_total, qant_total):
        def run(mechanism, total_s):
            result = DbmsRunResult(mechanism=mechanism)
            result.outcomes.append(
                DbmsQueryOutcome(
                    qid=0,
                    class_index=0,
                    node_id=0,
                    arrival_s=0.0,
                    assigned_s=0.01,
                    finished_s=total_s,
                )
            )
            return result

        return Fig7Result(
            runs={
                ("greedy", 30.0): run("greedy", greedy_total),
                ("qa-nt", 30.0): run("qa-nt", qant_total),
            }
        )

    def test_qant_beats_greedy(self):
        assert self.make(2.0, 1.0).qant_beats_greedy(30.0)
        assert not self.make(1.0, 2.0).qant_beats_greedy(30.0)

    def test_render_lists_all_runs(self):
        text = self.make(2.0, 1.0).render()
        assert "greedy" in text and "qa-nt" in text


class TestTable2Result:
    def test_row_lookup(self):
        row = Table2Row(
            mechanism="qa-nt",
            distributed=True,
            workload_type="dynamic",
            conflicts_with_dqo=False,
            respects_autonomy=True,
            performance="very good",
        )
        table = Table2Result(rows=[row], fig4=None)
        assert table.row("qa-nt") is row
        with pytest.raises(KeyError):
            table.row("nope")


class TestFtweAllocationDistribution:
    def test_greedy_distribution_respects_demand(self):
        supply_sets = [CapacitySupplySet([100.0, 100.0], 400.0)]
        demands = [QueryVector([1, 0]), QueryVector([3, 0])]
        allocation = ftwe_allocation(
            demands, supply_sets, PriceVector([1.0, 0.0])
        )
        assert allocation.respects_demand(demands)
        # All four supplied class-0 queries are consumed somewhere.
        assert allocation.aggregate_consumption()[0] == 4.0


class TestNetworkDeterminism:
    def test_same_seed_same_latency_sequence(self):
        a = Network(Simulator(), LatencyModel(1.0, 2.0), seed=5)
        b = Network(Simulator(), LatencyModel(1.0, 2.0), seed=5)
        assert [a.round_trip_ms(2) for __ in range(5)] == [
            b.round_trip_ms(2) for __ in range(5)
        ]


class TestQantParameterDefaults:
    def test_defaults_are_the_documented_engineering_choices(self):
        params = QantParameters()
        assert params.supply_method == "proportional"
        assert params.carry_over is True
        assert params.adjustment == pytest.approx(0.1)

    def test_machine_spec_reference_values(self):
        spec = MachineSpec()
        assert spec.cpu_ghz == pytest.approx(2.3)
        assert spec.io_mbps == pytest.approx(42.5)


class TestCliAblationEntries:
    def test_fast_ablation_experiments_render(self):
        # The lambda ablation is the fastest registry entry that touches
        # real simulation; run it end to end through the CLI registry.
        from repro.cli import EXPERIMENTS

        result = EXPERIMENTS["ablation-lambda"]("small", 0)
        assert "lambda" in result.render()
