"""Microbenchmark harness: calibrated timing loops and BENCH artifacts.

The harness times registered kernels (see :mod:`repro.bench.kernels`) the
way ``timeit`` does — an inner loop calibrated so one measurement round
lasts long enough for the clock to resolve, repeated a few times, keeping
the *best* round (background noise only ever slows a run down, so the
minimum is the least-noisy estimate of the true cost).

Results serialise into a versioned ``BENCH_<label>.json`` artifact next to
the experiment artifacts under ``benchmarks/results/``, so every PR can
record a perf datapoint and the repo accumulates a trajectory of ns/op
per kernel over time.  Compare two artifacts with
:func:`compare_payloads`.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import platform
import time
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

from .kernels import KERNELS, Kernel

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_BENCH_DIR",
    "Measurement",
    "measure",
    "run_benchmarks",
    "bench_payload",
    "write_bench_artifact",
    "compare_payloads",
    "find_regressions",
    "render_results",
]

#: Version stamp of every BENCH artifact this module writes.
BENCH_SCHEMA_VERSION = 1

#: Default artifact directory (shared with the experiment JSON artifacts).
DEFAULT_BENCH_DIR = "benchmarks/results"

#: One measurement round aims to last this long (seconds); long enough to
#: swamp timer resolution, short enough that a full sweep stays pleasant.
_TARGET_ROUND_S = 0.2

#: Calibration stops doubling once a probe run exceeds this (seconds).
_CALIBRATION_FLOOR_S = 0.02


@dataclass(frozen=True)
class Measurement:
    """Timing result of one kernel."""

    name: str
    description: str
    ns_per_op: float
    repeat: int
    inner_loops: int

    @property
    def ops_per_s(self) -> float:
        """Operations per second implied by :attr:`ns_per_op`."""
        if self.ns_per_op <= 0:
            return math.inf
        return 1e9 / self.ns_per_op

    def to_dict(self) -> dict:
        """JSON-ready form."""
        return {
            "description": self.description,
            "ns_per_op": self.ns_per_op,
            "ops_per_s": self.ops_per_s,
            "repeat": self.repeat,
            "inner_loops": self.inner_loops,
        }


def measure(
    fn: Callable[[], object],
    repeat: int = 3,
    target_round_s: float = _TARGET_ROUND_S,
) -> tuple:
    """Time ``fn``: returns ``(best_ns_per_op, inner_loops)``.

    The inner loop count is calibrated by doubling until one probe run
    takes at least :data:`_CALIBRATION_FLOOR_S`, then scaled so one round
    lasts about ``target_round_s``.  ``repeat`` rounds run and the best
    (minimum) per-op time wins.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    perf_counter = time.perf_counter
    inner = 1
    while True:
        started = perf_counter()
        for __ in range(inner):
            fn()
        elapsed = perf_counter() - started
        if elapsed >= _CALIBRATION_FLOOR_S or inner >= 1 << 20:
            break
        inner *= 2
    if elapsed < target_round_s:
        inner = max(1, int(inner * target_round_s / max(elapsed, 1e-9)))
    best = math.inf
    for __ in range(repeat):
        started = perf_counter()
        for __ in range(inner):
            fn()
        elapsed = perf_counter() - started
        per_op = elapsed / inner
        if per_op < best:
            best = per_op
    return best * 1e9, inner


def run_benchmarks(
    name_filter: Optional[str] = None,
    repeat: int = 3,
    kernels: Optional[Mapping[str, Kernel]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Measurement]:
    """Run every registered kernel whose name contains ``name_filter``.

    Returns measurements keyed by kernel name, in registration order.
    Each kernel's ``setup`` runs exactly once (outside the timed region).
    """
    registry = KERNELS if kernels is None else kernels
    selected = [
        kernel
        for name, kernel in registry.items()
        if name_filter is None or name_filter in name
    ]
    if not selected:
        raise ValueError(
            "no benchmark kernel matches filter %r (have: %s)"
            % (name_filter, ", ".join(registry))
        )
    results: Dict[str, Measurement] = {}
    for kernel in selected:
        if progress is not None:
            progress(kernel.name)
        fn = kernel.setup()
        ns_per_op, inner = measure(fn, repeat=repeat)
        results[kernel.name] = Measurement(
            name=kernel.name,
            description=kernel.description,
            ns_per_op=ns_per_op,
            repeat=repeat,
            inner_loops=inner,
        )
    return results


def _environment() -> dict:
    """The machine/runtime fingerprint stored with every artifact."""
    return {
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def bench_payload(
    results: Mapping[str, Measurement], label: str = "local"
) -> dict:
    """Versioned, JSON-ready artifact payload for ``results``."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "bench",
        "label": label,
        "created_unix": time.time(),
        "environment": _environment(),
        "kernels": {
            name: measurement.to_dict()
            for name, measurement in results.items()
        },
    }


def _check_label(label: str) -> None:
    if not label or "/" in label or "\\" in label or label in (".", ".."):
        raise ValueError(
            "label must be a plain file-name fragment, got %r" % label
        )


def write_bench_artifact(
    payload: Mapping,
    label: str = "local",
    directory: str = DEFAULT_BENCH_DIR,
) -> pathlib.Path:
    """Write ``payload`` as ``<directory>/BENCH_<label>.json``."""
    _check_label(label)
    target = pathlib.Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = target / ("BENCH_%s.json" % label)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def compare_payloads(before: Mapping, after: Mapping) -> Dict[str, float]:
    """Per-kernel speedup factors ``before_ns / after_ns`` (> 1 = faster).

    Only kernels present in both artifacts are compared; schema versions
    must match.
    """
    for payload in (before, after):
        if payload.get("schema_version") != BENCH_SCHEMA_VERSION:
            raise ValueError(
                "unsupported schema version %r" % payload.get("schema_version")
            )
        if payload.get("kind") != "bench":
            raise ValueError("not a bench payload: kind=%r" % payload.get("kind"))
    speedups = {}
    after_kernels = after["kernels"]
    for name, entry in before["kernels"].items():
        other = after_kernels.get(name)
        if other is None or not other.get("ns_per_op"):
            continue
        speedups[name] = entry["ns_per_op"] / other["ns_per_op"]
    return speedups


def find_regressions(
    baseline: Mapping,
    results: Mapping[str, Measurement],
    threshold_pct: float,
) -> Dict[str, float]:
    """Kernels slower than ``baseline`` by more than ``threshold_pct``.

    Returns ``{kernel: regression_pct}`` where the regression percentage
    is ``(after_ns / before_ns - 1) * 100`` — e.g. 50.0 means the kernel
    now takes 1.5x its baseline time.  Kernels missing from either side
    are ignored (new kernels have no baseline to regress against).  This
    backs ``repro bench --baseline ... --fail-above PCT``, the CI gate
    that keeps the hot paths from quietly decaying.
    """
    if threshold_pct < 0:
        raise ValueError("threshold must be non-negative")
    speedups = compare_payloads(
        baseline, bench_payload(results, label="current")
    )
    regressions = {}
    for name, speedup in speedups.items():
        regression_pct = (1.0 / speedup - 1.0) * 100.0
        if regression_pct > threshold_pct:
            regressions[name] = regression_pct
    return regressions


def render_results(
    results: Mapping[str, Measurement],
    baseline: Optional[Mapping] = None,
) -> str:
    """Aligned text table of measurements (with optional baseline column)."""
    headers = ["kernel", "ns/op", "ops/s"]
    speedups: Mapping[str, float] = {}
    if baseline is not None:
        headers.append("vs baseline")
        speedups = compare_payloads(
            baseline, bench_payload(results, label="current")
        )
    rows = []
    for name, measurement in results.items():
        row = [
            name,
            _format_ns(measurement.ns_per_op),
            _format_ops(measurement.ops_per_s),
        ]
        if baseline is not None:
            factor = speedups.get(name)
            row.append("%.2fx" % factor if factor is not None else "-")
        rows.append(row)
    widths = [
        max(len(str(headers[col])), *(len(str(r[col])) for r in rows))
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)).rstrip()
    ]
    for row in rows:
        lines.append(
            "  ".join(str(c).ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def _format_ns(value: float) -> str:
    if value >= 1e6:
        return "{:,.0f}".format(value)
    if value >= 1000:
        return "{:,.1f}".format(value)
    return "%.1f" % value


def _format_ops(value: float) -> str:
    if value >= 1000:
        return "{:,.0f}".format(value)
    return "%.1f" % value


def load_baseline(path: str) -> dict:
    """Read a previously written BENCH artifact for comparison."""
    return json.loads(pathlib.Path(path).read_text())


__all__.append("load_baseline")
