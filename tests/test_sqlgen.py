"""Unit tests for repro.query.sqlgen — including execution on SQLite."""

import sqlite3

import pytest

from repro.catalog import Relation
from repro.query.model import QueryClass
from repro.query.sqlgen import (
    create_table_sql,
    insert_rows_sql,
    plan_signature,
    render_query_sql,
    table_name,
)


def relation(rid=0, attrs=10):
    return Relation(rid=rid, name="r%d" % rid, size_mb=1.0, num_attributes=attrs)


class TestDdl:
    def test_table_name_format(self):
        assert table_name(7) == "rel_0007"

    def test_create_table_has_key_val_and_payload(self):
        sql = create_table_sql(relation())
        assert "key INTEGER" in sql
        assert "val INTEGER" in sql
        assert "payload_7 INTEGER" in sql  # 10 attrs -> payload_0..7

    def test_create_table_minimal_attrs(self):
        sql = create_table_sql(relation(attrs=2))
        assert "payload" not in sql

    def test_insert_rejects_zero_rows(self):
        with pytest.raises(ValueError):
            insert_rows_sql(relation(), 0)


class TestQueryRendering:
    def test_join_chain_predicates(self):
        qc = QueryClass(index=0, relation_ids=(0, 1, 2), requires_sort=False)
        sql = render_query_sql(qc, constant=5)
        assert "t0.key = t1.key" in sql
        assert "t1.key = t2.key" in sql
        assert "ORDER BY" not in sql

    def test_order_by_added_when_sorting(self):
        qc = QueryClass(index=0, relation_ids=(0,), requires_sort=True)
        assert "ORDER BY" in render_query_sql(qc, constant=1)

    def test_constant_is_the_only_variation(self):
        qc = QueryClass(index=0, relation_ids=(0, 1))
        a = render_query_sql(qc, constant=3)
        b = render_query_sql(qc, constant=3)
        assert a == b

    def test_different_constants_same_structure(self):
        qc = QueryClass(index=0, relation_ids=(0, 1), selectivity=0.5)
        a = render_query_sql(qc, constant=1)
        b = render_query_sql(qc, constant=2)
        assert a.split("WHERE")[0] == b.split("WHERE")[0]


class TestPlanSignature:
    def test_signature_independent_of_constant(self):
        qc = QueryClass(index=0, relation_ids=(3, 4))
        assert plan_signature(qc) == plan_signature(qc)

    def test_signature_distinguishes_relations(self):
        a = QueryClass(index=0, relation_ids=(1, 2))
        b = QueryClass(index=0, relation_ids=(1, 3))
        assert plan_signature(a) != plan_signature(b)

    def test_signature_distinguishes_sort(self):
        a = QueryClass(index=0, relation_ids=(1,), requires_sort=True)
        b = QueryClass(index=0, relation_ids=(1,), requires_sort=False)
        assert plan_signature(a) != plan_signature(b)


class TestExecutable:
    """The generated SQL actually runs on SQLite."""

    @pytest.fixture()
    def conn(self):
        conn = sqlite3.connect(":memory:")
        for rid in (0, 1):
            rel = relation(rid)
            conn.execute(create_table_sql(rel))
            conn.execute(insert_rows_sql(rel, 500))
        yield conn
        conn.close()

    def test_tables_populated(self, conn):
        count = conn.execute("SELECT COUNT(*) FROM rel_0000").fetchone()[0]
        assert count == 500

    def test_select_executes_and_filters(self, conn):
        qc = QueryClass(
            index=0, relation_ids=(0, 1), selectivity=0.3, requires_sort=True
        )
        rows = conn.execute(render_query_sql(qc, constant=7)).fetchall()
        assert rows  # joins on key produce matches
        values = [r[1] for r in rows]
        assert values == sorted(values)  # ORDER BY honoured

    def test_selectivity_affects_result_size(self, conn):
        narrow = QueryClass(index=0, relation_ids=(0,), selectivity=0.05)
        wide = QueryClass(index=0, relation_ids=(0,), selectivity=0.8)
        narrow_rows = len(conn.execute(render_query_sql(narrow, 0)).fetchall())
        wide_rows = len(conn.execute(render_query_sql(wide, 0)).fetchall())
        assert narrow_rows < wide_rows
