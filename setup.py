"""Setuptools shim.

Kept alongside pyproject.toml so editable installs work in offline
environments whose setuptools lacks PEP 660 wheel support
(``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

setup()
