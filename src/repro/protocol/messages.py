"""Typed market-protocol messages and their versioned JSON codec.

The QA-NT market is, at heart, a message protocol: a client fans a
:class:`BidRequest` out to the candidate servers, each server answers with
a :class:`Quote` (an offer) or a :class:`Refusal` (a trading failure that
moved its private prices), the client dispatches an :class:`AssignQuery`
to the winner, the server eventually emits a :class:`CompletionReport`,
and a :class:`PeriodTick` resettles every agent's prices and supply at
each period boundary.  Until this module existed those messages were
implicit — smeared across allocator tuple returns and network fan-out
unpacking.  Here they are first-class, frozen, and serialisable, so the
discrete-event simulator and live (asyncio / future HTTP) brokers can
speak the exact same conversation.

The codec is deliberately boring: one JSON envelope
``{"v": <version>, "type": <tag>, "body": {...}}`` per message.  Decoding
is tolerant of *unknown body fields* (a newer peer may add fields; an
older one must not choke on them) but strict about the protocol version
and the message type — the two things that define the conversation.

This package is intentionally dependency-free (standard library only) and
fully typed: it must be importable by a broker daemon that has no
business importing the simulator, and it is type-checked with
``mypy --strict`` in CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Union

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "BidRequest",
    "Quote",
    "Refusal",
    "AssignQuery",
    "CompletionReport",
    "PeriodTick",
    "Message",
    "MESSAGE_TYPES",
    "message_tag",
    "encode",
    "decode",
]

#: Version of the wire envelope.  Bump only on incompatible changes; the
#: decoder refuses every version it was not built for (version pinning),
#: while *within* a version unknown body fields are ignored (forward
#: tolerance).
PROTOCOL_VERSION = 1


class ProtocolError(ValueError):
    """A payload that does not parse as a valid protocol message."""


@dataclass(frozen=True)
class BidRequest:
    """Client → all candidate servers: request for bids on one query.

    ``attempt`` counts resubmissions of the same query (0 on first
    submission) so servers and traces can distinguish retry pressure from
    fresh demand.
    """

    qid: int
    class_index: int
    origin_node: int
    attempt: int = 0


@dataclass(frozen=True)
class Quote:
    """Server → client: an offer to evaluate the query.

    ``estimated_completion_ms`` is the server's estimate of when the
    query would finish if assigned now (queue backlog plus execution
    time); the client picks the earliest.  Prices are deliberately absent
    — they are private to each server and never travel on the wire.
    """

    qid: int
    node_id: int
    class_index: int
    estimated_completion_ms: float


@dataclass(frozen=True)
class Refusal:
    """Server → client: no remaining supply for this class.

    A refusal is a *trading failure*: the server has already raised the
    class price by the time this message is sent.  The client treats it
    identically to silence when choosing a winner, but the distinction
    matters for accounting (a refusal was delivered; silence was not).
    """

    qid: int
    node_id: int
    class_index: int


@dataclass(frozen=True)
class AssignQuery:
    """Client → winning server: commit the query to the chosen node."""

    qid: int
    node_id: int
    class_index: int


@dataclass(frozen=True)
class CompletionReport:
    """Server → client: the query finished executing."""

    qid: int
    node_id: int
    class_index: int
    started_ms: float
    finished_ms: float


@dataclass(frozen=True)
class PeriodTick:
    """Market-wide period boundary (the paper's ``T``): agents lower the
    prices of unsold supply and re-solve eq. 4 for the new period."""

    period_index: int
    period_ms: float


Message = Union[
    BidRequest, Quote, Refusal, AssignQuery, CompletionReport, PeriodTick
]

#: Wire tag → message class, the decoder's dispatch table.
MESSAGE_TYPES: Mapping[str, type] = {
    "bid_request": BidRequest,
    "quote": Quote,
    "refusal": Refusal,
    "assign_query": AssignQuery,
    "completion_report": CompletionReport,
    "period_tick": PeriodTick,
}

_TAGS: Mapping[type, str] = {cls: tag for tag, cls in MESSAGE_TYPES.items()}

#: Field-name → expected JSON shape, shared across every message type
#: (all protocol messages are flat records over these names).
_INT_FIELDS = frozenset(
    {"qid", "class_index", "origin_node", "attempt", "node_id", "period_index"}
)
_FLOAT_FIELDS = frozenset(
    {"estimated_completion_ms", "started_ms", "finished_ms", "period_ms"}
)

#: Per-class field tables, computed once at import.  ``dataclasses.fields``
#: walks the class dict on every call — hoisting it off the per-message
#: encode/decode path matters at batched-bidding volumes (the sharded
#: federation moves thousands of quotes per run through this codec).
_FIELD_NAMES: Mapping[type, tuple] = {
    cls: tuple(f.name for f in fields(cls)) for cls in MESSAGE_TYPES.values()
}
_KNOWN_FIELDS: Mapping[type, frozenset] = {
    cls: frozenset(names) for cls, names in _FIELD_NAMES.items()
}
_INT_CHECKS: Mapping[type, tuple] = {
    cls: tuple(n for n in names if n in _INT_FIELDS)
    for cls, names in _FIELD_NAMES.items()
}
_FLOAT_CHECKS: Mapping[type, tuple] = {
    cls: tuple(n for n in names if n in _FLOAT_FIELDS)
    for cls, names in _FIELD_NAMES.items()
}


def message_tag(message: Message) -> str:
    """The wire tag of ``message`` (e.g. ``"bid_request"``)."""
    tag = _TAGS.get(type(message))
    if tag is None:
        raise ProtocolError(
            "object of type %r is not a protocol message" % type(message).__name__
        )
    return tag


def _body(message: Message) -> Dict[str, Any]:
    """The message's fields as a plain dict (all message types are flat)."""
    return {name: getattr(message, name) for name in _FIELD_NAMES[type(message)]}


def encode(message: Message) -> str:
    """Serialise one message to its versioned JSON envelope.

    Non-finite floats are rejected (``allow_nan=False``): NaN/Infinity
    are not valid JSON and would not survive a standards-compliant peer.
    Keys are sorted so equal messages always encode to equal bytes.
    """
    envelope = {
        "v": PROTOCOL_VERSION,
        "type": message_tag(message),
        "body": _body(message),
    }
    try:
        return json.dumps(
            envelope, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except ValueError as exc:
        raise ProtocolError("unencodable message: %s" % exc) from exc


def decode(payload: str) -> Message:
    """Parse one JSON envelope back into its typed message.

    Raises :class:`ProtocolError` on malformed JSON, a missing or
    unsupported version, an unknown message type, or missing required
    fields.  Unknown *body* fields are silently dropped — the forward
    tolerance that lets an old peer read a newer peer's messages.
    """
    try:
        envelope = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ProtocolError("payload is not valid JSON: %s" % exc) from exc
    if not isinstance(envelope, dict):
        raise ProtocolError("envelope must be a JSON object")
    version = envelope.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "unsupported protocol version %r (this peer speaks %d)"
            % (version, PROTOCOL_VERSION)
        )
    tag = envelope.get("type")
    cls = MESSAGE_TYPES.get(tag) if isinstance(tag, str) else None
    if cls is None:
        raise ProtocolError("unknown message type %r" % tag)
    body = envelope.get("body")
    if not isinstance(body, dict):
        raise ProtocolError("message body must be a JSON object")
    known = _KNOWN_FIELDS[cls]
    kwargs = {key: value for key, value in body.items() if key in known}
    try:
        message = cls(**kwargs)
    except TypeError as exc:
        raise ProtocolError(
            "body of %r is missing required fields: %s" % (tag, exc)
        ) from exc
    return _checked(message)


def _checked(message: Message) -> Message:
    """Validate decoded field types (JSON carries no schema of its own)."""
    cls = type(message)
    for name in _INT_CHECKS[cls]:
        value = getattr(message, name)
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(
                "field %r must be an integer, got %r" % (name, value)
            )
    for name in _FLOAT_CHECKS[cls]:
        value = getattr(message, name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ProtocolError(
                "field %r must be a number, got %r" % (name, value)
            )
    return message
