"""Vector algebra of the Query Allocation problem (paper Section 2.2).

The behaviour of each node *i* in a time period ``tau`` is captured by three
vectors over the ``K`` query classes:

* the *demand* vector ``d_i``: queries posed to node *i* during ``tau``;
* the *consumption* vector ``c_i``: the subset of those queries actually
  evaluated somewhere in the system (``c_ik <= d_ik``);
* the *supply* vector ``s_i``: queries evaluated *by* node *i* during
  ``tau`` regardless of where they originated.

System-wide aggregates (paper eq. 1) are plain component-wise sums, and the
market-clearing identity (paper eq. 3) is ``s == c <= d``.

This module provides :class:`QueryVector`, an immutable, hashable vector of
per-class counts with the arithmetic the rest of the library needs, plus the
aggregate helpers of eq. 1.  Counts are non-negative numbers; integer counts
are the common case but fractional vectors appear in the continuous
relaxation of the supply problem (see :mod:`repro.core.supply`).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Mapping, Sequence, Tuple, Union

Number = Union[int, float]

__all__ = [
    "QueryVector",
    "aggregate",
    "zero",
]


class QueryVector:
    """An immutable vector of per-query-class quantities.

    Instances behave like fixed-length numeric tuples with component-wise
    arithmetic.  All components must be non-negative and finite; the class
    intentionally rejects negative counts because demand, consumption and
    supply are counts of queries (paper Section 2.2 defines them in
    ``N^K``).

    >>> d = QueryVector([1, 6])
    >>> c = QueryVector([1, 1])
    >>> (d - c).components
    (0.0, 5.0)
    >>> d.total()
    7.0
    """

    __slots__ = ("_components",)

    def __init__(self, components: Iterable[Number]):
        comps = tuple(float(x) for x in components)
        for value in comps:
            if not math.isfinite(value):
                raise ValueError("query vector components must be finite")
            if value < 0:
                raise ValueError(
                    "query vector components must be non-negative, got %r"
                    % (value,)
                )
        self._components = comps

    # -- constructors ------------------------------------------------------

    @classmethod
    def _from_trusted_tuple(cls, components: Tuple[float, ...]) -> "QueryVector":
        """Wrap an already-validated tuple of floats without re-checking.

        Internal fast path: callers must guarantee every component is a
        finite, non-negative ``float``.  All arithmetic on validated
        vectors preserves that invariant, which is what makes skipping the
        per-component re-validation safe on the hot path.
        """
        self = object.__new__(cls)
        self._components = components
        return self

    @classmethod
    def zeros(cls, num_classes: int) -> "QueryVector":
        """The all-zero vector over ``num_classes`` classes."""
        if num_classes < 0:
            raise ValueError("num_classes must be non-negative")
        return cls._from_trusted_tuple((0.0,) * num_classes)

    @classmethod
    def unit(cls, num_classes: int, index: int, amount: Number = 1) -> "QueryVector":
        """A vector that is ``amount`` at ``index`` and zero elsewhere."""
        if not 0 <= index < num_classes:
            raise IndexError("class index %d out of range" % index)
        comps = [0.0] * num_classes
        comps[index] = float(amount)
        return cls(comps)

    @classmethod
    def from_counts(
        cls, num_classes: int, counts: Mapping[int, Number]
    ) -> "QueryVector":
        """Build a vector from a sparse ``{class_index: count}`` mapping."""
        comps = [0.0] * num_classes
        for index, count in counts.items():
            if not 0 <= index < num_classes:
                raise IndexError("class index %d out of range" % index)
            comps[index] = float(count)
        return cls(comps)

    # -- basic protocol ----------------------------------------------------

    @property
    def components(self) -> Tuple[float, ...]:
        """The underlying tuple of components."""
        return self._components

    @property
    def num_classes(self) -> int:
        """Number of query classes ``K`` this vector ranges over."""
        return len(self._components)

    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[float]:
        return iter(self._components)

    def __getitem__(self, index: int) -> float:
        return self._components[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, QueryVector):
            return self._components == other._components
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._components)

    def __repr__(self) -> str:
        return "QueryVector(%s)" % (self._components,)

    # -- arithmetic ---------------------------------------------------------

    def _check_compatible(self, other: "QueryVector") -> None:
        if len(self) != len(other):
            raise ValueError(
                "incompatible vector lengths: %d vs %d" % (len(self), len(other))
            )

    def __add__(self, other: "QueryVector") -> "QueryVector":
        self._check_compatible(other)
        return QueryVector._from_trusted_tuple(
            tuple(a + b for a, b in zip(self._components, other._components))
        )

    def __sub__(self, other: "QueryVector") -> "QueryVector":
        """Component-wise difference, clamped at zero.

        Clamping matches the paper's semantics: the difference of two count
        vectors (e.g. unmet demand ``d - c``) is itself a count vector.  Use
        :meth:`signed_difference` when true signed excess is needed
        (Definition 2, excess demand).
        """
        self._check_compatible(other)
        return QueryVector._from_trusted_tuple(
            tuple(
                max(0.0, a - b)
                for a, b in zip(self._components, other._components)
            )
        )

    def signed_difference(self, other: "QueryVector") -> Tuple[float, ...]:
        """``self - other`` without clamping, as a plain tuple.

        The result may contain negative values and therefore is not a
        :class:`QueryVector`; excess demand (paper Definition 2) is the main
        consumer.
        """
        self._check_compatible(other)
        return tuple(a - b for a, b in zip(self._components, other._components))

    def __mul__(self, scalar: Number) -> "QueryVector":
        if scalar < 0:
            raise ValueError("cannot scale a query vector by a negative factor")
        if not math.isfinite(scalar):
            raise ValueError("query vector components must be finite")
        scalar = float(scalar)
        return QueryVector._from_trusted_tuple(
            tuple(a * scalar for a in self._components)
        )

    __rmul__ = __mul__

    def dot(self, prices: Sequence[Number]) -> float:
        """Value of this vector at ``prices``: ``p . v`` (paper Section 3.1).

        ``prices`` may be any sequence of length ``K``, typically a
        :class:`repro.core.market.PriceVector`.
        """
        if len(prices) != len(self):
            raise ValueError(
                "price vector length %d does not match %d classes"
                % (len(prices), len(self))
            )
        return sum(p * v for p, v in zip(prices, self._components))

    # -- orderings and predicates -------------------------------------------

    def total(self) -> float:
        """Total number of queries in the vector, ``sum_k v_k``.

        This is the quantity the paper's preference relation maximises.
        """
        return sum(self._components)

    def dominates(self, other: "QueryVector") -> bool:
        """Component-wise ``>=`` with strict ``>`` in at least one class."""
        self._check_compatible(other)
        ge_everywhere = all(
            a >= b for a, b in zip(self._components, other._components)
        )
        gt_somewhere = any(
            a > b for a, b in zip(self._components, other._components)
        )
        return ge_everywhere and gt_somewhere

    def componentwise_le(self, other: "QueryVector") -> bool:
        """True iff every component of ``self`` is ``<=`` that of ``other``.

        This is the partial order of paper eq. 3 (``c <= d``).
        """
        self._check_compatible(other)
        return all(a <= b for a, b in zip(self._components, other._components))

    def is_zero(self) -> bool:
        """True iff all components are zero."""
        return all(a == 0.0 for a in self._components)

    def is_integral(self, tolerance: float = 1e-9) -> bool:
        """True iff all components are (numerically) integers."""
        return all(
            abs(a - round(a)) <= tolerance for a in self._components
        )

    def rounded(self) -> "QueryVector":
        """Round every component down to the nearest integer.

        Rounding *down* keeps the vector feasible whenever the fractional
        vector was feasible, which is what QA-NT needs when converting the
        continuous supply solution to integer query counts (the rounding
        error the paper blames for Greedy's small-load advantage, Fig. 5a).
        """
        return QueryVector._from_trusted_tuple(
            tuple(float(math.floor(a + 1e-9)) for a in self._components)
        )

    def as_int_tuple(self) -> Tuple[int, ...]:
        """Components as integers; raises if the vector is not integral."""
        if not self.is_integral():
            raise ValueError("vector %r is not integral" % (self,))
        return tuple(int(round(a)) for a in self._components)


def zero(num_classes: int) -> QueryVector:
    """Shorthand for :meth:`QueryVector.zeros`."""
    return QueryVector.zeros(num_classes)


def aggregate(vectors: Iterable[QueryVector]) -> QueryVector:
    """Component-wise sum of per-node vectors (paper eq. 1).

    An empty iterable is rejected because the number of classes would be
    unknown; callers aggregating a possibly-empty federation should pass an
    explicit zero vector.

    The sum accumulates into a single component list rather than chaining
    ``+`` (which would allocate one intermediate vector per element).
    """
    iterator = iter(vectors)
    try:
        first = next(iterator)
    except StopIteration:
        raise ValueError("cannot aggregate an empty collection of vectors")
    totals = list(first._components)
    length = len(totals)
    for vector in iterator:
        comps = vector._components
        if len(comps) != length:
            raise ValueError(
                "incompatible vector lengths: %d vs %d" % (length, len(comps))
            )
        for k, value in enumerate(comps):
            totals[k] += value
    return QueryVector._from_trusted_tuple(tuple(totals))
