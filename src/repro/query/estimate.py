"""Execution-time estimation, including history calibration (Section 5.2).

The paper's real deployment found raw optimizer estimates (EXPLAIN PLAN)
"usually incorrect as [they] did not take into account the contents of the
DBMS buffers", and fixed this by blending the plan with *past execution
information concerning queries with the same plan*.  This module implements
that estimator abstractly so both substrates share it:

* :class:`PerfectEstimator` — returns the cost model's truth (simulator
  upper bound);
* :class:`NoisyEstimator` — truth distorted by multiplicative noise,
  modelling optimizer error in the simulator;
* :class:`HistoryCalibratedEstimator` — wraps any base estimator and
  learns, per plan signature, an exponential moving-average correction
  from observed runtimes.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, Optional

__all__ = [
    "Estimator",
    "PerfectEstimator",
    "NoisyEstimator",
    "HistoryCalibratedEstimator",
]


class Estimator(abc.ABC):
    """Estimates the execution time of a query class on one node."""

    @abc.abstractmethod
    def estimate_ms(self, signature: str, base_cost_ms: float) -> float:
        """Estimated execution time given the optimizer's raw cost.

        ``signature`` identifies the plan shape (see
        :func:`repro.query.sqlgen.plan_signature`); ``base_cost_ms`` is the
        node-local optimizer estimate.
        """

    def observe(self, signature: str, base_cost_ms: float, actual_ms: float) -> None:
        """Feed back an observed runtime.  Default: stateless, ignored."""


class PerfectEstimator(Estimator):
    """An oracle that trusts the base cost completely."""

    def estimate_ms(self, signature: str, base_cost_ms: float) -> float:
        return base_cost_ms


class NoisyEstimator(Estimator):
    """Multiplicative log-uniform noise around the base cost.

    ``error_factor`` bounds the distortion: an estimate lies in
    ``[cost / error_factor, cost * error_factor]``.  Noise is drawn per
    (signature, node) and frozen so an optimizer is consistently wrong in
    the same direction — the realistic failure mode history calibration
    can actually fix.
    """

    def __init__(self, error_factor: float = 2.0, seed: int = 0):
        if error_factor < 1.0:
            raise ValueError("error factor must be >= 1")
        self._error_factor = error_factor
        self._rng = random.Random(seed)
        self._bias: Dict[str, float] = {}

    def estimate_ms(self, signature: str, base_cost_ms: float) -> float:
        bias = self._bias.get(signature)
        if bias is None:
            low, high = 1.0 / self._error_factor, self._error_factor
            bias = low * (high / low) ** self._rng.random()
            self._bias[signature] = bias
        return base_cost_ms * bias

    def bias_of(self, signature: str) -> Optional[float]:
        """The frozen bias for ``signature`` (None if never estimated)."""
        return self._bias.get(signature)


class HistoryCalibratedEstimator(Estimator):
    """Past-execution calibration on top of a base estimator.

    Keeps an exponential moving average of the ratio
    ``actual / base_estimate`` per plan signature and multiplies future
    estimates by it.  With enough observations the systematic bias of the
    base estimator cancels — the paper's remedy for EXPLAIN PLAN drift.
    """

    def __init__(self, base: Estimator, smoothing: float = 0.3):
        if not 0 < smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")
        self._base = base
        self._smoothing = smoothing
        self._correction: Dict[str, float] = {}
        self._observations: Dict[str, int] = {}

    def estimate_ms(self, signature: str, base_cost_ms: float) -> float:
        raw = self._base.estimate_ms(signature, base_cost_ms)
        return raw * self._correction.get(signature, 1.0)

    def observe(self, signature: str, base_cost_ms: float, actual_ms: float) -> None:
        raw = self._base.estimate_ms(signature, base_cost_ms)
        if raw <= 0:
            return
        ratio = actual_ms / raw
        previous = self._correction.get(signature)
        if previous is None:
            self._correction[signature] = ratio
        else:
            self._correction[signature] = (
                (1 - self._smoothing) * previous + self._smoothing * ratio
            )
        self._observations[signature] = self._observations.get(signature, 0) + 1

    def observations_of(self, signature: str) -> int:
        """Number of runtimes observed for ``signature``."""
        return self._observations.get(signature, 0)

    def correction_of(self, signature: str) -> float:
        """Current multiplicative correction for ``signature``."""
        return self._correction.get(signature, 1.0)
