"""Unit tests for repro.allocation (every mechanism's decision logic)."""

import math

import pytest

from repro.allocation import (
    BnqrdAllocator,
    GreedyAllocator,
    LeastImbalanceAllocator,
    MarkovAllocator,
    QantAllocator,
    RandomAllocator,
    RoundRobinAllocator,
    TwoRandomProbesAllocator,
    optimise_routing,
)
from repro.experiments.setups import two_query_world
from repro.query.model import Query
from repro.sim import FederationConfig, build_federation

INF = math.inf


def make_federation(allocator, num_nodes=8, seed=3):
    world = two_query_world(num_nodes=num_nodes, seed=seed)
    return build_federation(
        world.specs,
        world.placement,
        world.classes,
        world.cost_model,
        allocator,
        FederationConfig(seed=seed),
    )


def query(qid=0, class_index=0, origin=0):
    return Query(qid=qid, class_index=class_index, origin_node=origin, arrival_ms=0.0)


class TestBase:
    def test_unbound_allocator_has_no_context(self):
        allocator = GreedyAllocator()
        with pytest.raises(RuntimeError):
            allocator.context

    def test_rebinding_rejected(self):
        allocator = GreedyAllocator()
        make_federation(allocator)
        world = two_query_world(num_nodes=4, seed=1)
        with pytest.raises(RuntimeError):
            build_federation(
                world.specs,
                world.placement,
                world.classes,
                world.cost_model,
                allocator,
                FederationConfig(),
            )

    def test_no_candidates_refuses(self):
        allocator = GreedyAllocator()
        fed = make_federation(allocator)
        decision = allocator.assign(query(class_index=0, origin=0))
        assert decision.node_id is not None
        # A class no node can serve:
        fed.allocator.context.candidates_by_class[99] = ()
        assert allocator.assign(query(class_index=99)).node_id is None


class TestGreedy:
    def test_picks_min_estimated_completion(self):
        allocator = GreedyAllocator()
        fed = make_federation(allocator)
        decision = allocator.assign(query())
        nodes = fed.nodes
        candidates = allocator.context.candidates(0)
        best = min(candidates, key=lambda n: (nodes[n].estimated_completion_ms(0), n))
        assert decision.node_id == best

    def test_charges_messages_for_all_candidates(self):
        allocator = GreedyAllocator()
        make_federation(allocator)
        decision = allocator.assign(query())
        assert decision.messages == 2 * len(allocator.context.candidates(0))
        assert decision.delay_ms > 0

    def test_randomisation_spreads_choices(self):
        allocator = GreedyAllocator(randomisation=5.0)
        make_federation(allocator)
        chosen = {allocator.assign(query(qid=i)).node_id for i in range(40)}
        assert len(chosen) > 1

    def test_negative_randomisation_rejected(self):
        with pytest.raises(ValueError):
            GreedyAllocator(randomisation=-0.1)


class TestRandomAndRoundRobin:
    def test_random_stays_within_candidates(self):
        allocator = RandomAllocator()
        make_federation(allocator)
        candidates = set(allocator.context.candidates(1))
        for i in range(20):
            assert allocator.assign(query(qid=i, class_index=1)).node_id in candidates

    def test_round_robin_cycles(self):
        allocator = RoundRobinAllocator()
        make_federation(allocator)
        candidates = allocator.context.candidates(1)
        picks = [
            allocator.assign(query(qid=i, class_index=1, origin=0)).node_id
            for i in range(2 * len(candidates))
        ]
        # Every candidate visited exactly twice over two full cycles.
        assert sorted(picks) == sorted(list(candidates) * 2)

    def test_round_robin_origins_independent(self):
        allocator = RoundRobinAllocator()
        make_federation(allocator)
        a = [allocator.assign(query(qid=i, origin=0)).node_id for i in range(3)]
        b = [allocator.assign(query(qid=i, origin=1)).node_id for i in range(3)]
        # Both cycle over the same candidate ring (offsets may differ).
        assert set(a) <= set(allocator.context.candidates(0))
        assert set(b) <= set(allocator.context.candidates(0))


class TestTwoProbes:
    def test_picks_less_queued_probe(self):
        allocator = TwoRandomProbesAllocator()
        fed = make_federation(allocator)
        # Load one node heavily; the probe comparison must avoid it
        # whenever it is probed together with an idle node.
        target = allocator.context.candidates(0)[0]
        for i in range(10):
            fed.nodes[target].enqueue(query(qid=100 + i))
        for i in range(20):
            decision = allocator.assign(query(qid=i))
            if decision.node_id != target:
                break
        else:
            pytest.fail("two-probes never escaped the loaded node")

    def test_probes_cost_four_messages(self):
        allocator = TwoRandomProbesAllocator()
        make_federation(allocator)
        decision = allocator.assign(query())
        assert decision.messages == 4


class TestBnqrd:
    def test_routes_to_underloaded_node(self):
        allocator = BnqrdAllocator(refresh_ms=1.0)
        fed = make_federation(allocator)
        candidates = allocator.context.candidates(0)
        loaded = candidates[0]
        for i in range(5):
            fed.nodes[loaded].enqueue(query(qid=50 + i))
        decision = allocator.assign(query())
        assert decision.node_id != loaded

    def test_stale_cache_reused_within_refresh_window(self):
        allocator = BnqrdAllocator(refresh_ms=1e9)
        fed = make_federation(allocator)
        first = allocator.assign(query(qid=0))
        # Load the chosen node heavily; the stale coordinator still counts
        # its own routing, so it will not hammer the same node forever,
        # but it must not see the true loads either.
        assert allocator._cache_time is not None

    def test_bad_refresh_rejected(self):
        with pytest.raises(ValueError):
            BnqrdAllocator(refresh_ms=0.0)


class TestLeastImbalance:
    def test_balances_busy_time(self):
        allocator = LeastImbalanceAllocator()
        fed = make_federation(allocator)
        for i in range(12):
            decision = allocator.assign(query(qid=i))
            fed.nodes[decision.node_id].enqueue(query(qid=i))
        loads = [n.current_load_ms() for n in fed.nodes.values()]
        busy = [l for l in loads if l > 0]
        assert len(busy) > 1  # spread, not piled on one node


class TestMarkov:
    def test_optimise_routing_probabilities_sum_to_one(self):
        plan = optimise_routing(
            [0.001, 0.001],
            [[100.0, 200.0], [200.0, 100.0]],
        )
        for k in range(2):
            total = sum(plan[i][k] for i in range(2))
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_optimise_routing_prefers_cheap_nodes(self):
        plan = optimise_routing(
            [0.0001],
            [[100.0], [10_000.0]],
        )
        assert plan[0][0] > plan[1][0]

    def test_optimise_routing_respects_eligibility(self):
        plan = optimise_routing(
            [0.001],
            [[INF], [100.0]],
        )
        assert plan[0][0] == 0.0
        assert plan[1][0] == pytest.approx(1.0, abs=1e-6)

    def test_allocator_assigns_candidates_only(self):
        allocator = MarkovAllocator([0.001, 0.0005])
        make_federation(allocator)
        candidates = set(allocator.context.candidates(1))
        for i in range(20):
            assert (
                allocator.assign(query(qid=i, class_index=1)).node_id
                in candidates
            )

    def test_rate_length_mismatch_rejected(self):
        allocator = MarkovAllocator([0.001])  # world has 2 classes
        with pytest.raises(ValueError):
            make_federation(allocator)


class TestQant:
    def test_offers_accepted_consume_supply(self):
        allocator = QantAllocator(activation_threshold=None)
        make_federation(allocator)
        decision = allocator.assign(query())
        assert decision.node_id is not None

    def test_refuses_when_all_sold_out(self):
        # Zero allowance -> no supply anywhere -> every request refused
        # (with enforcement always on).
        allocator = QantAllocator(
            activation_threshold=None, queue_allowance_ms=0.0
        )
        make_federation(allocator)
        assert allocator.assign(query()).node_id is None

    def test_refusals_raise_prices(self):
        allocator = QantAllocator(
            activation_threshold=None, queue_allowance_ms=0.0
        )
        make_federation(allocator)
        before = [agent.prices[0] for agent in allocator.agents.values()]
        allocator.assign(query())
        after = [agent.prices[0] for agent in allocator.agents.values()]
        assert all(b > a for a, b in zip(before, after))

    def test_activation_threshold_accepts_below_threshold(self):
        # Same zero allowance, but nodes not yet signalling overload accept
        # anything feasible (Section 5.1 threshold rule).
        allocator = QantAllocator(
            activation_threshold=1e9, queue_allowance_ms=0.0
        )
        make_federation(allocator)
        assert allocator.assign(query()).node_id is not None

    def test_partial_adoption_only_builds_agents_for_adopters(self):
        allocator = QantAllocator(adopters={0, 1})
        make_federation(allocator)
        assert set(allocator.agents) == {0, 1}

    def test_period_start_replans(self):
        allocator = QantAllocator()
        fed = make_federation(allocator)
        planned_before = {
            nid: agent.planned_supply for nid, agent in allocator.agents.items()
        }
        # Load a node, then re-plan: its supply must shrink.
        nid = allocator.context.candidates(0)[0]
        for i in range(30):
            fed.nodes[nid].enqueue(query(qid=200 + i))
        allocator.on_period_start()
        assert (
            allocator.agents[nid].planned_supply.total()
            <= planned_before[nid].total()
        )

    def test_offer_premium_filters_slow_mirrors(self):
        # A huge threshold keeps every node non-enforcing (all offer), so
        # the premium filter is the only selection pressure.
        allocator = QantAllocator(
            activation_threshold=1e9, max_offer_premium=1.0
        )
        fed = make_federation(allocator)
        decision = allocator.assign(query())
        nodes = fed.nodes
        candidates = allocator.context.candidates(0)
        best_exec = min(nodes[n].execution_time_ms(0) for n in candidates)
        assert nodes[decision.node_id].execution_time_ms(0) == pytest.approx(
            best_exec
        )

    def test_bad_allowance_factor_rejected(self):
        with pytest.raises(ValueError):
            QantAllocator(allowance_factor=0.0)
