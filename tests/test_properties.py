"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.market import PriceVector, excess_demand
from repro.core.pareto import pareto_dominates
from repro.core.supply import CapacitySupplySet
from repro.core.vectors import QueryVector, aggregate
from repro.sim.engine import Simulator
from repro.workload.zipf import TruncatedZipf, ZipfArrivals

counts = st.lists(
    st.integers(min_value=0, max_value=50), min_size=1, max_size=6
)
paired_counts = st.integers(min_value=1, max_value=6).flatmap(
    lambda k: st.tuples(
        st.lists(st.integers(0, 50), min_size=k, max_size=k),
        st.lists(st.integers(0, 50), min_size=k, max_size=k),
    )
)
def prices_for(k):
    return st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=k,
        max_size=k,
    )


class TestVectorAlgebra:
    @given(paired_counts)
    def test_addition_commutes(self, pair):
        a, b = QueryVector(pair[0]), QueryVector(pair[1])
        assert a + b == b + a

    @given(paired_counts)
    def test_subtraction_never_negative(self, pair):
        a, b = QueryVector(pair[0]), QueryVector(pair[1])
        assert all(x >= 0 for x in (a - b).components)

    @given(paired_counts)
    def test_signed_difference_antisymmetric(self, pair):
        a, b = QueryVector(pair[0]), QueryVector(pair[1])
        forward = a.signed_difference(b)
        backward = b.signed_difference(a)
        assert all(x == -y for x, y in zip(forward, backward))

    @given(counts)
    def test_total_equals_dot_with_ones(self, values):
        v = QueryVector(values)
        assert v.total() == v.dot([1.0] * len(v))

    @given(paired_counts)
    def test_dominance_is_asymmetric(self, pair):
        a, b = QueryVector(pair[0]), QueryVector(pair[1])
        if a.dominates(b):
            assert not b.dominates(a)

    @given(st.lists(counts.filter(lambda c: len(c) == 3), min_size=1, max_size=5))
    def test_aggregate_total_is_sum_of_totals(self, groups):
        vectors = [QueryVector(g) for g in groups]
        assert aggregate(vectors).total() == sum(v.total() for v in vectors)


class TestSupplyInvariants:
    supply_cases = st.tuples(
        st.lists(
            st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
            min_size=1,
            max_size=5,
        ),
        st.floats(min_value=0.0, max_value=5000.0, allow_nan=False),
    )

    @given(supply_cases, st.data())
    @settings(max_examples=60)
    def test_all_solvers_return_feasible_supply(self, case, data):
        costs, capacity = case
        supply_set = CapacitySupplySet(costs, capacity)
        prices = data.draw(prices_for(len(costs)))
        for method in ("greedy", "fractional", "greedy-fractional", "proportional"):
            result = supply_set.optimal_supply(prices, method=method)
            assert supply_set.utilisation(result) <= 1.0 + 1e-6

    @given(supply_cases, st.data())
    @settings(max_examples=60)
    def test_exact_value_at_least_greedy(self, case, data):
        # The exact solver falls back to the true-cost greedy solution
        # whenever grid discretisation would lose value, so it can never
        # underperform greedy.
        costs, capacity = case
        supply_set = CapacitySupplySet(costs, capacity)
        prices = data.draw(prices_for(len(costs)))
        greedy = supply_set.optimal_supply(prices, method="greedy")
        exact = supply_set.optimal_supply(prices, method="exact")
        assert exact.dot(prices) >= greedy.dot(prices) - 1e-9

    @given(supply_cases, st.data())
    @settings(max_examples=60)
    def test_fractional_upper_bounds_integer_value(self, case, data):
        costs, capacity = case
        supply_set = CapacitySupplySet(costs, capacity)
        prices = data.draw(prices_for(len(costs)))
        fractional = supply_set.optimal_supply(prices, method="fractional")
        greedy = supply_set.optimal_supply(prices, method="greedy")
        assert fractional.dot(prices) >= greedy.dot(prices) - 1e-6

    @given(supply_cases, st.data())
    @settings(max_examples=60)
    def test_zero_prices_zero_supply(self, case, data):
        costs, capacity = case
        supply_set = CapacitySupplySet(costs, capacity)
        result = supply_set.optimal_supply([0.0] * len(costs), method="greedy")
        assert result.is_zero()


class TestMarketInvariants:
    @given(paired_counts)
    def test_excess_demand_zero_iff_equal(self, pair):
        d, s = QueryVector(pair[0]), QueryVector(pair[1])
        z = excess_demand(d, s)
        assert (all(x == 0 for x in z)) == (d == s)

    @given(
        st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=5),
        st.integers(min_value=0, max_value=4),
        st.floats(min_value=0.1, max_value=3.0),
    )
    def test_scaled_class_changes_only_that_class(self, values, index, factor):
        p = PriceVector(values)
        index = index % len(values)
        scaled = p.scaled_class(index, factor)
        for k in range(len(values)):
            if k != index:
                assert scaled[k] == p[k]

    @given(paired_counts)
    def test_pareto_dominance_irreflexive(self, pair):
        from repro.core.pareto import Allocation

        consumptions = (QueryVector(pair[0]), QueryVector(pair[1]))
        allocation = Allocation(supplies=consumptions, consumptions=consumptions)
        assert not pareto_dominates(allocation, allocation)


class TestEngineInvariants:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=20,
        ),
        st.floats(min_value=0.0, max_value=120.0, allow_nan=False),
    )
    def test_bounded_run_never_overshoots(self, delays, bound):
        sim = Simulator()
        for delay in delays:
            sim.schedule(delay, lambda: None)
        sim.run(until_ms=bound)
        assert sim.now <= max(bound, 0.0) + 1e-9


class TestWorkloadInvariants:
    @given(
        st.floats(min_value=1.0, max_value=3.0),
        st.integers(min_value=2, max_value=500),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40)
    def test_zipf_samples_in_support(self, a, support, rng):
        zipf = TruncatedZipf(a=a, support=support)
        for __ in range(20):
            assert 1 <= zipf.sample(rng) <= support

    @given(
        st.floats(min_value=1.0, max_value=10_000.0),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40)
    def test_zipf_gaps_positive_and_capped(self, mean, rng):
        process = ZipfArrivals(mean_interarrival_ms=mean)
        for __ in range(20):
            gap = process.gap_ms(rng)
            assert 0 < gap <= 30_000.0
