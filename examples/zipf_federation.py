"""Heterogeneous federation under a bursty Zipf workload.

Generates the paper's Table 3 world — a mirrored catalog of relations
spread over heterogeneous RDBMSs, select-join-project-sort query classes
with up to dozens of joins — and studies how QA-NT's advantage over
Greedy changes with the workload's mean inter-arrival time (the Figure 6
experiment at example scale).

Run:  python examples/zipf_federation.py
"""

from repro.experiments.fig6 import run_fig6
from repro.experiments.setups import zipf_world
from repro.experiments.table3 import run_table3


def main() -> None:
    world = zipf_world(
        num_nodes=30, num_relations=300, num_classes=30, seed=0
    )
    print("Generated world (Table 3 at example scale):")
    print(run_table3(world=world).render())
    print()

    result = run_fig6(
        interarrivals_ms=(1_000.0, 5_000.0, 10_000.0, 17_000.0),
        num_nodes=30,
        num_relations=300,
        num_classes=30,
        max_queries=2_500,
        horizon_ms=200_000.0,
        seed=0,
    )
    print("Greedy response normalised by QA-NT (>1 means QA-NT wins):")
    print(result.render())
    print()
    overloaded = result.greedy_normalised[0]
    relaxed = result.greedy_normalised[-1]
    print(
        "Under overload QA-NT wins by %.0f%%; once the system is no longer"
        " overloaded the two converge (ratio %.2f)."
        % (100 * (overloaded - 1.0), relaxed)
    )


if __name__ == "__main__":
    main()
