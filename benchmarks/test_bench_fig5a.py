"""Bench E5 — regenerate Figure 5a (QA-NT vs Greedy across load levels).

Paper shape: below ~75 % of capacity Greedy is about 5 % better
(normalised ratio slightly below 1); above it QA-NT wins by 15–32 %
(ratio above 1).
"""

from repro.experiments.fig5 import run_fig5a


def test_bench_fig5a(benchmark, save_result, bench_nodes, full_scale):
    loads = (
        (0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0)
        if full_scale
        else (0.25, 0.5, 1.5, 3.0)
    )
    result = benchmark.pedantic(
        run_fig5a,
        kwargs=dict(
            loads=loads, num_nodes=bench_nodes, horizon_ms=20_000.0, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    save_result("fig5a", result.render())
    by_load = dict(zip(result.loads, result.greedy_normalised))
    # Light load: close to parity (Greedy may be slightly ahead).
    assert by_load[0.5] < 1.15
    # Overload: QA-NT ahead.
    assert by_load[3.0] > 1.0
