"""Profiling entry point: cProfile any registered experiment.

``python -m repro profile <scenario> --scale paper`` runs one scenario
under :mod:`cProfile` and prints the hottest functions, which is how the
paper-scale optimisation targets of this repo were found (the QA-NT
request-for-bid fan-out, the network latency sampling, the per-period
supply solves).  The profile is collected around exactly the code path
``python -m repro run`` executes for a single seed, serially — worker
processes would escape the profiler.

Profiler note: cProfile's tracing typically inflates this simulator's
wall-clock ~3x and overstates Python-level call overhead relative to
C-level work (RNG draws, heap operations); treat the ranking as the
signal, not the absolute numbers, and confirm wins with
``python -m repro bench``.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Optional

__all__ = [
    "SORT_KEYS",
    "profile_experiment",
]

#: pstats sort keys exposed on the CLI.
SORT_KEYS = ("tottime", "cumtime", "ncalls")


def profile_experiment(
    name: str,
    scale: str = "small",
    seed: int = 0,
    sort: str = "tottime",
    limit: int = 25,
    stream: Optional[io.TextIOBase] = None,
) -> str:
    """Run one registered experiment under cProfile; return the report.

    ``sort`` is a :mod:`pstats` sort key (see :data:`SORT_KEYS`);
    ``limit`` bounds the number of rows.  The rendered report is returned
    and, when ``stream`` is given, also written there incrementally.
    """
    from .experiments.runner import run_single, run_sweep
    from .experiments.spec import REGISTRY

    if sort not in SORT_KEYS:
        raise ValueError(
            "unknown sort key %r (expected one of %s)"
            % (sort, ", ".join(SORT_KEYS))
        )
    if limit < 1:
        raise ValueError("limit must be >= 1")
    spec = REGISTRY.get(name)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        if spec.sweepable:
            run_sweep(spec, scale=scale, seeds=(seed,))
        else:
            run_single(spec, scale, seed)
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(limit)
    report = buffer.getvalue()
    if stream is not None:
        stream.write(report)
    return report
