"""Sharded federation: partitioning, determinism, goldens, transport.

Three properties carry the whole design (see DESIGN.md §7):

* ``shards=1`` is *byte-identical* to the single-process engine — the
  sharded front delegates outright, so every existing golden keeps
  pinning it;
* ``shards>1`` is *invariant* across shard counts and worker modes —
  every cross-node decision is made on the coordinator over globally
  ordered events, and per-node state (latency RNG streams, busy clocks)
  is keyed by node id, never by shard layout;
* the cross-shard conversation is real protocol traffic — batched
  ``BidRequest``/``Quote``/``PeriodTick`` messages through the
  ``repro.protocol`` codec over the pipe-backed ``ShardTransport``.
"""

import json
import pathlib

import pytest

from repro.allocation import GreedyAllocator, QantAllocator
from repro.experiments.scaling import quantise_trace, sharded_scaling_cell
from repro.experiments.setups import (
    run_mechanism,
    sinusoid_trace_for_load,
    two_query_world,
)
from repro.protocol import BidRequest, Quote
from repro.sim import (
    FederationConfig,
    MetricsCollector,
    ShardedFederation,
    ShardTransport,
    derive_shard_seed,
    plan_shards,
)
from repro.sim.faults import derive_fault_seed

from test_golden_trace import _outcome_digest

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def _small_world():
    world = two_query_world(num_nodes=30, seed=0)
    trace = sinusoid_trace_for_load(
        world,
        load_fraction=1.5,
        horizon_ms=2_000.0,
        frequency_hz=0.05,
        seed=10,
    )
    return world, trace


def _sharded(world, shards, mode="inline"):
    return ShardedFederation(
        world.specs,
        world.placement,
        world.classes,
        world.cost_model,
        config=FederationConfig(seed=2),
        shards=shards,
        mode=mode,
    )


# ---------------------------------------------------------------------------
# partitioner


def test_derive_shard_seed_matches_fault_scheme():
    """Shard RNG seeds reuse the fault layer's sha256 derivation."""
    assert derive_shard_seed(7, ("shard-node-latency", 3)) == derive_fault_seed(
        7, ("shard-node-latency", 3)
    )
    assert derive_shard_seed(7, ("a",)) != derive_shard_seed(8, ("a",))


def test_plan_shards_groups_overlapping_bidder_sets():
    """Classes whose bidder sets overlap land on one shard (affinity)."""
    candidates = {0: (0, 1, 2), 1: (2, 3), 2: (5, 6)}
    plan = plan_shards(candidates, node_ids=range(8), num_shards=2)
    shard_of = plan.node_to_shard
    # 0-3 share classes 0/1 transitively; 5-6 share class 2.
    assert len({shard_of[n] for n in (0, 1, 2, 3)}) == 1
    assert len({shard_of[n] for n in (5, 6)}) == 1
    # Every node is placed exactly once.
    placed = [n for shard in plan.shard_nodes for n in shard]
    assert sorted(placed) == list(range(8))


def test_plan_shards_is_deterministic_and_balanced():
    candidates = {k: tuple(range(k, k + 3)) for k in range(0, 30, 3)}
    a = plan_shards(candidates, range(40), 4)
    b = plan_shards(candidates, range(40), 4)
    assert a == b
    sizes = [len(shard) for shard in a.shard_nodes]
    assert max(sizes) - min(sizes) <= 1
    assert a.imbalance() >= 1.0


def test_plan_shards_rejects_bad_counts():
    with pytest.raises(ValueError):
        plan_shards({}, range(4), 0)
    with pytest.raises(ValueError):
        plan_shards({}, range(4), 5)


# ---------------------------------------------------------------------------
# shards=1 — byte identity with the single-process engine


def test_shards1_byte_identical_to_single_process():
    world, trace = _small_world()
    for mechanism, factory in (
        ("qa-nt", QantAllocator),
        ("greedy", GreedyAllocator),
    ):
        direct = run_mechanism(
            world, trace, mechanism, factory, FederationConfig(seed=2)
        )
        result = _sharded(world, shards=1).run(trace, mechanism)
        assert result.outcome_digest() == _outcome_digest(
            direct.metrics.outcomes
        )
        assert result.completed == direct.metrics.completed
        assert result.messages == direct.messages
        assert result.mean_response_ms() == pytest.approx(
            direct.metrics.mean_response_ms(), abs=0.0
        )


# ---------------------------------------------------------------------------
# shards>1 — invariance across shard counts and worker modes


def test_invariant_payload_across_shard_counts_and_modes():
    """The sharded market's decisions do not depend on the partition.

    Inline vs fork pins the wire codec round trip (inline shards speak
    the same encoded frames); 2 vs 3 shards pins the merge order and the
    node-keyed RNG streams.
    """
    world, trace = _small_world()
    for mechanism in ("qa-nt", "greedy"):
        payloads = []
        for shards, mode in ((2, "inline"), (3, "inline"), (2, "fork")):
            with _sharded(world, shards, mode) as federation:
                payloads.append(
                    federation.run(trace, mechanism).invariant_payload()
                )
        assert payloads[0] == payloads[1] == payloads[2]
        assert payloads[0]["completed"] > 0


def test_rerun_on_same_federation_is_identical():
    """Worker reuse across runs must not leak state between runs."""
    world, trace = _small_world()
    with _sharded(world, 2, "fork") as federation:
        first = federation.run(trace, "qa-nt").invariant_payload()
        second = federation.run(trace, "qa-nt").invariant_payload()
    assert first == second


def test_shard_counters_surface_in_batch_summary():
    world, trace = _small_world()
    with _sharded(world, 2) as federation:
        summary = federation.run(trace, "qa-nt").batch_summary()
    assert summary["shards"] == 2.0
    assert summary["cross_shard_bids"] > 0
    assert summary["barrier_wait_ms"] >= 0.0
    assert summary["shard_imbalance"] >= 1.0
    # The single-process path must NOT grow these keys: existing goldens
    # serialise batch_summary() and would break.
    single = MetricsCollector().batch_summary()
    for key in ("cross_shard_bids", "barrier_wait_ms", "shard_imbalance"):
        assert key not in single


# ---------------------------------------------------------------------------
# the 1,000-node golden (shard-count/jobs invariant by construction)


def _sharded_1000node_payload(shards: int, mode: str) -> str:
    world = two_query_world(num_nodes=1_000, seed=0)
    trace = quantise_trace(
        sinusoid_trace_for_load(
            world,
            load_fraction=1.5,
            horizon_ms=2_000.0,
            frequency_hz=0.05,
            seed=10,
        ),
        25.0,
    )
    payload = {}
    with ShardedFederation(
        world.specs,
        world.placement,
        world.classes,
        world.cost_model,
        config=FederationConfig(seed=2),
        shards=shards,
        mode=mode,
    ) as federation:
        for mechanism in ("qa-nt", "greedy"):
            payload[mechanism] = federation.run(
                trace, mechanism
            ).invariant_payload()
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def test_sharded_1000node_matches_golden():
    """The 4-shard forked 1,000-node pair reproduces the stored payload."""
    assert _sharded_1000node_payload(4, "fork") == (
        GOLDEN_DIR / "sharded_1000node_seed0.json"
    ).read_text()


@pytest.mark.slow
def test_sharded_1000node_golden_is_shard_count_invariant():
    """The same golden re-verifies at a different shard count and mode —
    the "identical across --jobs/shard-count re-runs" acceptance pin."""
    assert _sharded_1000node_payload(2, "inline") == (
        GOLDEN_DIR / "sharded_1000node_seed0.json"
    ).read_text()


# ---------------------------------------------------------------------------
# transport


def test_shard_transport_fanout_speaks_protocol():
    """A BidRequest fan-out over ShardTransport returns decoded Quotes."""
    world, __ = _small_world()
    with _sharded(world, 2) as federation:
        transport = federation.transport
        peers = tuple(range(transport.num_shards))
        before = transport.messages
        result = transport.fanout(
            -1, peers, BidRequest(qid=1, class_index=0, origin_node=-1)
        )
        assert result.delivered == peers
        assert result.replied == peers
        assert result.replies, "candidate servers must answer with quotes"
        assert all(isinstance(reply, Quote) for reply in result.replies)
        assert all(reply.class_index == 0 for reply in result.replies)
        # One request leg + one reply batch per shard.
        assert transport.messages - before == 2 * len(peers)


def test_shard_transport_requires_real_message():
    from repro.protocol import ProtocolError

    world, __ = _small_world()
    with _sharded(world, 2) as federation:
        with pytest.raises(ProtocolError):
            federation.transport.fanout(-1, (0,), None)


def test_sharded_scaling_cell_shape():
    payload = sharded_scaling_cell(
        "qa-nt", 2, 0, 0, num_nodes=30, mode="inline"
    )
    for key in (
        "shards",
        "completed",
        "wall_ms",
        "cross_shard_bids",
        "shard_imbalance",
    ):
        assert key in payload
    assert payload["shards"] == 2.0
    # The shards=1 origin delegates to the single-process engine; the
    # sweep aggregator indexes every cell by one uniform key set, so the
    # origin must carry (zeroed) shard counters too.  (Its *metrics* are
    # the legacy engine's, not the tick-barrier plane's — invariance
    # across counts holds among the multi-process points, shards >= 2.)
    origin = sharded_scaling_cell(
        "qa-nt", 1, 0, 0, num_nodes=30, mode="inline"
    )
    assert set(origin) == set(payload)
    assert origin["shards"] == 1.0
    assert origin["cross_shard_bids"] == 0.0
    assert origin["barrier_wait_ms"] == 0.0
    assert origin["shard_imbalance"] == 1.0
