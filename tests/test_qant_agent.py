"""Unit tests for repro.core.qant (the QA-NT pricing agent)."""

import pytest

from repro.core.market import PriceVector
from repro.core.qant import QantParameters, QantPricingAgent
from repro.core.supply import CapacitySupplySet
from repro.core.vectors import QueryVector


def make_agent(costs=(100.0, 200.0), capacity=1000.0, **params):
    defaults = dict(supply_method="greedy", carry_over=False)
    defaults.update(params)
    return QantPricingAgent(
        CapacitySupplySet(list(costs), capacity),
        parameters=QantParameters(**defaults),
    )


class TestParameters:
    def test_rejects_nonpositive_lambda(self):
        with pytest.raises(ValueError):
            QantParameters(adjustment=0.0)

    def test_rejects_bad_floor(self):
        with pytest.raises(ValueError):
            QantParameters(price_floor=0.0)

    def test_rejects_cap_below_floor(self):
        with pytest.raises(ValueError):
            QantParameters(price_floor=1.0, price_cap=0.5)


class TestPeriodLifecycle:
    def test_begin_period_plans_supply(self):
        agent = make_agent()
        planned = agent.begin_period()
        # Uniform prices, class 0 denser: all capacity there.
        assert planned == QueryVector([10, 0])
        assert agent.remaining_supply == (10.0, 0.0)

    def test_cannot_act_outside_period(self):
        agent = make_agent()
        with pytest.raises(RuntimeError):
            agent.would_offer(0)
        with pytest.raises(RuntimeError):
            agent.accept(0)
        with pytest.raises(RuntimeError):
            agent.end_period()

    def test_in_period_flag(self):
        agent = make_agent()
        assert not agent.in_period
        agent.begin_period()
        assert agent.in_period
        agent.end_period()
        assert not agent.in_period

    def test_offer_and_accept_consume_supply(self):
        agent = make_agent()
        agent.begin_period()
        assert agent.would_offer(0)
        agent.accept(0)
        assert agent.remaining_supply[0] == 9.0

    def test_accept_without_supply_rejected(self):
        agent = make_agent()
        agent.begin_period()
        with pytest.raises(RuntimeError):
            agent.accept(1)  # no class-1 supply planned

    def test_class_index_bounds(self):
        agent = make_agent()
        agent.begin_period()
        with pytest.raises(IndexError):
            agent.would_offer(5)


class TestPriceDynamics:
    def test_refusal_raises_price(self):
        agent = make_agent()
        agent.begin_period()
        before = agent.prices[1]
        assert not agent.would_offer(1)  # class 1 unplanned -> refusal
        assert agent.prices[1] == pytest.approx(before * 1.1)

    def test_offer_does_not_change_price(self):
        agent = make_agent()
        agent.begin_period()
        before = agent.prices.values
        agent.would_offer(0)
        assert agent.prices.values == before

    def test_unsold_supply_lowers_price(self):
        agent = make_agent()
        agent.begin_period()  # plans 10 of class 0
        stats = agent.end_period()
        # p0 -= 10 * 0.1 * p0 -> clamped at (1 - 1.0) = floor.
        assert agent.prices[0] == pytest.approx(
            QantParameters().price_floor
        )
        assert stats.planned_supply == QueryVector([10, 0])

    def test_partial_sale_lowers_price_proportionally(self):
        agent = make_agent(capacity=300.0)  # plans 3 of class 0
        agent.begin_period()
        agent.would_offer(0)
        agent.accept(0)
        agent.end_period()
        # leftover 2: p0 *= (1 - 2*0.1) = 0.8
        assert agent.prices[0] == pytest.approx(0.8)

    def test_fully_sold_class_price_untouched(self):
        agent = make_agent(capacity=100.0)  # plans exactly 1 of class 0
        agent.begin_period()
        agent.accept(0)
        agent.end_period()
        assert agent.prices[0] == pytest.approx(1.0)

    def test_price_floor_enforced(self):
        agent = make_agent()
        for __ in range(50):
            agent.begin_period()
            agent.end_period()
        assert agent.prices[0] >= QantParameters().price_floor

    def test_price_cap_enforced(self):
        agent = make_agent(
            costs=(100.0,), capacity=0.0, price_cap=2.0, adjustment=0.5
        )
        for __ in range(20):
            agent.begin_period()
            agent.would_offer(0)
            agent.end_period()
        assert agent.prices[0] <= 2.0

    def test_rising_price_flips_supply_class(self):
        # Class 1 is denser at equal prices; sustained refusals of class 0
        # must eventually flip the plan (the market mechanism in miniature).
        agent = make_agent(costs=(200.0, 100.0), capacity=1000.0)
        agent.begin_period()
        assert agent.planned_supply == QueryVector([0, 10])
        for __ in range(30):
            agent.would_offer(0)  # refusals raise p0
            agent.end_period()
            agent.begin_period()
            if agent.planned_supply[0] > 0:
                break
        assert agent.planned_supply[0] > 0


class TestCarryOver:
    def test_fraction_accumulates_into_whole_queries(self):
        # Cost 1000 with budget 500: fractional supply 0.5/period.
        agent = QantPricingAgent(
            CapacitySupplySet([1000.0], 500.0),
            parameters=QantParameters(
                supply_method="greedy-fractional", carry_over=True
            ),
        )
        planned_totals = []
        for __ in range(4):
            planned = agent.begin_period()
            planned_totals.append(planned.total())
            agent.end_period()
        # 0.5 credit per period -> a whole query every second period.
        assert sum(planned_totals) == 2.0

    def test_without_carry_fraction_is_floored_away(self):
        agent = QantPricingAgent(
            CapacitySupplySet([1000.0], 500.0),
            parameters=QantParameters(
                supply_method="greedy-fractional", carry_over=False
            ),
        )
        for __ in range(4):
            assert agent.begin_period().is_zero()
            agent.end_period()


class TestSupplySetRebinding:
    def test_rebind_between_periods(self):
        agent = make_agent()
        agent.begin_period()
        agent.end_period()  # 10 unsold class-0 -> p0 collapses to the floor
        agent.rebind_supply_set(CapacitySupplySet([100.0, 200.0], 200.0))
        # With p0 at the floor the new plan goes to class 1 on the smaller
        # budget: one 200 ms query.
        assert agent.begin_period() == QueryVector([0, 1])

    def test_rebind_mid_period_rejected(self):
        agent = make_agent()
        agent.begin_period()
        with pytest.raises(RuntimeError):
            agent.rebind_supply_set(CapacitySupplySet([100.0, 200.0], 200.0))

    def test_rebind_wrong_classes_rejected(self):
        agent = make_agent()
        with pytest.raises(ValueError):
            agent.rebind_supply_set(CapacitySupplySet([100.0], 200.0))


class TestRunPeriod:
    def test_run_period_counts_stats(self):
        agent = make_agent(capacity=300.0)
        stats = agent.run_period([0, 0, 0, 0, 1])
        assert stats.total_accepted == 3
        assert stats.total_refused == 2
        assert stats.accepted == [3, 0]
        assert stats.refused == [1, 1]

    def test_initial_prices_respected(self):
        agent = QantPricingAgent(
            CapacitySupplySet([100.0, 100.0], 100.0),
            parameters=QantParameters(
                supply_method="greedy", carry_over=False
            ),
            initial_prices=PriceVector([0.1, 5.0]),
        )
        planned = agent.begin_period()
        assert planned == QueryVector([0, 1])

    def test_wrong_initial_price_length_rejected(self):
        with pytest.raises(ValueError):
            QantPricingAgent(
                CapacitySupplySet([100.0, 100.0], 100.0),
                initial_prices=PriceVector([1.0]),
            )
