"""Property test: heap compaction under interleaved schedule/cancel/step.

The simulator lazily discards cancelled heap entries and compacts the
heap once stale entries outnumber live ones.  This drives the engine
through arbitrary interleavings of scheduling, cancellation (including
mass cancellation, which is what triggers compaction) and stepping, and
checks the bookkeeping invariants the rest of the simulator relies on:

* ``pending_events`` always equals the number of scheduled-but-unfired,
  uncancelled events;
* ``heap_size`` never undercounts them (stale entries may pad it);
* cancelled events never fire, and live events fire exactly once, in
  (time, seq) FIFO order;
* a final unbounded ``run()`` drains everything.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator

# An operation stream: each element either schedules a new event with the
# given delay, cancels a previously scheduled one (index modulo the number
# of handles so far), or steps the simulator once.
ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("schedule"),
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        ),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10_000)),
        st.tuples(st.just("step"), st.just(0)),
    ),
    min_size=1,
    max_size=200,
)


@settings(max_examples=200, deadline=None)
@given(ops)
def test_compaction_keeps_bookkeeping_and_fire_order_consistent(stream):
    sim = Simulator()
    handles = []  # handles[tag] — the list index doubles as the event tag
    fired = []

    for op, value in stream:
        if op == "schedule":
            handles.append(sim.schedule(value, fired.append, len(handles)))
        elif op == "cancel" and handles:
            handles[value % len(handles)].cancel()
        elif op == "step":
            sim.step()
        # Invariants hold after *every* operation, not just at the end.
        live = sum(1 for h in handles if not h.cancelled and not h.fired)
        assert sim.pending_events == live
        assert sim.heap_size >= live

    sim.run()
    assert sim.pending_events == 0
    assert sim.heap_size == 0

    # Cancelled events never fire; live ones fire exactly once.
    cancelled_tags = {tag for tag, h in enumerate(handles) if h.cancelled}
    expected_tags = [tag for tag, h in enumerate(handles) if not h.cancelled]
    assert set(fired).isdisjoint(cancelled_tags)
    assert sorted(fired) == sorted(expected_tags)

    # Fire order respects (time, seq): among fired events, times are
    # non-decreasing, and equal times fire in scheduling (seq) order.
    keys = [(handles[tag].time, handles[tag].seq) for tag in fired]
    assert keys == sorted(keys)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=65, max_value=400),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
)
def test_mass_cancellation_compacts_and_survivors_fire(count, survivor_delay):
    # The compaction trigger needs > max(64, live) stale entries: cancel
    # a large block at once and check the physical heap shrinks while the
    # survivors still fire in order.
    sim = Simulator()
    doomed = [sim.schedule(float(i % 50), lambda: None) for i in range(count)]
    fired = []
    sim.schedule(survivor_delay, fired.append, "a")
    sim.schedule(survivor_delay, fired.append, "b")
    for handle in doomed:
        handle.cancel()
    assert sim.pending_events == 2
    assert sim.heap_size < count + 2  # compaction dropped stale entries
    sim.run()
    assert fired == ["a", "b"]
    assert sim.heap_size == 0
