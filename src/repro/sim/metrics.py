"""Measurement layer: per-query records and the paper's summary metrics.

The paper reports, per experiment, the number of queries executed per time
period, the average query response time (normalised against QA-NT's), the
time to assign a query to a node (Fig. 7), and the length of the overload
period (introduction example).  All of these derive from one immutable
record per query collected here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = [
    "QueryOutcome",
    "MetricsCollector",
    "normalised_response_times",
    "recovery_time_ms",
]


@dataclass(frozen=True)
class QueryOutcome:
    """Full life cycle of one query through the system."""

    qid: int
    class_index: int
    origin_node: int
    arrival_ms: float
    assigned_ms: float
    node_id: int
    start_ms: float
    finish_ms: float
    resubmissions: int = 0

    @property
    def response_ms(self) -> float:
        """End-to-end response time the client experienced."""
        return self.finish_ms - self.arrival_ms

    @property
    def assign_ms(self) -> float:
        """Time from arrival to node assignment (Fig. 7's 'time to assign')."""
        return self.assigned_ms - self.arrival_ms

    @property
    def execution_ms(self) -> float:
        """Pure execution time on the chosen node."""
        return self.finish_ms - self.start_ms


class MetricsCollector:
    """Accumulates query outcomes and derives the paper's metrics."""

    def __init__(self) -> None:
        self._outcomes: List[QueryOutcome] = []
        self._dropped = 0
        # Running sums maintained at record time so the headline means are
        # O(1) instead of re-scanning every outcome.  Accumulating in
        # record order performs the same float additions in the same order
        # as the old full-scan generators did, so the means are
        # bit-identical to the pre-optimisation values.
        self._sum_response_ms = 0.0
        self._sum_assign_ms = 0.0
        self._sum_resubmissions = 0
        self._max_finish_ms = 0.0
        # Fault-layer counters (all zero unless a fault injector ran; see
        # repro.sim.faults).  Snapshotted once at the end of a faulted run.
        self._timeouts = 0
        self._lost_messages = 0
        self._degraded_assignments = 0
        self._fault_retries = 0
        self._crash_count = 0
        self._partition_ms = 0.0
        # Negotiation counters derived from protocol exchanges: every
        # allocation attempt reports the messages and latency its
        # bid/dispatch exchanges cost (see FederationSimulation._try_assign).
        self._exchanges = 0
        self._refused_exchanges = 0
        self._negotiation_messages = 0
        self._negotiation_delay_ms = 0.0
        # Market-tick batching counters (all zero when batching is off):
        # how often same-timestamp arrivals were dispatched as one batch,
        # plus the allocator-side dispatcher counters snapshotted at the
        # end of the run (see FederationSimulation.run).
        self._batch_ticks = 0
        self._batched_queries = 0
        self._max_batch = 0
        self._vector_exchanges = 0
        self._scalar_fallbacks = 0
        self._batch_syncs = 0
        # Sharded-federation counters (see repro.sim.shards).  The
        # `_shard_stats_applied` flag gates their presence in
        # `batch_summary()`: single-process runs must keep emitting
        # exactly the historical key set, byte for byte.
        self._shard_stats_applied = False
        self._cross_shard_bids = 0
        self._barrier_wait_ms = 0.0
        self._shard_imbalance = 1.0
        self._shards = 1
        # Local-market reconciliation counters (see repro.sim.shards,
        # ``market="local"``).  Gated like the shard counters: the keys
        # only appear in `batch_summary()` after `apply_reconcile_stats`,
        # so coordinator-market and single-process summaries are
        # byte-stable.
        self._reconcile_stats_applied = False
        self._reconcile_barriers = 0
        self._reconcile_interval = 1
        self._reconcile_lag_ticks_max = 0
        self._price_staleness_max = 0.0
        self._overlapped_frames = 0
        self._local_classes = 0
        self._residual_classes = 0

    # -- recording ---------------------------------------------------------------

    def record(self, outcome: QueryOutcome) -> None:
        """Record one completed query."""
        self._outcomes.append(outcome)
        self._sum_response_ms += outcome.finish_ms - outcome.arrival_ms
        self._sum_assign_ms += outcome.assigned_ms - outcome.arrival_ms
        self._sum_resubmissions += outcome.resubmissions
        if outcome.finish_ms > self._max_finish_ms:
            self._max_finish_ms = outcome.finish_ms

    def record_drop(self) -> None:
        """Record a query that never completed within the simulation."""
        self._dropped += 1

    def record_exchange(
        self, messages: int, delay_ms: float, assigned: bool
    ) -> None:
        """Record the protocol cost of one allocation attempt.

        ``messages`` and ``delay_ms`` are the network legs and client-side
        latency of the attempt's bid/dispatch exchanges (an
        :class:`~repro.allocation.base.AssignmentDecision` carries them
        verbatim from the transport's
        :class:`~repro.protocol.transport.FanoutResult`); ``assigned`` is
        False when the attempt ended in refusal or silence and the query
        re-enters the pending pool.
        """
        self._exchanges += 1
        if not assigned:
            self._refused_exchanges += 1
        self._negotiation_messages += messages
        self._negotiation_delay_ms += delay_ms

    def record_batch_tick(self, size: int) -> None:
        """Record one same-tick arrival group dispatched as a batch."""
        self._batch_ticks += 1
        self._batched_queries += size
        if size > self._max_batch:
            self._max_batch = size

    def apply_batch_stats(
        self,
        vector_exchanges: int = 0,
        scalar_fallbacks: int = 0,
        syncs: int = 0,
    ) -> None:
        """Snapshot an allocator's batch-dispatcher counters.

        Called once by the federation at the end of a run whose allocator
        exposes ``batch_dispatch_stats``, so the dispatch telemetry
        travels with the query metrics.
        """
        self._vector_exchanges += int(vector_exchanges)
        self._scalar_fallbacks += int(scalar_fallbacks)
        self._batch_syncs += int(syncs)

    def apply_shard_stats(
        self,
        cross_shard_bids: int = 0,
        barrier_wait_ms: float = 0.0,
        shard_imbalance: float = 1.0,
        shards: int = 1,
    ) -> None:
        """Snapshot a sharded run's coordination counters.

        Called once by :class:`repro.sim.shards.ShardedFederation` at
        the end of a multi-process run; arms the shard keys of
        :meth:`batch_summary` (single-process summaries stay unchanged).
        """
        self._shard_stats_applied = True
        self._cross_shard_bids += int(cross_shard_bids)
        self._barrier_wait_ms += float(barrier_wait_ms)
        self._shard_imbalance = float(shard_imbalance)
        self._shards = int(shards)

    def apply_reconcile_stats(
        self,
        reconcile_barriers: int = 0,
        reconcile_interval: int = 1,
        reconcile_lag_ticks_max: int = 0,
        price_staleness_max: float = 0.0,
        overlapped_frames: int = 0,
        local_classes: int = 0,
        residual_classes: int = 0,
    ) -> None:
        """Snapshot a local-market run's reconciliation counters.

        Called once by :class:`repro.sim.shards.ShardedFederation` at the
        end of a ``market="local"`` run; arms the reconciliation keys of
        :meth:`batch_summary`.  ``reconcile_lag_ticks_max`` is the widest
        observed gap (in market ticks) between price-reconciliation
        barriers — bounded by ``reconcile_interval`` during the trace;
        ``price_staleness_max`` is the largest per-lane price drift the
        coordinator's mirror had accumulated when a barrier refreshed it
        (the realised staleness the R-interval contract bounds);
        ``overlapped_frames`` counts the one-way frames posted without a
        reply barrier — the double-buffering depth actually used.
        """
        self._reconcile_stats_applied = True
        self._reconcile_barriers += int(reconcile_barriers)
        self._reconcile_interval = int(reconcile_interval)
        if int(reconcile_lag_ticks_max) > self._reconcile_lag_ticks_max:
            self._reconcile_lag_ticks_max = int(reconcile_lag_ticks_max)
        if float(price_staleness_max) > self._price_staleness_max:
            self._price_staleness_max = float(price_staleness_max)
        self._overlapped_frames += int(overlapped_frames)
        self._local_classes = int(local_classes)
        self._residual_classes = int(residual_classes)

    def apply_fault_stats(
        self,
        timeouts: int = 0,
        lost_messages: int = 0,
        degraded_assignments: int = 0,
        fault_retries: int = 0,
        crash_count: int = 0,
        partition_ms: float = 0.0,
    ) -> None:
        """Snapshot the fault injector's counters into this collector.

        Called once by the federation at the end of a faulted run, so the
        fault metrics travel with the query metrics (and through the
        sweep runner's flat cell dicts).
        """
        self._timeouts += int(timeouts)
        self._lost_messages += int(lost_messages)
        self._degraded_assignments += int(degraded_assignments)
        self._fault_retries += int(fault_retries)
        self._crash_count += int(crash_count)
        self._partition_ms += float(partition_ms)

    # -- raw access ----------------------------------------------------------------

    @property
    def outcomes(self) -> List[QueryOutcome]:
        """All completed-query records."""
        return self._outcomes

    @property
    def completed(self) -> int:
        """Number of queries that finished."""
        return len(self._outcomes)

    @property
    def dropped(self) -> int:
        """Number of queries still unserved when the simulation ended."""
        return self._dropped

    # -- negotiation metrics -------------------------------------------------------

    @property
    def exchanges(self) -> int:
        """Allocation attempts whose protocol cost was recorded."""
        return self._exchanges

    @property
    def refused_exchanges(self) -> int:
        """Attempts that ended unassigned (refusal or total silence)."""
        return self._refused_exchanges

    @property
    def negotiation_messages(self) -> int:
        """Network messages spent on bid/dispatch exchanges."""
        return self._negotiation_messages

    @property
    def negotiation_delay_ms(self) -> float:
        """Total client-side negotiation latency across all attempts."""
        return self._negotiation_delay_ms

    def mean_negotiation_delay_ms(self) -> float:
        """Average negotiation latency per allocation attempt."""
        if not self._exchanges:
            return math.nan
        return self._negotiation_delay_ms / self._exchanges

    def negotiation_summary(self) -> Dict[str, float]:
        """The protocol-exchange counters as one flat mapping."""
        return {
            "exchanges": float(self._exchanges),
            "refused_exchanges": float(self._refused_exchanges),
            "negotiation_messages": float(self._negotiation_messages),
            "negotiation_delay_ms": self._negotiation_delay_ms,
        }

    # -- market-tick batching metrics ----------------------------------------------

    @property
    def batch_ticks(self) -> int:
        """Same-tick arrival groups dispatched through ``assign_batch``."""
        return self._batch_ticks

    @property
    def batched_queries(self) -> int:
        """Queries allocated inside batch dispatches."""
        return self._batched_queries

    @property
    def max_batch(self) -> int:
        """Largest single batch dispatched."""
        return self._max_batch

    @property
    def vector_exchanges(self) -> int:
        """Request-for-bid exchanges answered on the vector path."""
        return self._vector_exchanges

    @property
    def scalar_fallbacks(self) -> int:
        """Exchanges the dispatcher dropped to the scalar loop for."""
        return self._scalar_fallbacks

    @property
    def cross_shard_bids(self) -> int:
        """BidRequest broadcasts delivered across shard boundaries."""
        return self._cross_shard_bids

    @property
    def barrier_wait_ms(self) -> float:
        """Wall-clock time the coordinator spent blocked at barriers."""
        return self._barrier_wait_ms

    @property
    def shard_imbalance(self) -> float:
        """Max-over-mean of per-shard assigned-query counts."""
        return self._shard_imbalance

    def batch_summary(self) -> Dict[str, float]:
        """The batching counters as one flat mapping (sweep-cell currency).

        Sharded runs (see :meth:`apply_shard_stats`) additionally carry
        the shard coordination counters; the keys are absent otherwise
        so historical single-process summaries serialize unchanged.
        """
        summary = {
            "batch_ticks": float(self._batch_ticks),
            "batched_queries": float(self._batched_queries),
            "max_batch": float(self._max_batch),
            "vector_exchanges": float(self._vector_exchanges),
            "scalar_fallbacks": float(self._scalar_fallbacks),
            "batch_syncs": float(self._batch_syncs),
        }
        if self._shard_stats_applied:
            summary["cross_shard_bids"] = float(self._cross_shard_bids)
            summary["barrier_wait_ms"] = self._barrier_wait_ms
            summary["shard_imbalance"] = self._shard_imbalance
            summary["shards"] = float(self._shards)
        if self._reconcile_stats_applied:
            summary["reconcile_barriers"] = float(self._reconcile_barriers)
            summary["reconcile_interval"] = float(self._reconcile_interval)
            summary["reconcile_lag_ticks_max"] = float(
                self._reconcile_lag_ticks_max
            )
            summary["price_staleness_max"] = self._price_staleness_max
            summary["overlapped_frames"] = float(self._overlapped_frames)
            summary["local_classes"] = float(self._local_classes)
            summary["residual_classes"] = float(self._residual_classes)
        return summary

    # -- fault metrics -------------------------------------------------------------

    @property
    def timeouts(self) -> int:
        """Bid-reply timeouts clients experienced (fault runs only)."""
        return self._timeouts

    @property
    def lost_messages(self) -> int:
        """Messages lost to drops and partitions (fault runs only)."""
        return self._lost_messages

    @property
    def degraded_assignments(self) -> int:
        """Assignments made from stale cached info under total silence."""
        return self._degraded_assignments

    @property
    def fault_retries(self) -> int:
        """Resubmissions scheduled through the backoff policy."""
        return self._fault_retries

    @property
    def crash_count(self) -> int:
        """Churn-induced node crashes injected during the run."""
        return self._crash_count

    @property
    def partition_ms(self) -> float:
        """Total time during which any network partition was active."""
        return self._partition_ms

    def fault_summary(self) -> Dict[str, float]:
        """The fault counters as one flat mapping (sweep-cell currency)."""
        return {
            "timeouts": float(self._timeouts),
            "lost_messages": float(self._lost_messages),
            "degraded_assignments": float(self._degraded_assignments),
            "fault_retries": float(self._fault_retries),
            "crash_count": float(self._crash_count),
            "partition_ms": self._partition_ms,
        }

    # -- headline metrics -------------------------------------------------------------

    def mean_response_ms(self) -> float:
        """Average query response time (NaN when nothing completed)."""
        if not self._outcomes:
            return math.nan
        return self._sum_response_ms / len(self._outcomes)

    def mean_assign_ms(self) -> float:
        """Average time to assign a query to a node (Fig. 7 metric)."""
        if not self._outcomes:
            return math.nan
        return self._sum_assign_ms / len(self._outcomes)

    def mean_resubmissions(self) -> float:
        """Average number of resubmissions per completed query."""
        if not self._outcomes:
            return math.nan
        return self._sum_resubmissions / len(self._outcomes)

    def last_finish_ms(self) -> float:
        """When the system drained — the end of the overload period."""
        if not self._outcomes:
            return 0.0
        return self._max_finish_ms

    def percentile_response_ms(self, fraction: float) -> float:
        """Response-time percentile, e.g. ``fraction=0.95`` for p95."""
        if not 0 <= fraction <= 1:
            raise ValueError("fraction must be in [0, 1]")
        if not self._outcomes:
            return math.nan
        ordered = sorted(o.response_ms for o in self._outcomes)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    # -- per-period series (the x-axes of Figs. 3-5) ----------------------------------

    def executed_per_period(
        self,
        period_ms: float,
        horizon_ms: float,
        class_index: Optional[int] = None,
    ) -> List[int]:
        """Queries finished in each period of length ``period_ms``.

        ``class_index`` restricts the count to one class (Fig. 5c plots Q1
        executions per half-second).
        """
        if period_ms <= 0:
            raise ValueError("period must be positive")
        num_periods = max(1, int(math.ceil(horizon_ms / period_ms)))
        counts = [0] * num_periods
        for outcome in self._outcomes:
            if class_index is not None and outcome.class_index != class_index:
                continue
            bucket = int(outcome.finish_ms // period_ms)
            if 0 <= bucket < num_periods:
                counts[bucket] += 1
        return counts

    def mean_response_by_class(self) -> Dict[int, float]:
        """Average response time per query class."""
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for outcome in self._outcomes:
            sums[outcome.class_index] = (
                sums.get(outcome.class_index, 0.0) + outcome.response_ms
            )
            counts[outcome.class_index] = counts.get(outcome.class_index, 0) + 1
        return {k: sums[k] / counts[k] for k in sums}


def normalised_response_times(
    baseline: MetricsCollector, collectors: Dict[str, MetricsCollector]
) -> Dict[str, float]:
    """Each mechanism's mean response divided by the baseline's.

    The paper normalises every algorithm's response time by QA-NT's, so
    QA-NT plots at 1.0 and larger is worse.
    """
    reference = baseline.mean_response_ms()
    if not reference or math.isnan(reference):
        raise ValueError("baseline has no completed queries to normalise by")
    return {
        name: collector.mean_response_ms() / reference
        for name, collector in collectors.items()
    }


def recovery_time_ms(
    collector: MetricsCollector,
    baseline_ms: float,
    from_ms: float,
    window_ms: float = 2_000.0,
    factor: float = 1.5,
) -> float:
    """Time after ``from_ms`` until response times return to baseline.

    Buckets the responses of queries *arriving* at or after ``from_ms``
    (the end of an outage or partition window) into ``window_ms`` bins
    and returns the end of the first non-empty bin whose mean response is
    within ``factor`` times ``baseline_ms`` — the per-phase recovery time
    the failure and chaos experiments report.  NaN when the system never
    recovers within the recorded horizon (or the baseline is unusable).
    """
    if window_ms <= 0:
        raise ValueError("window must be positive")
    if factor <= 0:
        raise ValueError("factor must be positive")
    if not baseline_ms or math.isnan(baseline_ms):
        return math.nan
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for outcome in collector.outcomes:
        if outcome.arrival_ms < from_ms:
            continue
        bucket = int((outcome.arrival_ms - from_ms) // window_ms)
        sums[bucket] = sums.get(bucket, 0.0) + outcome.response_ms
        counts[bucket] = counts.get(bucket, 0) + 1
    threshold = factor * baseline_ms
    for bucket in sorted(counts):
        if sums[bucket] / counts[bucket] <= threshold:
            return (bucket + 1) * window_ms
    return math.nan
