"""Multi-seed replication of stochastic experiments.

Single runs of a discrete-event simulation are noisy; every quantitative
claim in EXPERIMENTS.md should survive re-seeding.  :func:`replicate`
runs a seed-parameterised measurement several times and reports mean,
standard deviation, and the extremes, and :func:`ratio_confident`
answers the question the benchmark assertions actually ask: "does
mechanism A beat mechanism B *consistently*, not just on one seed?"
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = [
    "Replication",
    "replicate",
    "ratio_confident",
]


@dataclass(frozen=True)
class Replication:
    """Summary statistics of one measurement across seeds."""

    values: tuple
    seeds: tuple

    @property
    def mean(self) -> float:
        """Arithmetic mean across seeds."""
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        """Sample standard deviation (0 for a single seed)."""
        n = len(self.values)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((v - mu) ** 2 for v in self.values) / (n - 1))

    @property
    def min(self) -> float:
        """Smallest observed value."""
        return min(self.values)

    @property
    def max(self) -> float:
        """Largest observed value."""
        return max(self.values)

    def render(self) -> str:
        """One-line summary."""
        return "mean %.3f +/- %.3f (min %.3f, max %.3f, n=%d)" % (
            self.mean,
            self.std,
            self.min,
            self.max,
            len(self.values),
        )

    def to_dict(self) -> dict:
        """JSON-ready form: raw values plus summary statistics."""
        return {
            "values": list(self.values),
            "seeds": list(self.seeds),
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "max": self.max,
        }


def replicate(
    measure: Callable[[int], float], seeds: Sequence[int]
) -> Replication:
    """Run ``measure(seed)`` for every seed and summarise.

    ``measure`` should build a *fresh* world/federation from the seed —
    reusing simulation state across seeds invalidates independence.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    values = tuple(float(measure(seed)) for seed in seeds)
    for value in values:
        if math.isnan(value):
            raise ValueError("measurement returned NaN")
    return Replication(values=values, seeds=tuple(seeds))


def ratio_confident(
    numerator: Callable[[int], float],
    denominator: Callable[[int], float],
    seeds: Sequence[int],
    threshold: float = 1.0,
) -> bool:
    """True iff ``numerator/denominator > threshold`` on a majority of seeds.

    The per-seed pairing (same seed feeds both measurements) cancels
    workload randomness, which is the right comparison for "mechanism A
    beats mechanism B on the same trace".
    """
    wins = 0
    for seed in seeds:
        if numerator(seed) / denominator(seed) > threshold:
            wins += 1
    return wins * 2 > len(seeds)
