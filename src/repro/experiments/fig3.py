"""Experiment E3 — the example sinusoid workload (paper Figure 3).

Figure 3 plots the number of queries entering the system per half second
for the two-query workload: Q1 and Q2 arrival rates follow 0.05 Hz
sinusoids with a phase difference, Q1 peaking at twice Q2's rate.  This
driver generates the trace and buckets arrivals per half-second, producing
the two series of the figure.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import List

from ..workload import two_class_sinusoid_trace
from .reporting import format_series
from .spec import ScalePreset, ScenarioSpec, register

__all__ = [
    "Fig3Result",
    "run_fig3",
]


@dataclass
class Fig3Result:
    """Per-half-second arrival counts of Q1 and Q2."""

    bucket_ms: float
    q1_per_bucket: List[int]
    q2_per_bucket: List[int]

    @property
    def times_s(self) -> List[float]:
        """Bucket start times in seconds (the figure's x axis)."""
        return [i * self.bucket_ms / 1000.0 for i in range(len(self.q1_per_bucket))]

    def render(self) -> str:
        """Both series as text."""
        return "%s\n%s" % (
            format_series("Q1 arrivals per 500ms", self.times_s, self.q1_per_bucket),
            format_series("Q2 arrivals per 500ms", self.times_s, self.q2_per_bucket),
        )

    def to_dict(self) -> dict:
        """JSON-ready form of both arrival series."""
        payload = asdict(self)
        payload["times_s"] = self.times_s
        return payload


def run_fig3(
    horizon_ms: float = 40_000.0,
    frequency_hz: float = 0.05,
    q1_peak_rate_per_ms: float = 0.02,
    bucket_ms: float = 500.0,
    seed: int = 0,
) -> Fig3Result:
    """Generate the Figure 3 workload and bucket its arrivals."""
    trace = two_class_sinusoid_trace(
        horizon_ms=horizon_ms,
        q1_peak_rate_per_ms=q1_peak_rate_per_ms,
        frequency_hz=frequency_hz,
        origin_nodes=(0,),
        seed=seed,
    )
    num_buckets = int(math.ceil(horizon_ms / bucket_ms))
    q1 = [0] * num_buckets
    q2 = [0] * num_buckets
    for event in trace:
        bucket = min(num_buckets - 1, int(event.time_ms // bucket_ms))
        if event.class_index == 0:
            q1[bucket] += 1
        else:
            q2[bucket] += 1
    return Fig3Result(bucket_ms=bucket_ms, q1_per_bucket=q1, q2_per_bucket=q2)


register(
    ScenarioSpec(
        name="fig3",
        title="Fig. 3 — the two-query sinusoid workload",
        runner=run_fig3,
        scales={
            "small": ScalePreset(
                fixed={"horizon_ms": 40_000.0, "q1_peak_rate_per_ms": 0.05}
            ),
            "paper": ScalePreset(
                fixed={"horizon_ms": 40_000.0, "q1_peak_rate_per_ms": 0.05}
            ),
        },
    )
)
