"""Declarative experiment specifications and the experiment registry.

Every paper artefact (figure, table, ablation, extension) is described by
one frozen :class:`ScenarioSpec` that bundles what used to live in
per-driver CLI shims: the scale presets ("small" vs "paper" sizes), the
sweep axis, the mechanisms compared, and — for sweepable experiments — a
picklable *cell function* that evaluates one independent
(mechanism, sweep-point, seed) unit of work (:class:`SweepCell`).

Driver modules register their spec into the global :data:`REGISTRY` at
import time, so importing :mod:`repro.experiments` yields the complete
catalogue; the CLI and the sweep runner (:mod:`repro.experiments.runner`)
are generic consumers of it.  Adding a new experiment is therefore a
``register(ScenarioSpec(...))`` call, not a new CLI code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

__all__ = [
    "SCALES",
    "ScalePreset",
    "ScenarioSpec",
    "SweepCell",
    "ExperimentRegistry",
    "REGISTRY",
    "register",
]

#: The two supported federation/workload sizes.
SCALES = ("small", "paper")


@dataclass(frozen=True)
class ScalePreset:
    """Concrete sizes for one scale of a scenario.

    ``points`` are the sweep-axis values (empty for non-sweep scenarios);
    ``fixed`` holds the remaining keyword arguments passed verbatim to the
    scenario's runner or cell function.  Everything in ``fixed`` must be
    picklable — sweep cells may execute in worker processes.
    """

    points: Tuple[object, ...] = ()
    fixed: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class SweepCell:
    """One independent (mechanism, sweep-point, seed) unit of work.

    Cells are expanded from a spec by the runner; ``seed`` is the
    replicate seed the cell function receives and ``cell_key`` is the
    stable identity used for deterministic seed derivation and for
    matching cached/parallel results back to their grid position.
    """

    experiment: str
    mechanism: str
    point: object
    point_index: int
    seed: int
    seed_index: int

    @property
    def cell_key(self) -> Tuple[object, ...]:
        """Stable identity of this cell within the sweep grid."""
        return (
            self.experiment,
            self.mechanism,
            self.point_index,
            self.seed_index,
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one experiment.

    Two kinds of scenario share the class:

    * **plain** scenarios provide ``runner`` — called as
      ``runner(seed=seed, **preset.fixed)`` and returning a result object
      with ``render()`` and ``to_dict()``;
    * **sweepable** scenarios provide ``cell`` + ``axis`` +
      ``mechanisms`` — the runner expands the preset's points into
      :class:`SweepCell` s and executes them serially or on a process
      pool.  ``cell`` must be a module-level (picklable) callable with
      signature ``cell(mechanism, point, point_index, seed, **fixed)``
      returning a flat mapping of metric name to number.

    ``ratio_of`` optionally names a ``(numerator, denominator)``
    mechanism pair whose paired per-seed ratio of ``primary_metric`` is
    the figure's headline series (e.g. greedy/qa-nt response).
    """

    name: str
    title: str
    scales: Mapping[str, ScalePreset]
    runner: Optional[Callable[..., object]] = None
    cell: Optional[Callable[..., Mapping[str, float]]] = None
    axis: str = ""
    mechanisms: Tuple[str, ...] = ()
    primary_metric: str = "mean_response_ms"
    ratio_of: Optional[Tuple[str, str]] = None
    #: Sweepable scenarios that inject faults set this; the runner then
    #: derives a per-cell ``fault_seed`` keyword (from the sweep-level
    #: fault seed) in the parent process, so fault streams are
    #: reproducible independently of workload seeds and identical across
    #: serial and ``--jobs N`` runs.
    fault_aware: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        if not self.scales:
            raise ValueError("scenario %r needs at least one scale preset" % self.name)
        if (self.runner is None) == (self.cell is None):
            raise ValueError(
                "scenario %r must define exactly one of runner/cell" % self.name
            )
        if self.cell is not None:
            if not self.axis or not self.mechanisms:
                raise ValueError(
                    "sweepable scenario %r needs an axis and mechanisms" % self.name
                )
            for scale, preset in self.scales.items():
                if not preset.points:
                    raise ValueError(
                        "sweepable scenario %r has no points at scale %r"
                        % (self.name, scale)
                    )
        if self.fault_aware and self.cell is None:
            raise ValueError(
                "fault-aware scenario %r must be sweepable" % self.name
            )
        if self.ratio_of is not None:
            for mechanism in self.ratio_of:
                if mechanism not in self.mechanisms:
                    raise ValueError(
                        "ratio mechanism %r not in %r" % (mechanism, self.mechanisms)
                    )

    @property
    def sweepable(self) -> bool:
        """True when the scenario expands into independent sweep cells."""
        return self.cell is not None

    def preset(self, scale: str) -> ScalePreset:
        """The preset for ``scale`` (KeyError lists the known scales)."""
        try:
            return self.scales[scale]
        except KeyError:
            raise KeyError(
                "scenario %r has no scale %r (known: %s)"
                % (self.name, scale, ", ".join(sorted(self.scales)))
            ) from None


class ExperimentRegistry:
    """Name-keyed catalogue of every registered :class:`ScenarioSpec`."""

    def __init__(self) -> None:
        self._specs: Dict[str, ScenarioSpec] = {}

    def register(self, spec: ScenarioSpec) -> ScenarioSpec:
        """Add ``spec``; duplicate names are a programming error."""
        if spec.name in self._specs:
            raise ValueError("experiment %r already registered" % spec.name)
        self._specs[spec.name] = spec
        return spec

    def unregister(self, name: str) -> None:
        """Remove a spec (mainly for tests registering throwaway specs)."""
        del self._specs[name]

    def get(self, name: str) -> ScenarioSpec:
        """Look up a spec by name with a helpful error."""
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(
                "unknown experiment %r (known: %s)"
                % (name, ", ".join(self.names()))
            ) from None

    def names(self) -> List[str]:
        """All registered experiment names, sorted."""
        return sorted(self._specs)

    def items(self) -> List[Tuple[str, ScenarioSpec]]:
        """(name, spec) pairs, sorted by name."""
        return sorted(self._specs.items())

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)


#: The process-wide registry every driver module registers into.
REGISTRY = ExperimentRegistry()


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Register ``spec`` into the global :data:`REGISTRY`."""
    return REGISTRY.register(spec)
