"""Query allocation mechanisms: QA-NT and every baseline of paper Section 4."""

from .base import AllocationContext, Allocator, AssignmentDecision
from .bnqrd import BnqrdAllocator
from .greedy import GreedyAllocator
from .least_imbalance import LeastImbalanceAllocator
from .markov import MarkovAllocator, optimise_routing
from .qant import QantAllocator
from .random_choice import RandomAllocator
from .round_robin import RoundRobinAllocator
from .two_probes import TwoRandomProbesAllocator

__all__ = [
    "AllocationContext",
    "Allocator",
    "AssignmentDecision",
    "BnqrdAllocator",
    "GreedyAllocator",
    "LeastImbalanceAllocator",
    "MarkovAllocator",
    "QantAllocator",
    "RandomAllocator",
    "RoundRobinAllocator",
    "TwoRandomProbesAllocator",
    "optimise_routing",
]

#: Registry of default-constructible mechanisms keyed by report name.
#: Markov is absent because it needs the static class rates up front.
DEFAULT_MECHANISMS = {
    "qa-nt": QantAllocator,
    "greedy": GreedyAllocator,
    "random": RandomAllocator,
    "round-robin": RoundRobinAllocator,
    "bnqrd": BnqrdAllocator,
    "two-probes": TwoRandomProbesAllocator,
    "least-imbalance": LeastImbalanceAllocator,
}
