"""Extension experiment F1 — node failures (the paper's Section 1 motivation).

The paper motivates autonomic query allocation with temporary overloads
caused by, among other things, "multiple node failures".  This experiment
injects exactly that: a fraction of the federation's nodes goes down for
a window in the middle of a steady workload, shrinking system capacity
below the offered load, and the mechanisms are compared on how the
response time degrades during the outage and how quickly it recovers.

Failed nodes drain their committed queue but accept no new queries;
every mechanism sees the same failure schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..allocation import Allocator, GreedyAllocator, QantAllocator
from ..sim import FederationConfig, build_federation
from ..sim.faults import FaultSpec
from ..sim.metrics import recovery_time_ms
from ..workload import PoissonArrivals, build_trace
from .reporting import format_table
from .setups import World, two_query_world
from .spec import ScalePreset, ScenarioSpec, register

__all__ = [
    "FailureResult",
    "failures_cell",
    "run_failures",
]


@dataclass
class FailureResult:
    """Per-mechanism response times before / during / after the outage."""

    outage_window_ms: Tuple[float, float]
    failed_nodes: Tuple[int, ...]
    #: mechanism -> {"before": ms, "during": ms, "after": ms}
    phases: Dict[str, Dict[str, float]]

    def degradation(self, mechanism: str) -> float:
        """Response during the outage relative to before it."""
        phase = self.phases[mechanism]
        return phase["during"] / phase["before"]

    def render(self) -> str:
        """The three-phase comparison as a table."""
        rows = [
            (
                mechanism,
                phase["before"],
                phase["during"],
                phase["after"],
                self.degradation(mechanism),
                phase.get("recovery_ms", math.nan),
            )
            for mechanism, phase in sorted(self.phases.items())
        ]
        table = format_table(
            (
                "mechanism",
                "before (ms)",
                "during outage (ms)",
                "after (ms)",
                "degradation",
                "recovery (ms)",
            ),
            rows,
        )
        return "%s\noutage: nodes %s down during [%.0f, %.0f) ms" % (
            table,
            list(self.failed_nodes),
            *self.outage_window_ms,
        )

    def to_dict(self) -> dict:
        """JSON-ready form: phases plus the per-mechanism degradation."""
        return {
            "outage_window_ms": list(self.outage_window_ms),
            "failed_nodes": list(self.failed_nodes),
            "phases": {name: dict(phase) for name, phase in self.phases.items()},
            "degradation": {
                name: self.degradation(name) for name in self.phases
            },
        }


def _failure_phases(
    world: World,
    trace,
    factory: Callable[[], Allocator],
    failed: Tuple[int, ...],
    outage_window_ms: Tuple[float, float],
    seed: int,
) -> Dict[str, float]:
    """Run one mechanism under the outage schedule; mean response per phase.

    The outage window is expressed as a scripted :class:`FaultSpec` and
    driven through the fault scheduler — the same fail/drain semantics the
    old ad-hoc per-node toggling had, now sharing the chaos experiments'
    machinery.  A node-fault-only spec leaves the network and allocator
    message paths untouched, so results match the pre-fault-layer runs
    exactly.
    """
    start_ms, end_ms = outage_window_ms
    federation = build_federation(
        world.specs,
        world.placement,
        world.classes,
        world.cost_model,
        factory(),
        FederationConfig(
            seed=seed + 2,
            drain_ms=120_000.0,
            faults=FaultSpec(
                scripted_outages={nid: ((start_ms, end_ms),) for nid in failed}
            ),
        ),
    )
    metrics = federation.run(trace)
    phases = _phase_means(metrics, start_ms, end_ms)
    phases["recovery_ms"] = recovery_time_ms(
        metrics, baseline_ms=phases["before"], from_ms=end_ms
    )
    return phases


def failures_cell(
    mechanism: str,
    failed_fraction: float,
    point_index: int,
    seed: int,
    num_nodes: int = 40,
    outage_window_ms: Tuple[float, float] = (20_000.0, 40_000.0),
    horizon_ms: float = 60_000.0,
    load_fraction: float = 0.6,
    world: Optional[World] = None,
) -> Dict[str, float]:
    """One (mechanism, failed fraction, seed) sweep cell."""
    world = world or two_query_world(num_nodes=num_nodes, seed=seed)
    capacity = world.capacity_qpms([2.0, 1.0])
    trace = build_trace(
        {
            0: PoissonArrivals(load_fraction * capacity * 2.0 / 3.0),
            1: PoissonArrivals(load_fraction * capacity / 3.0),
        },
        horizon_ms=horizon_ms,
        origin_nodes=world.placement.node_ids,
        seed=seed + 1,
    )
    stride = max(1, int(1 / failed_fraction))
    failed = tuple(nid for nid in world.placement.node_ids if nid % stride == 0)
    factories = {"qa-nt": QantAllocator, "greedy": GreedyAllocator}
    phases = _failure_phases(
        world, trace, factories[mechanism], failed, outage_window_ms, seed
    )
    return {
        "before_ms": phases["before"],
        "during_ms": phases["during"],
        "after_ms": phases["after"],
        "degradation": phases["during"] / phases["before"],
        "recovery_ms": phases["recovery_ms"],
    }


def run_failures(
    num_nodes: int = 40,
    failed_fraction: float = 0.3,
    outage_window_ms: Tuple[float, float] = (20_000.0, 40_000.0),
    horizon_ms: float = 60_000.0,
    load_fraction: float = 0.6,
    mechanisms: Optional[Dict[str, Callable[[], Allocator]]] = None,
    seed: int = 0,
) -> FailureResult:
    """Steady Poisson load; a node subset fails mid-run.

    ``load_fraction`` is relative to the *healthy* capacity, so with 30 %
    of nodes down a 0.6 load typically exceeds the surviving capacity —
    the paper's transient-overload scenario.
    """
    if not 0 < failed_fraction < 1:
        raise ValueError("failed fraction must be in (0, 1)")
    start_ms, end_ms = outage_window_ms
    if not 0 < start_ms < end_ms <= horizon_ms:
        raise ValueError("outage window must lie inside the horizon")

    world = two_query_world(num_nodes=num_nodes, seed=seed)
    capacity = world.capacity_qpms([2.0, 1.0])
    trace = build_trace(
        {
            0: PoissonArrivals(load_fraction * capacity * 2.0 / 3.0),
            1: PoissonArrivals(load_fraction * capacity / 3.0),
        },
        horizon_ms=horizon_ms,
        origin_nodes=world.placement.node_ids,
        seed=seed + 1,
    )
    # Fail every k-th node so both Q2-capable (even) and Q1-only nodes go.
    stride = max(1, int(1 / failed_fraction))
    failed = tuple(
        nid for nid in world.placement.node_ids if nid % stride == 0
    )

    mechanisms = mechanisms or {"qa-nt": QantAllocator, "greedy": GreedyAllocator}
    phases: Dict[str, Dict[str, float]] = {}
    for name, factory in mechanisms.items():
        phases[name] = _failure_phases(
            world, trace, factory, failed, outage_window_ms, seed
        )
    return FailureResult(
        outage_window_ms=outage_window_ms, failed_nodes=failed, phases=phases
    )


def _phase_means(
    metrics, start_ms: float, end_ms: float
) -> Dict[str, float]:
    sums = {"before": 0.0, "during": 0.0, "after": 0.0}
    counts = {"before": 0, "during": 0, "after": 0}
    for outcome in metrics.outcomes:
        if outcome.arrival_ms < start_ms:
            phase = "before"
        elif outcome.arrival_ms < end_ms:
            phase = "during"
        else:
            phase = "after"
        sums[phase] += outcome.response_ms
        counts[phase] += 1
    return {
        phase: (sums[phase] / counts[phase]) if counts[phase] else math.nan
        for phase in sums
    }


register(
    ScenarioSpec(
        name="failures",
        title="F1 — response-time degradation under node failures",
        cell=failures_cell,
        axis="failed_fraction",
        mechanisms=("qa-nt", "greedy"),
        primary_metric="during_ms",
        scales={
            "small": ScalePreset(points=(0.3,), fixed={"num_nodes": 30}),
            "paper": ScalePreset(points=(0.3,), fixed={"num_nodes": 100}),
        },
    )
)
