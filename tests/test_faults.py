"""Tests for the deterministic fault-injection layer (repro.sim.faults).

Covers the spec/injector unit behaviour, the faulty network fan-out, the
allocators' degradation paths, the federation's backoff machinery, and
the three property suites the robustness PR pins:

(i)   an *inactive* fault spec leaves simulated traces byte-identical to
      a run with no fault layer at all;
(ii)  the same fault seed yields the same fault schedule everywhere —
      across injector instances and across serial vs ``--jobs N`` sweeps;
(iii) backoff delays are bounded by the cap and monotone in the attempt.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation import (
    GreedyAllocator,
    QantAllocator,
    RandomAllocator,
    RoundRobinAllocator,
)
from repro.experiments.chaos import chaos_cell
from repro.experiments.runner import _json_safe, run_sweep
from repro.experiments.setups import two_query_world
from repro.experiments.spec import ScalePreset, ScenarioSpec
from repro.query.model import Query
from repro.sim import FederationConfig, build_federation
from repro.sim.faults import (
    FaultInjector,
    FaultSpec,
    PartitionWindow,
    derive_fault_seed,
    half_partition,
)
from repro.workload import PoissonArrivals, build_trace

from test_golden_trace import _outcome_digest


# ----------------------------------------------------------------- fixtures


def _small_world(num_nodes=10, seed=0):
    return two_query_world(num_nodes=num_nodes, seed=seed)


def _small_trace(world, horizon_ms=2_000.0, load_fraction=0.8, seed=1):
    capacity = world.capacity_qpms([2.0, 1.0])
    return build_trace(
        {
            0: PoissonArrivals(load_fraction * capacity * 2.0 / 3.0),
            1: PoissonArrivals(load_fraction * capacity / 3.0),
        },
        horizon_ms=horizon_ms,
        origin_nodes=world.placement.node_ids,
        seed=seed,
    )


def _run(world, trace, factory, faults=None, seed=2, drain_ms=20_000.0):
    federation = build_federation(
        world.specs,
        world.placement,
        world.classes,
        world.cost_model,
        factory(),
        FederationConfig(seed=seed, drain_ms=drain_ms, faults=faults),
    )
    metrics = federation.run(trace)
    return federation, metrics


# ------------------------------------------------------------ FaultSpec


class TestFaultSpec:
    def test_default_spec_is_inert(self):
        spec = FaultSpec()
        assert not spec.message_faults
        assert not spec.node_faults
        assert not spec.active

    def test_message_fault_triggers(self):
        assert FaultSpec(drop_probability=0.1).message_faults
        assert FaultSpec(spike_probability=0.1).message_faults
        window = PartitionWindow((0,), (1,), 0.0, 10.0)
        assert FaultSpec(partitions=(window,)).message_faults

    def test_node_fault_triggers(self):
        assert FaultSpec(crash_rate_per_min=1.0).node_faults
        assert FaultSpec(scripted_outages={0: ((0.0, 5.0),)}).node_faults
        assert not FaultSpec(crash_rate_per_min=1.0).message_faults

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop_probability": 1.5},
            {"drop_probability": -0.1},
            {"spike_probability": 2.0},
            {"spike_ms": -1.0},
            {"crash_rate_per_min": -1.0},
            {"mean_downtime_ms": 0.0},
            {"bid_timeout_ms": 0.0},
            {"backoff_base_ms": 0.0},
            {"backoff_factor": 0.5},
            {"backoff_base_ms": 500.0, "backoff_cap_ms": 100.0},
            {"scripted_outages": {0: ((5.0, 5.0),)}},
            {"scripted_outages": {0: ((-1.0, 5.0),)}},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)


class TestPartitionWindow:
    def test_severs_is_symmetric_and_windowed(self):
        window = PartitionWindow((0, 2), (1, 3), 100.0, 200.0)
        assert window.severs(0, 1, 100.0)
        assert window.severs(1, 0, 150.0)
        assert not window.severs(0, 1, 99.9)
        assert not window.severs(0, 1, 200.0)  # half-open interval
        assert not window.severs(0, 2, 150.0)  # same side
        assert not window.severs(0, 7, 150.0)  # 7 in neither group

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionWindow((0,), (0,), 0.0, 10.0)  # overlap
        with pytest.raises(ValueError):
            PartitionWindow((), (1,), 0.0, 10.0)  # empty group
        with pytest.raises(ValueError):
            PartitionWindow((0,), (1,), 10.0, 10.0)  # zero-length

    def test_half_partition_splits_even_odd(self):
        window = half_partition(range(6), 10.0, 20.0)
        assert window.group_a == (0, 2, 4)
        assert window.group_b == (1, 3, 5)


# --------------------------------------------------------- FaultInjector


class TestFaultInjector:
    def test_drop_extremes(self):
        always = FaultInjector(FaultSpec(drop_probability=1.0))
        never = FaultInjector(FaultSpec(spike_probability=0.5))
        assert all(always.drop_message() for __ in range(20))
        assert not any(never.drop_message() for __ in range(20))

    def test_streams_are_independent(self):
        """Enabling churn must not shift the message-decision stream."""
        base = FaultSpec(drop_probability=0.5, fault_seed=9)
        churny = FaultSpec(
            drop_probability=0.5, crash_rate_per_min=3.0, fault_seed=9
        )
        a, b = FaultInjector(base), FaultInjector(churny)
        b.churn_windows(range(10), 60_000.0)  # consume the churn stream
        assert [a.drop_message() for __ in range(100)] == [
            b.drop_message() for __ in range(100)
        ]

    def test_partition_ms_unions_overlaps(self):
        windows = (
            PartitionWindow((0,), (1,), 0.0, 100.0),
            PartitionWindow((0,), (1,), 50.0, 150.0),
            PartitionWindow((2,), (3,), 300.0, 400.0),
        )
        injector = FaultInjector(FaultSpec(partitions=windows))
        assert injector.partition_ms() == 250.0

    def test_reachable_filters_partitioned_peers(self):
        window = half_partition(range(4), 0.0, 100.0)
        injector = FaultInjector(FaultSpec(partitions=(window,)))
        assert injector.reachable(1, (0, 1, 2, 3), 50.0) == (1, 3)
        assert injector.reachable(1, (0, 1, 2, 3), 150.0) == (0, 1, 2, 3)

    def test_churn_windows_deterministic_and_cached(self):
        spec = FaultSpec(crash_rate_per_min=5.0, fault_seed=4)
        a, b = FaultInjector(spec), FaultInjector(spec)
        wa = a.churn_windows(range(8), 60_000.0)
        assert wa == b.churn_windows(range(8), 60_000.0)
        assert a.churn_windows(range(8), 60_000.0) is wa  # cached
        assert wa  # 5 crashes/min over a minute: some node crashed

    def test_install_node_faults_schedules_outages(self):
        world = _small_world(num_nodes=4)
        spec = FaultSpec(
            scripted_outages={1: ((100.0, 500.0),)},
            crash_rate_per_min=20.0,
            fault_seed=3,
        )
        federation = build_federation(
            world.specs,
            world.placement,
            world.classes,
            world.cost_model,
            RandomAllocator(),
            FederationConfig(faults=spec),
        )
        injector = federation.fault_injector
        injector.install_node_faults(federation.nodes, 60_000.0)
        assert federation.nodes[1].has_outages
        assert injector.crash_count > 0

    def test_derive_fault_seed_stable_and_distinct(self):
        assert derive_fault_seed(1, ("messages",)) == derive_fault_seed(
            1, ("messages",)
        )
        assert derive_fault_seed(1, ("messages",)) != derive_fault_seed(
            1, ("churn",)
        )
        assert derive_fault_seed(1, ("messages",)) != derive_fault_seed(
            2, ("messages",)
        )


# ------------------------------------------------------- faulty fan-out


class TestFaultyFanout:
    def _network(self, spec):
        world = _small_world(num_nodes=4)
        federation = build_federation(
            world.specs,
            world.placement,
            world.classes,
            world.cost_model,
            RandomAllocator(),
            FederationConfig(faults=spec),
        )
        return federation.network, federation.fault_injector

    def test_injectorless_fanout_falls_back_fault_free(self):
        # With no injector attached, faulty_fanout is the plain fault-free
        # exchange: everyone delivered, everyone replied, 2 legs per peer,
        # and the delay comes from the same latency stream round_trip_ms
        # draws from (checked against a twin network with the same seed).
        network, __ = self._network(None)
        twin, __ = self._network(None)
        expected = twin.round_trip_ms(2)
        delay, messages, delivered, replied = network.faulty_fanout(0, (1, 2))
        assert delivered == (1, 2)
        assert replied == (1, 2)
        assert messages == 4
        assert delay == expected
        assert network.messages_sent == twin.messages_sent

    def test_total_drop_is_total_silence(self):
        network, injector = self._network(FaultSpec(drop_probability=1.0))
        delay, messages, delivered, replied = network.faulty_fanout(0, (1, 2, 3))
        assert delivered == () and replied == ()
        assert messages == 3  # requests only; no reply legs for lost requests
        assert delay == injector.spec.bid_timeout_ms
        assert injector.lost_messages == 3
        assert injector.timeouts == 3

    def test_spikes_blow_the_timeout_but_deliver_requests(self):
        spec = FaultSpec(
            spike_probability=1.0, spike_ms=1_000.0, bid_timeout_ms=10.0
        )
        network, injector = self._network(spec)
        delay, messages, delivered, replied = network.faulty_fanout(0, (1, 2))
        # Requests arrive (late), so server-side dynamics still fire; the
        # replies land far after the timeout, so the client hears nothing.
        assert delivered == (1, 2)
        assert replied == ()
        assert delay == 10.0
        assert injector.timeouts == 2

    def test_clean_injector_reaches_everyone(self):
        # Partitions outside their window are no-ops; nothing else faulty.
        window = PartitionWindow((0,), (1,), 1e6, 2e6)
        network, injector = self._network(FaultSpec(partitions=(window,)))
        delay, messages, delivered, replied = network.faulty_fanout(0, (1, 2, 3))
        assert delivered == (1, 2, 3)
        assert replied == (1, 2, 3)
        assert messages == 6
        assert 0 < delay <= injector.spec.bid_timeout_ms

    def test_partition_severs_cross_group_requests(self):
        window = half_partition(range(4), 0.0, 1e6)
        network, injector = self._network(FaultSpec(partitions=(window,)))
        __, __, delivered, replied = network.faulty_fanout(0, (1, 2, 3))
        assert delivered == (2,)  # only the even peer is reachable from 0
        assert replied == (2,)

    def test_send_returns_none_when_dropped(self):
        network, __ = self._network(FaultSpec(drop_probability=1.0))
        assert network.send(lambda: None) is None
        network2, __ = self._network(FaultSpec(spike_probability=0.5))
        assert network2.send(lambda: None) is not None


# ----------------------------------------------- degradation and backoff


class TestGracefulDegradation:
    def test_qant_falls_back_to_stale_cache_on_silence(self):
        world = _small_world(num_nodes=4)
        federation = build_federation(
            world.specs,
            world.placement,
            world.classes,
            world.cost_model,
            QantAllocator(),
            FederationConfig(faults=FaultSpec(drop_probability=1.0)),
        )
        allocator = federation.allocator
        allocator._last_good[0] = (0, 2)
        decision = allocator.assign(
            Query(qid=0, class_index=0, origin_node=1, arrival_ms=0.0)
        )
        assert decision.node_id in (0, 2)
        assert federation.fault_injector.degraded_assignments == 1

    def test_qant_refuses_on_silence_without_cache(self):
        world = _small_world(num_nodes=4)
        federation = build_federation(
            world.specs,
            world.placement,
            world.classes,
            world.cost_model,
            QantAllocator(),
            FederationConfig(faults=FaultSpec(drop_probability=1.0)),
        )
        decision = federation.allocator.assign(
            Query(qid=0, class_index=0, origin_node=1, arrival_ms=0.0)
        )
        assert decision.node_id is None

    def test_federation_backoff_paces_resubmissions(self):
        world = _small_world(num_nodes=4)
        trace = _small_trace(world)
        __, metrics = _run(
            world,
            trace,
            QantAllocator,
            faults=FaultSpec(drop_probability=1.0),
            drain_ms=5_000.0,
        )
        # Total message loss: nothing completes, every query cycles
        # through the backoff machinery until the run ends.
        assert metrics.completed == 0
        assert metrics.dropped == len(trace)
        assert metrics.fault_retries > 0
        assert metrics.lost_messages > 0

    def test_faulted_runs_still_complete_work(self):
        world = _small_world(num_nodes=6)
        trace = _small_trace(world, horizon_ms=3_000.0)
        for factory in (QantAllocator, GreedyAllocator, RoundRobinAllocator):
            __, metrics = _run(
                world,
                trace,
                factory,
                faults=FaultSpec(drop_probability=0.2, fault_seed=5),
            )
            assert metrics.completed > 0
            assert metrics.lost_messages > 0


# ------------------------------------------------------------ properties


class TestFaultProperties:
    """The three hypothesis suites the robustness PR pins."""

    _baseline_digest = None

    @classmethod
    def _clean_digest(cls):
        if cls._baseline_digest is None:
            world = _small_world(num_nodes=6)
            trace = _small_trace(world, horizon_ms=1_000.0)
            __, metrics = _run(world, trace, QantAllocator, faults=None)
            cls._baseline_digest = _outcome_digest(metrics.outcomes)
        return cls._baseline_digest

    @given(
        timeout=st.floats(min_value=1.0, max_value=50.0),
        base=st.floats(min_value=1.0, max_value=500.0),
        factor=st.floats(min_value=1.0, max_value=4.0),
        fault_seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=8, deadline=None)
    def test_inactive_spec_is_byte_identical(
        self, timeout, base, factor, fault_seed
    ):
        """(i) Faults disabled => traces identical to a no-fault-layer run,
        whatever the (inert) policy knobs and fault seed say."""
        spec = FaultSpec(
            bid_timeout_ms=timeout,
            backoff_base_ms=base,
            backoff_factor=factor,
            backoff_cap_ms=base + 2_000.0,
            fault_seed=fault_seed,
        )
        assert not spec.active
        world = _small_world(num_nodes=6)
        trace = _small_trace(world, horizon_ms=1_000.0)
        __, metrics = _run(world, trace, QantAllocator, faults=spec)
        assert _outcome_digest(metrics.outcomes) == self._clean_digest()

    @given(
        fault_seed=st.integers(min_value=0, max_value=2**63 - 1),
        drop=st.floats(min_value=0.0, max_value=1.0),
        churn=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_same_fault_seed_same_schedule(self, fault_seed, drop, churn):
        """(ii) The fault schedule is a pure function of the spec."""
        spec = FaultSpec(
            drop_probability=drop,
            crash_rate_per_min=churn,
            fault_seed=fault_seed,
        )
        a, b = FaultInjector(spec), FaultInjector(spec)
        assert [a.drop_message() for __ in range(64)] == [
            b.drop_message() for __ in range(64)
        ]
        assert [a.spike_penalty_ms() for __ in range(8)] == [
            b.spike_penalty_ms() for __ in range(8)
        ]
        assert a.churn_windows(range(6), 30_000.0) == b.churn_windows(
            range(6), 30_000.0
        )

    @given(
        base=st.floats(min_value=1.0, max_value=1_000.0),
        factor=st.floats(min_value=1.0, max_value=4.0),
        headroom=st.floats(min_value=0.0, max_value=5_000.0),
        attempts=st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_backoff_bounded_and_monotone(
        self, base, factor, headroom, attempts
    ):
        """(iii) Backoff delays are capped and monotone in the attempt."""
        cap = base + headroom
        injector = FaultInjector(
            FaultSpec(
                backoff_base_ms=base,
                backoff_factor=factor,
                backoff_cap_ms=cap,
            )
        )
        delays = [injector.backoff_ms(i) for i in range(attempts + 1)]
        assert delays[0] == base
        assert all(base <= d <= cap for d in delays)
        assert all(x <= y for x, y in zip(delays, delays[1:]))
        with pytest.raises(ValueError):
            injector.backoff_ms(-1)


# -------------------------------------------------- sweep reproducibility


def _tiny_chaos_spec():
    """A throwaway (unregistered) fault-aware sweep for runner tests."""
    return ScenarioSpec(
        name="chaos-tiny",
        title="tiny chaos sweep (tests only)",
        cell=chaos_cell,
        axis="(drop, churn/min)",
        mechanisms=("qa-nt", "round-robin"),
        primary_metric="mean_response_ms",
        fault_aware=True,
        scales={
            "small": ScalePreset(
                points=((0.1, 3.0), (0.0, 0.0)),
                fixed={"num_nodes": 8, "horizon_ms": 1_500.0},
            ),
        },
    )


class TestFaultAwareSweeps:
    def test_serial_and_parallel_sweeps_are_byte_identical(self):
        """(ii, end to end) same fault seed => same artifact, any --jobs."""
        spec = _tiny_chaos_spec()
        serial = run_sweep(spec, scale="small", seeds=(0,), fault_seed=123)
        parallel = run_sweep(
            spec, scale="small", seeds=(0,), jobs=2, fault_seed=123
        )
        as_json = lambda r: json.dumps(  # noqa: E731
            _json_safe(r.to_dict()), indent=2, sort_keys=True
        )
        assert as_json(serial) == as_json(parallel)
        assert serial.fault_seed == 123

    def test_fault_seed_changes_fault_metrics_not_workload(self):
        spec = _tiny_chaos_spec()
        a = run_sweep(spec, scale="small", seeds=(0,), fault_seed=1)
        b = run_sweep(spec, scale="small", seeds=(0,), fault_seed=2)
        lost = lambda r: [  # noqa: E731
            c.metrics["lost_messages"] for c in r.cells
        ]
        assert lost(a) != lost(b)

    def test_fault_seed_rejected_for_fault_free_scenarios(self):
        from repro.experiments.spec import REGISTRY

        with pytest.raises(ValueError):
            run_sweep(REGISTRY.get("fig4"), scale="small", fault_seed=1)

    def test_fault_free_payload_has_no_fault_seed_key(self):
        from repro.experiments.spec import REGISTRY

        result = run_sweep(REGISTRY.get("failures"), scale="small", seeds=(0,))
        assert "fault_seed" not in result.to_dict()
