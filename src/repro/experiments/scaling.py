"""Scaling curve — federation size sweep over the batched dispatch path.

The paper's experiments stop at 100 nodes; this scenario measures how the
two headline mechanisms behave as the federation grows to 1,000 nodes
while the offered load stays at a fixed fraction of system capacity (so
bigger federations see proportionally more queries).  It is also the
showcase for the market-tick batch dispatcher: arrival timestamps are
quantised onto a coarse tick grid, so same-tick arrivals genuinely
coalesce into multi-query batches and the vectorised fan-out
(:mod:`repro.allocation.market_tick`) carries the bidding load.

Reported per cell, beyond the standard sweep metrics: end-to-end
throughput, the p99 response tail (tails degrade before means as the
candidate sets grow), and the dispatcher's batch counters
(:meth:`repro.sim.metrics.MetricsCollector.batch_summary`).
"""

from __future__ import annotations

import math
import time
from typing import Dict, Iterable, List, Optional

from ..allocation import GreedyAllocator, QantAllocator
from ..sim import FederationConfig, ShardedFederation
from ..workload import WorkloadEvent
from .setups import run_mechanism, sinusoid_trace_for_load, two_query_world
from .spec import ScalePreset, ScenarioSpec, register

__all__ = [
    "quantise_trace",
    "scaling_cell",
    "sharded_scaling_cell",
    "reconcile_scaling_cell",
    "million_query_run",
]

#: Mechanism pair the scaling curve compares.
_PAIR = {"qa-nt": QantAllocator, "greedy": GreedyAllocator}

#: Default arrival-tick width.  Coarse enough that a loaded federation
#: sees several arrivals per tick (real batches for the dispatcher),
#: fine enough that the workload still tracks the sinusoid.
DEFAULT_TICK_MS = 25.0


def quantise_trace(
    trace: Iterable[WorkloadEvent], tick_ms: float
) -> List[WorkloadEvent]:
    """Floor every arrival timestamp onto a ``tick_ms`` grid.

    Events keep their order (flooring a sorted sequence preserves
    sortedness), so the federation's stream scheduler accepts the result
    and every group of same-tick arrivals becomes one market-tick batch.
    """
    if tick_ms <= 0.0:
        raise ValueError("tick_ms must be positive")
    return [
        WorkloadEvent(
            time_ms=math.floor(event.time_ms / tick_ms) * tick_ms,
            class_index=event.class_index,
            origin_node=event.origin_node,
        )
        for event in trace
    ]


def scaling_cell(
    mechanism: str,
    num_nodes: int,
    point_index: int,
    seed: int,
    load_fraction: float = 1.5,
    horizon_ms: float = 5_000.0,
    frequency_hz: float = 0.05,
    tick_ms: float = DEFAULT_TICK_MS,
    config: Optional[FederationConfig] = None,
) -> Dict[str, float]:
    """One (mechanism, federation-size, seed) cell of the scaling curve.

    Seed plumbing mirrors :func:`repro.experiments.fig5.fig5a_cell`
    (world ``seed``, trace ``seed + 10 + point_index``, federation
    ``seed + 2``), so both mechanisms of one point are paired on the
    same trace.  The load fraction is held constant across sizes: the
    trace generator scales the arrival rate with the world's capacity,
    so a 1,000-node cell negotiates ten times the queries of a 100-node
    cell.
    """
    num_nodes = int(num_nodes)
    world = two_query_world(num_nodes=num_nodes, seed=seed)
    trace = quantise_trace(
        sinusoid_trace_for_load(
            world,
            load_fraction=load_fraction,
            horizon_ms=horizon_ms,
            frequency_hz=frequency_hz,
            seed=seed + 10 + point_index,
        ),
        tick_ms,
    )
    run = run_mechanism(
        world,
        trace,
        mechanism,
        _PAIR[mechanism],
        config or FederationConfig(seed=seed + 2),
    )
    metrics = run.metrics
    payload = run.metrics_dict()
    payload["offered_queries"] = float(len(trace))
    payload["throughput_qps"] = metrics.completed / (horizon_ms / 1000.0)
    payload["p99_response_ms"] = metrics.percentile_response_ms(0.99)
    payload.update(metrics.batch_summary())
    return payload


register(
    ScenarioSpec(
        name="scaling",
        title="Scaling curve — throughput and p99 vs federation size",
        axis="num_nodes",
        mechanisms=("qa-nt", "greedy"),
        cell=scaling_cell,
        scales={
            "small": ScalePreset(points=(30, 60)),
            "paper": ScalePreset(points=(100, 300, 1000)),
        },
    )
)


def sharded_scaling_cell(
    mechanism: str,
    shards: int,
    point_index: int,
    seed: int,
    num_nodes: int = 1_000,
    load_fraction: float = 1.5,
    horizon_ms: float = 2_000.0,
    frequency_hz: float = 0.05,
    tick_ms: float = DEFAULT_TICK_MS,
    mode: str = "fork",
    market: str = "coordinator",
    reconcile_interval: int = 1,
) -> Dict[str, float]:
    """One (mechanism, shard-count, seed) cell of the shard-axis curve.

    The sweep axis is the *shard count*, not the federation size: every
    point of one seed negotiates the identical world and trace (trace
    seed ``seed + 10`` with no ``point_index`` term, deliberately unlike
    :func:`scaling_cell`).  Across the multi-process points (``shards >=
    2``) the invariant metrics — completed, dropped, response moments —
    coincide exactly and only the wall clock and shard counters move;
    this also holds across ``market`` layouts and ``reconcile_interval``
    settings (the local-market planes are exact, R only bounds quote
    staleness).  ``shards=1`` delegates to the single-process engine
    (byte-identical to the existing goldens), whose event-granular
    negotiation interleaving differs from the tick-barrier market plane,
    so the origin's response moments are the legacy engine's own.
    """
    shards = int(shards)
    world = two_query_world(num_nodes=int(num_nodes), seed=seed)
    trace = quantise_trace(
        sinusoid_trace_for_load(
            world,
            load_fraction=load_fraction,
            horizon_ms=horizon_ms,
            frequency_hz=frequency_hz,
            seed=seed + 10,
        ),
        tick_ms,
    )
    started = time.perf_counter()
    with ShardedFederation(
        world.specs,
        world.placement,
        world.classes,
        world.cost_model,
        config=FederationConfig(seed=seed + 2),
        shards=shards,
        mode=mode,
        market=market,
        reconcile_interval=int(reconcile_interval),
    ) as federation:
        result = federation.run(trace, mechanism)
        wall_ms = (time.perf_counter() - started) * 1000.0
        payload: Dict[str, float] = {
            "shards": float(shards),
            "completed": float(result.completed),
            "dropped": float(result.dropped),
            "offered_queries": float(len(trace)),
            "throughput_qps": result.completed / (horizon_ms / 1000.0),
            "mean_response_ms": result.mean_response_ms(),
            "p99_response_ms": result.percentile_response_ms(0.99),
            "messages": float(result.messages),
            "wall_ms": wall_ms,
        }
        payload.update(result.batch_summary())
        # The shards=1 origin delegates to the single-process engine,
        # whose batch_summary() has no shard keys; the sweep aggregator
        # needs one uniform key set across the whole axis.
        payload.setdefault("cross_shard_bids", 0.0)
        payload.setdefault("barrier_wait_ms", 0.0)
        payload.setdefault("shard_imbalance", 1.0)
        # Reconciliation counters only arm under market="local"; the
        # coordinator-market and shards=1 points fill uniform zeros.
        payload.setdefault("reconcile_barriers", 0.0)
        payload.setdefault("reconcile_interval", 0.0)
        payload.setdefault("reconcile_lag_ticks_max", 0.0)
        payload.setdefault("price_staleness_max", 0.0)
        payload.setdefault("overlapped_frames", 0.0)
        payload.setdefault("local_classes", 0.0)
        payload.setdefault("residual_classes", 0.0)
    return payload


register(
    ScenarioSpec(
        name="scaling-shards",
        title="Shard-axis curve — wall clock and shard counters vs "
        "shard count at fixed federation size",
        axis="shards",
        mechanisms=("qa-nt", "greedy"),
        cell=sharded_scaling_cell,
        scales={
            "small": ScalePreset(
                points=(1, 2), fixed={"num_nodes": 30, "mode": "inline"}
            ),
            "paper": ScalePreset(points=(1, 2, 4, 8)),
            # The local-market variant of the paper sweep: same fixture,
            # shard-local planes with a 4-boundary reconciliation
            # cadence.  Invariant metrics must coincide with "paper".
            "localmarket": ScalePreset(
                points=(1, 2, 4, 8),
                fixed={"market": "local", "reconcile_interval": 4},
            ),
        },
    )
)


def reconcile_scaling_cell(
    mechanism: str,
    reconcile_interval: int,
    point_index: int,
    seed: int,
    num_nodes: int = 100,
    num_classes: int = 40,
    shards: int = 4,
    mean_interarrival_ms: float = 120.0,
    horizon_ms: float = 60_000.0,
    max_queries: int = 2_000,
    mode: str = "fork",
) -> Dict[str, float]:
    """One (mechanism, R, seed) cell of the reconciliation-interval axis.

    The sweep axis is the price-reconciliation interval R of a
    local-market sharded federation over the *Zipf* world — the
    affinity-rich catalog where most classes genuinely run shard-side
    (unlike the two-query world, whose single component is all
    residual).  Every point of one seed negotiates the identical world
    and trace, so the invariant metrics must coincide across R — the
    axis moves only the barrier cadence, the quote-staleness bound
    (``price_staleness_max``) and the pipeline counters.
    """
    from ..workload.trace import zipf_trace
    from .setups import zipf_world

    world = zipf_world(
        num_nodes=int(num_nodes), num_classes=int(num_classes), seed=seed
    )
    trace = zipf_trace(
        int(num_classes),
        mean_interarrival_ms,
        horizon_ms,
        list(world.placement.node_ids),
        max_queries=int(max_queries),
        seed=seed + 10,
    )
    started = time.perf_counter()
    with ShardedFederation(
        world.specs,
        world.placement,
        world.classes,
        world.cost_model,
        config=FederationConfig(seed=seed + 2),
        shards=int(shards),
        mode=mode,
        market="local",
        reconcile_interval=int(reconcile_interval),
    ) as federation:
        result = federation.run(trace, mechanism)
        wall_ms = (time.perf_counter() - started) * 1000.0
        payload: Dict[str, float] = {
            "reconcile_interval": float(int(reconcile_interval)),
            "completed": float(result.completed),
            "dropped": float(result.dropped),
            "offered_queries": float(len(trace)),
            "throughput_qps": result.completed / (horizon_ms / 1000.0),
            "mean_response_ms": result.mean_response_ms(),
            "p99_response_ms": result.percentile_response_ms(0.99),
            "messages": float(result.messages),
            "wall_ms": wall_ms,
        }
        payload.update(result.batch_summary())
    return payload


register(
    ScenarioSpec(
        name="scaling-reconcile",
        title="Reconciliation-interval axis — staleness bound and "
        "pipeline counters vs R on the local-market Zipf world",
        axis="reconcile_interval",
        mechanisms=("qa-nt", "greedy"),
        cell=reconcile_scaling_cell,
        scales={
            "small": ScalePreset(
                points=(1, 4),
                fixed={
                    "num_nodes": 50,
                    "num_classes": 20,
                    "shards": 2,
                    "max_queries": 400,
                    "mode": "inline",
                },
            ),
            "paper": ScalePreset(points=(1, 4, 16)),
        },
    )
)


def million_query_run(
    shards: int = 4,
    target_queries: int = 1_000_000,
    num_nodes: int = 1_000,
    load_fraction: float = 1.5,
    seed: int = 0,
    tick_ms: float = DEFAULT_TICK_MS,
) -> Dict[str, float]:
    """The ROADMAP's million-query market on one machine.

    Stretches the sinusoid horizon until the offered trace reaches
    ``target_queries`` (the generator scales arrivals with capacity, so
    the horizon needed is estimated from a short probe trace and then
    corrected), streams it through a ``shards``-way forked federation
    via the scheduler's ``schedule_stream`` path, and returns the flat
    cell payload plus the realised horizon.  QA-NT only — at this scale
    one mechanism is the experiment.
    """
    world = two_query_world(num_nodes=int(num_nodes), seed=seed)
    probe_ms = 10_000.0
    probe = sinusoid_trace_for_load(
        world,
        load_fraction=load_fraction,
        horizon_ms=probe_ms,
        frequency_hz=0.05,
        seed=seed + 10,
    )
    horizon_ms = probe_ms * (target_queries / max(1, len(probe)))
    # The probe extrapolation can undershoot (the sinusoid's density
    # varies over the horizon), so stretch until the offered trace
    # really reaches the target — the run must earn its name.
    while True:
        trace = quantise_trace(
            sinusoid_trace_for_load(
                world,
                load_fraction=load_fraction,
                horizon_ms=horizon_ms,
                frequency_hz=0.05,
                seed=seed + 10,
            ),
            tick_ms,
        )
        if len(trace) >= target_queries:
            break
        horizon_ms *= 1.05 * (target_queries / max(1, len(trace)))
    started = time.perf_counter()
    with ShardedFederation(
        world.specs,
        world.placement,
        world.classes,
        world.cost_model,
        config=FederationConfig(seed=seed + 2),
        shards=int(shards),
        mode="fork",
    ) as federation:
        result = federation.run(trace, "qa-nt")
        wall_ms = (time.perf_counter() - started) * 1000.0
        payload: Dict[str, float] = {
            "shards": float(shards),
            "offered_queries": float(len(trace)),
            "horizon_ms": horizon_ms,
            "completed": float(result.completed),
            "dropped": float(result.dropped),
            "mean_response_ms": result.mean_response_ms(),
            "p99_response_ms": result.percentile_response_ms(0.99),
            "messages": float(result.messages),
            "wall_ms": wall_ms,
            "queries_per_wall_s": result.completed / (wall_ms / 1000.0),
        }
        payload.update(result.batch_summary())
    return payload
