"""Sharded multi-process federation: batched cross-shard bidding.

PR 7 vectorised the market tick; the whole market still ran in one
process.  This module partitions the federation's nodes across ``N``
worker processes by *query-class affinity* (classes whose bidder sets
overlap land on the same shard) and runs the market as a broker/shard
protocol:

* the **coordinator** owns the price/supply/matching plane — per-class
  candidate supply and price arrays plus node-indexed busy watermarks —
  and answers every request-for-bid exchange with the same vectorised
  arithmetic as :class:`repro.allocation.market_tick.MarketTickDispatcher`;
* each **shard** owns the execution plane (authoritative busy watermarks
  including negotiation delays, per-node latency RNG streams, outcome
  recording) and the eq-4 solve plane (the vectorised proportional
  seller problem with carry-over credit, one row per local node);
* per simulated tick the two exchange *batched* protocol messages —
  one :class:`~repro.protocol.messages.BidRequest` per class in the
  tick, broadcast to every shard, answered by one
  :class:`~repro.protocol.messages.Quote` per assignment — serialised
  through the :mod:`repro.protocol` codec over :class:`ShardTransport`,
  the protocol layer's third real transport (after the simulated
  network and the asyncio broker).

Determinism is the design's backbone:

* ``shards=1`` delegates verbatim to the single-process engine
  (:func:`repro.sim.federation.build_federation`), so every existing
  golden pins it byte-for-byte;
* ``shards>1`` is invariant to the shard count: every cross-node
  decision is made coordinator-side, shard work is per-node arithmetic
  over globally-ordered events, per-node latency streams are keyed by
  *node id* (not shard) through the :func:`derive_shard_seed` sha256
  scheme, and replies merge in fixed shard order at every tick barrier.
  Outcomes are globally sorted by ``(finish_ms, qid)`` before any
  float reduction, so summary means are bit-identical however the
  fleet is partitioned.

The ``shards>1`` engine is a *model* of the same market, not a replay
of the single-process event loop: negotiation delay is charged per
assignment from the winning node's latency stream (two legs) instead
of the slowest full-fan-out round trip, and refusal counters live in
the coordinator's arrays rather than per-agent lists.  Its outputs are
pinned by their own golden (``tests/golden/sharded_1000node_seed0.json``).
"""

from __future__ import annotations

import math
import random
import resource
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

try:  # Same optional posture as repro.sim.fleet: no numpy, no sharding.
    import numpy as _np
except ImportError:  # pragma: no cover - single-process paths cover this
    _np = None

from ..core.qant import QantParameters
from ..protocol.messages import (
    BidRequest,
    Message,
    PeriodTick,
    ProtocolError,
    Quote,
    decode,
    encode,
)
from ..protocol.transport import FanoutResult, Transport
from .faults import derive_fault_seed
from .federation import FederationConfig, build_federation
from .metrics import MetricsCollector

__all__ = [
    "ShardPlan",
    "ShardTransport",
    "ShardedFederation",
    "ShardedRunResult",
    "derive_shard_seed",
    "plan_shards",
]


def derive_shard_seed(seed: int, tag: Sequence[object]) -> int:
    """A process-stable child seed for one shard-layer sub-stream.

    Same sha256 derivation as :func:`repro.sim.faults.derive_fault_seed`
    (Python's builtin ``hash`` is salted per process, so sub-streams key
    off a digest of ``(seed, tag)`` instead): the same pair yields the
    same child seed in every worker process, which is what makes the
    sharded engine's latency streams partition- and process-invariant.
    """
    return derive_fault_seed(seed, tag)


# -- the partitioner ----------------------------------------------------------


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic assignment of federation nodes to shards.

    ``shard_nodes[s]`` lists shard *s*'s nodes in ascending id order;
    ``loads[s]`` is the shard's bidding load — the number of
    (node, candidate-class) memberships it hosts, the quantity the
    partitioner balances.
    """

    num_shards: int
    shard_nodes: Tuple[Tuple[int, ...], ...]
    loads: Tuple[int, ...]

    @property
    def node_to_shard(self) -> Dict[int, int]:
        """Node id → owning shard index."""
        owner: Dict[int, int] = {}
        for shard, nodes in enumerate(self.shard_nodes):
            for nid in nodes:
                owner[nid] = shard
        return owner

    def imbalance(self) -> float:
        """Max-over-mean of the per-shard bidding loads (1.0 = perfect)."""
        if not self.loads:
            return 1.0
        mean = sum(self.loads) / len(self.loads)
        if mean <= 0:
            return 1.0
        return max(self.loads) / mean


def plan_shards(
    candidates_by_class: Mapping[int, Sequence[int]],
    node_ids: Sequence[int],
    num_shards: int,
) -> ShardPlan:
    """Partition ``node_ids`` into ``num_shards`` by class affinity.

    Nodes are first grouped by union-find over the classes' candidate
    sets (every class unions its bidders, so classes with overlapping
    bidder sets land in one affinity group), groups are ordered by their
    smallest member and flattened (members ascending), nodes bidding in
    no class are appended last, and the flat order is chopped into
    ``num_shards`` contiguous near-equal chunks.  Purely a function of
    the catalog — no RNG, no tie-breaks — so every process computes the
    identical plan.
    """
    if num_shards <= 0:
        raise ValueError("need at least one shard")
    parent: Dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for candidates in candidates_by_class.values():
        members = sorted(candidates)
        for nid in members:
            parent.setdefault(nid, nid)
        for nid in members[1:]:
            ra, rb = find(members[0]), find(nid)
            if ra != rb:
                # Smaller root wins, keeping group identity canonical.
                if rb < ra:
                    ra, rb = rb, ra
                parent[rb] = ra
    groups: Dict[int, List[int]] = {}
    for nid in parent:
        groups.setdefault(find(nid), []).append(nid)
    flat: List[int] = []
    for root in sorted(groups):
        flat.extend(sorted(groups[root]))
    flat.extend(sorted(nid for nid in node_ids if nid not in parent))
    if num_shards > len(flat):
        raise ValueError("more shards than nodes")
    base, extra = divmod(len(flat), num_shards)
    shard_nodes: List[Tuple[int, ...]] = []
    pos = 0
    for shard in range(num_shards):
        size = base + (1 if shard < extra else 0)
        shard_nodes.append(tuple(sorted(flat[pos : pos + size])))
        pos += size
    membership: Dict[int, int] = {}
    for candidates in candidates_by_class.values():
        for nid in candidates:
            membership[nid] = membership.get(nid, 0) + 1
    loads = tuple(
        sum(membership.get(nid, 0) for nid in nodes) for nodes in shard_nodes
    )
    return ShardPlan(
        num_shards=num_shards,
        shard_nodes=tuple(shard_nodes),
        loads=loads,
    )


# -- the shard worker ---------------------------------------------------------


class _ShardCore:
    """One shard's execution + solve plane (runs in-process or forked).

    The exact same class backs both transport modes, codec included, so
    an inline run is bit-identical to a forked one — the equivalence the
    tests pin.  All frames arrive pre-ordered by the coordinator; the
    core performs per-node arithmetic only, which is what makes its
    output independent of how nodes were grouped into shards.
    """

    def __init__(self, init: Mapping[str, object]) -> None:
        ids = list(init["node_ids"])
        self._ids = ids
        self._index = {nid: i for i, nid in enumerate(ids)}
        self._costs = _np.array(init["costs"], dtype=float)
        self._allow = _np.array(init["allowances"], dtype=float)
        self._seeds = list(init["latency_seeds"])
        self._base = float(init["base_ms"])
        self._jitter = float(init["jitter_ms"])
        self._num_classes = int(init["num_classes"])
        self.reset()

    def reset(self) -> None:
        n = len(self._ids)
        self._busy = _np.zeros(n, dtype=float)
        self._credit = _np.zeros((n, self._num_classes), dtype=float)
        # One latency stream per *node* (not per shard): repartitioning
        # the fleet must not reshuffle any node's delay draws.
        self._rngs = [random.Random(seed) for seed in self._seeds]
        self._cols: Tuple[List, ...] = tuple([] for _ in range(9))
        self._assigned = 0
        self._bids_seen = 0

    def handle(self, frame: Tuple) -> Mapping[str, object]:
        op = frame[0]
        if op == "tick":
            return self._tick(frame[1], frame[2], frame[3])
        if op == "solve":
            return self._solve(frame[1], frame[2])
        if op == "fanout":
            return self._fanout(frame[1])
        if op == "reset":
            self.reset()
            return {"ok": True}
        if op == "collect":
            return self._collect()
        raise ValueError("unknown shard frame %r" % (op,))

    def _tick(
        self, now: float, bids: Sequence[str], assignments: Sequence[Tuple]
    ) -> Mapping[str, object]:
        """One market tick: decode the bid broadcast, replay assignments.

        Every assignment row ``(qid, class, origin, arrival, resub,
        node)`` is replayed in coordinator order: the negotiation delay
        is two latency legs from the *node's* stream, the query starts
        when both the delay has elapsed and the node's FIFO is free
        (mirroring :meth:`repro.sim.node.SimulatedNode.enqueue`), and
        one Quote per assignment reports the authoritative finish back
        to the coordinator's busy mirror.
        """
        for payload in bids:
            decode(payload)  # validate the broadcast like any real peer
            self._bids_seen += 1
        index = self._index
        busy = self._busy
        costs = self._costs
        rngs = self._rngs
        base = self._base
        jitter = self._jitter
        cols = self._cols
        quotes: List[str] = []
        for qid, class_index, origin, arrival, resub, node in assignments:
            i = index[node]
            if jitter == 0.0:
                delay = base + base
            else:
                rnd = rngs[i].random
                delay = (base + jitter * rnd()) + (base + jitter * rnd())
            assigned = now + delay
            prior = busy[i]
            start = prior if prior > assigned else assigned
            finish = start + costs[i, class_index]
            busy[i] = finish
            cols[0].append(qid)
            cols[1].append(class_index)
            cols[2].append(origin)
            cols[3].append(arrival)
            cols[4].append(assigned)
            cols[5].append(node)
            cols[6].append(start)
            cols[7].append(finish)
            cols[8].append(resub)
            quotes.append(
                encode(
                    Quote(
                        qid=qid,
                        node_id=node,
                        class_index=class_index,
                        estimated_completion_ms=finish,
                    )
                )
            )
        self._assigned += len(assignments)
        return {"quotes": quotes}

    def _solve(self, now: float, prices) -> Mapping[str, object]:
        """Eq. 4 for every local node at once, with carry-over credit.

        Vectorises
        :meth:`repro.core.supply.CapacitySupplySet._solve_proportional`
        row-wise: density ``p/c`` (``p/inf == 0`` excludes classes the
        node cannot evaluate), weights ``(d/top)**2`` over a free
        capacity of ``max(0, allowance - backlog)``, then the QA-NT
        carry-over rounding ``whole = floor(credit + 1e-9)``.
        """
        P = _np.asarray(prices, dtype=float)
        backlog = self._busy - now
        _np.clip(backlog, 0.0, None, out=backlog)
        free = self._allow - backlog
        _np.clip(free, 0.0, None, out=free)
        D = P / self._costs
        top = D.max(axis=1)
        W = _np.zeros_like(D)
        rows = top > 0.0
        if rows.any():
            W[rows] = (D[rows] / top[rows, None]) ** 2.0
        total = W.sum(axis=1)
        total[total == 0.0] = 1.0
        counts = (free[:, None] * W / total[:, None]) / self._costs
        credit = self._credit
        credit += counts
        whole = _np.floor(credit + 1e-9)
        credit -= whole
        return {"supply": whole}

    def _fanout(self, payload: str) -> Mapping[str, object]:
        """One protocol message addressed to this shard as a peer.

        ``PeriodTick`` is the tick barrier (replies empty — the ack *is*
        the barrier); a ``BidRequest`` is answered with one Quote per
        local node able to evaluate the class, estimated from the
        shard's authoritative busy watermarks.
        """
        message = decode(payload)
        if isinstance(message, PeriodTick):
            return {"replies": []}
        if isinstance(message, BidRequest):
            k = message.class_index
            replies = []
            for i, nid in enumerate(self._ids):
                cost = self._costs[i, k]
                if math.isinf(cost):
                    continue
                replies.append(
                    encode(
                        Quote(
                            qid=message.qid,
                            node_id=nid,
                            class_index=k,
                            estimated_completion_ms=float(
                                self._busy[i] + cost
                            ),
                        )
                    )
                )
            return {"replies": replies}
        return {"replies": []}

    def _collect(self) -> Mapping[str, object]:
        return {
            "columns": self._cols,
            # Linux reports ru_maxrss in KiB; the bench harness
            # aggregates these across workers for `bench --mem`.
            "maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
            "assigned": self._assigned,
            "bids_seen": self._bids_seen,
        }


def _shard_worker(conn, init: Mapping[str, object]) -> None:
    """Forked worker main loop: one frame in, one reply out, forever."""
    core = _ShardCore(init)
    while True:
        try:
            frame = conn.recv()
        except EOFError:  # pragma: no cover - parent died
            return
        if frame[0] == "close":
            conn.send({"ok": True})
            conn.close()
            return
        conn.send(core.handle(frame))


# -- the transport ------------------------------------------------------------


class ShardTransport(Transport):
    """Pipe-backed transport to a pool of shard workers.

    The :class:`~repro.protocol.transport.Transport` seam's third real
    backend: peers are shard indices, :meth:`fanout` carries encoded
    protocol messages to each shard and gathers their decoded replies
    in fixed shard order.  :meth:`exchange` is the lower-level pipelined
    tick barrier the sharded federation drives — all frames are written
    before any reply is read, and replies are read in shard order, so
    the merge order (and therefore every downstream float) never
    depends on worker scheduling.

    ``mode="fork"`` forks one daemon worker per shard over
    :func:`multiprocessing.Pipe`; ``mode="inline"`` runs the identical
    :class:`_ShardCore` objects in-process (codec included) — the
    equivalence tests pin fork == inline bit-for-bit.
    """

    def __init__(
        self, shard_inits: Sequence[Mapping[str, object]], mode: str = "fork"
    ) -> None:
        if mode not in ("fork", "inline"):
            raise ValueError("transport mode must be 'fork' or 'inline'")
        self._mode = mode
        self._num_shards = len(shard_inits)
        #: Wall-clock milliseconds spent blocked at tick barriers
        #: (coordinator waiting on shard replies).
        self.barrier_wait_ms = 0.0
        #: Protocol messages moved (fanout legs only; the federation
        #: accounts bid/quote volume itself).
        self.messages = 0
        self._child_peak_kb = 0
        self._closed = False
        if mode == "fork":
            import multiprocessing

            ctx = multiprocessing.get_context("fork")
            self._conns = []
            self._procs = []
            for init in shard_inits:
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_worker,
                    args=(child_conn, init),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
        else:
            self._cores = [_ShardCore(init) for init in shard_inits]

    @property
    def num_shards(self) -> int:
        """Number of shard peers behind this transport."""
        return self._num_shards

    @property
    def mode(self) -> str:
        """``"fork"`` or ``"inline"``."""
        return self._mode

    def exchange(
        self, frames: Sequence[Optional[Tuple]]
    ) -> List[Optional[Mapping[str, object]]]:
        """One pipelined barrier: frame *i* to shard *i*, replies in order.

        ``None`` frames skip their shard.  In fork mode every frame is
        written before the first reply is read, so shards overlap their
        work; the time spent blocked on replies accumulates into
        :attr:`barrier_wait_ms`.
        """
        if self._mode == "inline":
            start = time.perf_counter()
            replies: List[Optional[Mapping[str, object]]] = [
                None if frame is None else core.handle(frame)
                for core, frame in zip(self._cores, frames)
            ]
            self.barrier_wait_ms += (time.perf_counter() - start) * 1e3
            return replies
        conns = self._conns
        for conn, frame in zip(conns, frames):
            if frame is not None:
                conn.send(frame)
        start = time.perf_counter()
        replies = [
            None if frame is None else conn.recv()
            for conn, frame in zip(conns, frames)
        ]
        self.barrier_wait_ms += (time.perf_counter() - start) * 1e3
        return replies

    def fanout(
        self,
        origin: int,
        peers: Sequence[int],
        request: Optional[Message] = None,
    ) -> FanoutResult:
        """Send ``request`` to each shard peer; gather decoded replies.

        The encoded payload is shared across peers (one serialisation,
        N deliveries — the batched-broadcast idiom the tick path also
        uses); replies decode in shard order into ``replies``.
        ``delay_ms`` is 0: shard hops are process-local, and simulated
        time is the coordinator's business, not the transport's.
        """
        if request is None:
            raise ProtocolError("ShardTransport requires a real message")
        peer_list = list(peers)
        payload = encode(request)
        frames: List[Optional[Tuple]] = [None] * self._num_shards
        for peer in peer_list:
            frames[peer] = ("fanout", payload)
        raw = self.exchange(frames)
        replies: List[Message] = []
        for peer in peer_list:
            reply = raw[peer]
            if reply is not None:
                replies.extend(decode(p) for p in reply["replies"])
        messages = 2 * len(peer_list)
        self.messages += messages
        return FanoutResult(
            delay_ms=0.0,
            messages=messages,
            delivered=tuple(peer_list),
            replied=tuple(peer_list),
            replies=tuple(replies),
        )

    def note_child_peak_kb(self, peak_kb: int) -> None:
        """Record the workers' peak RSS (from a collect barrier)."""
        if peak_kb > self._child_peak_kb:
            self._child_peak_kb = peak_kb

    def child_peak_kb(self) -> int:
        """Peak worker-process RSS in KiB (0 in inline mode)."""
        return self._child_peak_kb if self._mode == "fork" else 0

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._mode == "fork":
            for conn in self._conns:
                try:
                    conn.send(("close",))
                    conn.recv()
                except (BrokenPipeError, EOFError, OSError):
                    pass
                conn.close()
            for proc in self._procs:
                proc.join(timeout=5.0)


# -- the merged result --------------------------------------------------------


class ShardedRunResult:
    """Outcome of one sharded run, merged across shards.

    Outcomes live as nine parallel numpy columns, globally sorted by
    ``(finish_ms, qid)`` *before* any reduction — the same array
    therefore feeds every float sum regardless of how the fleet was
    partitioned, which is what makes the summary statistics
    shard-count-invariant bit-for-bit.
    """

    def __init__(
        self,
        columns,
        dropped: int,
        messages: int,
        shards: int,
        collector: MetricsCollector,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        self._columns = columns
        self._dropped = dropped
        self._messages = messages
        self._shards = shards
        self._collector = collector
        self._metrics = metrics

    @classmethod
    def from_metrics(
        cls, metrics: MetricsCollector, messages: int
    ) -> "ShardedRunResult":
        """Wrap a single-process run (the ``shards=1`` delegation)."""
        return cls(
            columns=None,
            dropped=metrics.dropped,
            messages=messages,
            shards=1,
            collector=metrics,
            metrics=metrics,
        )

    # -- summary -------------------------------------------------------------

    @property
    def shards(self) -> int:
        """Shard count of the run (1 = single-process delegation)."""
        return self._shards

    @property
    def completed(self) -> int:
        """Queries that finished."""
        if self._metrics is not None:
            return self._metrics.completed
        return len(self._columns[0])

    @property
    def dropped(self) -> int:
        """Queries still unserved when the run ended."""
        return self._dropped

    @property
    def messages(self) -> int:
        """Protocol messages the run moved (network messages at
        ``shards=1``; codec-serialised bid/quote/fanout messages
        otherwise)."""
        return self._messages

    def mean_response_ms(self) -> float:
        """Average response time over the globally sorted outcomes."""
        if self._metrics is not None:
            return self._metrics.mean_response_ms()
        n = len(self._columns[0])
        if not n:
            return math.nan
        return float(_np.sum(self._columns[7] - self._columns[3])) / n

    def percentile_response_ms(self, fraction: float) -> float:
        """Response-time percentile with the collector's index rule."""
        if self._metrics is not None:
            return self._metrics.percentile_response_ms(fraction)
        if not 0 <= fraction <= 1:
            raise ValueError("fraction must be in [0, 1]")
        n = len(self._columns[0])
        if not n:
            return math.nan
        ordered = _np.sort(self._columns[7] - self._columns[3])
        return float(ordered[min(n - 1, int(fraction * n))])

    def batch_summary(self) -> Dict[str, float]:
        """The tick/shard counters (shard keys only on sharded runs)."""
        return self._collector.batch_summary()

    def outcome_digest(self) -> str:
        """SHA-256 over every field of every outcome, completion order.

        The exact format of ``tests/test_golden_trace._outcome_digest``
        (``%r`` shortest round-trip floats), over the
        ``(finish_ms, qid)``-sorted columns — two runs hash equal iff
        every recorded bit is equal.
        """
        import hashlib

        digest = hashlib.sha256()
        if self._metrics is not None:
            for o in self._metrics.outcomes:
                digest.update(
                    (
                        "%d,%d,%d,%r,%r,%d,%r,%r,%d;"
                        % (
                            o.qid,
                            o.class_index,
                            o.origin_node,
                            o.arrival_ms,
                            o.assigned_ms,
                            o.node_id,
                            o.start_ms,
                            o.finish_ms,
                            o.resubmissions,
                        )
                    ).encode()
                )
            return digest.hexdigest()
        # ``.tolist()`` first: ``%r`` of a numpy scalar is
        # ``np.float64(...)`` on numpy >= 2, not the bare float repr.
        cols = [c.tolist() for c in self._columns]
        for row in zip(*cols):
            digest.update(("%d,%d,%d,%r,%r,%d,%r,%r,%d;" % row).encode())
        return digest.hexdigest()

    def payload(self) -> Dict[str, object]:
        """Full golden-style payload (includes shard-dependent counters)."""
        payload = self.invariant_payload()
        payload["messages"] = self.messages
        payload["batch_summary"] = self.batch_summary()
        return payload

    def invariant_payload(self) -> Dict[str, object]:
        """The shard-count-invariant slice of :meth:`payload`.

        Message counts and shard counters legitimately change with the
        partition (bids broadcast to more shards cost more messages);
        the *market outcome* must not.  This is what the sharded golden
        pins across shard counts and ``--jobs`` settings.
        """
        return {
            "completed": self.completed,
            "dropped": self.dropped,
            "mean_response_ms": self.mean_response_ms(),
            "p99_response_ms": self.percentile_response_ms(0.99),
            "outcome_digest": self.outcome_digest(),
        }


# -- the sharded federation ---------------------------------------------------


class ShardedFederation:
    """Front of the sharded engine: owns the worker pool and tick barrier.

    Construction mirrors :func:`repro.sim.federation.build_federation`
    minus the allocator (the mechanism is chosen per :meth:`run`, so one
    worker pool serves qa-nt and greedy back to back — the bench kernel
    relies on this).  ``shards=1`` takes the single-process engine
    verbatim; ``shards>1`` runs the broker/shard protocol described in
    the module docstring.
    """

    _MECHANISMS = ("qa-nt", "greedy")

    def __init__(
        self,
        specs,
        placement,
        classes,
        cost_model,
        config: Optional[FederationConfig] = None,
        shards: int = 1,
        mode: str = "fork",
        parameters: Optional[QantParameters] = None,
        activation_threshold: Optional[float] = 2.0,
        allowance_factor: float = 2.0,
    ) -> None:
        if shards <= 0:
            raise ValueError("need at least one shard")
        self._specs = specs
        self._placement = placement
        self._classes = classes
        self._cost_model = cost_model
        self._config = config or FederationConfig()
        self._shards = shards
        self._params = parameters or QantParameters()
        self._threshold = activation_threshold
        self._allowance_factor = allowance_factor
        self._transport: Optional[ShardTransport] = None
        if shards == 1:
            self._plan = None
            return
        if _np is None:  # pragma: no cover - numpy ships with the stack
            raise RuntimeError("sharded federations require numpy")
        candidates_by_class = {
            qc.index: tuple(sorted(qc.candidate_nodes(placement)))
            for qc in classes
        }
        self._candidates = candidates_by_class
        node_ids = list(placement.node_ids)
        self._plan = plan_shards(candidates_by_class, node_ids, shards)
        self._node_to_shard = self._plan.node_to_shard
        num_nodes = len(node_ids)
        num_classes = len(classes)
        # Coordinator market plane: per class, candidate lanes with their
        # cost and price/supply arrays; per node, the busy mirror plus the
        # agent-global max-price and enforce-latch arrays the dispatcher
        # arithmetic needs.
        self._cand: Dict[int, object] = {}
        self._lane_costs: Dict[int, object] = {}
        cost_rows: Dict[int, List[float]] = {
            nid: [math.inf] * num_classes for nid in node_ids
        }
        for qc in classes:
            cand = candidates_by_class[qc.index]
            costs = [
                cost_model.execution_time_ms(qc, specs[nid]) for nid in cand
            ]
            self._cand[qc.index] = _np.array(cand, dtype=_np.int64)
            self._lane_costs[qc.index] = _np.array(costs, dtype=float)
            for nid, cost in zip(cand, costs):
                cost_rows[nid][qc.index] = cost
        # maxp baseline: a class the node can never evaluate keeps its
        # initial price of 1.0 forever (no refusals, no leftover supply),
        # so it pins the node's max price at >= 1.0.
        self._maxp_base = _np.zeros(num_nodes, dtype=float)
        for nid in node_ids:
            if any(math.isinf(c) for c in cost_rows[nid]):
                self._maxp_base[nid] = 1.0
        self._busy = _np.zeros(num_nodes, dtype=float)
        self._maxp = _np.ones(num_nodes, dtype=float)
        self._locked = _np.zeros(num_nodes, dtype=bool)
        self._V: Dict[int, object] = {}
        self._R: Dict[int, object] = {}
        self._factor = 1.0 + self._params.adjustment
        self._floor = self._params.price_floor
        self._cap = self._params.price_cap
        self._adjustment = self._params.adjustment
        # Per (class, shard): the class's candidate-lane indices owned by
        # the shard and the matching row positions in the shard's local
        # node order — the scatter/gather tables of the solve barrier.
        self._shard_rows: List[Dict[int, Tuple]] = []
        shard_inits: List[Dict[str, object]] = []
        for shard_index in range(shards):
            local = list(self._plan.shard_nodes[shard_index])
            local_pos = {nid: i for i, nid in enumerate(local)}
            tables: Dict[int, Tuple] = {}
            for qc in classes:
                cand = candidates_by_class[qc.index]
                lanes = [
                    lane for lane, nid in enumerate(cand) if nid in local_pos
                ]
                rows = [local_pos[cand[lane]] for lane in lanes]
                tables[qc.index] = (
                    _np.array(lanes, dtype=_np.intp),
                    _np.array(rows, dtype=_np.intp),
                )
            self._shard_rows.append(tables)
            allowances = []
            for nid in local:
                finite = [
                    c for c in cost_rows[nid] if not math.isinf(c)
                ]
                max_cost = max(finite, default=0.0)
                allowances.append(
                    self._config.period_ms + allowance_factor * max_cost
                )
            shard_inits.append(
                {
                    "node_ids": local,
                    "costs": [cost_rows[nid] for nid in local],
                    "allowances": allowances,
                    "latency_seeds": [
                        derive_shard_seed(
                            self._config.seed, ("shard-node-latency", nid)
                        )
                        for nid in local
                    ],
                    "base_ms": self._config.latency.base_ms,
                    "jitter_ms": self._config.latency.jitter_ms,
                    "num_classes": num_classes,
                }
            )
        self._transport = ShardTransport(shard_inits, mode=mode)
        self._period_serial = 0
        self._saturated_in: Dict[int, int] = {}

    # -- lifecycle -----------------------------------------------------------

    @property
    def plan(self) -> Optional[ShardPlan]:
        """The node partition (None at ``shards=1``)."""
        return self._plan

    @property
    def transport(self) -> Optional[ShardTransport]:
        """The shard transport (None at ``shards=1``)."""
        return self._transport

    def close(self) -> None:
        """Shut the worker pool down (safe to call twice)."""
        if self._transport is not None:
            self._transport.close()

    def __enter__(self) -> "ShardedFederation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- driving -------------------------------------------------------------

    def run(self, trace, mechanism: str = "qa-nt") -> ShardedRunResult:
        """Execute ``trace`` under ``mechanism`` and merge the outcomes."""
        if mechanism not in self._MECHANISMS:
            raise ValueError(
                "sharded federations support %s, not %r"
                % ("/".join(self._MECHANISMS), mechanism)
            )
        if not trace:
            raise ValueError("cannot run an empty workload trace")
        if self._shards == 1:
            return self._run_single(trace, mechanism)
        return self._run_sharded(trace, mechanism)

    def _run_single(self, trace, mechanism: str) -> ShardedRunResult:
        """The ``shards=1`` delegation: literally the one-process engine."""
        from ..allocation import GreedyAllocator, QantAllocator

        if mechanism == "qa-nt":
            allocator = QantAllocator(
                parameters=self._params,
                activation_threshold=self._threshold,
                allowance_factor=self._allowance_factor,
            )
        else:
            allocator = GreedyAllocator()
        federation = build_federation(
            self._specs,
            self._placement,
            self._classes,
            self._cost_model,
            allocator,
            self._config,
        )
        metrics = federation.run(trace)
        return ShardedRunResult.from_metrics(
            metrics, federation.network.messages_sent
        )

    # -- the sharded coordinator ---------------------------------------------

    def _run_sharded(self, trace, mechanism: str) -> ShardedRunResult:
        transport = self._transport
        qa = mechanism == "qa-nt"
        collector = MetricsCollector()
        self._messages = 0
        self._cross_shard_bids = 0
        self._vector_exchanges = 0
        transport.barrier_wait_ms = 0.0
        self._reset(qa)
        if any(
            trace[i].time_ms > trace[i + 1].time_ms
            for i in range(len(trace) - 1)
        ):
            trace = sorted(trace, key=lambda e: e.time_ms)
        horizon = max(e.time_ms for e in trace)
        period = self._config.period_ms
        pending: List[Tuple] = []
        next_boundary = period
        period_index = 0
        qid = 0
        i, total = 0, len(trace)
        while i < total:
            t = trace[i].time_ms
            j = i
            while j < total and trace[j].time_ms == t:
                j += 1
            # The single-process engine schedules the period tick ahead
            # of same-timestamp arrivals; boundary-first matches it.
            while qa and next_boundary <= t:
                pending = self._boundary(
                    next_boundary, period_index, pending, collector
                )
                period_index += 1
                next_boundary += period
            queries = [
                (qid + n, e.class_index, e.origin_node, t, 0)
                for n, e in enumerate(trace[i:j])
            ]
            qid += len(queries)
            pending.extend(self._market_tick(t, queries, collector, qa))
            i = j
        # Drain: keep ticking boundaries while a backlog exists, then
        # stop — an empty pending pool can never refill, so the
        # remaining drain window is observationally dead time.
        end_of_run = horizon + self._config.drain_ms
        while qa and pending and next_boundary <= end_of_run:
            pending = self._boundary(
                next_boundary, period_index, pending, collector
            )
            period_index += 1
            next_boundary += period
        dropped = len(pending)
        # Final collect barrier: outcome columns, worker RSS, load stats.
        replies = transport.exchange(
            [("collect",)] * self._plan.num_shards
        )
        cols = [[] for _ in range(9)]
        assigned_per_shard = []
        peak_kb = 0
        for reply in replies:
            for c, part in zip(cols, reply["columns"]):
                c.extend(part)
            assigned_per_shard.append(reply["assigned"])
            if reply["maxrss_kb"] > peak_kb:
                peak_kb = reply["maxrss_kb"]
        transport.note_child_peak_kb(peak_kb)
        int_cols = (0, 1, 2, 5, 8)
        columns = [
            _np.array(c, dtype=_np.int64 if n in int_cols else float)
            for n, c in enumerate(cols)
        ]
        order = _np.lexsort((columns[0], columns[7]))
        columns = [c[order] for c in columns]
        total_assigned = sum(assigned_per_shard)
        imbalance = 1.0
        if assigned_per_shard and total_assigned:
            imbalance = max(assigned_per_shard) / (
                total_assigned / len(assigned_per_shard)
            )
        collector.apply_batch_stats(
            vector_exchanges=self._vector_exchanges
        )
        collector.apply_shard_stats(
            cross_shard_bids=self._cross_shard_bids,
            barrier_wait_ms=transport.barrier_wait_ms,
            shard_imbalance=imbalance,
            shards=self._plan.num_shards,
        )
        self._messages += transport.messages
        transport.messages = 0
        return ShardedRunResult(
            columns=columns,
            dropped=dropped,
            messages=self._messages,
            shards=self._plan.num_shards,
            collector=collector,
        )

    def _reset(self, qa: bool) -> None:
        """Fresh run state everywhere + the initial eq-4 solve."""
        transport = self._transport
        transport.exchange([("reset",)] * self._plan.num_shards)
        self._busy[:] = 0.0
        self._locked[:] = False
        self._maxp[:] = 1.0
        for qc in self._classes:
            k = qc.index
            self._V[k] = _np.ones(len(self._cand[k]), dtype=float)
            self._R[k] = _np.zeros(len(self._cand[k]), dtype=float)
        self._period_serial = 0
        self._saturated_in = {}
        if qa:
            # Mirrors `_after_bind`'s bind-time on_period_start(): solve
            # eq. 4 at the uniform initial prices before any arrival.
            self._solve_barrier(0.0)

    def _market_tick(
        self, now: float, queries: Sequence[Tuple], collector, qa: bool
    ) -> List[Tuple]:
        """One market tick: exchange per query, then the shard barrier.

        Returns the refused queries (they re-enter next period's
        demand).  The per-query exchanges run strictly in arrival order
        against the coordinator's arrays — prices and supply see each
        query's effect before the next, exactly as the paper's
        sequential negotiation requires — then all resulting
        assignments cross to their owning shards in one batched
        bid/quote barrier.
        """
        collector.record_batch_tick(len(queries))
        plan = self._plan
        num_shards = plan.num_shards
        refused: List[Tuple] = []
        per_shard: List[List[Tuple]] = [[] for _ in range(num_shards)]
        first_of_class: Dict[int, Tuple] = {}
        node_to_shard = self._node_to_shard
        for row in queries:
            qid, class_index, origin, arrival, resub = row
            if class_index not in first_of_class:
                first_of_class[class_index] = (qid, origin, resub)
            if qa:
                node = self._exchange(class_index, now)
            else:
                node = self._greedy_exchange(class_index, now)
            if node is None:
                refused.append(row)
            else:
                per_shard[node_to_shard[node]].append(row + (node,))
        self._vector_exchanges += len(queries)
        # The batched cross-shard bidding: one BidRequest per class in
        # the tick, encoded once, broadcast to every shard.
        bids = [
            encode(
                BidRequest(
                    qid=first_qid,
                    class_index=class_index,
                    origin_node=origin,
                    attempt=resub,
                )
            )
            for class_index, (first_qid, origin, resub) in sorted(
                first_of_class.items()
            )
        ]
        frames = [
            ("tick", now, bids, per_shard[s]) for s in range(num_shards)
        ]
        replies = self._transport.exchange(frames)
        self._cross_shard_bids += len(bids) * num_shards
        self._messages += len(bids) * num_shards
        busy = self._busy
        for reply in replies:
            quotes = reply["quotes"]
            self._messages += len(quotes)
            for payload in quotes:
                quote = decode(payload)
                # Authoritative resync: the shard's finish includes the
                # negotiation delay the optimistic mirror skipped.
                busy[quote.node_id] = quote.estimated_completion_ms
        return refused

    def _exchange(self, class_index: int, now: float) -> Optional[int]:
        """One QA-NT request-for-bid exchange, coordinator-side.

        The same array program as
        :meth:`repro.allocation.market_tick.MarketTickDispatcher
        .exchange`: offer test, bulk refusal price raises with the
        scalar clamp order, the Section 5.1 activation latch, then the
        earliest-completion winner by first-occurrence argmin (lowest
        node id on ties).
        """
        if self._saturated_in.get(class_index) == self._period_serial:
            return None
        R = self._R[class_index]
        V = self._V[class_index]
        cand = self._cand[class_index]
        offers = R >= 1.0
        refuse = _np.nonzero(~offers)[0]
        if refuse.size:
            old = V[refuse]
            new = old * self._factor
            _np.maximum(new, self._floor, out=new)
            _np.minimum(new, self._cap, out=new)
            changed = new != old
            V[refuse] = new
            nodes_r = cand[refuse]
            m = self._maxp[nodes_r]
            if changed.any():
                m = _np.maximum(m, new)
                self._maxp[nodes_r] = m
            threshold = self._threshold
            if threshold is not None:
                passed = ~self._locked[nodes_r]
                passed &= m < threshold
                self._locked[nodes_r] = ~passed
                offers[refuse] = passed
        if not offers.any():
            if bool((V == self._cap).all()):
                self._saturated_in[class_index] = self._period_serial
            return None
        est = _np.maximum(self._busy[cand], now)
        est += self._lane_costs[class_index]
        est[~offers] = _np.inf
        winner = int(est.argmin())
        if R[winner] >= 1.0:
            R[winner] -= 1.0
        node = int(cand[winner])
        # Optimistic busy mirror: later queries of this tick see the
        # commitment; the shard's Quote overwrites it with the true
        # finish (delay included) at the tick barrier.
        self._busy[node] = float(est[winner])
        return node

    def _greedy_exchange(self, class_index: int, now: float) -> int:
        """Greedy: every candidate offers; earliest completion wins."""
        cand = self._cand[class_index]
        est = _np.maximum(self._busy[cand], now)
        est += self._lane_costs[class_index]
        winner = int(est.argmin())
        node = int(cand[winner])
        self._busy[node] = float(est[winner])
        return node

    def _boundary(
        self, now: float, period_index: int, pending: List[Tuple], collector
    ) -> List[Tuple]:
        """One QA-NT period boundary: steps 12-14, eq. 4, retries."""
        # Steps 12-14 vectorised: every class lane with leftover supply
        # lowers its price by `max(0, 1 - leftover*lambda)`, floored.
        for qc in self._classes:
            k = qc.index
            R = self._R[k]
            V = self._V[k]
            mask = R > 0.0
            if mask.any():
                f = 1.0 - R * self._adjustment
                _np.maximum(f, 0.0, out=f)
                new = V * f
                _np.maximum(new, self._floor, out=new)
                V[:] = _np.where(mask, new, V)
        # The tick barrier as a protocol event: a PeriodTick fanout to
        # every shard (the transport's Transport-ABC verb; the ack is
        # the barrier).
        self._transport.fanout(
            -1,
            range(self._plan.num_shards),
            PeriodTick(
                period_index=period_index, period_ms=self._config.period_ms
            ),
        )
        self._solve_barrier(now)
        if not pending:
            return []
        retry = [
            (qid, class_index, origin, arrival, resub + 1)
            for qid, class_index, origin, arrival, resub in pending
        ]
        return self._market_tick(now, retry, collector, qa=True)

    def _solve_barrier(self, now: float) -> None:
        """Eq. 4 at every shard; scatter the supply back into the lanes."""
        num_classes = len(self._classes)
        frames = []
        for shard_index in range(self._plan.num_shards):
            local = self._plan.shard_nodes[shard_index]
            prices = _np.ones((len(local), num_classes), dtype=float)
            tables = self._shard_rows[shard_index]
            for qc in self._classes:
                k = qc.index
                lanes, rows = tables[k]
                prices[rows, k] = self._V[k][lanes]
            frames.append(("solve", now, prices))
        replies = self._transport.exchange(frames)
        for shard_index, reply in enumerate(replies):
            whole = reply["supply"]
            tables = self._shard_rows[shard_index]
            for qc in self._classes:
                k = qc.index
                lanes, rows = tables[k]
                self._R[k][lanes] = whole[rows, k]
        # New period: latches clear, the max-price mirror re-derives
        # from the (possibly lowered) prices, the saturation fast path
        # re-arms.
        self._locked[:] = False
        self._maxp[:] = self._maxp_base
        for qc in self._classes:
            k = qc.index
            _np.maximum.at(self._maxp, self._cand[k], self._V[k])
        self._period_serial += 1
