"""Discrete-event simulation kernel.

A minimal, deterministic event-heap simulator: events are slim
``(time, seq, handle, callback, args)`` slots ordered by time with FIFO
tie-breaking, so two runs with the same seeds produce identical traces.
Passing callback arguments through the slot (instead of closing over them)
keeps the hot deliver path free of per-event closure allocation.  All
simulation modules measure time in **milliseconds** (matching the paper's
reporting units).

The kernel is deliberately tiny — scheduling, cancellation, bounded runs —
because everything domain-specific (nodes, networks, markets) is built on
top of it in sibling modules.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

__all__ = [
    "EventHandle",
    "Simulator",
]


class EventHandle:
    """Handle to a scheduled event, usable for cancellation."""

    __slots__ = ("time", "seq", "cancelled", "fired", "_simulator")

    def __init__(self, time: float, seq: int, simulator: "Optional[Simulator]" = None):
        self.time = time
        self.seq = seq
        self.cancelled = False
        self.fired = False
        self._simulator = simulator

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired/cancelled)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._simulator is not None:
            self._simulator._on_cancel()


class Simulator:
    """A deterministic discrete-event simulator clocked in milliseconds."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, EventHandle, Callable[[], Any]]] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._live = 0
        self._cancelled_pending = 0

    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still due to fire (cancelled ones excluded)."""
        return self._live

    @property
    def heap_size(self) -> int:
        """Physical heap length, including cancelled-but-uncompacted entries."""
        return len(self._heap)

    def _on_cancel(self) -> None:
        """Account for a live event turning cancelled; compact when stale
        entries outnumber live ones (amortised O(1) per cancellation)."""
        self._live -= 1
        self._cancelled_pending += 1
        if self._cancelled_pending > max(64, self._live):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from the heap and restore the invariant."""
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_pending = 0

    def schedule(
        self, delay_ms: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay_ms`` from now.

        Extra positional ``args`` are stored in the event slot and passed
        to ``callback`` when it fires — the slim-dispatch alternative to
        allocating a closure per event on hot paths (message deliveries,
        query completions).
        """
        if delay_ms < 0:
            raise ValueError("cannot schedule an event in the past")
        return self.schedule_at(self._now + delay_ms, callback, *args)

    def schedule_at(
        self, time_ms: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``time_ms``."""
        if time_ms < self._now:
            raise ValueError(
                "cannot schedule at %.3f, current time is %.3f"
                % (time_ms, self._now)
            )
        handle = EventHandle(time_ms, next(self._seq), self)
        heapq.heappush(
            self._heap, (time_ms, handle.seq, handle, callback, args)
        )
        self._live += 1
        return handle

    def step(self) -> bool:
        """Execute the next event.  Returns False when the heap is empty."""
        # `self._heap` is re-read per iteration on purpose: `_compact`
        # (triggered by cancellations inside callbacks) rebinds it.
        heappop = heapq.heappop
        while self._heap:
            time_ms, __, handle, callback, args = heappop(self._heap)
            if handle.cancelled:
                self._cancelled_pending -= 1
                continue
            handle.fired = True
            self._live -= 1
            self._now = time_ms
            self._events_processed += 1
            callback(*args)
            return True
        return False

    def run(self, until_ms: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap empties, ``until_ms`` passes, or ``max_events``.

        ``until_ms`` is inclusive: events scheduled exactly at ``until_ms``
        still fire.  The final clock value is well-defined either way:

        * when every event due by ``until_ms`` has fired (the heap drained
          or only later events remain), the clock advances to ``until_ms``
          so a time-bounded run always ends at its bound;
        * when ``max_events`` stops the run with due events still pending,
          the clock stays at the last executed event's time, so a
          subsequent :meth:`run` resumes exactly where this one stopped
          (it is *not* advanced to ``until_ms`` — time that was never
          simulated must not be claimed).

        Cancelled entries at the front of the heap are discarded before the
        bounds are checked, so a stale entry inside the window can neither
        fire an event beyond ``until_ms`` nor consume ``max_events`` budget.
        """
        heappop = heapq.heappop
        if until_ms is None and max_events is None:
            # Unbounded drain: the common case.  The pop/dispatch loop is
            # inlined (no per-event `step()` frame), which also serves as
            # the batched delivery path — consecutive same-timestamp
            # events (a period tick's retry burst, simultaneous message
            # deliveries) dispatch back-to-back in FIFO seq order with no
            # per-event bound checks.  `self._heap` is re-read every
            # iteration because `_compact` may rebind it inside a callback.
            while self._heap:
                time_ms, __, handle, callback, args = heappop(self._heap)
                if handle.cancelled:
                    self._cancelled_pending -= 1
                    continue
                handle.fired = True
                self._live -= 1
                self._now = time_ms
                self._events_processed += 1
                callback(*args)
            return
        executed = 0
        while True:
            heap = self._heap  # re-read: `_compact` rebinds it
            while heap and heap[0][2].cancelled:
                heappop(heap)
                self._cancelled_pending -= 1
            if not heap:
                break
            if until_ms is not None and heap[0][0] > until_ms:
                break
            if max_events is not None and executed >= max_events:
                # Budget exhausted with due events pending: leave the
                # clock at the last executed event (resumable), per the
                # docstring contract.
                return
            time_ms, __, handle, callback, args = heappop(heap)
            handle.fired = True
            self._live -= 1
            self._now = time_ms
            self._events_processed += 1
            callback(*args)
            executed += 1
        if until_ms is not None and self._now < until_ms:
            self._now = until_ms

    def every(
        self,
        interval_ms: float,
        callback: Callable[[], Any],
        start_ms: Optional[float] = None,
        until_ms: Optional[float] = None,
    ) -> None:
        """Schedule ``callback`` periodically (period ticks, metric samples).

        The recurrence reschedules itself after each firing; ``until_ms``
        (inclusive) bounds the last firing.
        """
        if interval_ms <= 0:
            raise ValueError("interval must be positive")
        first = self._now if start_ms is None else start_ms

        def fire_and_reschedule() -> None:
            callback()
            next_time = self._now + interval_ms
            if until_ms is None or next_time <= until_ms:
                self.schedule_at(next_time, fire_and_reschedule)

        self.schedule_at(first, fire_and_reschedule)
