"""The paper's primary contribution: query markets and the QA-NT mechanism.

Layered as:

* :mod:`repro.core.vectors` — demand/consumption/supply vector algebra;
* :mod:`repro.core.preferences` — node preference relations;
* :mod:`repro.core.pareto` — Pareto dominance/optimality of allocations;
* :mod:`repro.core.supply` — supply sets and the seller's problem (eq. 4);
* :mod:`repro.core.market` — prices, excess demand, equilibrium;
* :mod:`repro.core.tatonnement` — the centralised umpire baseline;
* :mod:`repro.core.qant` — the decentralised QA-NT pricing agent;
* :mod:`repro.core.period_engine` — batched period boundaries over a
  fleet of QA-NT agents (the paper-scale fast path);
* :mod:`repro.core.welfare` — FTWE checks and a synchronous economy.
"""

from .classification import (
    ClassificationScheme,
    PrivatelyClassifiedAgent,
    cost_band_classification,
)
from .equity import (
    equitable_allocation,
    equitable_consumptions,
    jain_fairness_index,
    utility_spread,
)
from .market import PriceVector, excess_demand, is_equilibrium
from .pareto import Allocation, is_pareto_optimal, pareto_dominates, pareto_front
from .preferences import (
    PreferenceRelation,
    ThroughputPreference,
    WeightedThroughputPreference,
)
from .period_engine import PeriodEngineStats, QantPeriodEngine
from .qant import QantParameters, QantPeriodStats, QantPricingAgent
from .supply import (
    CapacitySupplySet,
    ExplicitSupplySet,
    SupplyCacheInfo,
    SupplySet,
    solve_supply,
)
from .tatonnement import TatonnementResult, TatonnementUmpire
from .vectors import QueryVector, aggregate
from .welfare import QueryMarketEconomy, ftwe_allocation, verify_ftwe

__all__ = [
    "Allocation",
    "CapacitySupplySet",
    "ClassificationScheme",
    "PrivatelyClassifiedAgent",
    "cost_band_classification",
    "ExplicitSupplySet",
    "PreferenceRelation",
    "PriceVector",
    "PeriodEngineStats",
    "QantParameters",
    "QantPeriodEngine",
    "QantPeriodStats",
    "QantPricingAgent",
    "QueryMarketEconomy",
    "QueryVector",
    "SupplyCacheInfo",
    "SupplySet",
    "TatonnementResult",
    "TatonnementUmpire",
    "ThroughputPreference",
    "WeightedThroughputPreference",
    "aggregate",
    "equitable_allocation",
    "equitable_consumptions",
    "excess_demand",
    "jain_fairness_index",
    "utility_spread",
    "ftwe_allocation",
    "is_equilibrium",
    "is_pareto_optimal",
    "pareto_dominates",
    "pareto_front",
    "solve_supply",
    "verify_ftwe",
]
