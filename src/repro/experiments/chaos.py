"""Extension experiment C1 — chaos: drops x churn under a partition.

The paper claims the non-tatonnement process re-converges after "multiple
node failures" without coordination; the market-based allocation
literature adds that the interesting behaviour of price-adjustment
processes appears exactly when messages are lost and agents act on stale
prices.  This experiment applies both at once: a drop-rate x churn-rate
grid, with a half-federation partition in the middle of the run (even vs
odd nodes — Q2's data lives only on even nodes, so odd-origin Q2 clients
lose *all* their candidate servers for the window), and compares QA-NT
against greedy and round-robin on response time, losses, timeouts, and
recovery time.

Every cell runs under a :class:`repro.sim.faults.FaultSpec` whose
``fault_seed`` the sweep runner derives per cell from ``--fault-seed``,
so fault schedules are reproducible independently of the workload seeds
and identical across serial and ``--jobs N`` executions.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from ..allocation import GreedyAllocator, QantAllocator, RoundRobinAllocator
from ..sim import FederationConfig, build_federation
from ..sim.faults import FaultSpec, half_partition
from ..sim.metrics import recovery_time_ms
from ..workload import PoissonArrivals, build_trace
from .setups import World, two_query_world
from .spec import ScalePreset, ScenarioSpec, register

__all__ = [
    "CHAOS_GRID",
    "chaos_cell",
]

#: The drop-rate x churn-rate grid (3x3): message drop probability per
#: leg, crossed with node crashes per node per simulated minute.
DROP_RATES = (0.0, 0.05, 0.15)
CHURN_RATES = (0.0, 1.0, 3.0)
CHAOS_GRID = tuple(
    (drop, churn) for drop in DROP_RATES for churn in CHURN_RATES
)

_FACTORIES = {
    "qa-nt": QantAllocator,
    "greedy": GreedyAllocator,
    "round-robin": RoundRobinAllocator,
}


def chaos_cell(
    mechanism: str,
    point: Tuple[float, float],
    point_index: int,
    seed: int,
    num_nodes: int = 20,
    horizon_ms: float = 20_000.0,
    load_fraction: float = 0.7,
    partition: bool = True,
    spike_probability: float = 0.05,
    spike_ms: float = 25.0,
    fault_seed: int = 0,
    world: Optional[World] = None,
) -> Dict[str, float]:
    """One (mechanism, (drop, churn), seed) chaos cell.

    ``point`` is the ``(drop_probability, crash_rate_per_min)`` pair.  A
    half-federation partition (even vs odd nodes) covers the middle fifth
    of the horizon when ``partition`` is set; latency spikes ride along at
    ``spike_probability`` so the bid-timeout path is always exercised.
    """
    drop, churn = point
    world = world or two_query_world(num_nodes=num_nodes, seed=seed)
    capacity = world.capacity_qpms([2.0, 1.0])
    trace = build_trace(
        {
            0: PoissonArrivals(load_fraction * capacity * 2.0 / 3.0),
            1: PoissonArrivals(load_fraction * capacity / 3.0),
        },
        horizon_ms=horizon_ms,
        origin_nodes=world.placement.node_ids,
        seed=seed + 1,
    )
    partition_start = 0.4 * horizon_ms
    partition_end = 0.6 * horizon_ms
    partitions = ()
    if partition:
        partitions = (
            half_partition(
                world.placement.node_ids, partition_start, partition_end
            ),
        )
    spec = FaultSpec(
        drop_probability=drop,
        spike_probability=spike_probability,
        spike_ms=spike_ms,
        partitions=partitions,
        crash_rate_per_min=churn,
        fault_seed=fault_seed,
    )
    federation = build_federation(
        world.specs,
        world.placement,
        world.classes,
        world.cost_model,
        _FACTORIES[mechanism](),
        FederationConfig(seed=seed + 2, drain_ms=40_000.0, faults=spec),
    )
    metrics = federation.run(trace)
    # Recovery: time after the partition heals until mean response returns
    # to the pre-fault baseline (queries arriving before the partition).
    baseline_sum = 0.0
    baseline_count = 0
    for outcome in metrics.outcomes:
        if outcome.arrival_ms < partition_start:
            baseline_sum += outcome.response_ms
            baseline_count += 1
    baseline_ms = (
        baseline_sum / baseline_count if baseline_count else math.nan
    )
    recovery_ms = (
        recovery_time_ms(metrics, baseline_ms=baseline_ms, from_ms=partition_end)
        if partition
        else math.nan
    )
    return {
        "mean_response_ms": metrics.mean_response_ms(),
        "completed": metrics.completed,
        "dropped": metrics.dropped,
        "messages": federation.network.messages_sent,
        "timeouts": metrics.timeouts,
        "lost_messages": metrics.lost_messages,
        "degraded_assignments": metrics.degraded_assignments,
        "fault_retries": metrics.fault_retries,
        "crash_count": metrics.crash_count,
        "partition_ms": metrics.partition_ms,
        "mean_resubmissions": metrics.mean_resubmissions(),
        "recovery_ms": recovery_ms,
    }


register(
    ScenarioSpec(
        name="chaos",
        title="C1 — robustness under message drops, partitions, and churn",
        cell=chaos_cell,
        axis="(drop, churn/min)",
        mechanisms=("qa-nt", "greedy", "round-robin"),
        primary_metric="mean_response_ms",
        fault_aware=True,
        scales={
            "small": ScalePreset(
                points=CHAOS_GRID,
                fixed={"num_nodes": 20, "horizon_ms": 20_000.0},
            ),
            "paper": ScalePreset(
                points=CHAOS_GRID,
                fixed={"num_nodes": 100, "horizon_ms": 60_000.0},
            ),
        },
    )
)
