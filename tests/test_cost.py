"""Unit tests for repro.query.cost (the analytical cost model)."""

import math

import pytest

from repro.catalog import Catalog, Relation
from repro.query.cost import (
    CostModel,
    MachineSpec,
    RelativeSpeedCostModel,
    calibrated_cost_model,
    cost_matrix,
)
from repro.query.model import QueryClass


@pytest.fixture(scope="module")
def catalog():
    return Catalog(
        [
            Relation(rid=0, name="small", size_mb=1.0),
            Relation(rid=1, name="medium", size_mb=8.0),
            Relation(rid=2, name="large", size_mb=18.0),
        ]
    )


def qc(rids, sort=False, selectivity=0.5, index=0):
    return QueryClass(
        index=index,
        relation_ids=tuple(rids),
        selectivity=selectivity,
        requires_sort=sort,
    )


class TestMachineSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            MachineSpec(cpu_ghz=0.0)
        with pytest.raises(ValueError):
            MachineSpec(buffer_mb=0.0)
        with pytest.raises(ValueError):
            MachineSpec(io_mbps=0.0)


class TestCostModel:
    def test_cost_is_positive(self, catalog):
        model = CostModel(catalog)
        assert model.execution_time_ms(qc([0]), MachineSpec()) > 0

    def test_faster_io_is_cheaper(self, catalog):
        model = CostModel(catalog)
        slow = MachineSpec(io_mbps=5.0)
        fast = MachineSpec(io_mbps=80.0)
        query = qc([1, 2])
        assert model.execution_time_ms(query, fast) < model.execution_time_ms(
            query, slow
        )

    def test_faster_cpu_is_cheaper(self, catalog):
        model = CostModel(catalog)
        slow = MachineSpec(cpu_ghz=1.0)
        fast = MachineSpec(cpu_ghz=3.5)
        query = qc([1, 2], sort=True)
        assert model.execution_time_ms(query, fast) < model.execution_time_ms(
            query, slow
        )

    def test_more_joins_cost_more(self, catalog):
        model = CostModel(catalog)
        spec = MachineSpec()
        assert model.execution_time_ms(qc([0, 1, 2]), spec) > model.execution_time_ms(
            qc([0, 1]), spec
        )

    def test_sort_adds_cost(self, catalog):
        model = CostModel(catalog)
        spec = MachineSpec()
        assert model.execution_time_ms(
            qc([1, 2], sort=True), spec
        ) > model.execution_time_ms(qc([1, 2], sort=False), spec)

    def test_hash_join_cheaper_than_merge_scan_for_big_inputs(self, catalog):
        model = CostModel(catalog)
        with_hash = MachineSpec(supports_hash_join=True)
        without = MachineSpec(supports_hash_join=False)
        query = qc([1, 2])
        assert model.execution_time_ms(query, with_hash) < model.execution_time_ms(
            query, without
        )

    def test_bigger_buffer_never_hurts(self, catalog):
        model = CostModel(catalog)
        small = MachineSpec(buffer_mb=2.0, supports_hash_join=False)
        large = MachineSpec(buffer_mb=10.0, supports_hash_join=False)
        query = qc([1, 2], sort=True)
        assert model.execution_time_ms(query, large) <= model.execution_time_ms(
            query, small
        )

    def test_scale_multiplies_costs(self, catalog):
        base = CostModel(catalog)
        doubled = base.rescaled(2.0)
        query = qc([0, 1])
        assert doubled.execution_time_ms(
            query, MachineSpec()
        ) == pytest.approx(2 * base.execution_time_ms(query, MachineSpec()))

    def test_bad_scale_rejected(self, catalog):
        with pytest.raises(ValueError):
            CostModel(catalog, scale=0.0)

    def test_caching_returns_same_value(self, catalog):
        model = CostModel(catalog)
        spec = MachineSpec()
        query = qc([0, 1, 2])
        assert model.execution_time_ms(query, spec) == model.execution_time_ms(
            query, spec
        )


class TestCalibration:
    def test_target_mean_best_hit(self, catalog):
        classes = [qc([0], index=0), qc([0, 1], index=1), qc([1, 2], index=2)]
        specs = [MachineSpec(), MachineSpec(cpu_ghz=3.5, io_mbps=80.0)]
        model = calibrated_cost_model(catalog, classes, specs, target_best_ms=500.0)
        best = [
            min(model.execution_time_ms(c, s) for s in specs) for c in classes
        ]
        assert sum(best) / len(best) == pytest.approx(500.0, rel=1e-6)

    def test_eligibility_restricts_best(self, catalog):
        classes = [qc([0], index=0)]
        slow = MachineSpec(cpu_ghz=1.0, io_mbps=5.0)
        fast = MachineSpec(cpu_ghz=3.5, io_mbps=80.0)
        only_slow = calibrated_cost_model(
            catalog, classes, [slow, fast], target_best_ms=100.0,
            eligible_nodes=[[0]],
        )
        assert only_slow.execution_time_ms(classes[0], slow) == pytest.approx(
            100.0, rel=1e-6
        )

    def test_empty_eligibility_rejected(self, catalog):
        with pytest.raises(ValueError):
            calibrated_cost_model(
                catalog, [qc([0])], [MachineSpec()], eligible_nodes=[[]]
            )


class TestCostMatrix:
    def test_eligibility_marks_infinity(self, catalog):
        classes = [qc([0], index=0), qc([1], index=1)]
        specs = [MachineSpec()]
        matrix = cost_matrix(
            classes, specs, CostModel(catalog), eligibility=[[True, False]]
        )
        assert matrix[0][0] > 0
        assert math.isinf(matrix[0][1])


class TestRelativeSpeedModel:
    def test_reference_speed_is_one(self):
        assert RelativeSpeedCostModel.speed_factor(MachineSpec()) == pytest.approx(1.0)

    def test_costs_scale_inversely_with_speed(self):
        model = RelativeSpeedCostModel({0: 1000.0})
        fast = MachineSpec(cpu_ghz=4.6, io_mbps=85.0)
        query = qc([0])
        assert model.execution_time_ms(query, fast) < 1000.0

    def test_reference_cost_is_base(self):
        model = RelativeSpeedCostModel({0: 1000.0})
        assert model.execution_time_ms(qc([0]), MachineSpec()) == pytest.approx(
            1000.0
        )

    def test_unknown_class_rejected(self):
        model = RelativeSpeedCostModel({0: 1000.0})
        with pytest.raises(KeyError):
            model.execution_time_ms(qc([0], index=7), MachineSpec())

    def test_bad_base_cost_rejected(self):
        with pytest.raises(ValueError):
            RelativeSpeedCostModel({0: 0.0})
        with pytest.raises(ValueError):
            RelativeSpeedCostModel({})
