"""Bench E4 — regenerate Figure 4 (all mechanisms, sinusoid workload).

Paper shape: QA-NT and Greedy substantially better than the load
balancers; random and round-robin worst; two-random-probes and BNQRD in
between; QA-NT needs the most network messages.
"""

from repro.experiments.fig4 import run_fig4


def test_bench_fig4(benchmark, save_result, bench_nodes, full_scale):
    horizon = 120_000.0 if full_scale else 60_000.0
    result = benchmark.pedantic(
        run_fig4,
        kwargs=dict(num_nodes=bench_nodes, horizon_ms=horizon, seed=0),
        rounds=1,
        iterations=1,
    )
    save_result("fig4", result.render())
    normalised = result.normalised
    assert normalised["qa-nt"] == 1.0
    # Market mechanisms beat every load balancer.
    for fast in ("qa-nt", "greedy"):
        for slow in ("bnqrd", "two-probes", "random", "round-robin"):
            assert normalised[fast] < normalised[slow]
    # Random/round-robin are the two worst performers.
    worst = sorted(normalised, key=normalised.get)[-2:]
    assert set(worst) == {"random", "round-robin"}
