"""The federation simulation: nodes + allocator + workload + metrics.

This is the counterpart of the paper's C++ simulator (Section 5.1): it
wires the simulated RDBMS nodes, the network, one allocation mechanism and
a workload trace into a single discrete-event run and collects the metrics
the paper reports.

The lifecycle per run:

1. a period tick fires every ``period_ms`` (the paper's ``T`` = 500 ms):
   the allocator's :meth:`on_period_start` runs (QA-NT recomputes supply
   vectors) and previously refused queries are resubmitted;
2. every trace event creates a :class:`repro.query.Query` and asks the
   allocator for a decision; refusals join the pending pool, acceptances
   enqueue at the chosen node after the negotiation delay;
3. completions are recorded as :class:`repro.sim.metrics.QueryOutcome`.

After the trace's horizon a configurable *drain* window keeps period ticks
alive so backlogged queries can finish; whatever is still pending when the
drain ends is recorded as dropped.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..allocation.base import AllocationContext, Allocator
from ..catalog import Placement
from ..query.cost import CostModel, MachineSpec
from ..query.model import Query, QueryClass
from ..workload.trace import WorkloadEvent
from .engine import Simulator
from .faults import FaultInjector, FaultSpec
from .fleet import FleetArrays
from .metrics import MetricsCollector, QueryOutcome
from .network import LatencyModel, Network
from .node import SimulatedNode

__all__ = [
    "FederationConfig",
    "FederationSimulation",
    "generate_machine_specs",
    "build_federation",
    "run_single_mechanism",
]

#: The paper's period length ``T``.
DEFAULT_PERIOD_MS = 500.0


@dataclass(frozen=True)
class FederationConfig:
    """Run-level knobs of the federation simulator."""

    period_ms: float = DEFAULT_PERIOD_MS
    #: Extra simulated time after the last arrival for backlogs to drain.
    drain_ms: float = 60_000.0
    latency: LatencyModel = field(default_factory=LatencyModel)
    seed: int = 0
    #: Optional fault schedule (see :mod:`repro.sim.faults`).  ``None``
    #: or an inactive spec leaves every code path — and every RNG draw —
    #: exactly as without the fault layer.
    faults: Optional[FaultSpec] = None
    #: Route same-timestamp arrival groups through the allocator's
    #: :meth:`~repro.allocation.base.Allocator.assign_batch` (one market
    #: tick per simulated instant) instead of one event per query.
    #: Bit-identical either way by the batch contract; the flag exists so
    #: twin-fleet equivalence tests can force the scalar path.  Batching
    #: auto-disables under message faults or a zero base latency (see
    #: ``FederationSimulation._batch_enabled``).
    batch_ticks: bool = True

    def __post_init__(self) -> None:
        if self.period_ms <= 0:
            raise ValueError("period must be positive")
        if self.drain_ms < 0:
            raise ValueError("drain window must be non-negative")


class FederationSimulation:
    """One simulated federation bound to one allocation mechanism."""

    def __init__(
        self,
        nodes: Dict[int, SimulatedNode],
        classes: Sequence[QueryClass],
        candidates_by_class: Dict[int, Tuple[int, ...]],
        allocator: Allocator,
        simulator: Simulator,
        network: Network,
        config: FederationConfig,
        faults: Optional[FaultInjector] = None,
    ):
        self._nodes = nodes
        self._classes = classes
        self._allocator = allocator
        self._sim = simulator
        self._network = network
        self._config = config
        self._rng = random.Random(config.seed)
        self._metrics = MetricsCollector()
        self._pending: List[Query] = []
        self._next_qid = 0
        self._faults = faults
        #: Queries waiting on a backoff-scheduled retry (fault runs only);
        #: whatever is still here when the run ends counts as dropped.
        self._backoff_pending: Dict[int, Query] = {}
        context = AllocationContext(
            simulator=simulator,
            network=network,
            nodes=nodes,
            classes=classes,
            candidates_by_class=candidates_by_class,
            period_ms=config.period_ms,
            rng=random.Random(config.seed + 1),
            faults=faults if faults is not None and faults.message_faults else None,
            fleet=FleetArrays.build(nodes),
        )
        allocator.bind(context)
        # Market-tick batching requirements beyond the config flag:
        # * strictly positive negotiation delays (base latency > 0), so
        #   no enqueue/completion can land *between* two same-tick
        #   assigns — with zero base latency an assignment would enqueue
        #   synchronously mid-batch and the batch contract breaks;
        # * no message faults — backoff retries interleave their own
        #   scheduling and RNG draws per query, which batching would
        #   reorder.  Node-only faults (outages, churn) are fine: the
        #   allocators fall back to scalar exchanges per query on
        #   partial candidate sets.
        self._batch_enabled = (
            config.batch_ticks
            and config.latency.base_ms > 0
            and (faults is None or not faults.message_faults)
        )

    # -- accessors -------------------------------------------------------------

    @property
    def metrics(self) -> MetricsCollector:
        """The run's metrics collector."""
        return self._metrics

    @property
    def nodes(self) -> Dict[int, SimulatedNode]:
        """The federation's nodes by id."""
        return self._nodes

    @property
    def allocator(self) -> Allocator:
        """The bound allocation mechanism."""
        return self._allocator

    @property
    def simulator(self) -> Simulator:
        """The underlying event simulator."""
        return self._sim

    @property
    def network(self) -> Network:
        """The simulated network (message counts live here)."""
        return self._network

    @property
    def pending_queries(self) -> int:
        """Queries currently refused and awaiting resubmission."""
        return len(self._pending) + len(self._backoff_pending)

    @property
    def fault_injector(self) -> Optional[FaultInjector]:
        """The run's fault injector (None on fault-free runs)."""
        return self._faults

    # -- driving ------------------------------------------------------------------

    def run(self, trace: Sequence[WorkloadEvent]) -> MetricsCollector:
        """Execute a full workload trace and return the metrics."""
        if not trace:
            raise ValueError("cannot run an empty workload trace")
        horizon = max(e.time_ms for e in trace)
        end_of_run = horizon + self._config.drain_ms

        faults = self._faults
        if faults is not None and faults.spec.node_faults:
            # Scripted outages and churn windows go through the node's
            # existing fail/drain machinery before any event fires.
            faults.install_node_faults(self._nodes, horizon)
        self._allocator.on_run_start()
        self._sim.every(
            self._config.period_ms,
            self._on_period_tick,
            start_ms=self._config.period_ms,
            until_ms=end_of_run,
        )
        # Arrivals are scheduled as slim (callback, args) event slots — no
        # per-event closure allocation for the whole trace.  A sorted
        # trace (every builder emits one) goes in as one event *stream*:
        # only its next-due entry occupies a heap slot, so a million-query
        # trace costs O(1) heap residency instead of O(queries), and —
        # with batching enabled — runs of same-timestamp arrivals collapse
        # into one market-tick entry each.
        if all(
            trace[i].time_ms <= trace[i + 1].time_ms
            for i in range(len(trace) - 1)
        ):
            self._sim.schedule_stream(self._arrival_entries(trace))
        else:
            schedule_at = self._sim.schedule_at
            on_arrival = self._on_arrival
            for event in trace:
                schedule_at(event.time_ms, on_arrival, event)
        self._sim.run(until_ms=end_of_run)
        # Let the allocator settle any deferred period bookkeeping before
        # the run's state is read (metrics, drops, post-run agent probes).
        self._allocator.on_run_end()
        batch_stats = getattr(self._allocator, "batch_dispatch_stats", None)
        if batch_stats is not None:
            self._metrics.apply_batch_stats(
                vector_exchanges=batch_stats.vector_exchanges,
                scalar_fallbacks=batch_stats.scalar_fallbacks,
                syncs=batch_stats.syncs,
            )
        for __ in self._pending:
            self._metrics.record_drop()
        for __ in self._backoff_pending:
            self._metrics.record_drop()
        if faults is not None:
            self._metrics.apply_fault_stats(
                timeouts=faults.timeouts,
                lost_messages=faults.lost_messages,
                degraded_assignments=faults.degraded_assignments,
                fault_retries=faults.backoff_retries,
                crash_count=faults.crash_count,
                partition_ms=faults.partition_ms(),
            )
        return self._metrics

    def _arrival_entries(
        self, trace: Sequence[WorkloadEvent]
    ) -> List[Tuple[float, object, tuple]]:
        """Stream entries for a sorted trace, grouping same-tick arrivals.

        With batching enabled, a run of events sharing one timestamp
        becomes a single ``_on_arrival_batch`` entry (the group fires at
        the run's first reserved sequence number; nothing else can sort
        between the run's members, so the collapse is order-preserving).
        Singletons — and everything when batching is off — stay one
        ``_on_arrival`` entry per event.
        """
        on_arrival = self._on_arrival
        if not self._batch_enabled:
            return [(e.time_ms, on_arrival, (e,)) for e in trace]
        entries: List[Tuple[float, object, tuple]] = []
        on_batch = self._on_arrival_batch
        i = 0
        total = len(trace)
        while i < total:
            j = i + 1
            time_ms = trace[i].time_ms
            while j < total and trace[j].time_ms == time_ms:
                j += 1
            if j - i == 1:
                entries.append((time_ms, on_arrival, (trace[i],)))
            else:
                entries.append((time_ms, on_batch, (tuple(trace[i:j]),)))
            i = j
        return entries

    # -- event handlers ---------------------------------------------------------------

    def _on_arrival(self, event: WorkloadEvent) -> None:
        query = Query(
            qid=self._next_qid,
            class_index=event.class_index,
            origin_node=event.origin_node,
            arrival_ms=event.time_ms,
        )
        self._next_qid += 1
        self._try_assign(query)

    def _on_arrival_batch(self, events: Tuple[WorkloadEvent, ...]) -> None:
        """All arrivals of one simulated tick, as one market tick."""
        queries = []
        for event in events:
            queries.append(
                Query(
                    qid=self._next_qid,
                    class_index=event.class_index,
                    origin_node=event.origin_node,
                    arrival_ms=event.time_ms,
                )
            )
            self._next_qid += 1
        self._dispatch_batch(queries)

    def _on_period_tick(self) -> None:
        self._allocator.on_period_start()
        if not self._pending:
            return
        # Refused queries re-enter the new period's demand (Section 3.3).
        retry, self._pending = self._pending, []
        if self._batch_enabled and len(retry) >= 2:
            # The whole retry burst shares this tick; the batch contract
            # guarantees the up-front resubmission bump is unobservable
            # (a fault-free assign never reads another query's counter).
            for query in retry:
                query.resubmissions += 1
            self._dispatch_batch(retry)
            return
        for query in retry:
            query.resubmissions += 1
            self._try_assign(query)

    def _dispatch_batch(self, queries: List[Query]) -> None:
        """Allocate one same-tick batch through ``assign_batch``."""
        self._metrics.record_batch_tick(len(queries))
        decisions = self._allocator.assign_batch(queries)
        for query, decision in zip(queries, decisions):
            self._finish_assign(query, decision)

    def _try_assign(self, query: Query) -> None:
        self._finish_assign(query, self._allocator.assign(query))

    def _finish_assign(self, query: Query, decision) -> None:
        self._metrics.record_exchange(
            decision.messages, decision.delay_ms, decision.node_id is not None
        )
        if decision.node_id is None:
            faults = self._faults
            if faults is not None and faults.message_faults:
                # Under message faults a refusal (or total silence) is
                # resubmitted through capped exponential backoff instead
                # of the plain next-period retry — the client cannot tell
                # a refusal from a lost reply, so it paces itself.
                delay = decision.delay_ms + faults.backoff_ms(
                    query.resubmissions
                )
                faults.note_backoff()
                self._backoff_pending[query.qid] = query
                self._sim.schedule(delay, self._retry, query)
                return
            self._pending.append(query)
            return
        node = self._nodes[decision.node_id]
        query.assigned_ms = self._sim.now + decision.delay_ms
        if decision.delay_ms > 0:
            self._sim.schedule(decision.delay_ms, self._enqueue, query, node)
        else:
            self._enqueue(query, node)

    def _retry(self, query: Query) -> None:
        """A backoff timer fired: resubmit the query (fault runs only)."""
        self._backoff_pending.pop(query.qid, None)
        query.resubmissions += 1
        self._try_assign(query)

    def _enqueue(self, query: Query, node: SimulatedNode) -> None:
        """Commit an assigned query to its node; schedule the completion.

        Both this and the completion event travel as slim (callback, args)
        slots — the per-query deliver path allocates no closures.
        """
        record = node.enqueue(query)
        self._sim.schedule_at(
            record.finish_ms, self._on_completion, query, node.node_id, record
        )

    def _on_completion(self, query: Query, node_id: int, record) -> None:
        outcome = QueryOutcome(
            qid=query.qid,
            class_index=query.class_index,
            origin_node=query.origin_node,
            arrival_ms=query.arrival_ms,
            assigned_ms=(
                query.assigned_ms
                if query.assigned_ms is not None
                else query.arrival_ms
            ),
            node_id=node_id,
            start_ms=record.start_ms,
            finish_ms=record.finish_ms,
            resubmissions=query.resubmissions,
        )
        self._metrics.record(outcome)
        self._allocator.on_completion(
            query, node_id, record.finish_ms - record.start_ms
        )


def generate_machine_specs(
    num_nodes: int,
    seed: int = 0,
    cpu_range_ghz: Tuple[float, float] = (1.0, 3.5),
    buffer_range_mb: Tuple[float, float] = (2.0, 10.0),
    io_range_mbps: Tuple[float, float] = (5.0, 80.0),
    nodes_without_hash_join: int = 5,
) -> List[MachineSpec]:
    """Heterogeneous machine specs per Table 3.

    Defaults: CPU 1–3.5 GHz, buffers 2–10 MB, I/O 5–80 MB/s, merge-scan on
    all nodes but hash join missing on 5 of them.
    """
    if num_nodes <= 0:
        raise ValueError("need at least one node")
    rng = random.Random(seed)
    no_hash = set(
        rng.sample(range(num_nodes), min(nodes_without_hash_join, num_nodes))
    )
    return [
        MachineSpec(
            cpu_ghz=rng.uniform(*cpu_range_ghz),
            buffer_mb=rng.uniform(*buffer_range_mb),
            io_mbps=rng.uniform(*io_range_mbps),
            supports_hash_join=i not in no_hash,
        )
        for i in range(num_nodes)
    ]


def build_federation(
    specs: Sequence[MachineSpec],
    placement: Placement,
    classes: Sequence[QueryClass],
    cost_model: CostModel,
    allocator: Allocator,
    config: Optional[FederationConfig] = None,
) -> FederationSimulation:
    """Assemble a ready-to-run federation.

    Node *i* gets machine spec ``specs[i]`` and the relations
    ``placement.relations_of(i)``; its per-class cost row is the cost
    model's estimate where it holds all relations of the class and ``inf``
    elsewhere.
    """
    config = config or FederationConfig()
    if len(specs) != placement.num_nodes:
        raise ValueError("one machine spec per placed node is required")
    simulator = Simulator()
    network = Network(simulator, latency=config.latency, seed=config.seed + 2)
    injector: Optional[FaultInjector] = None
    if config.faults is not None and config.faults.active:
        injector = FaultInjector(config.faults)
        if config.faults.message_faults:
            # Message-level faults hook the network; pure node-fault specs
            # (scripted outages, churn) leave the wire untouched so the
            # message paths stay byte-identical to a fault-free run.
            network.attach_faults(injector)

    candidates_by_class: Dict[int, Tuple[int, ...]] = {
        qc.index: tuple(sorted(qc.candidate_nodes(placement)))
        for qc in classes
    }
    nodes: Dict[int, SimulatedNode] = {}
    for node_id in placement.node_ids:
        spec = specs[node_id]
        costs = []
        for qc in classes:
            if node_id in candidates_by_class[qc.index]:
                costs.append(cost_model.execution_time_ms(qc, spec))
            else:
                costs.append(float("inf"))
        nodes[node_id] = SimulatedNode(
            node_id=node_id,
            spec=spec,
            relations=placement.relations_of(node_id),
            class_costs_ms=costs,
            simulator=simulator,
        )
    return FederationSimulation(
        nodes=nodes,
        classes=classes,
        candidates_by_class=candidates_by_class,
        allocator=allocator,
        simulator=simulator,
        network=network,
        config=config,
        faults=injector,
    )


def run_single_mechanism(
    specs: Sequence[MachineSpec],
    placement: Placement,
    classes: Sequence[QueryClass],
    cost_model: CostModel,
    trace: Sequence[WorkloadEvent],
    mechanism: str = "qa-nt",
    config: Optional[FederationConfig] = None,
    *,
    parameters=None,
    activation_threshold: Optional[float] = 2.0,
    allowance_factor: float = 2.0,
) -> Tuple[MetricsCollector, int]:
    """Build, run and tear down one single-process federation.

    The one-call form of the build-allocator/build-federation/run
    sequence for the two mechanisms the sharded engine speaks
    (``"qa-nt"`` / ``"greedy"``); ``repro.sim.shards`` delegates its
    ``shards=1`` path here verbatim, which is what keeps that path
    byte-identical to ``build_federation().run()``.  Returns the metrics
    collector and the network's message count.
    """
    from ..allocation import GreedyAllocator, QantAllocator

    if mechanism == "qa-nt":
        allocator: Allocator = QantAllocator(
            parameters=parameters,
            activation_threshold=activation_threshold,
            allowance_factor=allowance_factor,
        )
    elif mechanism == "greedy":
        allocator = GreedyAllocator()
    else:
        raise ValueError("unknown mechanism %r" % (mechanism,))
    federation = build_federation(
        specs, placement, classes, cost_model, allocator, config
    )
    metrics = federation.run(trace)
    return metrics, federation.network.messages_sent
