"""Stochastic (Markov-chain / queueing-theory) allocation for static loads.

Models the mechanism of Drenick & Smith (cited as [4]): a central planner
that knows the *static* arrival rate of every query class and every node's
service times computes, once, the routing probabilities ``x[i][k]`` (the
fraction of class-*k* queries sent to node *i*) that minimise the expected
response time of the system, then routes queries by sampling those
probabilities.

Each node is approximated as an M/M/1 queue whose utilisation under a
routing plan is ``rho_i = sum_k rate_k * x_ik * e_ik`` and whose expected
response for class *k* is ``e_ik / (1 - rho_i)``.  The plan minimises the
rate-weighted mean response subject to the probabilities of each class
summing to one, eligibility, and stability (``rho_i`` capped).

Exactly as the paper says, the mechanism is centralised, assumes constant
execution times and a static workload, and needs full knowledge of node
capabilities — so it violates autonomy and cannot track dynamic loads
(Table 2).  It is included as the "excellent under static load" yardstick
(ablation A4): QA-NT should come close to it on static workloads.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..query.model import Query
from .base import Allocator, AssignmentDecision

__all__ = [
    "optimise_routing",
    "MarkovAllocator",
]

#: Utilisation cap keeping every node's queue stable in the planner.
MAX_UTILISATION = 0.98


def optimise_routing(
    rates_per_ms: Sequence[float],
    cost_matrix_ms: Sequence[Sequence[float]],
    iterations: int = 400,
) -> List[List[float]]:
    """Minimise expected response time over routing probabilities.

    ``rates_per_ms[k]`` is class *k*'s arrival rate; ``cost_matrix_ms[i][k]``
    node *i*'s execution time (``inf`` = ineligible).  Returns
    ``x[i][k]``, the probability of routing class *k* to node *i*.

    Solved with projected coordinate descent: starting from a plan that
    splits each class across eligible nodes in inverse proportion to cost,
    the planner repeatedly shifts probability mass of each class from the
    node with the highest marginal response cost to the one with the
    lowest.  This converges to a stationary plan of the (convex on its
    stable domain) M/M/1 objective without external solver dependencies.
    """
    num_nodes = len(cost_matrix_ms)
    num_classes = len(rates_per_ms)
    if any(len(row) != num_classes for row in cost_matrix_ms):
        raise ValueError("cost matrix shape does not match rates")

    plan = _inverse_cost_seed(rates_per_ms, cost_matrix_ms)
    step = 0.25
    for __ in range(iterations):
        moved = False
        for k in range(num_classes):
            if rates_per_ms[k] <= 0:
                continue
            eligible = [
                i
                for i in range(num_nodes)
                if not math.isinf(cost_matrix_ms[i][k])
            ]
            if len(eligible) < 2:
                continue
            marginals = {
                i: _marginal_cost(i, k, plan, rates_per_ms, cost_matrix_ms)
                for i in eligible
            }
            donors = [i for i in eligible if plan[i][k] > 1e-9]
            if not donors:
                continue
            worst = max(donors, key=lambda i: marginals[i])
            best = min(eligible, key=lambda i: marginals[i])
            if marginals[worst] - marginals[best] <= 1e-9:
                continue
            transfer = min(step, plan[worst][k])
            if _utilisation_after(
                best, k, transfer, plan, rates_per_ms, cost_matrix_ms
            ) >= MAX_UTILISATION:
                continue
            plan[worst][k] -= transfer
            plan[best][k] += transfer
            moved = True
        if not moved:
            step *= 0.5
            if step < 1e-4:
                break
    return plan


def _inverse_cost_seed(
    rates: Sequence[float], costs: Sequence[Sequence[float]]
) -> List[List[float]]:
    num_nodes, num_classes = len(costs), len(rates)
    plan = [[0.0] * num_classes for __ in range(num_nodes)]
    for k in range(num_classes):
        weights = [
            0.0 if math.isinf(costs[i][k]) else 1.0 / costs[i][k]
            for i in range(num_nodes)
        ]
        total = sum(weights)
        if total <= 0:
            continue
        for i in range(num_nodes):
            plan[i][k] = weights[i] / total
    return plan


def _node_utilisation(
    node: int,
    plan: Sequence[Sequence[float]],
    rates: Sequence[float],
    costs: Sequence[Sequence[float]],
) -> float:
    return sum(
        rates[k] * plan[node][k] * costs[node][k]
        for k in range(len(rates))
        if plan[node][k] > 0 and not math.isinf(costs[node][k])
    )


def _utilisation_after(
    node: int,
    class_index: int,
    transfer: float,
    plan: Sequence[Sequence[float]],
    rates: Sequence[float],
    costs: Sequence[Sequence[float]],
) -> float:
    return (
        _node_utilisation(node, plan, rates, costs)
        + rates[class_index] * transfer * costs[node][class_index]
    )


def _marginal_cost(
    node: int,
    class_index: int,
    plan: Sequence[Sequence[float]],
    rates: Sequence[float],
    costs: Sequence[Sequence[float]],
) -> float:
    """Marginal expected response of pushing class mass onto ``node``.

    For an M/M/1 node, response scales as ``e / (1 - rho)``; the marginal
    cost grows steeply as utilisation approaches one, which is what steers
    mass away from saturated nodes.
    """
    rho = min(MAX_UTILISATION, _node_utilisation(node, plan, rates, costs))
    return costs[node][class_index] / (1.0 - rho) ** 2


class MarkovAllocator(Allocator):
    """Static stochastic routing from a precomputed probability plan."""

    name = "markov"
    respects_autonomy = False
    distributed = False

    def __init__(self, rates_per_ms: Sequence[float]):
        """``rates_per_ms[k]`` is the (assumed static) arrival rate of
        class *k* in queries per millisecond."""
        super().__init__()
        self._rates = list(rates_per_ms)
        self._plan: Optional[List[List[float]]] = None

    def _after_bind(self) -> None:
        costs = [
            list(self.context.nodes[nid].class_costs_ms)
            for nid in sorted(self.context.nodes)
        ]
        self._node_order = sorted(self.context.nodes)
        if len(self._rates) != len(costs[0]):
            raise ValueError("rates cover a different number of classes")
        self._plan = optimise_routing(self._rates, costs)

    def assign(self, query: Query) -> AssignmentDecision:
        candidates = self.context.available_candidates(query.class_index)
        if not candidates or self._plan is None:
            return AssignmentDecision(node_id=None)
        weights: Dict[int, float] = {}
        for position, nid in enumerate(self._node_order):
            if nid in candidates:
                weights[nid] = self._plan[position][query.class_index]
        total = sum(weights.values())
        if total <= 0:
            chosen = self.context.rng.choice(list(candidates))
        else:
            pick = self.context.rng.random() * total
            acc = 0.0
            chosen = next(iter(weights))
            for nid, weight in sorted(weights.items()):
                acc += weight
                if pick <= acc:
                    chosen = nid
                    break
        return self._dispatch(query, chosen)
