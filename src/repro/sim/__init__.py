"""Discrete-event simulator of a federation of autonomous RDBMSs."""

from .capacity import system_capacity_qpms
from .engine import EventHandle, Simulator
from .federation import (
    DEFAULT_PERIOD_MS,
    FederationConfig,
    FederationSimulation,
    build_federation,
    generate_machine_specs,
)
from .metrics import MetricsCollector, QueryOutcome, normalised_response_times
from .network import LatencyModel, Network
from .node import ExecutionRecord, SimulatedNode

__all__ = [
    "DEFAULT_PERIOD_MS",
    "EventHandle",
    "ExecutionRecord",
    "FederationConfig",
    "FederationSimulation",
    "LatencyModel",
    "MetricsCollector",
    "Network",
    "QueryOutcome",
    "SimulatedNode",
    "Simulator",
    "build_federation",
    "generate_machine_specs",
    "normalised_response_times",
    "system_capacity_qpms",
]
