"""Random allocation: the commercial cluster client-level baseline.

Clients pick a uniformly random candidate server per query.  Works
acceptably in homogeneous clusters; in heterogeneous federations it
"assigned equal amounts of queries to all nodes" and performed worst in
the paper's Figure 4 (together with round-robin).
"""

from __future__ import annotations

from ..query.model import Query
from .base import Allocator, AssignmentDecision

__all__ = [
    "RandomAllocator",
]


class RandomAllocator(Allocator):
    """Uniformly random candidate choice."""

    name = "random"
    respects_autonomy = True
    distributed = True

    def assign(self, query: Query) -> AssignmentDecision:
        candidates = self.context.available_candidates(query.class_index)
        if not candidates:
            return AssignmentDecision(node_id=None)
        chosen = self.context.rng.choice(list(candidates))
        # One request/ack exchange with the chosen server only.
        return self._dispatch(query, chosen)
