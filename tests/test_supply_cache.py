"""Property tests for the price-epoch solver cache (hypothesis).

The perf work memoises density orderings and solved supply vectors inside
:class:`CapacitySupplySet`, keyed by an opaque ``cache_token`` that QA-NT
agents derive from their price epoch.  These tests drive random
interleavings of ``_raise_price`` / ``_lower_price`` — the only two
operations that move prices — and assert the cached solve is always
*exactly* equal to a from-scratch solve on a fresh supply set at the same
prices.  Exact (``==``) equality is the right bar: token-keyed caching
must never change a single bit of any simulated decision.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qant import QantPricingAgent
from repro.core.supply import CapacitySupplySet, solve_supply

METHODS = ("fractional", "greedy", "greedy-fractional", "proportional", "exact")

# Costs >= 50ms on a <= 2s budget keep the exact DP grid small enough for
# hypothesis to run hundreds of solves per test.
costs_lists = st.lists(
    st.floats(min_value=50.0, max_value=1000.0), min_size=2, max_size=5
)
capacities = st.floats(min_value=100.0, max_value=2000.0)
# (kind, class pick, leftover) — class pick is reduced modulo K inside.
price_ops = st.lists(
    st.tuples(
        st.sampled_from(["raise", "lower"]),
        st.integers(min_value=0, max_value=7),
        st.floats(min_value=0.1, max_value=20.0),
    ),
    max_size=25,
)


def _apply(agent: QantPricingAgent, ops) -> None:
    for kind, pick, leftover in ops:
        class_index = pick % agent.num_classes
        if kind == "raise":
            agent._raise_price(class_index)
        else:
            agent._lower_price(class_index, leftover)


class TestEpochTokenCache:
    @settings(max_examples=40, deadline=None)
    @given(costs_lists, capacities, price_ops, st.sampled_from(METHODS))
    def test_cached_solve_equals_from_scratch(
        self, costs, capacity, ops, method
    ):
        shared = CapacitySupplySet(costs, capacity)
        agent = QantPricingAgent(shared)
        _apply(agent, ops)
        token = (agent._token_base, agent.price_epoch)
        prices = list(agent._price_values)
        first = shared.optimal_supply(prices, method, cache_token=token)
        second = shared.optimal_supply(prices, method, cache_token=token)
        fresh = CapacitySupplySet(costs, capacity).optimal_supply(
            prices, method
        )
        assert first == fresh
        # The second call at the same token must be the memoised hit.
        assert second is first

    @settings(max_examples=25, deadline=None)
    @given(costs_lists, capacities, price_ops, st.sampled_from(METHODS))
    def test_solving_after_every_update_stays_fresh(
        self, costs, capacity, ops, method
    ):
        """Populate the memo at every intermediate epoch: each price move
        must invalidate it, never serve the previous epoch's vector."""
        shared = CapacitySupplySet(costs, capacity)
        agent = QantPricingAgent(shared)
        for op in ops:
            _apply(agent, [op])
            token = (agent._token_base, agent.price_epoch)
            prices = list(agent._price_values)
            cached = solve_supply(shared, prices, method, cache_token=token)
            fresh = CapacitySupplySet(costs, capacity).optimal_supply(
                prices, method
            )
            assert cached == fresh

    @settings(max_examples=40, deadline=None)
    @given(costs_lists, capacities, price_ops)
    def test_epoch_and_max_price_invariants(self, costs, capacity, ops):
        agent = QantPricingAgent(CapacitySupplySet(costs, capacity))
        last_epoch = agent.price_epoch
        last_prices = list(agent._price_values)
        for op in ops:
            _apply(agent, [op])
            prices = list(agent._price_values)
            if prices == last_prices:
                # No actual change -> the epoch (cache key) must not move.
                assert agent.price_epoch == last_epoch
            else:
                assert agent.price_epoch > last_epoch
            # The incrementally maintained overload signal never drifts.
            assert agent.max_price == max(prices)
            last_epoch = agent.price_epoch
            last_prices = prices


class TestWithCapacityRebind:
    @settings(max_examples=40, deadline=None)
    @given(
        costs_lists,
        capacities,
        capacities,
        st.integers(min_value=0, max_value=10),
        st.sampled_from(METHODS),
    )
    def test_rebind_equals_fresh_construction(
        self, costs, cap_a, cap_b, price_scale, method
    ):
        prices = [
            0.5 + price_scale * 0.3 * (k + 1) for k in range(len(costs))
        ]
        base = CapacitySupplySet(costs, cap_a)
        rebound = base.with_capacity(cap_b)
        fresh = CapacitySupplySet(costs, cap_b)
        assert rebound.capacity_ms == fresh.capacity_ms
        assert rebound.optimal_supply(prices, method) == fresh.optimal_supply(
            prices, method
        )

    @settings(max_examples=25, deadline=None)
    @given(costs_lists, capacities, capacities, st.sampled_from(METHODS))
    def test_shared_cache_across_rebinds_keys_on_capacity(
        self, costs, cap_a, cap_b, method
    ):
        """The rebind shares the memo dict; a vector solved at capacity A
        must never be served for capacity B (the key includes capacity)."""
        prices = [float(k + 1) for k in range(len(costs))]
        token = (99, 0)
        base = CapacitySupplySet(costs, cap_a)
        rebound = base.with_capacity(cap_b)
        at_a = base.optimal_supply(prices, method, cache_token=token)
        at_b = rebound.optimal_supply(prices, method, cache_token=token)
        assert at_a == CapacitySupplySet(costs, cap_a).optimal_supply(
            prices, method
        )
        assert at_b == CapacitySupplySet(costs, cap_b).optimal_supply(
            prices, method
        )

    def test_same_capacity_rebind_returns_self(self):
        base = CapacitySupplySet([100.0, 200.0], 1000.0)
        assert base.with_capacity(1000.0) is base

    def test_negative_capacity_rejected(self):
        base = CapacitySupplySet([100.0, 200.0], 1000.0)
        with pytest.raises(ValueError):
            base.with_capacity(-1.0)
