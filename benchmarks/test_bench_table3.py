"""Bench E11 — regenerate Table 3 (simulation parameters, measured).

The generated world must reproduce the paper's dataset statistics:
relation sizes averaging ≈10.5 MB, ≈5 mirrors per relation, ≈50 relations
per node, and the calibrated ≈2,000 ms average best execution time.
"""

import pytest

from repro.experiments.setups import zipf_world
from repro.experiments.table3 import run_table3


def test_bench_table3(benchmark, save_result, full_scale):
    if full_scale:
        world = zipf_world(seed=0)
    else:
        world = zipf_world(
            num_nodes=30, num_relations=300, num_classes=30, seed=0
        )
    result = benchmark.pedantic(
        run_table3, kwargs=dict(world=world), rounds=1, iterations=1
    )
    save_result("table3", result.render())
    assert result.avg_relation_size_mb == pytest.approx(10.5, rel=0.1)
    assert result.avg_mirrors == pytest.approx(5.0, rel=0.1)
    assert result.avg_relations_per_node == pytest.approx(50.0, rel=0.1)
    assert result.avg_best_execution_ms == pytest.approx(2000.0, rel=0.05)
    assert result.cpu_range_ghz[0] >= 1.0
    assert result.cpu_range_ghz[1] <= 3.5
