"""Ablations A1–A4 — the design choices DESIGN.md calls out.

* **A1 (lambda)** — the price-adjustment coefficient trades convergence
  speed against accuracy (Section 3.3): measured on the centralised
  tatonnement umpire (iterations to equilibrium, residual excess) and on
  QA-NT end-to-end response time.
* **A2 (period length T)** — larger T helps static load, hurts dynamic
  (Section 5.1): QA-NT response time across T values on slow and fast
  sinusoids.
* **A3 (partial adoption)** — Section 4 claims QA-NT still helps when
  only a subset of nodes adopt it: response time vs adoption fraction.
* **A4 (Markov vs QA-NT, static load)** — the paper grades the
  Markov/queueing allocator "excellent" on the static workloads it
  requires and says QA-NT "comes close": both are measured on a static
  Poisson workload.
* **A5 (supply rounding)** — the integer-rounding error the paper blames
  for Greedy's small-load advantage: QA-NT with corner/integer supply vs
  the smooth proportional solver.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

from ..allocation import GreedyAllocator, MarkovAllocator, QantAllocator
from ..core import (
    CapacitySupplySet,
    QantParameters,
    QueryVector,
    TatonnementUmpire,
)
from ..sim import FederationConfig
from ..workload import PoissonArrivals, build_trace
from .reporting import format_series, format_table
from .setups import (
    World,
    run_mechanism,
    sinusoid_trace_for_load,
    two_query_world,
)
from .spec import ScalePreset, ScenarioSpec, register

__all__ = [
    "LambdaSweepResult",
    "PeriodSweepResult",
    "PartialAdoptionResult",
    "StaticWorkloadResult",
    "RoundingAblationResult",
    "lambda_cell",
    "period_cell",
    "partial_adoption_cell",
    "static_markov_cell",
    "rounding_cell",
    "run_lambda_sweep",
    "run_period_sweep",
    "run_partial_adoption",
    "run_static_markov",
    "run_rounding_ablation",
]


# --------------------------------------------------------------------------- A1


@dataclass
class LambdaSweepResult:
    """Tatonnement convergence and QA-NT response per lambda."""

    lambdas: List[float]
    tatonnement_iterations: List[int]
    tatonnement_residual: List[float]
    qant_response_ms: List[float]

    def render(self) -> str:
        """All three series as a table."""
        return format_table(
            ("lambda", "umpire iterations", "residual excess", "qa-nt response (ms)"),
            zip(
                self.lambdas,
                self.tatonnement_iterations,
                self.tatonnement_residual,
                self.qant_response_ms,
            ),
        )

    def to_dict(self) -> dict:
        """JSON-ready form of all three series."""
        return asdict(self)


def _umpire_convergence(lam: float) -> tuple:
    """Centralised tatonnement convergence at step ``lam``.

    The umpire starts from deliberately skewed prices so the market needs
    real adjustment; the paper's trade-off shows cleanly: larger lambda
    clears in fewer iterations, until it overshoots and oscillates forever
    (the "decreased accuracy" failure mode).  Returns ``(iterations,
    residual_excess)``.
    """
    from ..core.market import PriceVector

    supply_sets = [
        CapacitySupplySet([800.0, 1600.0], 10_000.0),
        CapacitySupplySet([1600.0, 800.0], 10_000.0),
        CapacitySupplySet([1000.0, 1000.0], 10_000.0),
    ]
    demands = [
        QueryVector((6, 2)),
        QueryVector((4, 4)),
        QueryVector((2, 6)),
    ]
    skewed = PriceVector([1.0, 0.05])
    umpire = TatonnementUmpire(
        step=lam, max_iterations=5000, supply_method="proportional"
    )
    result = umpire.find_equilibrium(demands, supply_sets, initial_prices=skewed)
    return result.iterations, max(0.0, max(result.excess))


def lambda_cell(
    mechanism: str,
    adjustment_lambda: float,
    point_index: int,
    seed: int,
    num_nodes: int = 30,
    horizon_ms: float = 40_000.0,
    load_fraction: float = 1.2,
    world: Optional[World] = None,
) -> Dict[str, float]:
    """One (lambda, seed) sweep cell: umpire convergence + QA-NT response."""
    iterations, residual = _umpire_convergence(adjustment_lambda)
    world = world or two_query_world(num_nodes=num_nodes, seed=seed)
    trace = sinusoid_trace_for_load(
        world, load_fraction=load_fraction, horizon_ms=horizon_ms, seed=seed + 1
    )
    run = run_mechanism(
        world,
        trace,
        mechanism,
        lambda: QantAllocator(
            parameters=QantParameters(adjustment=adjustment_lambda)
        ),
        config=FederationConfig(seed=seed + 2),
    )
    metrics = run.metrics_dict()
    metrics["umpire_iterations"] = float(iterations)
    metrics["umpire_residual"] = residual
    return metrics


def run_lambda_sweep(
    lambdas: Sequence[float] = (0.001, 0.005, 0.02, 0.05),
    num_nodes: int = 30,
    horizon_ms: float = 40_000.0,
    load_fraction: float = 1.2,
    seed: int = 0,
) -> LambdaSweepResult:
    """Ablation A1: sweep the price-adjustment coefficient."""
    world = two_query_world(num_nodes=num_nodes, seed=seed)
    iterations, residuals, responses = [], [], []
    for index, lam in enumerate(lambdas):
        metrics = lambda_cell(
            "qa-nt",
            lam,
            index,
            seed,
            horizon_ms=horizon_ms,
            load_fraction=load_fraction,
            world=world,
        )
        iterations.append(int(metrics["umpire_iterations"]))
        residuals.append(metrics["umpire_residual"])
        responses.append(metrics["mean_response_ms"])
    return LambdaSweepResult(
        lambdas=list(lambdas),
        tatonnement_iterations=iterations,
        tatonnement_residual=residuals,
        qant_response_ms=responses,
    )


# --------------------------------------------------------------------------- A2


@dataclass
class PeriodSweepResult:
    """QA-NT response per period length, on slow and fast dynamics."""

    periods_ms: List[float]
    response_slow_dynamics_ms: List[float]
    response_fast_dynamics_ms: List[float]

    def render(self) -> str:
        """Both series as a table."""
        return format_table(
            ("T (ms)", "response @0.05Hz (ms)", "response @1Hz (ms)"),
            zip(
                self.periods_ms,
                self.response_slow_dynamics_ms,
                self.response_fast_dynamics_ms,
            ),
        )

    def to_dict(self) -> dict:
        """JSON-ready form of both series."""
        return asdict(self)


#: The period sweep encodes the workload dynamics in the mechanism label
#: so the two sinusoid frequencies appear as two series of one sweep.
_PERIOD_FREQUENCIES = {"qa-nt@0.05Hz": 0.05, "qa-nt@1Hz": 1.0}


def period_cell(
    mechanism: str,
    period_ms: float,
    point_index: int,
    seed: int,
    num_nodes: int = 30,
    horizon_ms: float = 40_000.0,
    load_fraction: float = 1.2,
    world: Optional[World] = None,
) -> Dict[str, float]:
    """One (mechanism-label, period, seed) sweep cell for ablation A2."""
    frequency_hz = _PERIOD_FREQUENCIES[mechanism]
    world = world or two_query_world(num_nodes=num_nodes, seed=seed)
    trace = sinusoid_trace_for_load(
        world,
        load_fraction=load_fraction,
        horizon_ms=horizon_ms,
        frequency_hz=frequency_hz,
        seed=seed + 1,
    )
    run = run_mechanism(
        world,
        trace,
        mechanism,
        QantAllocator,
        config=FederationConfig(period_ms=period_ms, seed=seed + 2),
    )
    return run.metrics_dict()


def run_period_sweep(
    periods_ms: Sequence[float] = (125.0, 250.0, 500.0, 1000.0, 2000.0),
    num_nodes: int = 30,
    horizon_ms: float = 40_000.0,
    load_fraction: float = 1.2,
    seed: int = 0,
) -> PeriodSweepResult:
    """Ablation A2: sweep the market period length T."""
    world = two_query_world(num_nodes=num_nodes, seed=seed)
    slow, fast = [], []
    for label, sink in (("qa-nt@0.05Hz", slow), ("qa-nt@1Hz", fast)):
        for index, period in enumerate(periods_ms):
            metrics = period_cell(
                label,
                period,
                index,
                seed,
                horizon_ms=horizon_ms,
                load_fraction=load_fraction,
                world=world,
            )
            sink.append(metrics["mean_response_ms"])
    return PeriodSweepResult(
        periods_ms=list(periods_ms),
        response_slow_dynamics_ms=slow,
        response_fast_dynamics_ms=fast,
    )


# --------------------------------------------------------------------------- A3


@dataclass
class PartialAdoptionResult:
    """Response time as the QA-NT adoption fraction grows."""

    adoption_fractions: List[float]
    response_ms: List[float]

    def render(self) -> str:
        """The adoption series as text."""
        return format_series(
            "qa-nt response (ms) vs adoption fraction",
            self.adoption_fractions,
            self.response_ms,
        )

    @property
    def monotone_gain(self) -> bool:
        """True iff full adoption beats zero adoption."""
        return self.response_ms[-1] <= self.response_ms[0]

    def to_dict(self) -> dict:
        """JSON-ready form of the adoption series."""
        payload = asdict(self)
        payload["monotone_gain"] = self.monotone_gain
        return payload


def partial_adoption_cell(
    mechanism: str,
    adoption_fraction: float,
    point_index: int,
    seed: int,
    num_nodes: int = 40,
    horizon_ms: float = 40_000.0,
    load_fraction: float = 1.2,
    world: Optional[World] = None,
) -> Dict[str, float]:
    """One (adoption fraction, seed) sweep cell for ablation A3."""
    world = world or two_query_world(num_nodes=num_nodes, seed=seed)
    trace = sinusoid_trace_for_load(
        world, load_fraction=load_fraction, horizon_ms=horizon_ms, seed=seed + 1
    )
    adopters = set(range(int(round(adoption_fraction * world.num_nodes))))
    run = run_mechanism(
        world,
        trace,
        mechanism,
        lambda: QantAllocator(adopters=adopters),
        config=FederationConfig(seed=seed + 2),
    )
    return run.metrics_dict()


def run_partial_adoption(
    adoption_fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    num_nodes: int = 40,
    horizon_ms: float = 40_000.0,
    load_fraction: float = 1.2,
    seed: int = 0,
) -> PartialAdoptionResult:
    """Ablation A3: only a subset of nodes runs QA-NT.

    Non-adopting nodes always offer (greedy behaviour), so fraction 0.0
    degenerates to Greedy and 1.0 to full QA-NT.
    """
    world = two_query_world(num_nodes=num_nodes, seed=seed)
    responses = []
    for index, fraction in enumerate(adoption_fractions):
        metrics = partial_adoption_cell(
            "qa-nt",
            fraction,
            index,
            seed,
            horizon_ms=horizon_ms,
            load_fraction=load_fraction,
            world=world,
        )
        responses.append(metrics["mean_response_ms"])
    return PartialAdoptionResult(
        adoption_fractions=list(adoption_fractions), response_ms=responses
    )


# --------------------------------------------------------------------------- A4


@dataclass
class StaticWorkloadResult:
    """Mechanism responses on a static Poisson workload."""

    response_ms: Dict[str, float]

    def render(self) -> str:
        """Per-mechanism responses as a table."""
        return format_table(
            ("mechanism", "mean response (ms)"),
            sorted(self.response_ms.items()),
        )

    @property
    def qant_vs_markov(self) -> float:
        """QA-NT's response relative to Markov's (paper: 'comes close')."""
        return self.response_ms["qa-nt"] / self.response_ms["markov"]

    def to_dict(self) -> dict:
        """JSON-ready form of the per-mechanism responses."""
        payload = asdict(self)
        payload["qant_vs_markov"] = self.qant_vs_markov
        return payload


def static_markov_cell(
    mechanism: str,
    load_fraction: float,
    point_index: int,
    seed: int,
    num_nodes: int = 30,
    horizon_ms: float = 60_000.0,
    world: Optional[World] = None,
) -> Dict[str, float]:
    """One (mechanism, load, seed) sweep cell for ablation A4.

    The Markov allocator's arrival-rate parameters are recomputed from
    the world's capacity inside the cell, exactly as the paper requires
    (the static allocator must be told the workload in advance).
    """
    world = world or two_query_world(num_nodes=num_nodes, seed=seed)
    capacity = world.capacity_qpms([2.0, 1.0])
    rate_q1 = load_fraction * capacity * 2.0 / 3.0
    rate_q2 = load_fraction * capacity / 3.0
    trace = build_trace(
        {0: PoissonArrivals(rate_q1), 1: PoissonArrivals(rate_q2)},
        horizon_ms=horizon_ms,
        origin_nodes=world.placement.node_ids,
        seed=seed + 1,
    )
    factories = {
        "qa-nt": QantAllocator,
        "greedy": GreedyAllocator,
        "markov": lambda: MarkovAllocator([rate_q1, rate_q2]),
    }
    run = run_mechanism(
        world,
        trace,
        mechanism,
        factories[mechanism],
        config=FederationConfig(seed=seed + 2),
    )
    return run.metrics_dict()


def run_static_markov(
    num_nodes: int = 30,
    horizon_ms: float = 60_000.0,
    load_fraction: float = 0.7,
    seed: int = 0,
) -> StaticWorkloadResult:
    """Ablation A4: static load, Markov vs QA-NT vs Greedy."""
    world = two_query_world(num_nodes=num_nodes, seed=seed)
    responses = {}
    for mechanism in ("qa-nt", "greedy", "markov"):
        metrics = static_markov_cell(
            mechanism,
            load_fraction,
            0,
            seed,
            horizon_ms=horizon_ms,
            world=world,
        )
        responses[mechanism] = metrics["mean_response_ms"]
    return StaticWorkloadResult(response_ms=responses)


# --------------------------------------------------------------------------- A5


@dataclass
class RoundingAblationResult:
    """QA-NT response under different supply solvers, light vs heavy load."""

    response_ms: Dict[str, Dict[str, float]]

    def render(self) -> str:
        """Solver x load grid as a table."""
        solvers = sorted(self.response_ms)
        loads = sorted(self.response_ms[solvers[0]])
        rows = [
            (solver, *[self.response_ms[solver][load] for load in loads])
            for solver in solvers
        ]
        return format_table(("supply solver", *loads), rows)

    def to_dict(self) -> dict:
        """JSON-ready form of the solver x load grid."""
        return asdict(self)


#: The rounding ablation encodes the supply solver in the mechanism label.
_ROUNDING_PARAMETERS = {
    "greedy-int": dict(supply_method="greedy", carry_over=False),
    "greedy-carry": dict(supply_method="greedy-fractional", carry_over=True),
    "proportional": dict(supply_method="proportional", carry_over=True),
}


def rounding_cell(
    mechanism: str,
    load_fraction: float,
    point_index: int,
    seed: int,
    num_nodes: int = 30,
    horizon_ms: float = 40_000.0,
    world: Optional[World] = None,
) -> Dict[str, float]:
    """One (solver-label, load, seed) sweep cell for ablation A5."""
    params = QantParameters(**_ROUNDING_PARAMETERS[mechanism])
    world = world or two_query_world(num_nodes=num_nodes, seed=seed)
    trace = sinusoid_trace_for_load(
        world, load_fraction=load_fraction, horizon_ms=horizon_ms, seed=seed + 1
    )
    run = run_mechanism(
        world,
        trace,
        mechanism,
        lambda: QantAllocator(parameters=params),
        config=FederationConfig(seed=seed + 2, drain_ms=120_000.0),
    )
    return run.metrics_dict()


def run_rounding_ablation(
    num_nodes: int = 30,
    horizon_ms: float = 40_000.0,
    seed: int = 0,
) -> RoundingAblationResult:
    """Ablation A5: corner/integer supply vs smooth proportional supply.

    The paper attributes Greedy's sub-75 %-load advantage to QA-NT's
    integer rounding of small fractional equilibrium supplies; comparing
    the "greedy" (integer corner, no carry) and "proportional" (smooth +
    carry) solvers quantifies that design choice.
    """
    world = two_query_world(num_nodes=num_nodes, seed=seed)
    results: Dict[str, Dict[str, float]] = {
        name: {} for name in _ROUNDING_PARAMETERS
    }
    for index, (load_name, load) in enumerate(
        (("light (50%)", 0.5), ("heavy (150%)", 1.5))
    ):
        for name in _ROUNDING_PARAMETERS:
            metrics = rounding_cell(
                name, load, index, seed, horizon_ms=horizon_ms, world=world
            )
            results[name][load_name] = metrics["mean_response_ms"]
    return RoundingAblationResult(response_ms=results)


# ----------------------------------------------------------------- registry

register(
    ScenarioSpec(
        name="ablation-lambda",
        title="A1 — price-adjustment coefficient lambda",
        cell=lambda_cell,
        axis="adjustment_lambda",
        mechanisms=("qa-nt",),
        scales={
            "small": ScalePreset(
                points=(0.001, 0.005, 0.02, 0.05), fixed={"num_nodes": 20}
            ),
            "paper": ScalePreset(
                points=(0.001, 0.005, 0.02, 0.05), fixed={"num_nodes": 30}
            ),
        },
    )
)

register(
    ScenarioSpec(
        name="ablation-period",
        title="A2 — market period length T",
        cell=period_cell,
        axis="period_ms",
        mechanisms=("qa-nt@0.05Hz", "qa-nt@1Hz"),
        scales={
            "small": ScalePreset(
                points=(125.0, 250.0, 500.0, 1000.0, 2000.0),
                fixed={"num_nodes": 20},
            ),
            "paper": ScalePreset(
                points=(125.0, 250.0, 500.0, 1000.0, 2000.0),
                fixed={"num_nodes": 30},
            ),
        },
    )
)

register(
    ScenarioSpec(
        name="ablation-partial",
        title="A3 — partial QA-NT adoption",
        cell=partial_adoption_cell,
        axis="adoption_fraction",
        mechanisms=("qa-nt",),
        scales={
            "small": ScalePreset(
                points=(0.0, 0.25, 0.5, 0.75, 1.0), fixed={"num_nodes": 20}
            ),
            "paper": ScalePreset(
                points=(0.0, 0.25, 0.5, 0.75, 1.0), fixed={"num_nodes": 40}
            ),
        },
    )
)

register(
    ScenarioSpec(
        name="ablation-markov",
        title="A4 — Markov vs QA-NT on a static workload",
        cell=static_markov_cell,
        axis="load_fraction",
        mechanisms=("qa-nt", "greedy", "markov"),
        scales={
            "small": ScalePreset(points=(0.7,), fixed={"num_nodes": 20}),
            "paper": ScalePreset(points=(0.7,), fixed={"num_nodes": 30}),
        },
    )
)

register(
    ScenarioSpec(
        name="ablation-rounding",
        title="A5 — integer supply rounding vs smooth supply",
        cell=rounding_cell,
        axis="load_fraction",
        mechanisms=("greedy-int", "greedy-carry", "proportional"),
        scales={
            "small": ScalePreset(points=(0.5, 1.5), fixed={"num_nodes": 20}),
            "paper": ScalePreset(points=(0.5, 1.5), fixed={"num_nodes": 30}),
        },
    )
)
