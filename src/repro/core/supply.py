"""Supply sets and the seller's problem ``max p.s  s.t.  s in S_i`` (eq. 4).

A node's *supply set* ``S_i`` contains every supply vector the node could
feasibly produce in one time period given its hardware.  Each period, a
selfish seller picks the feasible vector with the largest virtual value at
current prices — the "first order conditions" step of the QA-NT pseudo-code.

Two supply-set families are provided:

* :class:`ExplicitSupplySet` — a finite enumeration, for small worked
  examples (the paper's Figure 1 instance) and for tests;
* :class:`CapacitySupplySet` — the production model: a node has a capacity
  budget of ``capacity_ms`` milliseconds of processing per period and each
  query of class *k* costs ``cost_ms[k]`` milliseconds on this node
  (``inf`` marks classes the node cannot evaluate at all, e.g. missing
  relations).  Feasibility is ``sum_k s_k * cost_ms[k] <= capacity_ms``.

For :class:`CapacitySupplySet` the seller's problem is an unbounded knapsack.
Three solvers are exposed because the paper's discussion of rounding error
(Fig. 5a) makes the integer/fractional distinction experimentally relevant:

* ``fractional`` — continuous relaxation: all capacity goes to the class
  with the best price density ``p_k / cost_ms[k]`` (the true market
  equilibrium behaviour);
* ``greedy`` — integer counts filled in decreasing density order; fast and
  within one query of optimal per class;
* ``exact`` — dynamic-programming unbounded knapsack on a discretised
  capacity grid; exponential-free but O(capacity/granularity * K).
"""

from __future__ import annotations

import abc
import math
from collections import namedtuple
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from .vectors import QueryVector

__all__ = [
    "SupplySet",
    "ExplicitSupplySet",
    "CapacitySupplySet",
    "SupplyCacheInfo",
    "solve_supply",
]

#: Lifetime counters of one cost row's solver memo, in the style of
#: :func:`functools.lru_cache`'s ``cache_info``.  ``hits``/``misses``
#: count memo lookups (density orderings, proportional weights, whole
#: solved vectors); ``entries`` is the number of values currently stored.
SupplyCacheInfo = namedtuple("SupplyCacheInfo", ("hits", "misses", "entries"))


class SupplySet(abc.ABC):
    """Abstract supply set ``S_i`` of one node."""

    @property
    @abc.abstractmethod
    def num_classes(self) -> int:
        """Number of query classes ``K``."""

    @abc.abstractmethod
    def contains(self, vector: QueryVector) -> bool:
        """True iff ``vector`` is a feasible supply vector for this node."""

    @abc.abstractmethod
    def optimal_supply(self, prices: Sequence[float]) -> QueryVector:
        """Solve eq. 4: the feasible vector maximising ``p . s``."""

    def can_supply(self, class_index: int) -> bool:
        """True iff the node can evaluate queries of ``class_index`` at all.

        Default: a single query of the class must be feasible on an
        otherwise idle node.
        """
        return self.contains(QueryVector.unit(self.num_classes, class_index))


class ExplicitSupplySet(SupplySet):
    """A finite, explicitly enumerated supply set.

    Suitable for small instances where the feasible vectors are known, such
    as the paper's two-node introduction example.  The zero vector is always
    implicitly a member (a node may decline to supply anything).
    """

    def __init__(self, vectors: Iterable[QueryVector]):
        vecs = list(vectors)
        if not vecs:
            raise ValueError("an explicit supply set needs at least one vector")
        lengths = {v.num_classes for v in vecs}
        if len(lengths) != 1:
            raise ValueError("all supply vectors must cover the same K classes")
        self._num_classes = lengths.pop()
        zero = QueryVector.zeros(self._num_classes)
        members = set(vecs)
        members.add(zero)
        self._vectors = frozenset(members)

    @property
    def num_classes(self) -> int:
        return self._num_classes

    def __iter__(self) -> Iterator[QueryVector]:
        return iter(self._vectors)

    def __len__(self) -> int:
        return len(self._vectors)

    def contains(self, vector: QueryVector) -> bool:
        return vector in self._vectors

    def optimal_supply(self, prices: Sequence[float]) -> QueryVector:
        _check_prices(prices, self._num_classes)
        return max(self._vectors, key=lambda v: (v.dot(prices), v.total()))


class CapacitySupplySet(SupplySet):
    """Supply set of a node with a per-period processing-time budget.

    A supply vector ``s`` is feasible iff

    * ``s_k == 0`` for every class the node cannot evaluate
      (``cost_ms[k] == inf``), and
    * ``sum_k s_k * cost_ms[k] <= capacity_ms``.

    ``capacity_ms`` is normally the period length ``T`` scaled by the number
    of execution slots of the node (1 for the paper's serial nodes).
    """

    def __init__(self, cost_ms: Sequence[float], capacity_ms: float):
        if capacity_ms < 0:
            raise ValueError("capacity must be non-negative")
        if not cost_ms:
            raise ValueError("need a per-class cost for at least one class")
        costs = tuple(float(c) for c in cost_ms)
        for cost in costs:
            if cost <= 0:
                raise ValueError(
                    "per-query costs must be positive (use inf for "
                    "classes the node cannot evaluate)"
                )
        self._costs = costs
        self._capacity = float(capacity_ms)
        # Single-token memo shared across `with_capacity` rebinds (see
        # `_cache_lookup`): density orderings and solved vectors only
        # depend on prices (identified by the caller's token) and, for
        # whole solves, the capacity — never on which rebind computed them.
        self._cache: dict = {}
        # Lifetime [hits, misses] of the memo, likewise shared across
        # rebinds so `cache_info` reports on the cost row, not one clone.
        self._stats = [0, 0]

    def with_capacity(self, capacity_ms: float) -> "CapacitySupplySet":
        """A supply set with the same cost row but a new capacity budget.

        This is the per-period rebind: a node's free capacity changes every
        period while its cost row never does, so the rebind shares the
        costs tuple *and* the price-density cache with the original
        instead of re-validating K costs each time.
        """
        if capacity_ms < 0:
            raise ValueError("capacity must be non-negative")
        capacity_ms = float(capacity_ms)
        if capacity_ms == self._capacity:
            return self
        clone = object.__new__(CapacitySupplySet)
        clone._costs = self._costs
        clone._capacity = capacity_ms
        clone._cache = self._cache
        clone._stats = self._stats
        return clone

    @property
    def num_classes(self) -> int:
        return len(self._costs)

    @property
    def capacity_ms(self) -> float:
        """The per-period processing budget in milliseconds."""
        return self._capacity

    @property
    def cost_ms(self) -> Tuple[float, ...]:
        """Per-class execution cost on this node, ``inf`` = cannot evaluate."""
        return self._costs

    def contains(self, vector: QueryVector) -> bool:
        if vector.num_classes != self.num_classes:
            return False
        used = 0.0
        for count, cost in zip(vector, self._costs):
            if count > 0 and math.isinf(cost):
                return False
            if count > 0:
                used += count * cost
        return used <= self._capacity + 1e-9

    def utilisation(self, vector: QueryVector) -> float:
        """Fraction of the capacity budget consumed by ``vector``."""
        if self._capacity == 0:
            return 0.0 if vector.is_zero() else math.inf
        used = sum(
            count * cost
            for count, cost in zip(vector, self._costs)
            if count > 0
        )
        return used / self._capacity

    # -- solvers -------------------------------------------------------------

    def optimal_supply(
        self,
        prices: Sequence[float],
        method: str = "greedy",
        cache_token: Optional[Tuple[int, int]] = None,
    ) -> QueryVector:
        """Solve eq. 4 with the requested ``method``.

        ``method`` is one of ``"fractional"``, ``"greedy"``,
        ``"greedy-fractional"`` or ``"exact"``; see the module docstring
        for the trade-offs.  ``"greedy-fractional"`` is the greedy integer
        fill with the residual capacity assigned fractionally to the best
        remaining class — the natural input for QA-NT's carry-over
        accounting (see :class:`repro.core.qant.QantPricingAgent`).

        ``cache_token`` is an opaque identifier of ``prices``: a caller
        that re-solves at unchanged prices (QA-NT solves every period but
        only moves prices on trading failures) passes the same token and
        gets the memoised density ordering — or, at unchanged capacity,
        the previously solved vector — back without recomputing.  Callers
        must change the token whenever the prices they pass change.
        """
        _check_prices(prices, len(self._costs))
        if cache_token is not None:
            solved = self._cache_lookup(cache_token, ("solve", method, self._capacity))
            if solved is not None:
                return solved
        if method == "fractional":
            result = self._solve_fractional(prices, cache_token)
        elif method == "greedy":
            result = self._solve_greedy(prices, cache_token=cache_token)
        elif method == "greedy-fractional":
            result = self._solve_greedy(
                prices, fractional_tail=True, cache_token=cache_token
            )
        elif method == "proportional":
            result = self._solve_proportional(prices, cache_token=cache_token)
        elif method == "exact":
            result = self._solve_exact(prices, cache_token=cache_token)
        else:
            raise ValueError("unknown supply solver %r" % (method,))
        if cache_token is not None:
            self._cache[("solve", method, self._capacity)] = result
        return result

    def _cache_lookup(self, cache_token, key):
        """Value memoised under ``key`` for ``cache_token``, else None.

        A mismatched token empties the memo (single-token cache): QA-NT
        prices move forward in epochs, so only the latest epoch's entries
        can ever be asked for again.
        """
        cache = self._cache
        stats = self._stats
        if cache.get("token") != cache_token:
            cache.clear()
            cache["token"] = cache_token
            stats[1] += 1
            return None
        value = cache.get(key)
        if value is None:
            stats[1] += 1
        else:
            stats[0] += 1
        return value

    def cache_info(self) -> SupplyCacheInfo:
        """Lifetime hit/miss counters of the solver memo.

        Shared across every `with_capacity` rebind of the same cost row —
        QA-NT rebinds each period, so per-clone counters would reset just
        when they become interesting.  A healthy QA-NT run shows a
        non-trivial hit rate: prices only move on trading failures, so
        most periods re-solve at an unchanged ``(token, capacity)`` key.
        """
        cache = self._cache
        entries = len(cache) - ("token" in cache)
        return SupplyCacheInfo(self._stats[0], self._stats[1], entries)

    def _densities(
        self,
        prices: Sequence[float],
        cache_token: Optional[Tuple[int, int]] = None,
    ) -> List[Tuple[float, int]]:
        """(density, class) pairs for evaluable classes with positive price,
        sorted by decreasing price density ``p_k / cost_k``."""
        if cache_token is not None:
            pairs = self._cache_lookup(cache_token, "pairs")
            if pairs is not None:
                return pairs
        costs = self._costs
        pairs = [
            (prices[k] / costs[k], k)
            for k in range(len(costs))
            if not math.isinf(costs[k]) and prices[k] > 0
        ]
        pairs.sort(key=lambda pair: (-pair[0], pair[1]))
        if cache_token is not None:
            self._cache["pairs"] = pairs
        return pairs

    def _solve_fractional(
        self,
        prices: Sequence[float],
        cache_token: Optional[Tuple[int, int]] = None,
    ) -> QueryVector:
        pairs = self._densities(prices, cache_token)
        if not pairs:
            return QueryVector.zeros(self.num_classes)
        __, best_class = pairs[0]
        amount = self._capacity / self._costs[best_class]
        return QueryVector.unit(self.num_classes, best_class, amount)

    def _solve_greedy(
        self,
        prices: Sequence[float],
        fractional_tail: bool = False,
        cache_token: Optional[Tuple[int, int]] = None,
    ) -> QueryVector:
        costs = self._costs
        remaining = self._capacity
        counts = [0.0] * len(costs)
        densities = self._densities(prices, cache_token)
        for __, k in densities:
            if remaining < costs[k]:
                continue
            fit = math.floor(remaining / costs[k] + 1e-9)
            counts[k] = float(fit)
            remaining -= fit * costs[k]
        if fractional_tail and remaining > 0 and densities:
            # Sell the leftover capacity as a fraction of the best class
            # not yet saturated — QA-NT's carry-over accounting converts
            # these fractions into whole queries across periods.
            __, best = densities[0]
            counts[best] += remaining / self._costs[best]
        return QueryVector._from_trusted_tuple(tuple(counts))

    def _solve_proportional(
        self,
        prices: Sequence[float],
        sharpness: float = 2.0,
        cache_token: Optional[Tuple[int, int]] = None,
    ) -> QueryVector:
        """Capacity split across classes in proportion to price density.

        The exact maximiser of the linear seller problem is a corner (all
        capacity to the single best class), which makes the market's
        aggregate supply a step function of prices and invites cobweb
        oscillation when many sellers flip together.  The proportional
        solver is the standard smoothing: class *k* receives a capacity
        share proportional to ``density_k ** sharpness``, so supply
        responds continuously to prices while still concentrating on the
        most valuable classes.  As ``sharpness`` grows this converges to
        the corner solution; the returned vector is fractional.
        """
        pairs = self._densities(prices, cache_token)
        if not pairs:
            return QueryVector.zeros(self.num_classes)
        top = pairs[0][0]
        if top <= 0.0:
            # Densities can underflow to zero for subnormal prices; with
            # no measurable value anywhere, supply nothing.
            return QueryVector.zeros(self.num_classes)
        cached = (
            self._cache_lookup(cache_token, ("prop", sharpness))
            if cache_token is not None
            else None
        )
        if cached is not None:
            weights, total = cached
        else:
            weights = []
            total = 0.0
            for density, k in pairs:
                weight = (density / top) ** sharpness
                weights.append((weight, k))
                total += weight
            if cache_token is not None:
                self._cache[("prop", sharpness)] = (weights, total)
        counts = [0.0] * self.num_classes
        capacity = self._capacity
        costs = self._costs
        for weight, k in weights:
            share_ms = capacity * weight / total
            counts[k] = share_ms / costs[k]
        return QueryVector._from_trusted_tuple(tuple(counts))

    def _solve_exact(
        self,
        prices: Sequence[float],
        granularity_ms: Optional[float] = None,
        cache_token: Optional[Tuple[int, int]] = None,
    ) -> QueryVector:
        """Unbounded-knapsack DP on a discretised capacity grid.

        Costs are rounded *up* to grid cells so the returned vector is
        always feasible on the true (un-discretised) capacity.  The grid
        adapts to the cheapest class so sub-10ms instances still resolve,
        while the cell count stays bounded for huge capacities.  Because
        rounding can cost the DP an exactly-fitting item, the result is
        compared against the true-cost greedy solution and the more
        valuable of the two is returned — so "exact" never underperforms
        "greedy".
        """
        if granularity_ms is None:
            finite_costs = [c for c in self._costs if not math.isinf(c)]
            if not finite_costs:
                return QueryVector.zeros(self.num_classes)
            # A tenth of the cheapest class keeps the rounding loss below
            # ~10% of one query per item; the floor on cell count keeps
            # the DP bounded for huge capacities.
            granularity_ms = max(
                min(10.0, min(finite_costs) / 10.0),
                self._capacity / 50_000.0,
            )
        greedy = self._solve_greedy(prices, cache_token=cache_token)
        cells = int(self._capacity / granularity_ms + 1e-9)
        if cells <= 0:
            return greedy
        items = [
            (
                prices[k],
                max(1, math.ceil(self._costs[k] / granularity_ms - 1e-9)),
                k,
            )
            for k in range(self.num_classes)
            if not math.isinf(self._costs[k]) and prices[k] > 0
        ]
        if not items:
            return QueryVector.zeros(self.num_classes)
        best_value = [0.0] * (cells + 1)
        choice: List[Optional[int]] = [None] * (cells + 1)
        for budget in range(1, cells + 1):
            best_value[budget] = best_value[budget - 1]
            choice[budget] = None
            for value, weight, k in items:
                if weight <= budget:
                    candidate = best_value[budget - weight] + value
                    if candidate > best_value[budget] + 1e-12:
                        best_value[budget] = candidate
                        choice[budget] = k
        counts = [0.0] * self.num_classes
        budget = cells
        while budget > 0:
            k = choice[budget]
            if k is None:
                budget -= 1
                continue
            counts[k] += 1
            budget -= max(1, math.ceil(self._costs[k] / granularity_ms - 1e-9))
        dp_result = QueryVector._from_trusted_tuple(tuple(counts))
        if dp_result.dot(prices) >= greedy.dot(prices):
            return dp_result
        return greedy


def solve_supply(
    supply_set: SupplySet,
    prices: Sequence[float],
    method: str = "greedy",
    cache_token: Optional[Tuple[int, int]] = None,
) -> QueryVector:
    """Convenience dispatcher for eq. 4 over any supply-set type.

    Explicit sets ignore ``method`` (enumeration is already exact) and
    ``cache_token`` (see :meth:`CapacitySupplySet.optimal_supply`).
    """
    if isinstance(supply_set, CapacitySupplySet):
        return supply_set.optimal_supply(
            prices, method=method, cache_token=cache_token
        )
    return supply_set.optimal_supply(prices)


def _check_prices(prices: Sequence[float], num_classes: int) -> None:
    if len(prices) != num_classes:
        raise ValueError(
            "price vector length %d does not match %d classes"
            % (len(prices), num_classes)
        )
    if any(p < 0 for p in prices):
        raise ValueError("prices must be non-negative")
