"""Relational catalog: relations, their sizes, and lookup.

The paper's simulated dataset (Table 3) consists of 1,000 relations of
1–20 MB (average 10.5 MB) with 10 attributes each, mirrored ~5x across the
100 nodes.  This module holds the static schema objects; random generation
lives in :mod:`repro.catalog.generator` and node placement in
:mod:`repro.catalog.placement`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List

__all__ = [
    "Relation",
    "Catalog",
]

#: Assumed width of one attribute in bytes, used to derive tuple counts
#: from relation sizes for the CPU component of the cost model.
BYTES_PER_ATTRIBUTE = 20


@dataclass(frozen=True)
class Relation:
    """One base relation of the common federated schema."""

    rid: int
    name: str
    size_mb: float
    num_attributes: int = 10

    def __post_init__(self) -> None:
        if self.size_mb <= 0:
            raise ValueError("relation size must be positive")
        if self.num_attributes <= 0:
            raise ValueError("relation must have at least one attribute")

    @property
    def tuple_bytes(self) -> int:
        """Width of one tuple in bytes."""
        return self.num_attributes * BYTES_PER_ATTRIBUTE

    @property
    def num_tuples(self) -> int:
        """Cardinality derived from size and tuple width."""
        return max(1, int(self.size_mb * 1_000_000 / self.tuple_bytes))


class Catalog:
    """An immutable collection of relations keyed by relation id."""

    def __init__(self, relations: Iterable[Relation]):
        self._relations: Dict[int, Relation] = {}
        for relation in relations:
            if relation.rid in self._relations:
                raise ValueError("duplicate relation id %d" % relation.rid)
            self._relations[relation.rid] = relation
        if not self._relations:
            raise ValueError("a catalog needs at least one relation")

    def __len__(self) -> int:
        return len(self._relations)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __contains__(self, rid: int) -> bool:
        return rid in self._relations

    def get(self, rid: int) -> Relation:
        """The relation with id ``rid`` (KeyError if absent)."""
        return self._relations[rid]

    @property
    def relation_ids(self) -> List[int]:
        """All relation ids, ascending."""
        return sorted(self._relations)

    def total_size_mb(self) -> float:
        """Sum of all relation sizes."""
        return sum(r.size_mb for r in self._relations.values())

    def average_size_mb(self) -> float:
        """Mean relation size (paper reports 10.5 MB)."""
        return self.total_size_mb() / len(self._relations)
