"""Per-node private query classification (paper Section 3.3).

Identifying one global query-class set ``Q`` in a federation "is difficult
and requires pieces of information that compromise node autonomy", so the
paper lets *each node proceed with its own private classification*: prices
are private, so nothing forces two nodes to price the same classes.  The
only restriction is that queries a node lumps together must need similar
resources on that node.

:class:`ClassificationScheme` maps the federation's (observable) query
classes onto a node's private buckets, and
:class:`PrivatelyClassifiedAgent` wraps a :class:`~repro.core.qant.
QantPricingAgent` priced over the buckets while exposing the standard
global-index API — so the federation allocator drives nodes with
different classifications without knowing it.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from .qant import QantParameters, QantPeriodStats, QantPricingAgent
from .supply import CapacitySupplySet
from .vectors import QueryVector

__all__ = [
    "ClassificationScheme",
    "PrivatelyClassifiedAgent",
    "cost_band_classification",
]


class ClassificationScheme:
    """A node's private mapping from global classes to its own buckets."""

    def __init__(self, mapping: Sequence[int]):
        """``mapping[k]`` is the private bucket of global class *k*.

        Buckets must be consecutive integers starting at zero (use
        :func:`cost_band_classification` to build one from costs).
        """
        if not mapping:
            raise ValueError("the classification must cover at least one class")
        buckets = sorted(set(mapping))
        if buckets != list(range(len(buckets))):
            raise ValueError(
                "buckets must be consecutive integers starting at zero"
            )
        self._mapping = tuple(int(b) for b in mapping)
        self._num_buckets = len(buckets)

    @property
    def num_global_classes(self) -> int:
        """Number of global classes covered."""
        return len(self._mapping)

    @property
    def num_buckets(self) -> int:
        """Number of private buckets."""
        return self._num_buckets

    def bucket_of(self, global_class: int) -> int:
        """The private bucket of ``global_class``."""
        return self._mapping[global_class]

    def members_of(self, bucket: int) -> Tuple[int, ...]:
        """Global classes inside ``bucket``."""
        return tuple(
            k for k, b in enumerate(self._mapping) if b == bucket
        )

    def bucket_costs(self, global_costs_ms: Sequence[float]) -> List[float]:
        """Private per-bucket costs from global per-class costs.

        A bucket's cost is the mean of its *evaluable* members — the
        paper's restriction that co-classified queries need similar
        resources makes the mean representative.  A bucket whose members
        are all inevaluable costs ``inf``.
        """
        if len(global_costs_ms) != len(self._mapping):
            raise ValueError("cost row covers a different number of classes")
        costs = []
        for bucket in range(self._num_buckets):
            finite = [
                global_costs_ms[k]
                for k in self.members_of(bucket)
                if not math.isinf(global_costs_ms[k])
            ]
            costs.append(sum(finite) / len(finite) if finite else math.inf)
        return costs


def cost_band_classification(
    costs_ms: Sequence[float], num_buckets: int
) -> ClassificationScheme:
    """Group classes into ``num_buckets`` bands of similar cost.

    This is the natural private classification: a node cares about how
    much of *its* time a query takes, so it buckets by its own execution
    cost (geometric bands between its cheapest and dearest class).
    Inevaluable classes all land in the dearest band.
    """
    if num_buckets <= 0:
        raise ValueError("need at least one bucket")
    finite = [c for c in costs_ms if not math.isinf(c)]
    if not finite:
        return ClassificationScheme([0] * len(costs_ms))
    low, high = min(finite), max(finite)
    mapping = []
    for cost in costs_ms:
        if math.isinf(cost):
            mapping.append(num_buckets - 1)
        elif high <= low:
            mapping.append(0)
        else:
            position = math.log(cost / low) / math.log(high / low + 1e-12)
            mapping.append(min(num_buckets - 1, int(position * num_buckets)))
    used = sorted(set(mapping))
    renumber = {bucket: index for index, bucket in enumerate(used)}
    return ClassificationScheme([renumber[b] for b in mapping])


class PrivatelyClassifiedAgent:
    """A QA-NT agent pricing private buckets behind the global-index API.

    Drop-in compatible with :class:`~repro.core.qant.QantPricingAgent`
    where the federation allocator is concerned: ``would_offer`` /
    ``accept`` take *global* class indices and are translated to the
    node's private buckets internally.  Supply planned for a bucket can
    be sold as any member class — which is exactly the resource-level
    semantics the paper's restriction guarantees.
    """

    def __init__(
        self,
        scheme: ClassificationScheme,
        global_costs_ms: Sequence[float],
        capacity_ms: float,
        parameters: Optional[QantParameters] = None,
    ):
        self._scheme = scheme
        self._global_costs = list(global_costs_ms)
        # The bucket cost row never changes; computing it once lets the
        # per-period capacity rebind share it (and the solver cache) via
        # `with_capacity` instead of rebuilding the supply set.
        self._bucket_costs = scheme.bucket_costs(global_costs_ms)
        self._bucket_of = tuple(
            scheme.bucket_of(k) for k in range(scheme.num_global_classes)
        )
        self._agent = QantPricingAgent(
            CapacitySupplySet(self._bucket_costs, capacity_ms),
            parameters=parameters,
        )

    @property
    def scheme(self) -> ClassificationScheme:
        """The node's private classification."""
        return self._scheme

    @property
    def private_agent(self) -> QantPricingAgent:
        """The wrapped bucket-space agent (for inspection)."""
        return self._agent

    @property
    def num_classes(self) -> int:
        """Number of *global* classes this agent understands."""
        return self._scheme.num_global_classes

    @property
    def in_period(self) -> bool:
        """True between begin_period and end_period."""
        return self._agent.in_period

    @property
    def prices(self):
        """The private bucket prices (never shared on the wire)."""
        return self._agent.prices

    @property
    def max_price(self) -> float:
        """The largest current bucket price (overload signal)."""
        return self._agent.max_price

    @property
    def planned_supply(self) -> QueryVector:
        """The period's planned supply over the *private* bucket space.

        Exposed for observability (e.g. :class:`repro.sim.tracing.
        MarketTracer`); note the components are buckets, not global
        classes.
        """
        return self._agent.planned_supply

    @property
    def remaining_supply(self) -> Tuple[float, ...]:
        """Remaining supply expressed per *global* class.

        Each global class reports its bucket's remaining count (bucket
        supply is fungible across member classes).
        """
        bucket_remaining = self._agent.remaining_supply
        return tuple(
            bucket_remaining[bucket] for bucket in self._bucket_of
        )

    def rebind_capacity(self, capacity_ms: float) -> None:
        """Rebind the bucket supply set to a new free-capacity budget."""
        supply_set = self._agent.supply_set
        if isinstance(supply_set, CapacitySupplySet):
            supply_set = supply_set.with_capacity(capacity_ms)
        else:
            supply_set = CapacitySupplySet(self._bucket_costs, capacity_ms)
        self._agent.rebind_supply_set(supply_set)

    def begin_period(self) -> QueryVector:
        """Step 2 of QA-NT over the private bucket space."""
        return self._agent.begin_period()

    def would_offer(self, global_class: int) -> bool:
        """Offer iff the class's bucket has remaining supply.

        A class the node cannot evaluate is refused outright without a
        price signal — no price could make the data appear.
        """
        if math.isinf(self._global_costs[global_class]):
            return False
        return self._agent.would_offer(self._bucket_of[global_class])

    def quote(
        self, global_class: int, activation_threshold: Optional[float] = None
    ) -> bool:
        """Fused would-offer + activation check over the private buckets.

        Mirrors :meth:`QantPricingAgent.quote`: the fan-out fast path the
        federation allocator drives, translated to this node's buckets.
        An inevaluable class is refused without a price signal — and
        without consulting the activation threshold, since no price level
        can make the missing data appear.
        """
        if math.isinf(self._global_costs[global_class]):
            return False
        return self._agent.quote(
            self._bucket_of[global_class], activation_threshold
        )

    def supply_left(self, global_class: int) -> float:
        """Remaining supply of the class's bucket (fungible members)."""
        return self._agent.supply_left(self._bucket_of[global_class])

    def accept(self, global_class: int) -> None:
        """Consume one unit of the class's bucket supply."""
        self._agent.accept(self._bucket_of[global_class])

    def end_period(self) -> QantPeriodStats:
        """Steps 12–14 over the private bucket space."""
        return self._agent.end_period()
