"""Microbenchmark subsystem: registered kernels + timing harness.

Run it through the CLI::

    python -m repro.cli bench [--filter SUBSTR] [--repeat N] [--json]

or programmatically::

    from repro.bench import run_benchmarks, bench_payload
    results = run_benchmarks(name_filter="supply", repeat=3)

Artifacts land in ``benchmarks/results/BENCH_<label>.json`` and carry a
``schema_version`` so later tooling can compare runs across commits.
"""

from .harness import (
    BENCH_SCHEMA_VERSION,
    DEFAULT_BENCH_DIR,
    Measurement,
    bench_payload,
    compare_payloads,
    confirm_regressions,
    find_regressions,
    load_baseline,
    measure,
    measure_peak,
    render_results,
    resolve_auto_baseline,
    run_benchmarks,
    write_bench_artifact,
)
from .kernels import KERNELS, Kernel, register_kernel

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_BENCH_DIR",
    "KERNELS",
    "Kernel",
    "Measurement",
    "bench_payload",
    "compare_payloads",
    "confirm_regressions",
    "find_regressions",
    "load_baseline",
    "measure",
    "measure_peak",
    "register_kernel",
    "render_results",
    "resolve_auto_baseline",
    "run_benchmarks",
    "write_bench_artifact",
]
