"""Real-DBMS substrate: SQLite server nodes and a threaded coordinator.

Reproduces the paper's Section 5.2 deployment on one machine; see
DESIGN.md for the documented substitutions.
"""

from .federation import DbmsFederation, DbmsQueryOutcome, DbmsRunResult
from .node import ExecutionResult, SqliteServerNode

__all__ = [
    "DbmsFederation",
    "DbmsQueryOutcome",
    "DbmsRunResult",
    "ExecutionResult",
    "SqliteServerNode",
]
