"""Discrete-event simulator of a federation of autonomous RDBMSs."""

from .capacity import system_capacity_qpms
from .engine import EventHandle, Simulator
from .faults import (
    FaultInjector,
    FaultSpec,
    PartitionWindow,
    derive_fault_seed,
    half_partition,
)
from .federation import (
    DEFAULT_PERIOD_MS,
    FederationConfig,
    FederationSimulation,
    build_federation,
    generate_machine_specs,
)
from .fleet import ClassView, FleetArrays
from .metrics import (
    MetricsCollector,
    QueryOutcome,
    normalised_response_times,
    recovery_time_ms,
)
from .network import LatencyModel, Network
from .node import ExecutionRecord, SimulatedNode
from .shards import (
    ShardPlan,
    ShardTransport,
    ShardedFederation,
    ShardedRunResult,
    derive_shard_seed,
    plan_shards,
    split_market_classes,
)
from .transport import SimTransport

__all__ = [
    "ClassView",
    "DEFAULT_PERIOD_MS",
    "EventHandle",
    "ExecutionRecord",
    "FaultInjector",
    "FaultSpec",
    "FederationConfig",
    "FederationSimulation",
    "FleetArrays",
    "LatencyModel",
    "MetricsCollector",
    "Network",
    "PartitionWindow",
    "QueryOutcome",
    "ShardPlan",
    "ShardTransport",
    "ShardedFederation",
    "ShardedRunResult",
    "SimTransport",
    "SimulatedNode",
    "Simulator",
    "build_federation",
    "derive_fault_seed",
    "derive_shard_seed",
    "generate_machine_specs",
    "half_partition",
    "normalised_response_times",
    "plan_shards",
    "recovery_time_ms",
    "split_market_classes",
    "system_capacity_qpms",
]
