"""Unit tests for repro.core.vectors."""


import pytest

from repro.core.vectors import QueryVector, aggregate, zero


class TestConstruction:
    def test_components_are_floats(self):
        v = QueryVector([1, 2, 3])
        assert v.components == (1.0, 2.0, 3.0)

    def test_rejects_negative_components(self):
        with pytest.raises(ValueError):
            QueryVector([1, -1])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            QueryVector([float("nan")])

    def test_rejects_infinity(self):
        with pytest.raises(ValueError):
            QueryVector([float("inf")])

    def test_zeros(self):
        assert QueryVector.zeros(3).components == (0.0, 0.0, 0.0)

    def test_zeros_rejects_negative_length(self):
        with pytest.raises(ValueError):
            QueryVector.zeros(-1)

    def test_unit(self):
        assert QueryVector.unit(3, 1).components == (0.0, 1.0, 0.0)

    def test_unit_with_amount(self):
        assert QueryVector.unit(2, 0, 4).components == (4.0, 0.0)

    def test_unit_index_out_of_range(self):
        with pytest.raises(IndexError):
            QueryVector.unit(2, 2)

    def test_from_counts(self):
        v = QueryVector.from_counts(4, {0: 2, 3: 5})
        assert v.components == (2.0, 0.0, 0.0, 5.0)

    def test_from_counts_bad_index(self):
        with pytest.raises(IndexError):
            QueryVector.from_counts(2, {5: 1})

    def test_zero_helper(self):
        assert zero(2) == QueryVector.zeros(2)


class TestProtocol:
    def test_len_and_num_classes(self):
        v = QueryVector([1, 2])
        assert len(v) == 2
        assert v.num_classes == 2

    def test_iteration(self):
        assert list(QueryVector([1, 2, 3])) == [1.0, 2.0, 3.0]

    def test_indexing(self):
        assert QueryVector([4, 5])[1] == 5.0

    def test_equality_and_hash(self):
        assert QueryVector([1, 2]) == QueryVector([1, 2])
        assert hash(QueryVector([1, 2])) == hash(QueryVector([1, 2]))
        assert QueryVector([1, 2]) != QueryVector([2, 1])

    def test_equality_with_other_type(self):
        assert QueryVector([1]) != (1.0,)

    def test_repr_contains_components(self):
        assert "1.0" in repr(QueryVector([1]))


class TestArithmetic:
    def test_addition(self):
        assert (QueryVector([1, 2]) + QueryVector([3, 4])).components == (4.0, 6.0)

    def test_addition_length_mismatch(self):
        with pytest.raises(ValueError):
            QueryVector([1]) + QueryVector([1, 2])

    def test_subtraction_clamps_at_zero(self):
        assert (QueryVector([1, 5]) - QueryVector([3, 2])).components == (0.0, 3.0)

    def test_signed_difference(self):
        assert QueryVector([1, 5]).signed_difference(QueryVector([3, 2])) == (
            -2.0,
            3.0,
        )

    def test_scalar_multiplication(self):
        assert (QueryVector([1, 2]) * 2).components == (2.0, 4.0)
        assert (3 * QueryVector([1, 0])).components == (3.0, 0.0)

    def test_negative_scaling_rejected(self):
        with pytest.raises(ValueError):
            QueryVector([1]) * -1

    def test_dot(self):
        assert QueryVector([1, 2]).dot([3, 4]) == 11.0

    def test_dot_length_mismatch(self):
        with pytest.raises(ValueError):
            QueryVector([1, 2]).dot([1])


class TestPredicates:
    def test_total(self):
        assert QueryVector([1, 2, 3]).total() == 6.0

    def test_dominates_strict(self):
        assert QueryVector([2, 2]).dominates(QueryVector([1, 2]))

    def test_dominates_requires_strict_improvement(self):
        assert not QueryVector([1, 2]).dominates(QueryVector([1, 2]))

    def test_dominates_requires_ge_everywhere(self):
        assert not QueryVector([3, 1]).dominates(QueryVector([1, 2]))

    def test_componentwise_le(self):
        assert QueryVector([1, 2]).componentwise_le(QueryVector([1, 3]))
        assert not QueryVector([2, 2]).componentwise_le(QueryVector([1, 3]))

    def test_is_zero(self):
        assert QueryVector.zeros(3).is_zero()
        assert not QueryVector([0, 1]).is_zero()

    def test_is_integral(self):
        assert QueryVector([1, 2]).is_integral()
        assert not QueryVector([1.5]).is_integral()

    def test_rounded_floors(self):
        assert QueryVector([1.9, 2.0]).rounded().components == (1.0, 2.0)

    def test_as_int_tuple(self):
        assert QueryVector([1, 2]).as_int_tuple() == (1, 2)

    def test_as_int_tuple_rejects_fractional(self):
        with pytest.raises(ValueError):
            QueryVector([1.5]).as_int_tuple()


class TestAggregate:
    def test_aggregate_sums_componentwise(self):
        total = aggregate([QueryVector([1, 2]), QueryVector([3, 4])])
        assert total == QueryVector([4, 6])

    def test_aggregate_single(self):
        assert aggregate([QueryVector([1])]) == QueryVector([1])

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])
