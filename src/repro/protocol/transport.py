"""The transport seam of the market protocol.

A :class:`Transport` moves protocol messages between a client and a set of
server peers; everything above it (:class:`~repro.protocol.session
.MarketSession`, the allocators) is transport-agnostic.  Three backends
exist today:

* ``repro.sim.transport.SimTransport`` — the discrete-event simulator's
  network (latency model, message counting, fault injection);
* :class:`~repro.protocol.local.LocalAsyncTransport` — an in-process
  asyncio market with one worker coroutine per node, the stepping stone
  to HTTP/TCP broker daemons;
* ``repro.sim.shards.ShardTransport`` — a pipe-backed pool of forked
  shard workers (peers are *shards*, not nodes): the sharded
  federation's batched bid/quote barriers travel through it, codec and
  all.

The one verb both speak is :meth:`Transport.fanout`, whose
:class:`FanoutResult` lifts the semantics the simulator's faulty fan-out
always had into a typed, documented contract:

* ``delivered`` — peers whose *request* arrived.  Server-side effects
  (QA-NT's refusal price dynamics) happen for these even when the client
  never hears back — the stale-price regime partitioned markets exhibit;
* ``replied`` — the subset whose reply the client received within the
  bid timeout; only these can win the allocation;
* ``delay_ms`` — the slowest in-time round trip, or the full timeout
  when any peer stayed silent (the client waited it out);
* ``messages`` — legs actually put on the wire (a severed or dropped
  request produces no reply leg);
* ``replies`` — the reply payloads themselves, in ``replied`` order, for
  transports that materialise message bodies (the simulator charges the
  exchange without building payloads, so it leaves this empty).
"""

from __future__ import annotations

import abc
import struct
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .messages import Message

__all__ = [
    "FanoutResult",
    "FrameDecoder",
    "Transport",
    "encode_frame",
]


#: Length-prefix header of one wire frame: 4-byte unsigned big-endian.
_FRAME_HEADER = struct.Struct(">I")

#: Ceiling on a single frame's payload (64 MiB).  A length prefix above
#: this is a corrupt or hostile stream, not a real market frame — the
#: decoder raises instead of buffering unbounded garbage.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def encode_frame(payload: bytes) -> bytes:
    """Wrap one codec payload in the transport's length-prefix framing.

    The socket-backed shard transport (``repro.sim.shards.ShardTransport``
    ``mode="tcp"``) moves :func:`repro.protocol.messages.encode` payloads
    over a byte stream; this 4-byte big-endian length prefix is the only
    thing the wire adds — the payload itself is the codec's business.
    """
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(
            "frame payload of %d bytes exceeds MAX_FRAME_BYTES" % len(payload)
        )
    return _FRAME_HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental decoder of the length-prefixed frame stream.

    Feed it byte chunks exactly as they arrive from a socket — partial
    headers, partial payloads, several frames per chunk, anything — and
    it yields complete payloads in stream order.  Purely computational
    (no I/O), so both the coordinator and the shard workers drive the
    identical reassembly logic and unit tests can exercise every split
    point without a socket.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[bytes]:
        """Absorb ``data``; return every frame completed by it, in order."""
        self._buffer.extend(data)
        frames: List[bytes] = []
        offset = 0
        size = len(self._buffer)
        while size - offset >= _FRAME_HEADER.size:
            (length,) = _FRAME_HEADER.unpack_from(self._buffer, offset)
            if length > MAX_FRAME_BYTES:
                raise ValueError(
                    "frame length %d exceeds MAX_FRAME_BYTES" % length
                )
            if size - offset - _FRAME_HEADER.size < length:
                break
            start = offset + _FRAME_HEADER.size
            frames.append(bytes(self._buffer[start : start + length]))
            offset = start + length
        if offset:
            del self._buffer[:offset]
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards the next (incomplete) frame."""
        return len(self._buffer)


@dataclass(frozen=True)
class FanoutResult:
    """Outcome of one request/reply fan-out exchange (see module docs)."""

    delay_ms: float
    messages: int
    delivered: Tuple[int, ...]
    replied: Tuple[int, ...]
    replies: Tuple[Message, ...] = field(default=())

    @property
    def silent(self) -> bool:
        """True when no reply beat the timeout (total silence)."""
        return not self.replied

    def as_legacy_tuple(
        self,
    ) -> Tuple[float, int, Tuple[int, ...], Tuple[int, ...]]:
        """The pre-protocol 4-tuple contract, kept for equivalence tests."""
        return (self.delay_ms, self.messages, self.delivered, self.replied)


class Transport(abc.ABC):
    """Moves one client's protocol messages to a set of server peers."""

    @abc.abstractmethod
    def fanout(
        self,
        origin: int,
        peers: Sequence[int],
        request: Optional[Message] = None,
    ) -> FanoutResult:
        """Send ``request`` from ``origin`` to every peer; gather replies.

        ``request`` may be ``None`` for transports that only *charge* the
        exchange (the simulator models message counts and latency, not
        payload bytes); live transports require a real message and raise
        :class:`~repro.protocol.messages.ProtocolError` without one.
        """

    def close(self) -> None:
        """Release transport resources; the default is a no-op."""
        return None
