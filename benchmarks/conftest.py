"""Shared benchmark fixtures.

Every benchmark regenerates one paper artefact (table or figure), prints
the rows/series the paper reports, and archives the rendered text under
``benchmarks/results/``.  Benchmarks default to a scaled-down federation
so the whole harness finishes in minutes; set ``REPRO_BENCH_FULL=1`` for
the paper's full scale (100 nodes, 10,000 queries).
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def full_scale():
    """True when the harness should run at the paper's full scale."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def bench_nodes(full_scale):
    """Federation size for simulator benchmarks."""
    return 100 if full_scale else 30


@pytest.fixture()
def save_result(request):
    """Print a rendered artefact and archive it under results/."""

    def _save(name, text):
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / ("%s.txt" % name)
        path.write_text(text + "\n")
        print("\n=== %s ===\n%s" % (name, text))

    return _save
