"""The market negotiation state machine, independent of any transport.

One :class:`MarketSession` drives the conversation the paper's client
performs for every query — the logic that used to be hard-coded across
``QantAllocator.assign`` (fan-out, winner selection, timeout handling)
and ``FederationSimulation`` (capped exponential backoff between
resubmissions):

.. code-block:: text

        IDLE ──begin──▶ BIDDING ──quotes──▶ CONFIRMING ──ack──▶ ASSIGNED
                          │                      │
                          │ all refuse /         │ confirm lost
                          │ total silence        ▼
                          └──────────────▶   BACKOFF ──resubmit──▶ BIDDING
                                               │
                                               │ attempts exhausted
                                               ▼
                                             FAILED

Per round the session fans a :class:`~repro.protocol.messages.BidRequest`
out through its :class:`~repro.protocol.transport.Transport`, collects
:class:`~repro.protocol.messages.Quote` replies, picks the winner by the
paper's rule (earliest estimated completion, ties to the lowest node id),
and dispatches an :class:`~repro.protocol.messages.AssignQuery` confirm
leg.  A round that yields no usable quote — every server refused, every
reply timed out, or the confirm leg itself was lost — costs one backoff
delay from the :class:`NegotiationPolicy` before the next attempt, which
is exactly the pacing the simulator's fault layer applies to
resubmissions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

from .messages import AssignQuery, BidRequest, CompletionReport, Quote
from .transport import FanoutResult, Transport

__all__ = [
    "SessionState",
    "NegotiationPolicy",
    "NegotiationOutcome",
    "MarketSession",
]


class SessionState(enum.Enum):
    """Lifecycle of one query's negotiation."""

    IDLE = "idle"
    BIDDING = "bidding"
    CONFIRMING = "confirming"
    ASSIGNED = "assigned"
    BACKOFF = "backoff"
    FAILED = "failed"


@dataclass(frozen=True)
class NegotiationPolicy:
    """Client-side robustness policy of the negotiation.

    ``bid_timeout_ms`` bounds how long the client waits for bid replies
    (transports enforce it leg by leg; :class:`~repro.protocol.transport
    .FanoutResult` reports it as the exchange delay on any silence).  The
    backoff triple is the capped exponential delay between resubmissions:
    ``backoff_base_ms * backoff_factor ** attempt``, clamped to
    ``backoff_cap_ms`` — byte-identical to the formula the simulator's
    fault layer has applied since it delegated here.  ``max_attempts``
    bounds :meth:`MarketSession.negotiate`'s retry loop; drivers that
    pace retries themselves (the discrete-event federation resubmits on
    period ticks) use :meth:`MarketSession.negotiate_once` and ignore it.
    """

    bid_timeout_ms: float = 10.0
    backoff_base_ms: float = 250.0
    backoff_factor: float = 2.0
    backoff_cap_ms: float = 2_000.0
    max_attempts: int = 8

    def __post_init__(self) -> None:
        if self.bid_timeout_ms <= 0:
            raise ValueError("bid timeout must be positive")
        if self.backoff_base_ms <= 0:
            raise ValueError("backoff base must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if self.backoff_cap_ms < self.backoff_base_ms:
            raise ValueError("backoff cap must be >= the base delay")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")

    def backoff_ms(self, attempt: int) -> float:
        """Capped exponential resubmission delay for retry ``attempt``.

        Monotone non-decreasing in ``attempt`` and bounded by
        ``backoff_cap_ms`` — the properties the hypothesis suite pins.
        """
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        delay = self.backoff_base_ms * (self.backoff_factor**attempt)
        cap = self.backoff_cap_ms
        return cap if delay > cap else delay


@dataclass(frozen=True)
class NegotiationOutcome:
    """What one query's negotiation amounted to."""

    request: BidRequest
    #: Winning node, or ``None`` when the negotiation ended unassigned.
    node_id: Optional[int]
    #: Bid rounds performed (>= 1).
    attempts: int
    #: Total negotiation latency: fan-out delays, confirm legs, backoffs.
    delay_ms: float
    #: The backoff share of ``delay_ms``.
    backoff_ms: float
    #: Network messages spent across all rounds.
    messages: int
    #: Quotes received across all rounds (refusals and silence excluded).
    quotes_seen: int
    state: SessionState
    #: The winner's completion report, when the transport surfaced one.
    completion: Optional[CompletionReport] = None

    @property
    def assigned(self) -> bool:
        """True when a server accepted the query."""
        return self.node_id is not None


class MarketSession:
    """Drives the bid → quote → assign/refuse/resubmit conversation."""

    def __init__(
        self,
        transport: Transport,
        policy: Optional[NegotiationPolicy] = None,
    ) -> None:
        self._transport = transport
        self._policy = policy or NegotiationPolicy()
        self._state = SessionState.IDLE

    @property
    def state(self) -> SessionState:
        """The state reached by the most recent negotiation step."""
        return self._state

    @property
    def policy(self) -> NegotiationPolicy:
        """The session's negotiation policy."""
        return self._policy

    @staticmethod
    def best_quote(quotes: Sequence[Quote]) -> Optional[Quote]:
        """The paper's winner rule: earliest estimated completion, ties
        resolved to the lowest node id.  ``None`` for an empty round."""
        if not quotes:
            return None
        return min(
            quotes, key=lambda q: (q.estimated_completion_ms, q.node_id)
        )

    def negotiate_once(
        self, request: BidRequest, peers: Sequence[int]
    ) -> NegotiationOutcome:
        """One bid round: fan out, pick a winner, confirm the assignment.

        Ends :attr:`SessionState.ASSIGNED` on success and
        :attr:`SessionState.BACKOFF` otherwise — an unassigned outcome
        already includes the policy's backoff delay for this attempt, so
        a caller pacing its own retries (as the federation simulator
        does per period tick) can schedule the resubmission directly.
        """
        self._state = SessionState.BIDDING
        result = self._transport.fanout(request.origin_node, peers, request)
        delay = result.delay_ms
        messages = result.messages
        quotes = [r for r in result.replies if isinstance(r, Quote)]
        winner = self.best_quote(quotes)
        completion: Optional[CompletionReport] = None
        if winner is not None:
            self._state = SessionState.CONFIRMING
            assign = AssignQuery(
                qid=request.qid,
                node_id=winner.node_id,
                class_index=request.class_index,
            )
            confirm = self._confirm(request.origin_node, assign)
            delay += confirm.delay_ms
            messages += confirm.messages
            if confirm.replied:
                self._state = SessionState.ASSIGNED
                for reply in confirm.replies:
                    if isinstance(reply, CompletionReport):
                        completion = reply
                        break
                return NegotiationOutcome(
                    request=request,
                    node_id=winner.node_id,
                    attempts=1,
                    delay_ms=delay,
                    backoff_ms=0.0,
                    messages=messages,
                    quotes_seen=len(quotes),
                    state=self._state,
                    completion=completion,
                )
        # All refused, total silence, or the confirm leg was lost: the
        # client cannot tell these apart, so it paces itself identically.
        self._state = SessionState.BACKOFF
        backoff = self._policy.backoff_ms(request.attempt)
        return NegotiationOutcome(
            request=request,
            node_id=None,
            attempts=1,
            delay_ms=delay + backoff,
            backoff_ms=backoff,
            messages=messages,
            quotes_seen=len(quotes),
            state=self._state,
        )

    def negotiate(
        self, request: BidRequest, peers: Sequence[int]
    ) -> NegotiationOutcome:
        """Run bid rounds until assigned or ``max_attempts`` exhausted.

        Each unsuccessful round resubmits with an incremented ``attempt``
        (so servers can observe retry pressure) after charging the
        policy's capped exponential backoff.
        """
        total_delay = 0.0
        total_backoff = 0.0
        total_messages = 0
        total_quotes = 0
        attempts = 0
        current = request
        outcome: Optional[NegotiationOutcome] = None
        for round_index in range(self._policy.max_attempts):
            outcome = self.negotiate_once(current, peers)
            attempts += 1
            total_delay += outcome.delay_ms
            total_backoff += outcome.backoff_ms
            total_messages += outcome.messages
            total_quotes += outcome.quotes_seen
            if outcome.assigned:
                return replace(
                    outcome,
                    request=request,
                    attempts=attempts,
                    delay_ms=total_delay,
                    backoff_ms=total_backoff,
                    messages=total_messages,
                    quotes_seen=total_quotes,
                )
            current = replace(current, attempt=current.attempt + 1)
        self._state = SessionState.FAILED
        return NegotiationOutcome(
            request=request,
            node_id=None,
            attempts=attempts,
            delay_ms=total_delay,
            backoff_ms=total_backoff,
            messages=total_messages,
            quotes_seen=total_quotes,
            state=self._state,
        )

    def _confirm(self, origin: int, assign: AssignQuery) -> FanoutResult:
        """The assignment confirm leg: one request/ack exchange with the
        winner (the dispatch leg every mechanism pays in the simulator)."""
        return self._transport.fanout(origin, (assign.node_id,), assign)


#: Backoff tuple order used when deriving a policy from simulator fault
#: specs — kept here so both layers agree on one source of truth.
PolicyTuple = Tuple[float, float, float, float]
