"""Preference relations over consumption vectors (paper Section 2.2).

A preference relation ``>=_i`` of node *i* ranks candidate consumption
vectors.  The paper assumes throughout that every node simply prefers to
evaluate as many queries as possible::

    c >=_i c'   iff   sum_k c_k >= sum_k c'_k

but the machinery (Pareto dominance, welfare checks) only needs the abstract
interface, so other preferences — e.g. weighted by query importance — plug in
unchanged.  This module defines the abstract interface and the two concrete
preferences used by the library and its tests.
"""

from __future__ import annotations

import abc
from typing import Sequence

from .vectors import QueryVector

__all__ = [
    "PreferenceRelation",
    "ThroughputPreference",
    "WeightedThroughputPreference",
]


class PreferenceRelation(abc.ABC):
    """Abstract weak preference ``>=_i`` over consumption vectors.

    Implementations must be complete and transitive (a rational preference
    in the microeconomics sense) for the welfare results to apply.
    """

    @abc.abstractmethod
    def utility(self, consumption: QueryVector) -> float:
        """A numeric utility representing the preference.

        ``prefers`` and ``strictly_prefers`` are derived from this value, so
        any preference expressible by a utility function is supported —
        which is exactly the class of continuous rational preferences.
        """

    def prefers(self, first: QueryVector, second: QueryVector) -> bool:
        """Weak preference: ``first >=_i second``."""
        return self.utility(first) >= self.utility(second)

    def strictly_prefers(self, first: QueryVector, second: QueryVector) -> bool:
        """Strict preference: ``first >_i second``."""
        return self.utility(first) > self.utility(second)

    def indifferent(self, first: QueryVector, second: QueryVector) -> bool:
        """Indifference: ``first ~_i second``."""
        return self.utility(first) == self.utility(second)


class ThroughputPreference(PreferenceRelation):
    """The paper's canonical preference: more queries answered is better.

    ``c >=_i c'  iff  sum_k c_k >= sum_k c'_k`` — node identity does not
    matter, so a single shared instance can serve every node.
    """

    def utility(self, consumption: QueryVector) -> float:
        return consumption.total()

    def __repr__(self) -> str:
        return "ThroughputPreference()"


class WeightedThroughputPreference(PreferenceRelation):
    """Throughput preference with per-class weights.

    Generalises :class:`ThroughputPreference` (all weights 1).  Useful for
    modelling nodes that value some query classes more than others, e.g.
    interactive queries over batch reports.
    """

    def __init__(self, weights: Sequence[float]):
        if any(w < 0 for w in weights):
            raise ValueError("preference weights must be non-negative")
        if not weights:
            raise ValueError("weights must be non-empty")
        self._weights = tuple(float(w) for w in weights)

    @property
    def weights(self) -> tuple:
        """The per-class weights."""
        return self._weights

    def utility(self, consumption: QueryVector) -> float:
        if len(consumption) != len(self._weights):
            raise ValueError(
                "consumption vector has %d classes but preference has %d weights"
                % (len(consumption), len(self._weights))
            )
        return consumption.dot(self._weights)

    def __repr__(self) -> str:
        return "WeightedThroughputPreference(%r)" % (self._weights,)
