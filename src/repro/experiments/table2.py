"""Experiment E10 — the qualitative mechanism comparison (paper Table 2).

Table 2 classifies each mechanism along five axes: distributed or
centralised, workload type handled, whether it conflicts with distributed
query optimisation, whether it respects node autonomy, and its
performance.  The static properties come straight from the allocator
classes; the performance grade is *measured* by running the Figure 4
experiment and bucketing each mechanism's normalised response time, so
the table is regenerated rather than transcribed.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Optional

from ..allocation import (
    BnqrdAllocator,
    GreedyAllocator,
    MarkovAllocator,
    QantAllocator,
    RandomAllocator,
    RoundRobinAllocator,
    TwoRandomProbesAllocator,
)
from .fig4 import Fig4Result, run_fig4
from .reporting import format_table
from .spec import ScalePreset, ScenarioSpec, register

__all__ = [
    "Table2Row",
    "Table2Result",
    "performance_grade",
    "run_table2",
]

#: Mechanisms that physically pin one node per query and therefore
#: conflict with (or bypass) distributed query optimisation; QA-NT only
#: restricts the set of offering nodes, staying compatible (Section 4).
_CONFLICTS_WITH_DQO = {
    "greedy",
    "random",
    "round-robin",
    "bnqrd",
    "two-probes",
    "markov",
    "least-imbalance",
}

#: Workload type each mechanism can track.
_WORKLOAD_TYPE = {
    "qa-nt": "dynamic",
    "greedy": "dynamic",
    "random": "dynamic",
    "round-robin": "dynamic",
    "bnqrd": "dynamic",
    "two-probes": "dynamic",
    "markov": "static",
}


@dataclass(frozen=True)
class Table2Row:
    """One mechanism's row of Table 2."""

    mechanism: str
    distributed: bool
    workload_type: str
    conflicts_with_dqo: bool
    respects_autonomy: bool
    performance: str


@dataclass
class Table2Result:
    """The regenerated Table 2."""

    rows: List[Table2Row]
    fig4: Optional[Fig4Result]

    def row(self, mechanism: str) -> Table2Row:
        """The row for ``mechanism`` (KeyError if absent)."""
        for row in self.rows:
            if row.mechanism == mechanism:
                return row
        raise KeyError(mechanism)

    def render(self) -> str:
        """Table 2 as text."""
        return format_table(
            (
                "mechanism",
                "distributed",
                "workload",
                "conflicts w/ DQO",
                "autonomy",
                "performance",
            ),
            [
                (
                    r.mechanism,
                    "X" if r.distributed else "-",
                    r.workload_type,
                    "X" if r.conflicts_with_dqo else "-",
                    "X" if r.respects_autonomy else "-",
                    r.performance,
                )
                for r in self.rows
            ],
        )

    def to_dict(self) -> dict:
        """JSON-ready form: the rows plus the measuring Fig. 4 run."""
        return {
            "rows": [asdict(row) for row in self.rows],
            "fig4": self.fig4.to_dict() if self.fig4 is not None else None,
        }


def performance_grade(normalised_response: float) -> str:
    """Bucket a normalised response time into the paper's grades."""
    if normalised_response <= 1.25:
        return "very good"
    if normalised_response <= 2.0:
        return "good"
    return "poor"


def run_table2(
    num_nodes: int = 100,
    horizon_ms: float = 120_000.0,
    seed: int = 0,
    fig4: Optional[Fig4Result] = None,
) -> Table2Result:
    """Regenerate Table 2, measuring performance via the Fig. 4 run.

    Pass a precomputed ``fig4`` result to avoid re-running the simulation
    (the benchmark harness does this).
    """
    fig4 = fig4 or run_fig4(
        num_nodes=num_nodes, horizon_ms=horizon_ms, seed=seed
    )
    allocator_classes = {
        "qa-nt": QantAllocator,
        "greedy": GreedyAllocator,
        "random": RandomAllocator,
        "round-robin": RoundRobinAllocator,
        "bnqrd": BnqrdAllocator,
        "two-probes": TwoRandomProbesAllocator,
    }
    rows = []
    for name, cls in allocator_classes.items():
        rows.append(
            Table2Row(
                mechanism=name,
                distributed=cls.distributed,
                workload_type=_WORKLOAD_TYPE[name],
                conflicts_with_dqo=name in _CONFLICTS_WITH_DQO,
                respects_autonomy=cls.respects_autonomy,
                performance=performance_grade(fig4.normalised[name]),
            )
        )
    # Markov: static-only and centralised; the paper grades it "excellent"
    # under the static workloads it requires (ablation A4 measures it).
    rows.append(
        Table2Row(
            mechanism="markov",
            distributed=MarkovAllocator.distributed,
            workload_type=_WORKLOAD_TYPE["markov"],
            conflicts_with_dqo=True,
            respects_autonomy=MarkovAllocator.respects_autonomy,
            performance="excellent (static only)",
        )
    )
    return Table2Result(rows=rows, fig4=fig4)


register(
    ScenarioSpec(
        name="table2",
        title="Table 2 — qualitative mechanism comparison (measured)",
        runner=run_table2,
        scales={
            "small": ScalePreset(
                fixed={"num_nodes": 30, "horizon_ms": 60_000.0}
            ),
            "paper": ScalePreset(
                fixed={"num_nodes": 100, "horizon_ms": 60_000.0}
            ),
        },
    )
)
