"""Market tracing: record per-period prices and supply plans per node.

The virtual prices are the mechanism's internal overload signal (Section
5.1: "query prices are high" when the system is overloaded), so observing
them is the main debugging and monitoring tool a deployment would have.
:class:`MarketTracer` attaches to a :class:`~repro.allocation.qant.
QantAllocator` and snapshots every agent's prices and planned supply at
each period boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..allocation.qant import QantAllocator

__all__ = [
    "MarketSnapshot",
    "MarketTracer",
]


@dataclass(frozen=True)
class MarketSnapshot:
    """One node's market state at one period boundary."""

    time_ms: float
    node_id: int
    prices: Tuple[float, ...]
    planned_supply: Tuple[float, ...]

    @property
    def max_price(self) -> float:
        """The node's highest price — its local overload signal."""
        return max(self.prices)


class MarketTracer:
    """Snapshots a QA-NT allocator's agents at every period boundary.

    Wraps the allocator's ``on_period_start`` hook; attach *before*
    binding the allocator to a federation::

        allocator = QantAllocator()
        tracer = MarketTracer(allocator)
        federation = build_federation(..., allocator, ...)
        federation.run(trace)
        tracer.price_series(node_id=3)
    """

    def __init__(self, allocator: QantAllocator):
        self._allocator = allocator
        self._snapshots: List[MarketSnapshot] = []
        original = allocator.on_period_start

        def traced() -> None:
            original()
            self._record()

        allocator.on_period_start = traced  # type: ignore[method-assign]

    @property
    def snapshots(self) -> List[MarketSnapshot]:
        """All snapshots in chronological order."""
        return self._snapshots

    def _record(self) -> None:
        # The allocator's period engine may have fast-forwarded quiescent
        # boundaries; materialise them so the snapshot reads real state.
        self._allocator.sync_market_state()
        now = self._allocator.context.simulator.now
        for node_id, agent in self._allocator.agents.items():
            self._snapshots.append(
                MarketSnapshot(
                    time_ms=now,
                    node_id=node_id,
                    prices=tuple(agent.prices.values),
                    planned_supply=tuple(agent.planned_supply.components),
                )
            )

    def price_series(
        self, node_id: int, class_index: Optional[int] = None
    ) -> List[Tuple[float, float]]:
        """(time, price) pairs for one node.

        ``class_index`` picks one class; omitted, the node's max price
        (the overload signal) is reported.
        """
        series = []
        for snap in self._snapshots:
            if snap.node_id != node_id:
                continue
            value = (
                snap.max_price
                if class_index is None
                else snap.prices[class_index]
            )
            series.append((snap.time_ms, value))
        return series

    def overload_periods(self, threshold: float) -> List[float]:
        """Times at which *any* node's max price exceeded ``threshold``.

        This is the decentralised overload detector the paper describes:
        high prices mean the system cannot serve what is being asked.
        """
        times = sorted(
            {
                snap.time_ms
                for snap in self._snapshots
                if snap.max_price >= threshold
            }
        )
        return times

    def supply_totals(self, node_id: int) -> List[Tuple[float, float]]:
        """(time, total planned supply) pairs for one node."""
        return [
            (snap.time_ms, sum(snap.planned_supply))
            for snap in self._snapshots
            if snap.node_id == node_id
        ]
