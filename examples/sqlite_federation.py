"""A real mini-federation: SQLite nodes, EXPLAIN-based estimates, QA-NT.

Reproduces the paper's Section 5.2 deployment at example scale: several
SQLite-backed server nodes of different speeds, a mirrored dataset of
tables and select-project views, history-calibrated cost estimation on
top of ``EXPLAIN QUERY PLAN``, and a client coordinator that allocates a
paced stream of star queries with Greedy and then with QA-NT.

Run:  python examples/sqlite_federation.py
"""

from repro.dbms import DbmsFederation
from repro.experiments.reporting import format_table


def main() -> None:
    rows = []
    for mechanism in ("greedy", "qa-nt"):
        federation, classes = DbmsFederation.build(
            num_nodes=4,
            num_tables=12,
            num_views=20,
            num_classes=10,
            table_size_mb=(0.2, 0.8),
            seed=3,
        )
        try:
            print(
                "[%s] built %d nodes / %d classes; node slowdowns: %s"
                % (
                    mechanism,
                    len(federation.nodes),
                    len(classes),
                    ["%.1fx" % n.slowdown for n in federation.nodes.values()],
                )
            )
            federation.warm_up()
            result = federation.run_workload(
                mechanism,
                num_queries=100,
                mean_interarrival_ms=15.0,
                period_ms=150.0,
                seed=4,
            )
            rows.append(
                (
                    mechanism,
                    len(result.outcomes),
                    result.mean_assign_ms,
                    result.mean_total_ms,
                )
            )
        finally:
            federation.close()
    print()
    print(
        format_table(
            ("mechanism", "queries", "assign (ms)", "total (ms)"), rows
        )
    )
    print()
    print(
        "Both mechanisms pay the same assignment cost (they wait for"
        " estimate replies from every node); the difference is where the"
        " queries run."
    )


if __name__ == "__main__":
    main()
