"""``python -m repro`` — regenerate paper artefacts from the shell."""

import sys

from .cli import main

sys.exit(main())
