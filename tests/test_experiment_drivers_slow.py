"""Scaled-down runs of the remaining experiment drivers (marked slow)."""

import math

import pytest

from repro.experiments.ablations import (
    run_lambda_sweep,
    run_period_sweep,
    run_rounding_ablation,
)
from repro.experiments.fig5 import run_fig5b
from repro.experiments.fig6 import run_fig6

pytestmark = pytest.mark.slow


class TestFig5bDriver:
    def test_shape_and_positivity(self):
        result = run_fig5b(
            frequencies_hz=(0.05, 1.0),
            num_nodes=16,
            horizon_ms=15_000.0,
            load_fraction=0.8,
            seed=1,
        )
        assert len(result.greedy_normalised) == 2
        assert all(r > 0 for r in result.greedy_normalised)
        assert "frequency" in result.render()


class TestFig6Driver:
    def test_small_sweep(self):
        result = run_fig6(
            interarrivals_ms=(2_000.0, 10_000.0),
            num_nodes=12,
            num_relations=60,
            num_classes=8,
            max_queries=400,
            horizon_ms=60_000.0,
            seed=1,
        )
        assert len(result.greedy_normalised) == 2
        assert all(
            r > 0 and not math.isnan(r) for r in result.greedy_normalised
        )

    def test_without_crossover_calibration(self):
        result = run_fig6(
            interarrivals_ms=(5_000.0,),
            num_nodes=12,
            num_relations=60,
            num_classes=8,
            max_queries=200,
            horizon_ms=40_000.0,
            crossover_ms=None,
            seed=1,
        )
        assert len(result.greedy_normalised) == 1


class TestAblationDrivers:
    def test_lambda_sweep_tradeoff(self):
        result = run_lambda_sweep(
            lambdas=(0.001, 0.02, 0.05),
            num_nodes=12,
            horizon_ms=15_000.0,
            seed=1,
        )
        # Fewer umpire iterations as lambda grows (among converged runs).
        assert result.tatonnement_iterations[0] > result.tatonnement_iterations[1]
        # The overshooting lambda leaves residual excess demand.
        assert result.tatonnement_residual[-1] > 0

    def test_period_sweep_shapes(self):
        result = run_period_sweep(
            periods_ms=(250.0, 1000.0),
            num_nodes=12,
            horizon_ms=15_000.0,
            seed=1,
        )
        assert len(result.response_slow_dynamics_ms) == 2
        assert len(result.response_fast_dynamics_ms) == 2
        assert all(r > 0 for r in result.response_slow_dynamics_ms)

    def test_rounding_ablation_grid(self):
        result = run_rounding_ablation(
            num_nodes=12, horizon_ms=12_000.0, seed=1
        )
        for solver, by_load in result.response_ms.items():
            assert set(by_load) == {"light (50%)", "heavy (150%)"}
            assert all(v > 0 for v in by_load.values())
        assert "supply solver" in result.render()
