"""Experiment E1 — the introduction's worked example (paper Figure 1).

Two nodes, two query classes.  N1 evaluates q1/q2 in 400/100 ms, N2 in
450/500 ms; within a burst N1 demands one q1 and six q2, N2 demands one
q1.  The greedy least-imbalance load balancer (LB) produces an average
response time of 662 ms and keeps both nodes busy until 900/950 ms; the
throughput-optimal allocation (QA) — N1 evaluates only q2, N2 only q1 —
averages 431 ms and frees N1 at 600 ms.

This driver recomputes both schedules from first principles, verifies the
paper's exact numbers, and checks with :mod:`repro.core.pareto` that the
QA allocation Pareto-dominates LB's in the first period while QA itself is
Pareto optimal.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Sequence, Tuple

from ..core import (
    Allocation,
    ExplicitSupplySet,
    QueryVector,
    is_pareto_optimal,
    pareto_dominates,
)
from ..core.pareto import enumerate_allocations
from .reporting import format_table
from .spec import ScalePreset, ScenarioSpec, register

__all__ = [
    "Fig1Result",
    "EXECUTION_TIMES_MS",
    "lb_schedule",
    "qa_schedule",
    "run_fig1",
]

#: EXECUTION_TIMES_MS[node][class] for the example's two nodes (Section 1).
EXECUTION_TIMES_MS: Tuple[Tuple[float, float], ...] = (
    (400.0, 100.0),  # N1: q1, q2
    (450.0, 500.0),  # N2: q1, q2
)

#: Arrival order of the burst: requests for q1 arrive before those for q2.
ARRIVAL_ORDER: Tuple[int, ...] = (0, 0, 1, 1, 1, 1, 1, 1)


@dataclass
class Fig1Result:
    """Both schedules plus the Pareto verification of the first period."""

    lb_assignments: List[int]
    lb_mean_response_ms: float
    lb_busy_until_ms: Tuple[float, float]
    qa_mean_response_ms: float
    qa_busy_until_ms: Tuple[float, float]
    qa_dominates_lb: bool
    qa_is_pareto_optimal: bool

    @property
    def slowdown(self) -> float:
        """How much slower LB is than QA (paper: 54 %)."""
        return self.lb_mean_response_ms / self.qa_mean_response_ms - 1.0

    def render(self) -> str:
        """The Figure 1 comparison as text."""
        rows = [
            (
                "LB",
                self.lb_mean_response_ms,
                self.lb_busy_until_ms[0],
                self.lb_busy_until_ms[1],
            ),
            (
                "QA",
                self.qa_mean_response_ms,
                self.qa_busy_until_ms[0],
                self.qa_busy_until_ms[1],
            ),
        ]
        table = format_table(
            ("mechanism", "avg response (ms)", "N1 busy until", "N2 busy until"),
            rows,
        )
        return "%s\nLB slowdown vs QA: %.0f%%" % (table, 100 * self.slowdown)

    def to_dict(self) -> dict:
        """JSON-ready form of the Figure 1 comparison."""
        payload = asdict(self)
        payload["slowdown"] = self.slowdown
        return payload


def _simulate_serial(
    assignments: Sequence[int],
    service_order: Sequence[int] = tuple(range(len(ARRIVAL_ORDER))),
) -> Tuple[List[float], Tuple[float, float]]:
    """Finish times of each query given its node assignment (FIFO nodes).

    All queries arrive at t=0 and each node executes serially, matching
    the example's assumptions.  ``service_order`` permutes execution order
    (queries are indexed by arrival position); the paper's QA accounting
    has N2 serve its own q1 before N1's.
    """
    busy = [0.0, 0.0]
    finishes = [0.0] * len(assignments)
    for index in service_order:
        query_class = ARRIVAL_ORDER[index]
        node = assignments[index]
        busy[node] += EXECUTION_TIMES_MS[node][query_class]
        finishes[index] = busy[node]
    return finishes, (busy[0], busy[1])


def lb_schedule() -> List[int]:
    """The least-imbalance balancer's assignment of the burst.

    Each query goes to the node that minimises the resulting busy-time
    spread — reproducing the assignment narrated in Section 1 (q1 to N1,
    q1 to N2, three q2 to N1, one q2 to N2, two q2 to N1).
    """
    busy = [0.0, 0.0]
    assignments = []
    for query_class in ARRIVAL_ORDER:
        spreads = []
        for node in (0, 1):
            trial = list(busy)
            trial[node] += EXECUTION_TIMES_MS[node][query_class]
            spreads.append((abs(trial[0] - trial[1]), node))
        __, chosen = min(spreads)
        busy[chosen] += EXECUTION_TIMES_MS[chosen][query_class]
        assignments.append(chosen)
    return assignments


def qa_schedule() -> List[int]:
    """The QA allocation: N1 accepts only q2, N2 only q1 (Figure 1)."""
    return [1 if qc == 0 else 0 for qc in ARRIVAL_ORDER]


def _first_period_consumptions(
    finishes: Sequence[float], period_ms: float = 500.0
) -> Tuple[QueryVector, QueryVector]:
    """Per-origin consumption vectors for the first time period.

    Queries 0 and 2.. originate at N1 (one q1 + six q2); query 1 is N2's
    q1.  A query is consumed in the period iff it finishes by ``period_ms``
    (Section 2.2 walks through exactly this accounting).
    """
    n1 = [0, 0]
    n2 = [0, 0]
    origins = (0, 1, 0, 0, 0, 0, 0, 0)
    for index, (query_class, origin) in enumerate(zip(ARRIVAL_ORDER, origins)):
        if finishes[index] <= period_ms:
            if origin == 0:
                n1[query_class] += 1
            else:
                n2[query_class] += 1
    return QueryVector(n1), QueryVector(n2)


def _supply_sets(period_ms: float = 500.0) -> List[ExplicitSupplySet]:
    """Enumerated per-node supply sets for one period of the example."""
    sets = []
    for node in (0, 1):
        vectors = []
        c1, c2 = EXECUTION_TIMES_MS[node]
        max_q1 = int(period_ms // c1)
        max_q2 = int(period_ms // c2)
        for n_q1 in range(max_q1 + 1):
            for n_q2 in range(max_q2 + 1):
                if n_q1 * c1 + n_q2 * c2 <= period_ms:
                    vectors.append(QueryVector((n_q1, n_q2)))
        sets.append(ExplicitSupplySet(vectors))
    return sets


def run_fig1() -> Fig1Result:
    """Recompute Figure 1 and verify its numbers and Pareto claims."""
    lb_assign = lb_schedule()
    lb_finishes, lb_busy = _simulate_serial(lb_assign)
    # QA accounting: N2 serves its own q1 (arrival index 1) before N1's
    # (index 0), matching the consumption vectors of Section 2.2.
    qa_finishes, qa_busy = _simulate_serial(
        qa_schedule(), service_order=(1, 0, 2, 3, 4, 5, 6, 7)
    )

    lb_mean = sum(lb_finishes) / len(lb_finishes)
    qa_mean = sum(qa_finishes) / len(qa_finishes)

    # First-period Pareto accounting (Section 2.2 / Figure 2).
    lb_c1, lb_c2 = _first_period_consumptions(lb_finishes)
    qa_c1, qa_c2 = _first_period_consumptions(qa_finishes)
    lb_alloc = Allocation(
        supplies=(lb_c1 + lb_c2, QueryVector((0, 0))),
        consumptions=(lb_c1, lb_c2),
    )
    qa_alloc = Allocation(
        supplies=(qa_c1 + qa_c2, QueryVector((0, 0))),
        consumptions=(qa_c1, qa_c2),
    )
    demands = [QueryVector((1, 6)), QueryVector((1, 0))]
    feasible = enumerate_allocations(demands, _supply_sets())
    return Fig1Result(
        lb_assignments=lb_assign,
        lb_mean_response_ms=lb_mean,
        lb_busy_until_ms=lb_busy,
        qa_mean_response_ms=qa_mean,
        qa_busy_until_ms=qa_busy,
        qa_dominates_lb=pareto_dominates(qa_alloc, lb_alloc),
        qa_is_pareto_optimal=is_pareto_optimal(qa_alloc, feasible),
    )


def _fig1_scenario(seed: int = 0) -> Fig1Result:
    """Registry adapter: the worked example is deterministic (no seed)."""
    return run_fig1()


register(
    ScenarioSpec(
        name="fig1",
        title="Fig. 1 — the introduction's worked example",
        runner=_fig1_scenario,
        scales={"small": ScalePreset(), "paper": ScalePreset()},
    )
)
