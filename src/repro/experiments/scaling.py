"""Scaling curve — federation size sweep over the batched dispatch path.

The paper's experiments stop at 100 nodes; this scenario measures how the
two headline mechanisms behave as the federation grows to 1,000 nodes
while the offered load stays at a fixed fraction of system capacity (so
bigger federations see proportionally more queries).  It is also the
showcase for the market-tick batch dispatcher: arrival timestamps are
quantised onto a coarse tick grid, so same-tick arrivals genuinely
coalesce into multi-query batches and the vectorised fan-out
(:mod:`repro.allocation.market_tick`) carries the bidding load.

Reported per cell, beyond the standard sweep metrics: end-to-end
throughput, the p99 response tail (tails degrade before means as the
candidate sets grow), and the dispatcher's batch counters
(:meth:`repro.sim.metrics.MetricsCollector.batch_summary`).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

from ..allocation import GreedyAllocator, QantAllocator
from ..sim import FederationConfig
from ..workload import WorkloadEvent
from .setups import run_mechanism, sinusoid_trace_for_load, two_query_world
from .spec import ScalePreset, ScenarioSpec, register

__all__ = [
    "quantise_trace",
    "scaling_cell",
]

#: Mechanism pair the scaling curve compares.
_PAIR = {"qa-nt": QantAllocator, "greedy": GreedyAllocator}

#: Default arrival-tick width.  Coarse enough that a loaded federation
#: sees several arrivals per tick (real batches for the dispatcher),
#: fine enough that the workload still tracks the sinusoid.
DEFAULT_TICK_MS = 25.0


def quantise_trace(
    trace: Iterable[WorkloadEvent], tick_ms: float
) -> List[WorkloadEvent]:
    """Floor every arrival timestamp onto a ``tick_ms`` grid.

    Events keep their order (flooring a sorted sequence preserves
    sortedness), so the federation's stream scheduler accepts the result
    and every group of same-tick arrivals becomes one market-tick batch.
    """
    if tick_ms <= 0.0:
        raise ValueError("tick_ms must be positive")
    return [
        WorkloadEvent(
            time_ms=math.floor(event.time_ms / tick_ms) * tick_ms,
            class_index=event.class_index,
            origin_node=event.origin_node,
        )
        for event in trace
    ]


def scaling_cell(
    mechanism: str,
    num_nodes: int,
    point_index: int,
    seed: int,
    load_fraction: float = 1.5,
    horizon_ms: float = 5_000.0,
    frequency_hz: float = 0.05,
    tick_ms: float = DEFAULT_TICK_MS,
    config: Optional[FederationConfig] = None,
) -> Dict[str, float]:
    """One (mechanism, federation-size, seed) cell of the scaling curve.

    Seed plumbing mirrors :func:`repro.experiments.fig5.fig5a_cell`
    (world ``seed``, trace ``seed + 10 + point_index``, federation
    ``seed + 2``), so both mechanisms of one point are paired on the
    same trace.  The load fraction is held constant across sizes: the
    trace generator scales the arrival rate with the world's capacity,
    so a 1,000-node cell negotiates ten times the queries of a 100-node
    cell.
    """
    num_nodes = int(num_nodes)
    world = two_query_world(num_nodes=num_nodes, seed=seed)
    trace = quantise_trace(
        sinusoid_trace_for_load(
            world,
            load_fraction=load_fraction,
            horizon_ms=horizon_ms,
            frequency_hz=frequency_hz,
            seed=seed + 10 + point_index,
        ),
        tick_ms,
    )
    run = run_mechanism(
        world,
        trace,
        mechanism,
        _PAIR[mechanism],
        config or FederationConfig(seed=seed + 2),
    )
    metrics = run.metrics
    payload = run.metrics_dict()
    payload["offered_queries"] = float(len(trace))
    payload["throughput_qps"] = metrics.completed / (horizon_ms / 1000.0)
    payload["p99_response_ms"] = metrics.percentile_response_ms(0.99)
    payload.update(metrics.batch_summary())
    return payload


register(
    ScenarioSpec(
        name="scaling",
        title="Scaling curve — throughput and p99 vs federation size",
        axis="num_nodes",
        mechanisms=("qa-nt", "greedy"),
        cell=scaling_cell,
        scales={
            "small": ScalePreset(points=(30, 60)),
            "paper": ScalePreset(points=(100, 300, 1000)),
        },
    )
)
