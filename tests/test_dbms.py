"""Tests for the real-DBMS substrate (SQLite nodes + coordinator)."""

import time

import pytest

from repro.catalog import Relation
from repro.dbms import DbmsFederation, SqliteServerNode
from repro.query.model import QueryClass


@pytest.fixture()
def node():
    n = SqliteServerNode(node_id=0, rows_per_mb=1000.0)
    yield n
    n.close()


def relation(rid=0, size_mb=0.1):
    return Relation(rid=rid, name="r%d" % rid, size_mb=size_mb)


class TestSqliteServerNode:
    def test_load_relation_creates_rows(self, node):
        node.load_relation(relation())
        assert node.holds([0])
        assert node.relation_ids == [0]

    def test_holds_requires_all(self, node):
        node.load_relation(relation(0))
        assert not node.holds([0, 1])

    def test_execute_query_returns_result(self, node):
        node.load_relation(relation(0))
        node.load_relation(relation(1))
        qc = QueryClass(index=0, relation_ids=(0, 1), selectivity=0.4)
        results = []
        node.submit(7, qc, 3, lambda nid, r: results.append((nid, r)))
        deadline = time.monotonic() + 10.0
        while not results and time.monotonic() < deadline:
            time.sleep(0.01)
        assert results
        nid, result = results[0]
        assert nid == 0
        assert result.qid == 7
        assert result.rows >= 0
        assert result.finished_s >= result.started_s >= result.submitted_s

    def test_optimizer_cost_positive(self, node):
        node.load_relation(relation(0))
        qc = QueryClass(index=0, relation_ids=(0,))
        assert node.optimizer_cost_ms(qc) > 0

    def test_slowdown_scales_cost_estimate(self):
        fast = SqliteServerNode(node_id=0, slowdown=1.0)
        slow = SqliteServerNode(node_id=1, slowdown=3.0)
        try:
            fast.load_relation(relation(0))
            slow.load_relation(relation(0))
            qc = QueryClass(index=0, relation_ids=(0,))
            assert slow.optimizer_cost_ms(qc) == pytest.approx(
                3 * fast.optimizer_cost_ms(qc), rel=0.01
            )
        finally:
            fast.close()
            slow.close()

    def test_history_calibration_learns(self, node):
        node.load_relation(relation(0))
        qc = QueryClass(index=0, relation_ids=(0,))
        done = []
        node.submit(0, qc, 0, lambda nid, r: done.append(r))
        deadline = time.monotonic() + 10.0
        while not done and time.monotonic() < deadline:
            time.sleep(0.01)
        from repro.query.sqlgen import plan_signature

        assert node.estimator.observations_of(plan_signature(qc)) == 1

    def test_view_creation(self, node):
        node.load_relation(relation(0))
        node.create_view("view_000", 0, 500)

    def test_view_requires_loaded_relation(self, node):
        with pytest.raises(KeyError):
            node.create_view("view_000", 9, 500)

    def test_submit_after_close_rejected(self):
        n = SqliteServerNode(node_id=0)
        n.close()
        qc = QueryClass(index=0, relation_ids=(0,))
        with pytest.raises(RuntimeError):
            n.submit(0, qc, 0, lambda nid, r: None)

    def test_invalid_slowdown_rejected(self):
        with pytest.raises(ValueError):
            SqliteServerNode(node_id=0, slowdown=0.5)


@pytest.fixture(scope="module")
def built_federation():
    federation, classes = DbmsFederation.build(
        num_nodes=3,
        num_tables=8,
        num_views=6,
        num_classes=5,
        table_size_mb=(0.05, 0.15),
        seed=11,
    )
    yield federation, classes
    federation.close()


class TestDbmsFederation:
    def test_build_shape(self, built_federation):
        federation, classes = built_federation
        assert len(federation.nodes) == 3
        assert len(classes) == 5
        assert federation.classes == classes

    def test_every_class_has_candidates(self, built_federation):
        federation, classes = built_federation
        for qc in classes:
            candidates = federation.candidates(qc.index)
            assert candidates
            for nid in candidates:
                assert federation.nodes[nid].holds(qc.relation_ids)

    def test_unknown_mechanism_rejected(self, built_federation):
        federation, __ = built_federation
        with pytest.raises(ValueError):
            federation.run_workload("magic", num_queries=1)

    def test_greedy_workload_completes(self):
        federation, __ = DbmsFederation.build(
            num_nodes=2,
            num_tables=6,
            num_views=4,
            num_classes=4,
            table_size_mb=(0.05, 0.1),
            seed=12,
        )
        try:
            federation.warm_up()
            result = federation.run_workload(
                "greedy", num_queries=15, mean_interarrival_ms=5.0, seed=13
            )
            assert len(result.outcomes) == 15
            assert result.unserved == 0
            assert result.mean_total_ms >= result.mean_assign_ms > 0
        finally:
            federation.close()

    def test_qant_workload_completes(self):
        federation, __ = DbmsFederation.build(
            num_nodes=2,
            num_tables=6,
            num_views=4,
            num_classes=4,
            table_size_mb=(0.05, 0.1),
            seed=12,
        )
        try:
            federation.warm_up()
            result = federation.run_workload(
                "qa-nt",
                num_queries=15,
                mean_interarrival_ms=5.0,
                period_ms=100.0,
                seed=13,
            )
            assert len(result.outcomes) == 15
            assert result.unserved == 0
        finally:
            federation.close()

    def test_outcomes_ordered_in_time(self):
        federation, __ = DbmsFederation.build(
            num_nodes=2,
            num_tables=4,
            num_views=2,
            num_classes=3,
            table_size_mb=(0.05, 0.1),
            seed=14,
        )
        try:
            result = federation.run_workload(
                "greedy", num_queries=10, mean_interarrival_ms=2.0, seed=15
            )
            for outcome in result.outcomes:
                assert outcome.finished_s >= outcome.assigned_s >= outcome.arrival_s
        finally:
            federation.close()

    def test_context_manager_closes(self):
        federation, __ = DbmsFederation.build(
            num_nodes=2, num_tables=4, num_views=0, num_classes=3, seed=16
        )
        with federation:
            pass
        qc = federation.classes[0]
        node = next(iter(federation.nodes.values()))
        with pytest.raises(RuntimeError):
            node.submit(0, qc, 0, lambda nid, r: None)
