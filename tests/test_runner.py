"""Tests for the declarative experiment registry and the sweep runner."""

import json

import pytest

from repro.cli import EXPERIMENTS, main
from repro.experiments.fig5 import fig5a_cell
from repro.experiments.runner import (
    SweepResult,
    derive_cell_seed,
    expand_cells,
    replicate_seeds,
    run_sweep,
)
from repro.experiments.spec import (
    REGISTRY,
    SCALES,
    ExperimentRegistry,
    ScalePreset,
    ScenarioSpec,
    register,
)

#: A deliberately tiny sweep (8 nodes, 4 s horizon) so the parallel-vs-
#: serial and CLI tests stay fast while still exercising the real cell.
def _tiny_spec(name="tiny-fig5a"):
    return ScenarioSpec(
        name=name,
        title="tiny fig5a sweep for tests",
        cell=fig5a_cell,
        axis="load_fraction",
        mechanisms=("qa-nt", "greedy"),
        ratio_of=("greedy", "qa-nt"),
        scales={
            "small": ScalePreset(
                points=(0.5, 1.5),
                fixed={"num_nodes": 8, "horizon_ms": 4_000.0, "frequency_hz": 0.5},
            ),
            "paper": ScalePreset(
                points=(0.5, 1.5),
                fixed={"num_nodes": 8, "horizon_ms": 4_000.0, "frequency_hz": 0.5},
            ),
        },
    )


class TestSeedDerivation:
    def test_replicate_seeds_starts_at_base(self):
        assert replicate_seeds(7, 3)[0] == 7

    def test_replicate_seeds_deterministic(self):
        assert replicate_seeds(7, 4) == replicate_seeds(7, 4)

    def test_replicate_seeds_distinct(self):
        seeds = replicate_seeds(0, 5)
        assert len(set(seeds)) == 5

    def test_derive_cell_seed_deterministic(self):
        key = ("fig5a", "qa-nt", 0, 1)
        assert derive_cell_seed(3, key) == derive_cell_seed(3, key)

    def test_derive_cell_seed_varies_with_key(self):
        a = derive_cell_seed(3, ("fig5a", "qa-nt", 0, 1))
        b = derive_cell_seed(3, ("fig5a", "qa-nt", 1, 1))
        assert a != b


class TestExpandCells:
    def test_grid_covers_every_combination(self):
        spec = _tiny_spec()
        cells = expand_cells(spec, "small", (0, 1))
        assert len(cells) == 2 * 2 * 2  # seeds x points x mechanisms
        keys = {cell.cell_key for cell in cells}
        assert len(keys) == len(cells)

    def test_mechanisms_share_seed_at_a_point(self):
        # Paired comparison: both mechanisms must see the same seed.
        spec = _tiny_spec()
        cells = expand_cells(spec, "small", (0,))
        by_point = {}
        for cell in cells:
            by_point.setdefault(cell.point_index, set()).add(cell.seed)
        for seeds in by_point.values():
            assert len(seeds) == 1


@pytest.mark.slow
class TestSweepExecution:
    @pytest.fixture(scope="class")
    def spec(self):
        return _tiny_spec()

    @pytest.fixture(scope="class")
    def serial(self, spec):
        return run_sweep(spec, scale="small", seeds=replicate_seeds(0, 2), jobs=1)

    def test_parallel_is_byte_identical_to_serial(self, spec, serial):
        parallel = run_sweep(
            spec, scale="small", seeds=replicate_seeds(0, 2), jobs=2
        )
        serial_bytes = json.dumps(serial.to_dict(), sort_keys=True)
        parallel_bytes = json.dumps(parallel.to_dict(), sort_keys=True)
        assert serial_bytes == parallel_bytes

    def test_shared_pool_across_specs_is_byte_identical(self, spec, serial):
        # ``run all --jobs N`` hands every spec the same caller-owned
        # executor; pin that reuse changes no bytes versus fresh serial
        # sweeps, for the first spec AND a second one through the same
        # (now warm) workers.
        from concurrent.futures import ProcessPoolExecutor

        other = _tiny_spec("tiny-fig5a-second")
        serial_other = run_sweep(
            other, scale="small", seeds=replicate_seeds(0, 2), jobs=1
        )
        with ProcessPoolExecutor(max_workers=2) as pool:
            pooled = run_sweep(
                spec,
                scale="small",
                seeds=replicate_seeds(0, 2),
                jobs=2,
                pool=pool,
            )
            pooled_other = run_sweep(
                other,
                scale="small",
                seeds=replicate_seeds(0, 2),
                jobs=2,
                pool=pool,
            )
        assert json.dumps(pooled.to_dict(), sort_keys=True) == json.dumps(
            serial.to_dict(), sort_keys=True
        )
        assert json.dumps(
            pooled_other.to_dict(), sort_keys=True
        ) == json.dumps(serial_other.to_dict(), sort_keys=True)

    def test_json_round_trip(self, serial):
        restored = SweepResult.from_dict(serial.to_dict())
        assert restored.experiment == serial.experiment
        assert restored.points == serial.points
        assert restored.mechanisms == serial.mechanisms
        assert restored.seeds == serial.seeds
        for mechanism in serial.mechanisms:
            for index in range(len(serial.points)):
                assert restored.stats(mechanism, index).values == pytest.approx(
                    serial.stats(mechanism, index).values
                )

    def test_multi_seed_stats(self, serial):
        stats = serial.stats("qa-nt", 0)
        assert len(stats.values) == 2
        assert stats.stdev >= 0.0

    def test_ratio_series_present(self, serial):
        ratios = serial.ratio_series()
        assert len(ratios) == len(serial.points)
        assert all(r.mean > 0 for r in ratios)

    def test_render_mentions_axis_and_seeds(self, serial):
        text = serial.render()
        assert "load_fraction" in text
        assert "seeds" in text


class TestRegistry:
    EXPECTED = {
        "fig1", "fig2", "fig3", "fig4", "fig5a", "fig5b", "fig5c",
        "fig6", "fig7", "table2", "table3",
        "ablation-lambda", "ablation-period", "ablation-partial",
        "ablation-markov", "ablation-rounding", "failures", "chaos",
        "scaling", "scaling-shards", "scaling-reconcile",
    }

    def test_every_experiment_registered(self):
        assert set(REGISTRY.names()) == self.EXPECTED

    def test_legacy_experiments_dict_matches_registry(self):
        assert set(EXPERIMENTS) == set(REGISTRY.names())

    def test_every_spec_has_both_scales(self):
        for name in REGISTRY.names():
            spec = REGISTRY.get(name)
            for scale in SCALES:
                spec.preset(scale)  # must not raise

    def test_sweepable_specs_have_points(self):
        for name in REGISTRY.names():
            spec = REGISTRY.get(name)
            if spec.sweepable:
                for scale in SCALES:
                    assert spec.preset(scale).points

    def test_duplicate_registration_rejected(self):
        registry = ExperimentRegistry()
        registry.register(_tiny_spec())
        with pytest.raises(ValueError):
            registry.register(_tiny_spec())

    def test_unknown_experiment_raises_keyerror(self):
        with pytest.raises(KeyError):
            REGISTRY.get("nonexistent")

    def test_spec_requires_runner_or_cell(self):
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="broken",
                title="no runner and no cell",
                scales={
                    "small": ScalePreset(),
                    "paper": ScalePreset(),
                },
            )


@pytest.mark.slow
class TestCliSweep:
    def test_run_json_with_seeds_writes_artifact(self, tmp_path, capsys):
        register(_tiny_spec("tiny-cli-sweep"))
        try:
            code = main(
                [
                    "run",
                    "tiny-cli-sweep",
                    "--json",
                    "--seeds",
                    "2",
                    "--out",
                    str(tmp_path),
                ]
            )
        finally:
            REGISTRY.unregister("tiny-cli-sweep")
        assert code == 0
        out = capsys.readouterr().out
        assert "tiny-cli-sweep" in out
        artifact = tmp_path / "tiny-cli-sweep.json"
        assert artifact.exists()
        payload = json.loads(artifact.read_text())
        assert payload["schema_version"] == 1
        assert payload["kind"] == "sweep"
        assert len(payload["seeds"]) == 2
        summary = payload["summary"]["qa-nt"]["mean_response_ms"]
        assert all("mean" in point and "stdev" in point for point in summary)

    def test_plain_experiment_json(self, tmp_path, capsys):
        code = main(
            ["run", "fig1", "--json", "--seeds", "2", "--out", str(tmp_path)]
        )
        assert code == 0
        payload = json.loads((tmp_path / "fig1.json").read_text())
        assert payload["schema_version"] == 1
        assert payload["kind"] == "single"
        assert len(payload["results"]) == 2

    def test_bad_seed_count_rejected(self):
        assert main(["run", "fig1", "--seeds", "0"]) == 2
