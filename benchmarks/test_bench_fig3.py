"""Bench E3 — regenerate Figure 3 (the example sinusoid workload).

Paper: Q1 and Q2 arrival rates follow 0.05 Hz sinusoids with a phase
difference, Q1 peaking at twice Q2's rate.
"""

import pytest

from repro.experiments.fig3 import run_fig3


def test_bench_fig3(benchmark, save_result):
    result = benchmark.pedantic(
        run_fig3,
        kwargs=dict(horizon_ms=40_000.0, q1_peak_rate_per_ms=0.05, seed=1),
        rounds=3,
        iterations=1,
    )
    save_result("fig3", result.render())
    q1, q2 = sum(result.q1_per_bucket), sum(result.q2_per_bucket)
    assert q1 == pytest.approx(2 * q2, rel=0.3)
    # The sinusoid actually swings: some buckets near zero, some heavy.
    assert min(result.q1_per_bucket) < max(result.q1_per_bucket)
