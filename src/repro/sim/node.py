"""Simulated autonomous RDBMS node.

Each node is a black box with its own hardware (a
:class:`repro.query.MachineSpec`), its own locally-held relations, and a
serial FIFO query executor — the paper's introduction explicitly assumes
nodes evaluate one query at a time, and its simulator measures busy time
per node.  The FIFO is modelled with a single ``busy_until`` watermark:
enqueueing computes the query's start and finish deterministically, so no
per-stage events are needed.

The node also exposes what the allocation mechanisms need:

* ``estimated_completion_ms`` for Greedy (queue + execution time);
* ``current_load_ms`` / ``utilisation`` for the load balancers;
* ``make_supply_set`` for QA-NT's per-period seller problem.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.supply import CapacitySupplySet
from ..query.cost import MachineSpec
from ..query.model import Query
from .engine import Simulator

__all__ = [
    "ExecutionRecord",
    "SimulatedNode",
    "OUTAGE_EPOCH",
]

#: Process-wide count of :meth:`SimulatedNode.schedule_outage` calls.
#: Availability caches (see ``AllocationContext.available_candidates``) key
#: on it: while it is unchanged and no node of a federation has outages,
#: the per-class candidate tuple can be reused verbatim instead of being
#: re-filtered for every arriving query.  A one-element list so readers
#: can hold the cell itself rather than re-importing the module.
OUTAGE_EPOCH: List[int] = [0]


@dataclass(frozen=True)
class ExecutionRecord:
    """One finished query execution on a node."""

    qid: int
    class_index: int
    enqueue_ms: float
    start_ms: float
    finish_ms: float

    @property
    def wait_ms(self) -> float:
        """Time spent queued before execution started."""
        return self.start_ms - self.enqueue_ms

    @property
    def execution_ms(self) -> float:
        """Pure execution time."""
        return self.finish_ms - self.start_ms


class SimulatedNode:
    """One autonomous DBMS in the simulated federation."""

    def __init__(
        self,
        node_id: int,
        spec: MachineSpec,
        relations: FrozenSet[int],
        class_costs_ms: Sequence[float],
        simulator: Simulator,
        exec_slots: int = 1,
    ):
        """``class_costs_ms[k]`` is this node's execution time for class
        *k* (``inf`` when the node lacks the class's relations)."""
        if exec_slots <= 0:
            raise ValueError("a node needs at least one execution slot")
        self.node_id = node_id
        self.spec = spec
        self.relations = relations
        self._costs = tuple(float(c) for c in class_costs_ms)
        self._sim = simulator
        self._exec_slots = exec_slots
        # One watermark per slot; a new query goes to the earliest-free slot.
        self._slot_free_at: List[float] = [0.0] * exec_slots
        self._total_busy_ms = 0.0
        self._executed_by_class: Dict[int, int] = {}
        self._history: List[ExecutionRecord] = []
        #: Min-heap of finish times of not-yet-completed executions.
        self._open_finishes: List[float] = []
        #: Outage intervals (start_ms, end_ms) during which the node
        #: accepts no new work; in-flight queries drain normally.
        self._outages: List[Tuple[float, float]] = []
        #: Mirror of ``_slot_free_at[0]`` inside a federation-wide numpy
        #: array (see :class:`repro.sim.fleet.FleetArrays`); ``None`` until
        #: :meth:`attach_fleet` wires it up.
        self._fleet_slot_free = None
        self._fleet_row = -1

    # -- capabilities -----------------------------------------------------------

    @property
    def num_classes(self) -> int:
        """Number of query classes the cost row covers."""
        return len(self._costs)

    @property
    def class_costs_ms(self) -> Sequence[float]:
        """Per-class execution times on this node (``inf`` = ineligible)."""
        return self._costs

    def can_evaluate(self, class_index: int) -> bool:
        """True iff the node holds the data for class ``class_index``."""
        return not math.isinf(self._costs[class_index])

    def execution_time_ms(self, class_index: int) -> float:
        """Execution time of one class-``class_index`` query on this node."""
        cost = self._costs[class_index]
        if math.isinf(cost):
            raise ValueError(
                "node %d cannot evaluate class %d" % (self.node_id, class_index)
            )
        return cost

    def schedule_outage(self, start_ms: float, end_ms: float) -> None:
        """Mark the node unavailable during ``[start_ms, end_ms)``.

        Outages model the paper's motivating overload scenario ("multiple
        node failures", Section 1): the node stops accepting new queries
        but drains already-committed work.  Allocators must consult
        :meth:`is_available` before assigning.
        """
        if end_ms <= start_ms:
            raise ValueError("an outage must end after it starts")
        if start_ms < 0:
            raise ValueError("outage start must be non-negative")
        self._outages.append((start_ms, end_ms))
        OUTAGE_EPOCH[0] += 1

    @property
    def has_outages(self) -> bool:
        """True iff any outage was ever scheduled on this node."""
        return bool(self._outages)

    def is_available(self, now_ms: Optional[float] = None) -> bool:
        """True iff the node accepts new work at ``now_ms`` (default: now)."""
        if not self._outages:
            # Fast path: most nodes never schedule an outage, and this is
            # probed for every candidate of every arriving query.
            return True
        now = self._sim.now if now_ms is None else now_ms
        return not any(start <= now < end for start, end in self._outages)

    def make_supply_set(self, period_ms: float) -> CapacitySupplySet:
        """The node's supply set for one period of length ``period_ms``.

        Capacity is the period length times the number of execution slots —
        the processing-time budget the QA-NT seller may sell.
        """
        return CapacitySupplySet(self._costs, period_ms * self._exec_slots)

    def attach_fleet(self, slot_free, row: int) -> None:
        """Mirror this node's single-slot watermark into a fleet array.

        ``slot_free[row]`` is kept equal to ``_slot_free_at[0]`` from here
        on (:meth:`enqueue` is the only mutator), letting allocators
        compute completion estimates for whole candidate sets with one
        vectorised expression instead of per-node method calls.
        """
        if self._exec_slots != 1:
            raise ValueError("fleet arrays mirror single-slot nodes only")
        self._fleet_slot_free = slot_free
        self._fleet_row = row
        slot_free[row] = self._slot_free_at[0]

    # -- load introspection (used by allocators) ---------------------------------

    def queued_queries(self) -> int:
        """Number of queries enqueued but not yet finished.

        This is what a lightweight load probe returns (the two-random-
        probes mechanism polls it): a count, blind to how expensive the
        queued work is on this machine.
        """
        now = self._sim.now
        while self._open_finishes and self._open_finishes[0] <= now:
            heapq.heappop(self._open_finishes)
        return len(self._open_finishes)

    def current_load_ms(self) -> float:
        """Outstanding work: how far ``busy_until`` lies past *now*.

        With several slots this is the total remaining busy time across
        slots, matching what a load balancer would learn from the node's
        queue monitor.
        """
        now = self._sim.now
        if self._exec_slots == 1:
            # The paper's serial-node common case.
            remaining = self._slot_free_at[0] - now
            return remaining if remaining > 0.0 else 0.0
        return sum(max(0.0, free_at - now) for free_at in self._slot_free_at)

    def estimated_completion_ms(self, class_index: int) -> float:
        """When a class-``class_index`` query enqueued now would finish."""
        slot_free = self._slot_free_at
        earliest = slot_free[0] if self._exec_slots == 1 else min(slot_free)
        now = self._sim.now
        start = now if now >= earliest else earliest
        return start + self.execution_time_ms(class_index)

    @property
    def total_busy_ms(self) -> float:
        """Cumulative execution time of all finished-or-scheduled queries."""
        return self._total_busy_ms

    @property
    def executed_by_class(self) -> Dict[int, int]:
        """Count of queries executed (or committed) per class."""
        return dict(self._executed_by_class)

    @property
    def history(self) -> List[ExecutionRecord]:
        """All executions committed to this node, in enqueue order."""
        return self._history

    def busy_until_ms(self) -> float:
        """Absolute time at which the node drains completely."""
        return max(max(self._slot_free_at), self._sim.now)

    # -- execution ----------------------------------------------------------------

    def enqueue(
        self,
        query: Query,
        on_complete: Optional[Callable[[Query, ExecutionRecord], None]] = None,
    ) -> ExecutionRecord:
        """Commit ``query`` to this node's FIFO and schedule its completion.

        Returns the (already fully determined) execution record;
        ``on_complete`` fires at the query's finish time.
        """
        exec_ms = self.execution_time_ms(query.class_index)
        now = self._sim.now
        if self._exec_slots == 1:
            slot = 0
        else:
            slot = min(
                range(self._exec_slots), key=lambda i: self._slot_free_at[i]
            )
        start = max(now, self._slot_free_at[slot])
        finish = start + exec_ms
        self._slot_free_at[slot] = finish
        fleet_sf = self._fleet_slot_free
        if fleet_sf is not None:
            fleet_sf[self._fleet_row] = finish
        self._total_busy_ms += exec_ms
        self._executed_by_class[query.class_index] = (
            self._executed_by_class.get(query.class_index, 0) + 1
        )
        record = ExecutionRecord(
            qid=query.qid,
            class_index=query.class_index,
            enqueue_ms=now,
            start_ms=start,
            finish_ms=finish,
        )
        self._history.append(record)
        heapq.heappush(self._open_finishes, finish)
        if on_complete is not None:
            self._sim.schedule_at(finish, on_complete, query, record)
        return record
