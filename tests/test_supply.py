"""Unit tests for repro.core.supply (supply sets and eq. 4 solvers)."""


import pytest

from repro.core.supply import (
    CapacitySupplySet,
    ExplicitSupplySet,
    solve_supply,
)
from repro.core.vectors import QueryVector

INF = float("inf")


class TestExplicitSupplySet:
    def test_contains(self):
        s = ExplicitSupplySet([QueryVector([1, 0])])
        assert s.contains(QueryVector([1, 0]))
        assert not s.contains(QueryVector([0, 2]))

    def test_zero_vector_always_member(self):
        s = ExplicitSupplySet([QueryVector([1, 0])])
        assert s.contains(QueryVector([0, 0]))

    def test_optimal_supply_picks_max_value(self):
        s = ExplicitSupplySet(
            [QueryVector([1, 0]), QueryVector([0, 1]), QueryVector([1, 1])]
        )
        assert s.optimal_supply([3.0, 1.0]) == QueryVector([1, 1])

    def test_optimal_supply_tie_breaks_by_total(self):
        s = ExplicitSupplySet([QueryVector([1, 0]), QueryVector([1, 1])])
        # Class 1 has zero price; picking the larger vector is harmless
        # and maximises throughput.
        assert s.optimal_supply([1.0, 0.0]) == QueryVector([1, 1])

    def test_mixed_lengths_rejected(self):
        with pytest.raises(ValueError):
            ExplicitSupplySet([QueryVector([1]), QueryVector([1, 2])])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ExplicitSupplySet([])

    def test_price_length_check(self):
        s = ExplicitSupplySet([QueryVector([1, 0])])
        with pytest.raises(ValueError):
            s.optimal_supply([1.0])

    def test_can_supply(self):
        s = ExplicitSupplySet([QueryVector([1, 0])])
        assert s.can_supply(0)
        assert not s.can_supply(1)


class TestCapacitySupplySetFeasibility:
    def test_contains_respects_budget(self):
        s = CapacitySupplySet([100.0, 200.0], 500.0)
        assert s.contains(QueryVector([3, 1]))   # 500 exactly
        assert not s.contains(QueryVector([4, 1]))  # 600

    def test_infeasible_class(self):
        s = CapacitySupplySet([100.0, INF], 500.0)
        assert not s.contains(QueryVector([0, 1]))
        assert s.contains(QueryVector([5, 0]))

    def test_wrong_length_not_contained(self):
        s = CapacitySupplySet([100.0], 500.0)
        assert not s.contains(QueryVector([1, 1]))

    def test_zero_capacity_contains_only_zero(self):
        s = CapacitySupplySet([100.0], 0.0)
        assert s.contains(QueryVector([0]))
        assert not s.contains(QueryVector([1]))

    def test_utilisation(self):
        s = CapacitySupplySet([100.0, 200.0], 1000.0)
        assert s.utilisation(QueryVector([2, 1])) == pytest.approx(0.4)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            CapacitySupplySet([100.0], -1.0)

    def test_nonpositive_cost_rejected(self):
        with pytest.raises(ValueError):
            CapacitySupplySet([0.0], 100.0)

    def test_can_supply_uses_idle_budget(self):
        s = CapacitySupplySet([100.0, 600.0], 500.0)
        assert s.can_supply(0)
        assert not s.can_supply(1)  # one query does not fit the budget


class TestSolvers:
    def test_greedy_prefers_best_density(self):
        s = CapacitySupplySet([100.0, 100.0], 500.0)
        result = s.optimal_supply([2.0, 1.0], method="greedy")
        assert result == QueryVector([5, 0])

    def test_greedy_fills_leftover_with_next_class(self):
        s = CapacitySupplySet([300.0, 100.0], 500.0)
        # Density: class0 = 10/300, class1 = 1/100 -> class0 first (1 fits),
        # leftover 200 takes 2 of class1.
        result = s.optimal_supply([10.0, 1.0], method="greedy")
        assert result == QueryVector([1, 2])

    def test_greedy_ignores_zero_priced_classes(self):
        s = CapacitySupplySet([100.0, 100.0], 500.0)
        assert s.optimal_supply([0.0, 1.0], method="greedy") == QueryVector([0, 5])

    def test_greedy_all_zero_prices(self):
        s = CapacitySupplySet([100.0], 500.0)
        assert s.optimal_supply([0.0], method="greedy").is_zero()

    def test_fractional_uses_full_capacity_on_best_class(self):
        s = CapacitySupplySet([200.0, 100.0], 500.0)
        result = s.optimal_supply([1.0, 1.0], method="fractional")
        assert result == QueryVector([0, 5])

    def test_fractional_allows_fractions(self):
        s = CapacitySupplySet([1000.0], 500.0)
        result = s.optimal_supply([1.0], method="fractional")
        assert result.components == (0.5,)

    def test_greedy_fractional_tail(self):
        s = CapacitySupplySet([1000.0], 500.0)
        result = s.optimal_supply([1.0], method="greedy-fractional")
        assert result.components == (0.5,)

    def test_greedy_fractional_integer_part_plus_tail(self):
        s = CapacitySupplySet([200.0], 500.0)
        result = s.optimal_supply([1.0], method="greedy-fractional")
        assert result.components == (2.5,)

    def test_proportional_splits_by_density(self):
        s = CapacitySupplySet([100.0, 100.0], 400.0)
        result = s.optimal_supply([1.0, 1.0], method="proportional")
        # Equal densities -> equal shares.
        assert result.components == pytest.approx((2.0, 2.0))

    def test_proportional_concentrates_on_better_class(self):
        s = CapacitySupplySet([100.0, 100.0], 400.0)
        result = s.optimal_supply([2.0, 1.0], method="proportional")
        assert result[0] > result[1] > 0

    def test_proportional_feasible(self):
        s = CapacitySupplySet([130.0, 270.0, 90.0], 700.0)
        result = s.optimal_supply([1.0, 2.0, 0.5], method="proportional")
        assert s.utilisation(result) <= 1.0 + 1e-9

    def test_exact_matches_greedy_on_easy_instance(self):
        s = CapacitySupplySet([100.0, 100.0], 500.0)
        exact = s.optimal_supply([2.0, 1.0], method="exact")
        greedy = s.optimal_supply([2.0, 1.0], method="greedy")
        assert exact.dot([2.0, 1.0]) >= greedy.dot([2.0, 1.0])

    def test_exact_beats_greedy_on_knapsack_trap(self):
        # Greedy takes the high-density item and wastes capacity; exact
        # packs the budget fully.  costs: 60, 50, 50; prices 65, 50, 50.
        s = CapacitySupplySet([60.0, 50.0, 50.0], 100.0)
        prices = [65.0, 50.0, 50.0]
        exact = s.optimal_supply(prices, method="exact")
        greedy = s.optimal_supply(prices, method="greedy")
        assert exact.dot(prices) > greedy.dot(prices)

    def test_exact_feasible(self):
        s = CapacitySupplySet([130.0, 170.0], 600.0)
        result = s.optimal_supply([1.3, 1.7], method="exact")
        assert s.contains(result)

    def test_unknown_method_rejected(self):
        s = CapacitySupplySet([100.0], 500.0)
        with pytest.raises(ValueError):
            s.optimal_supply([1.0], method="magic")

    def test_negative_prices_rejected(self):
        s = CapacitySupplySet([100.0], 500.0)
        with pytest.raises(ValueError):
            s.optimal_supply([-1.0])

    def test_solve_supply_dispatches_explicit(self):
        s = ExplicitSupplySet([QueryVector([1, 0]), QueryVector([0, 1])])
        assert solve_supply(s, [1.0, 5.0]) == QueryVector([0, 1])

    def test_solve_supply_dispatches_capacity(self):
        s = CapacitySupplySet([100.0, 100.0], 200.0)
        assert solve_supply(s, [1.0, 3.0], method="greedy") == QueryVector([0, 2])
