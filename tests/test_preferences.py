"""Unit tests for repro.core.preferences."""

import pytest

from repro.core.preferences import (
    ThroughputPreference,
    WeightedThroughputPreference,
)
from repro.core.vectors import QueryVector


class TestThroughputPreference:
    def test_utility_is_total(self):
        assert ThroughputPreference().utility(QueryVector([2, 3])) == 5.0

    def test_prefers_more_queries(self):
        pref = ThroughputPreference()
        assert pref.prefers(QueryVector([3, 0]), QueryVector([1, 1]))

    def test_weak_preference_is_reflexive(self):
        pref = ThroughputPreference()
        v = QueryVector([1, 2])
        assert pref.prefers(v, v)

    def test_strict_preference(self):
        pref = ThroughputPreference()
        assert pref.strictly_prefers(QueryVector([2, 2]), QueryVector([1, 2]))
        assert not pref.strictly_prefers(QueryVector([2, 1]), QueryVector([1, 2]))

    def test_indifference_between_same_totals(self):
        pref = ThroughputPreference()
        assert pref.indifferent(QueryVector([2, 1]), QueryVector([0, 3]))

    def test_completeness(self):
        # Any two vectors are comparable (one direction always holds).
        pref = ThroughputPreference()
        a, b = QueryVector([5, 0]), QueryVector([0, 4])
        assert pref.prefers(a, b) or pref.prefers(b, a)


class TestWeightedThroughputPreference:
    def test_weights_applied(self):
        pref = WeightedThroughputPreference([2.0, 1.0])
        assert pref.utility(QueryVector([1, 2])) == 4.0

    def test_reduces_to_throughput_with_unit_weights(self):
        weighted = WeightedThroughputPreference([1.0, 1.0])
        plain = ThroughputPreference()
        v = QueryVector([3, 4])
        assert weighted.utility(v) == plain.utility(v)

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            WeightedThroughputPreference([1.0, -1.0])

    def test_rejects_empty_weights(self):
        with pytest.raises(ValueError):
            WeightedThroughputPreference([])

    def test_length_mismatch_rejected(self):
        pref = WeightedThroughputPreference([1.0])
        with pytest.raises(ValueError):
            pref.utility(QueryVector([1, 2]))

    def test_weights_property(self):
        assert WeightedThroughputPreference([1, 2]).weights == (1.0, 2.0)
