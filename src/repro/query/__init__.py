"""SJPS query model, SQL rendering, cost model and estimators."""

from .cost import (
    CostModel,
    MachineSpec,
    RelativeSpeedCostModel,
    calibrated_cost_model,
    cost_matrix,
)
from .estimate import (
    Estimator,
    HistoryCalibratedEstimator,
    NoisyEstimator,
    PerfectEstimator,
)
from .model import (
    Query,
    QueryClass,
    QueryClassParameters,
    generate_query_classes,
)
from .sqlgen import (
    create_table_sql,
    insert_rows_sql,
    plan_signature,
    render_query_sql,
    table_name,
)

__all__ = [
    "CostModel",
    "RelativeSpeedCostModel",
    "Estimator",
    "HistoryCalibratedEstimator",
    "MachineSpec",
    "NoisyEstimator",
    "PerfectEstimator",
    "Query",
    "QueryClass",
    "QueryClassParameters",
    "calibrated_cost_model",
    "cost_matrix",
    "create_table_sql",
    "generate_query_classes",
    "insert_rows_sql",
    "plan_signature",
    "render_query_sql",
    "table_name",
]
