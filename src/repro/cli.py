"""Command-line interface: regenerate any paper artefact from a shell.

Usage::

    python -m repro list
    python -m repro run fig1
    python -m repro run fig4 --scale paper --seed 3
    python -m repro run all --scale small

``--scale small`` (default) runs each experiment on a reduced federation
that finishes in seconds-to-minutes; ``--scale paper`` uses the paper's
full dimensions (100 nodes, 10,000 queries) and can take much longer.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional, Sequence

from .experiments import (
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5a,
    run_fig5b,
    run_fig5c,
    run_fig6,
    run_fig7,
    run_lambda_sweep,
    run_partial_adoption,
    run_period_sweep,
    run_rounding_ablation,
    run_static_markov,
    run_table2,
    run_table3,
)
from .experiments.failures import run_failures
from .experiments.setups import zipf_world

__all__ = ["main", "EXPERIMENTS"]


def _fig3(scale: str, seed: int):
    return run_fig3(horizon_ms=40_000.0, q1_peak_rate_per_ms=0.05, seed=seed)


def _fig4(scale: str, seed: int):
    nodes = 100 if scale == "paper" else 30
    horizon = 120_000.0 if scale == "paper" else 60_000.0
    return run_fig4(num_nodes=nodes, horizon_ms=horizon, seed=seed)


def _fig5a(scale: str, seed: int):
    loads = (
        (0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0)
        if scale == "paper"
        else (0.25, 0.75, 1.5, 3.0)
    )
    nodes = 100 if scale == "paper" else 30
    return run_fig5a(loads=loads, num_nodes=nodes, seed=seed)


def _fig5b(scale: str, seed: int):
    freqs = (
        (0.05, 0.1, 0.25, 0.5, 1.0, 2.0)
        if scale == "paper"
        else (0.05, 0.5, 2.0)
    )
    nodes = 100 if scale == "paper" else 30
    return run_fig5b(frequencies_hz=freqs, num_nodes=nodes, seed=seed)


def _fig5c(scale: str, seed: int):
    nodes = 100 if scale == "paper" else 30
    return run_fig5c(num_nodes=nodes, seed=seed)


def _fig6(scale: str, seed: int):
    if scale == "paper":
        return run_fig6(seed=seed)
    return run_fig6(
        interarrivals_ms=(1_000.0, 10_000.0, 17_000.0),
        num_nodes=30,
        num_relations=300,
        num_classes=30,
        max_queries=2_500,
        horizon_ms=200_000.0,
        seed=seed,
    )


def _fig7(scale: str, seed: int):
    queries = 300 if scale == "paper" else 100
    return run_fig7(num_queries=queries, seed=seed)


def _table2(scale: str, seed: int):
    nodes = 100 if scale == "paper" else 30
    return run_table2(num_nodes=nodes, horizon_ms=60_000.0, seed=seed)


def _table3(scale: str, seed: int):
    if scale == "paper":
        return run_table3(seed=seed)
    world = zipf_world(
        num_nodes=30, num_relations=300, num_classes=30, seed=seed
    )
    return run_table3(world=world)


def _failures(scale: str, seed: int):
    nodes = 100 if scale == "paper" else 30
    return run_failures(num_nodes=nodes, seed=seed)


#: Registry: experiment name -> callable(scale, seed) returning an object
#: with a ``render()`` method.
EXPERIMENTS: Dict[str, Callable[[str, int], object]] = {
    "fig1": lambda scale, seed: run_fig1(),
    "fig2": lambda scale, seed: run_fig2(),
    "fig3": _fig3,
    "fig4": _fig4,
    "fig5a": _fig5a,
    "fig5b": _fig5b,
    "fig5c": _fig5c,
    "fig6": _fig6,
    "fig7": _fig7,
    "table2": _table2,
    "table3": _table3,
    "ablation-lambda": lambda scale, seed: run_lambda_sweep(
        num_nodes=20, seed=seed
    ),
    "ablation-period": lambda scale, seed: run_period_sweep(
        num_nodes=20, seed=seed
    ),
    "ablation-partial": lambda scale, seed: run_partial_adoption(
        num_nodes=20, seed=seed
    ),
    "ablation-markov": lambda scale, seed: run_static_markov(
        num_nodes=20, seed=seed
    ),
    "ablation-rounding": lambda scale, seed: run_rounding_ablation(
        num_nodes=20, seed=seed
    ),
    "failures": _failures,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("list", help="list available experiments")
    run = commands.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (see 'list')",
    )
    run.add_argument(
        "--scale",
        choices=("small", "paper"),
        default="small",
        help="federation/workload size (default: small)",
    )
    run.add_argument("--seed", type=int, default=0, help="random seed")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        result = EXPERIMENTS[name](args.scale, args.seed)
        elapsed = time.time() - started
        print("=== %s (%.1fs) ===" % (name, elapsed))
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
