"""Vectorised market-tick dispatch for the QA-NT bidding fan-out.

PR 5's period engine batched the *boundary* (steps 12–14 + eq. 4); this
module batches the other scalar frontier: the per-query request-for-bid
exchange itself.  :class:`MarketTickDispatcher` mirrors the inlined
bidder loop of :meth:`repro.allocation.qant.QantAllocator.assign` as a
handful of numpy operations over per-class state arrays gathered from
the precompiled bidder tuples:

* offer test ``remaining >= 1.0`` over the whole candidate set at once;
* bulk refusal bookkeeping — refusal counts, the steps-8/9 price raise
  with the exact scalar clamp order, price-epoch deltas and the
  incremental ``max_price`` — against agent-global auxiliary arrays;
* the Section 5.1 activation rule (threshold test + enforce latch) as
  mask arithmetic;
* best-offer selection as a masked ``argmin`` over the fleet's shared
  ``slot_free`` mirror (first-occurrence ``argmin`` over ascending node
  ids reproduces the scalar strict-``<`` lowest-id tie-break).

Bit-identity contract: every float is produced by the same IEEE-754
operation sequence as the scalar loop, so goldens must not move with the
dispatcher active.  Cached state is written back to the live agent lists
by :meth:`MarketTickDispatcher.sync`, which the allocator calls at every
period boundary, before any scalar fallback (partial fan-outs during
outage windows), and from ``sync_market_state`` — the same observer
contract the period engine's deferral uses.

The auxiliary arrays are *agent-global* (indexed by fleet row), not
per-class: an agent bidding in several classes shares one ``max_price``,
one price epoch and one enforce latch across all of them, so raises from
class *j*'s exchange must be visible to class *k*'s threshold test
without a scatter/gather round trip.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

try:  # Same optional posture as repro.sim.fleet; no numpy, no dispatcher.
    import numpy as _np
except ImportError:  # pragma: no cover - scalar paths cover this
    _np = None

__all__ = [
    "BatchDispatchStats",
    "MarketTickDispatcher",
    "refusal_raise",
]


def refusal_raise(values, factor, floor, cap):
    """Steps 8-9 price raise over a vector of refused lanes.

    Returns ``(raised, changed)``: the new prices after one refusal raise
    with the exact scalar clamp order (floor first, then cap —
    max-then-min is identical for ``floor <= cap`` over these positive
    finite values), and the boolean mask of lanes whose price actually
    moved.  This is the single point of truth for the raise arithmetic:
    the fleet-wide dispatcher below, the sharded coordinator's market
    plane and every shard-local market plane
    (:class:`repro.sim.shards._MarketPlane` — one dispatcher-equivalent
    instance per shard) all call it, so bit-identity across engines is a
    property of one function, not of N transcriptions.
    """
    raised = values * factor
    _np.maximum(raised, floor, out=raised)
    _np.minimum(raised, cap, out=raised)
    return raised, raised != values


class BatchDispatchStats:
    """Counters of the vectorised bidding fan-out (see allocator stats)."""

    __slots__ = ("vector_exchanges", "scalar_fallbacks", "syncs", "gathers")

    def __init__(self) -> None:
        #: Request-for-bid exchanges answered on the vector path.
        self.vector_exchanges = 0
        #: Exchanges that had to drop to the scalar loop (partial
        #: fan-outs during outage windows).
        self.scalar_fallbacks = 0
        #: Scatter-backs of cached state into the live agent lists.
        self.syncs = 0
        #: Per-class state gathers (at most one per class per period).
        self.gathers = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "vector_exchanges": self.vector_exchanges,
            "scalar_fallbacks": self.scalar_fallbacks,
            "syncs": self.syncs,
            "gathers": self.gathers,
        }


class _ClassState:
    """One class's candidate fan-out as arrays.

    ``ids``/``rows``/``costs``/``bidders`` are static for the federation's
    lifetime; ``R``/``V``/``F``/``ACC`` (remaining supply, price values,
    refusal counts, accepted counts — column ``class_index`` of each
    bidder's live lists) are gathered lazily per period and dropped to
    ``None`` at every :meth:`MarketTickDispatcher.sync`.
    """

    __slots__ = (
        "class_index", "ids", "rows", "costs", "bidders",
        "R", "V", "F", "ACC",
    )

    def __init__(self, class_index, ids, rows, costs, bidders) -> None:
        self.class_index = class_index
        self.ids = ids
        self.rows = rows
        self.costs = costs
        self.bidders = bidders
        self.R = None
        self.V = None
        self.F = None
        self.ACC = None


class MarketTickDispatcher:
    """Vectorised request-for-bid exchange over a full candidate set.

    Built by :class:`~repro.allocation.qant.QantAllocator` only when the
    whole fleet is dispatchable: numpy + fleet arrays available, no
    message faults, no partial adoption, no private classification, no
    offer-premium filter, and every bidder a plain
    :class:`~repro.core.qant.QantPricingAgent`.
    """

    def __init__(
        self,
        fleet,
        nodes: Mapping[int, object],
        bidders_by_class: Mapping[int, Tuple],
        activation_threshold: Optional[float],
        raise_factor: float,
        price_floor: float,
        price_cap: float,
    ) -> None:
        self._fleet = fleet
        self._threshold = activation_threshold
        self._factor = raise_factor
        self._floor = price_floor
        self._cap = price_cap
        self.stats = BatchDispatchStats()
        row_of = fleet.row_of
        self._states: Dict[int, _ClassState] = {}
        for class_index, bidders in bidders_by_class.items():
            self._states[class_index] = _ClassState(
                class_index,
                _np.array([b[0] for b in bidders], dtype=_np.int64),
                _np.array(
                    [row_of[b[0]] for b in bidders], dtype=_np.intp
                ),
                _np.array(
                    [nodes[b[0]]._costs[class_index] for b in bidders],
                    dtype=float,
                ),
                bidders,
            )
        # Agent-global auxiliary state, one row per fleet slot.  Rows
        # whose node bids in no class keep a None agent and are never
        # touched.
        num_rows = len(fleet.node_ids)
        agents_by_row: List[object] = [None] * num_rows
        for bidders in bidders_by_class.values():
            for b in bidders:
                agents_by_row[row_of[b[0]]] = b[1]
        self._aux_agents = agents_by_row
        self._aux_maxp = _np.zeros(num_rows, dtype=float)
        self._aux_locked = _np.zeros(num_rows, dtype=bool)
        self._aux_delta = _np.zeros(num_rows, dtype=_np.int64)
        self._aux_fresh = False

    # -- gather ---------------------------------------------------------------

    def _gather_aux(self) -> None:
        """Snapshot every agent's max price and enforce latch.

        Reading ``agent.max_price`` materialises the lazily-tracked
        maximum; from here on the vector path maintains it incrementally,
        which stays exact because prices only rise within a period and
        every raise updates the running maximum.
        """
        maxp = self._aux_maxp
        locked = self._aux_locked
        self._aux_delta[:] = 0
        for row, agent in enumerate(self._aux_agents):
            if agent is None:
                continue
            maxp[row] = agent.max_price
            locked[row] = agent._enforce_locked_at is not None
        self._aux_fresh = True

    def _live_state(self, class_index: int) -> _ClassState:
        st = self._states[class_index]
        if st.R is None:
            bidders = st.bidders
            st.R = _np.array([b[2][class_index] for b in bidders])
            st.V = _np.array([b[3][class_index] for b in bidders])
            st.F = _np.array(
                [b[4][class_index] for b in bidders], dtype=_np.int64
            )
            st.ACC = _np.array(
                [b[1]._accepted[class_index] for b in bidders],
                dtype=_np.int64,
            )
            self.stats.gathers += 1
        return st

    # -- the exchange ---------------------------------------------------------

    def exchange(
        self, class_index: int, now: float
    ) -> Tuple[Optional[int], bool]:
        """One full-fan-out request-for-bid exchange at time ``now``.

        Returns ``(chosen_node_id, saturated)``: the winning node (supply
        consumed, like the scalar accept) or ``None`` when every bidder
        refused, with ``saturated`` flagging the all-refuse case whose
        every price sits at the cap (the caller arms its saturation fast
        path exactly as the scalar loop would).
        """
        st = self._live_state(class_index)
        R = st.R
        V = st.V
        offers = R >= 1.0
        refuse = _np.nonzero(~offers)[0]
        if refuse.size:
            if not self._aux_fresh:
                self._gather_aux()
            rows_r = st.rows[refuse]
            # Steps 8-9 in bulk: one refusal count and one price raise per
            # refusing bidder, with the scalar clamp order (floor first,
            # then cap; max-then-min is identical for floor <= cap over
            # these positive finite values).  Unchanged lanes are
            # rewritten with identical bits, so the scatter stays exact.
            st.F[refuse] += 1
            new, changed = refusal_raise(
                V[refuse], self._factor, self._floor, self._cap
            )
            V[refuse] = new
            m = self._aux_maxp[rows_r]
            if changed.any():
                self._aux_delta[rows_r] += changed
                # `maximum` matches the scalar `new > m` keep-or-replace:
                # ties return the shared (positive) value bit-for-bit.
                m = _np.maximum(m, new)
                self._aux_maxp[rows_r] = m
            threshold = self._threshold
            if threshold is not None:
                # Activation rule: a refusing node still *offers* while
                # unlatched and below the threshold; at/above it the
                # latch is set (and stays set for the period).
                passed = ~self._aux_locked[rows_r]
                passed &= m < threshold
                self._aux_locked[rows_r] = ~passed
                offers[refuse] = passed
        if not offers.any():
            # All-refuse exchange; saturated iff every price is pinned at
            # the cap (with a threshold, the latch is then set on every
            # bidder too — maxp >= cap >= threshold for any sane config,
            # and the latch assignment above already ran).
            self.stats.vector_exchanges += 1
            return None, bool((V == self._cap).all())
        sf = self._fleet.slot_free[st.rows]
        # `maximum(sf, now)` is the scalar `sf if sf > now else now`:
        # equal operands share one bit pattern (timestamps are
        # non-negative, so no -0.0/+0.0 split is observable).
        est = _np.maximum(sf, now)
        est += st.costs
        est = _np.where(offers, est, _np.inf)
        winner = int(est.argmin())
        if R[winner] >= 1.0:
            R[winner] -= 1.0
            st.ACC[winner] += 1
        self.stats.vector_exchanges += 1
        return int(st.ids[winner]), False

    # -- scatter --------------------------------------------------------------

    def sync(self) -> None:
        """Write all cached state back into the live agent lists.

        After this returns, every agent holds exactly the state the
        scalar loop would have left behind, and the next exchange
        re-gathers from scratch.  Idempotent and cheap when nothing is
        cached.
        """
        synced = False
        for st in self._states.values():
            if st.R is None:
                continue
            synced = True
            k = st.class_index
            r_list = st.R.tolist()
            v_list = st.V.tolist()
            f_list = st.F.tolist()
            acc_list = st.ACC.tolist()
            for i, b in enumerate(st.bidders):
                b[2][k] = r_list[i]
                b[3][k] = v_list[i]
                b[4][k] = f_list[i]
                b[1]._accepted[k] = acc_list[i]
            st.R = st.V = st.F = st.ACC = None
        if self._aux_fresh:
            synced = True
            threshold = self._threshold
            deltas = self._aux_delta.tolist()
            maxps = self._aux_maxp.tolist()
            lockeds = self._aux_locked.tolist()
            for row, agent in enumerate(self._aux_agents):
                if agent is None:
                    continue
                delta = deltas[row]
                if delta:
                    agent._price_epoch += delta
                    agent._prices_cache = None
                # The gather materialised the lazy maximum, so writing it
                # back unconditionally only ever restates the true value.
                agent._max_price = maxps[row]
                if (
                    threshold is not None
                    and lockeds[row]
                    and agent._enforce_locked_at is None
                ):
                    agent._enforce_locked_at = threshold
            self._aux_fresh = False
        if synced:
            self.stats.syncs += 1
